# Empty compiler generated dependencies file for romulus_tests.
# This may be replaced when dependencies are built.
