
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alloc.cpp" "tests/CMakeFiles/romulus_tests.dir/test_alloc.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_alloc.cpp.o.d"
  "/root/repo/tests/test_alloc_quick.cpp" "tests/CMakeFiles/romulus_tests.dir/test_alloc_quick.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_alloc_quick.cpp.o.d"
  "/root/repo/tests/test_baselines_specific.cpp" "tests/CMakeFiles/romulus_tests.dir/test_baselines_specific.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_baselines_specific.cpp.o.d"
  "/root/repo/tests/test_concurrent_stress.cpp" "tests/CMakeFiles/romulus_tests.dir/test_concurrent_stress.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_concurrent_stress.cpp.o.d"
  "/root/repo/tests/test_crash_double.cpp" "tests/CMakeFiles/romulus_tests.dir/test_crash_double.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_crash_double.cpp.o.d"
  "/root/repo/tests/test_crash_fork.cpp" "tests/CMakeFiles/romulus_tests.dir/test_crash_fork.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_crash_fork.cpp.o.d"
  "/root/repo/tests/test_crash_sim.cpp" "tests/CMakeFiles/romulus_tests.dir/test_crash_sim.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_crash_sim.cpp.o.d"
  "/root/repo/tests/test_db.cpp" "tests/CMakeFiles/romulus_tests.dir/test_db.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_db.cpp.o.d"
  "/root/repo/tests/test_ds.cpp" "tests/CMakeFiles/romulus_tests.dir/test_ds.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_ds.cpp.o.d"
  "/root/repo/tests/test_ds_extra.cpp" "tests/CMakeFiles/romulus_tests.dir/test_ds_extra.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_ds_extra.cpp.o.d"
  "/root/repo/tests/test_engine_basic.cpp" "tests/CMakeFiles/romulus_tests.dir/test_engine_basic.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_engine_basic.cpp.o.d"
  "/root/repo/tests/test_kvstore_typed.cpp" "tests/CMakeFiles/romulus_tests.dir/test_kvstore_typed.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_kvstore_typed.cpp.o.d"
  "/root/repo/tests/test_persist_rangelog.cpp" "tests/CMakeFiles/romulus_tests.dir/test_persist_rangelog.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_persist_rangelog.cpp.o.d"
  "/root/repo/tests/test_pmem.cpp" "tests/CMakeFiles/romulus_tests.dir/test_pmem.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_pmem.cpp.o.d"
  "/root/repo/tests/test_ptm_abort.cpp" "tests/CMakeFiles/romulus_tests.dir/test_ptm_abort.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_ptm_abort.cpp.o.d"
  "/root/repo/tests/test_ptms_common.cpp" "tests/CMakeFiles/romulus_tests.dir/test_ptms_common.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_ptms_common.cpp.o.d"
  "/root/repo/tests/test_recovery_semantics.cpp" "tests/CMakeFiles/romulus_tests.dir/test_recovery_semantics.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_recovery_semantics.cpp.o.d"
  "/root/repo/tests/test_sps_property.cpp" "tests/CMakeFiles/romulus_tests.dir/test_sps_property.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_sps_property.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/romulus_tests.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/romulus_tests.dir/test_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/romulus_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/romulus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/romulus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/romulus_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
