file(REMOVE_RECURSE
  "libromulus_pmem.a"
)
