
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/flush.cpp" "src/CMakeFiles/romulus_pmem.dir/pmem/flush.cpp.o" "gcc" "src/CMakeFiles/romulus_pmem.dir/pmem/flush.cpp.o.d"
  "/root/repo/src/pmem/region.cpp" "src/CMakeFiles/romulus_pmem.dir/pmem/region.cpp.o" "gcc" "src/CMakeFiles/romulus_pmem.dir/pmem/region.cpp.o.d"
  "/root/repo/src/pmem/sim_persistence.cpp" "src/CMakeFiles/romulus_pmem.dir/pmem/sim_persistence.cpp.o" "gcc" "src/CMakeFiles/romulus_pmem.dir/pmem/sim_persistence.cpp.o.d"
  "/root/repo/src/pmem/stats.cpp" "src/CMakeFiles/romulus_pmem.dir/pmem/stats.cpp.o" "gcc" "src/CMakeFiles/romulus_pmem.dir/pmem/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
