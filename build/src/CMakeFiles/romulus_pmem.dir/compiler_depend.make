# Empty compiler generated dependencies file for romulus_pmem.
# This may be replaced when dependencies are built.
