file(REMOVE_RECURSE
  "CMakeFiles/romulus_pmem.dir/pmem/flush.cpp.o"
  "CMakeFiles/romulus_pmem.dir/pmem/flush.cpp.o.d"
  "CMakeFiles/romulus_pmem.dir/pmem/region.cpp.o"
  "CMakeFiles/romulus_pmem.dir/pmem/region.cpp.o.d"
  "CMakeFiles/romulus_pmem.dir/pmem/sim_persistence.cpp.o"
  "CMakeFiles/romulus_pmem.dir/pmem/sim_persistence.cpp.o.d"
  "CMakeFiles/romulus_pmem.dir/pmem/stats.cpp.o"
  "CMakeFiles/romulus_pmem.dir/pmem/stats.cpp.o.d"
  "libromulus_pmem.a"
  "libromulus_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/romulus_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
