# Empty dependencies file for romulus_db.
# This may be replaced when dependencies are built.
