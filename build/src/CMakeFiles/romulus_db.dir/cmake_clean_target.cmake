file(REMOVE_RECURSE
  "libromulus_db.a"
)
