file(REMOVE_RECURSE
  "CMakeFiles/romulus_db.dir/db/waldb.cpp.o"
  "CMakeFiles/romulus_db.dir/db/waldb.cpp.o.d"
  "libromulus_db.a"
  "libromulus_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/romulus_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
