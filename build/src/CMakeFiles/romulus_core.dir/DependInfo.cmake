
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/redo_clock.cpp" "src/CMakeFiles/romulus_core.dir/baselines/redo_clock.cpp.o" "gcc" "src/CMakeFiles/romulus_core.dir/baselines/redo_clock.cpp.o.d"
  "/root/repo/src/core/engine_globals.cpp" "src/CMakeFiles/romulus_core.dir/core/engine_globals.cpp.o" "gcc" "src/CMakeFiles/romulus_core.dir/core/engine_globals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/romulus_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/romulus_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
