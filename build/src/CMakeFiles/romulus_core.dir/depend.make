# Empty dependencies file for romulus_core.
# This may be replaced when dependencies are built.
