file(REMOVE_RECURSE
  "CMakeFiles/romulus_core.dir/baselines/redo_clock.cpp.o"
  "CMakeFiles/romulus_core.dir/baselines/redo_clock.cpp.o.d"
  "CMakeFiles/romulus_core.dir/core/engine_globals.cpp.o"
  "CMakeFiles/romulus_core.dir/core/engine_globals.cpp.o.d"
  "libromulus_core.a"
  "libromulus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/romulus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
