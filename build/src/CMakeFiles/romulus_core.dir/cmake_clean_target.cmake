file(REMOVE_RECURSE
  "libromulus_core.a"
)
