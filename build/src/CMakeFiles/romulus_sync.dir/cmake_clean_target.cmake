file(REMOVE_RECURSE
  "libromulus_sync.a"
)
