file(REMOVE_RECURSE
  "CMakeFiles/romulus_sync.dir/sync/thread_registry.cpp.o"
  "CMakeFiles/romulus_sync.dir/sync/thread_registry.cpp.o.d"
  "libromulus_sync.a"
  "libromulus_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/romulus_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
