# Empty compiler generated dependencies file for romulus_sync.
# This may be replaced when dependencies are built.
