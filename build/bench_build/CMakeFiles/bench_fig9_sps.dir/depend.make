# Empty dependencies file for bench_fig9_sps.
# This may be replaced when dependencies are built.
