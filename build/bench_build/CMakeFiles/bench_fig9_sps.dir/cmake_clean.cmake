file(REMOVE_RECURSE
  "../bench/bench_fig9_sps"
  "../bench/bench_fig9_sps.pdb"
  "CMakeFiles/bench_fig9_sps.dir/bench_fig9_sps.cpp.o"
  "CMakeFiles/bench_fig9_sps.dir/bench_fig9_sps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
