file(REMOVE_RECURSE
  "../bench/bench_fig5_hashmap"
  "../bench/bench_fig5_hashmap.pdb"
  "CMakeFiles/bench_fig5_hashmap.dir/bench_fig5_hashmap.cpp.o"
  "CMakeFiles/bench_fig5_hashmap.dir/bench_fig5_hashmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
