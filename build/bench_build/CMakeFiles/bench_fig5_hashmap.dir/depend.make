# Empty dependencies file for bench_fig5_hashmap.
# This may be replaced when dependencies are built.
