file(REMOVE_RECURSE
  "../bench/bench_ablation_log"
  "../bench/bench_ablation_log.pdb"
  "CMakeFiles/bench_ablation_log.dir/bench_ablation_log.cpp.o"
  "CMakeFiles/bench_ablation_log.dir/bench_ablation_log.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
