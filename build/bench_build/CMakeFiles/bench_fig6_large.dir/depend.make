# Empty dependencies file for bench_fig6_large.
# This may be replaced when dependencies are built.
