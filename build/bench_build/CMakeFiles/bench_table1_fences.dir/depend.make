# Empty dependencies file for bench_table1_fences.
# This may be replaced when dependencies are built.
