file(REMOVE_RECURSE
  "../bench/bench_table1_fences"
  "../bench/bench_table1_fences.pdb"
  "CMakeFiles/bench_table1_fences.dir/bench_table1_fences.cpp.o"
  "CMakeFiles/bench_table1_fences.dir/bench_table1_fences.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
