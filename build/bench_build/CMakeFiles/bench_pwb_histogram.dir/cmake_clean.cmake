file(REMOVE_RECURSE
  "../bench/bench_pwb_histogram"
  "../bench/bench_pwb_histogram.pdb"
  "CMakeFiles/bench_pwb_histogram.dir/bench_pwb_histogram.cpp.o"
  "CMakeFiles/bench_pwb_histogram.dir/bench_pwb_histogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pwb_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
