# Empty dependencies file for bench_flat_combining.
# This may be replaced when dependencies are built.
