file(REMOVE_RECURSE
  "../bench/bench_flat_combining"
  "../bench/bench_flat_combining.pdb"
  "CMakeFiles/bench_flat_combining.dir/bench_flat_combining.cpp.o"
  "CMakeFiles/bench_flat_combining.dir/bench_flat_combining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flat_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
