# Empty dependencies file for bench_fig7_readers.
# This may be replaced when dependencies are built.
