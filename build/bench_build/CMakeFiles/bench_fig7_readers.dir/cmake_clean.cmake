file(REMOVE_RECURSE
  "../bench/bench_fig7_readers"
  "../bench/bench_fig7_readers.pdb"
  "CMakeFiles/bench_fig7_readers.dir/bench_fig7_readers.cpp.o"
  "CMakeFiles/bench_fig7_readers.dir/bench_fig7_readers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
