file(REMOVE_RECURSE
  "../bench/bench_fig8_db"
  "../bench/bench_fig8_db.pdb"
  "CMakeFiles/bench_fig8_db.dir/bench_fig8_db.cpp.o"
  "CMakeFiles/bench_fig8_db.dir/bench_fig8_db.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
