file(REMOVE_RECURSE
  "CMakeFiles/kvstore_cli.dir/kvstore_cli.cpp.o"
  "CMakeFiles/kvstore_cli.dir/kvstore_cli.cpp.o.d"
  "kvstore_cli"
  "kvstore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
