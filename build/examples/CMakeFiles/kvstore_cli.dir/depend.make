# Empty dependencies file for kvstore_cli.
# This may be replaced when dependencies are built.
