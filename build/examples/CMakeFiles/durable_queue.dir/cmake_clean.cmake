file(REMOVE_RECURSE
  "CMakeFiles/durable_queue.dir/durable_queue.cpp.o"
  "CMakeFiles/durable_queue.dir/durable_queue.cpp.o.d"
  "durable_queue"
  "durable_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
