# Empty compiler generated dependencies file for heap_inspect.
# This may be replaced when dependencies are built.
