file(REMOVE_RECURSE
  "CMakeFiles/heap_inspect.dir/heap_inspect.cpp.o"
  "CMakeFiles/heap_inspect.dir/heap_inspect.cpp.o.d"
  "heap_inspect"
  "heap_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
