// E7 — §6.5 recovery cost: time for the Romulus recovery procedure as a
// function of the live data size, plus raw region-copy scaling.
//
// Paper numbers for calibration: ~114 us for a 1,000-pair hash map, ~127 ms
// for 1,000,000 pairs, ~1 s for a full 1 GB region (with CLFLUSH); recovery
// cost grows linearly with the used region, dominated by the pwb calls.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "ds/hash_map.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

using E = RomulusLog;

double time_recover_ms(uint64_t nkeys, size_t heap) {
    Session<E> session(heap, "recovery");
    using Map = ds::HashMap<E, uint64_t>;
    Map* map = nullptr;
    E::updateTx([&] { map = E::template tmNew<Map>(nkeys / 2); });
    prepopulate<E>(nkeys, [&](uint64_t i) { map->add(i); });

    // Force the worst recovery path: pretend we crashed in MUT so recovery
    // copies back over the entire used main region.
    E::begin_transaction();  // state = MUT, durable
    const auto t0 = std::chrono::steady_clock::now();
    E::recover();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    E::crash_reset_for_tests();  // recover() ended the tx behind our back
    std::printf("%10lluK keys  used=%6.1f MB   recovery = %10.3f ms\n",
                (unsigned long long)(nkeys / 1000),
                double(E::used_bytes()) / (1 << 20), ms);
    return ms;
}

void time_raw_copy(size_t mb) {
    const size_t bytes = mb << 20;
    Session<E> session(bytes * 2 + (8u << 20), "recovery_raw");
    // Touch the whole main region so used_size covers it.
    E::updateTx([&] {
        uint8_t* buf = static_cast<uint8_t*>(
            E::alloc_bytes(bytes - (1u << 20)));
        E::zero_range(buf, bytes - (1u << 20));
    });
    E::begin_transaction();
    const auto t0 = std::chrono::steady_clock::now();
    E::recover();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    E::crash_reset_for_tests();
    std::printf("%10zu MB region            recovery = %10.3f ms\n", mb, ms);
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);  // as in the paper's §6.5
    print_header("Recovery cost (RomulusLog, CLFLUSH)");
    time_recover_ms(1'000, 64u << 20);
    time_recover_ms(10'000, 64u << 20);
    time_recover_ms(100'000, 512u << 20);
    if (const char* e = std::getenv("ROMULUS_BENCH_1M"); e && *e == '1')
        time_recover_ms(1'000'000, size_t{4} << 30);

    std::printf("\nRaw region recovery (copy + pwb per line):\n");
    time_raw_copy(64);
    time_raw_copy(256);
    if (const char* e = std::getenv("ROMULUS_BENCH_1M"); e && *e == '1')
        time_raw_copy(1024);
    std::printf(
        "\nExpected: linear growth with used bytes, dominated by pwb\n"
        "(CLFLUSH) cost, matching §6.5 (~1 s/GB on the paper's machine).\n");
    return 0;
}
