// Microbenchmarks of the substrate primitives (google-benchmark): the raw
// cost of pwb under each flush backend, fence costs, persist<T> store/load
// interposition overhead, allocator throughput and the synchronization
// constructs.  These calibrate the figure benches: e.g. §6.2's observation
// that with CLFLUSH "performance is mainly dominated by the number of pwb
// instructions per transaction".
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sync/crwwp.hpp"
#include "sync/left_right.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

// One shared heap for the whole binary (benchmark re-runs each case).
struct GlobalHeap {
    GlobalHeap() {
        std::remove(bench_heap_path("prims").c_str());
        RomulusLog::init(64u << 20, bench_heap_path("prims"));
        RomulusLog::updateTx([&] {
            buf = static_cast<uint8_t*>(RomulusLog::alloc_bytes(1 << 20));
        });
    }
    ~GlobalHeap() { RomulusLog::destroy(); }
    uint8_t* buf = nullptr;
};
GlobalHeap& heap() {
    static GlobalHeap h;
    return h;
}

void BM_pwb(benchmark::State& state, pmem::Profile prof) {
    pmem::set_profile(prof);
    uint8_t* buf = heap().buf;
    uint64_t line = 0;
    for (auto _ : state) {
        buf[line * 64] = uint8_t(line);
        pmem::pwb(buf + line * 64);
        pmem::pfence();
        line = (line + 1) % 1024;
    }
    pmem::set_profile(pmem::Profile::NOP);
}

void BM_persist_store(benchmark::State& state) {
    pmem::set_profile(pmem::Profile::NOP);
    using PU = RomulusLog::p<uint64_t>;
    PU* arr = reinterpret_cast<PU*>(heap().buf);
    uint64_t i = 0;
    RomulusLog::updateTx([&] {
        for (auto _ : state) {
            arr[i % 512] = i;
            ++i;
        }
    });
}

void BM_persist_load(benchmark::State& state) {
    pmem::set_profile(pmem::Profile::NOP);
    using PU = RomulusLog::p<uint64_t>;
    PU* arr = reinterpret_cast<PU*>(heap().buf);
    uint64_t i = 0, sink = 0;
    for (auto _ : state) {
        sink += arr[i % 512].pload();
        ++i;
    }
    benchmark::DoNotOptimize(sink);
}

void BM_alloc_free(benchmark::State& state) {
    pmem::set_profile(pmem::Profile::NOP);
    const size_t sz = state.range(0);
    for (auto _ : state) {
        RomulusLog::updateTx([&] {
            void* ptr = RomulusLog::alloc_bytes(sz);
            RomulusLog::free_bytes(ptr);
        });
    }
}

void BM_crwwp_read_lock(benchmark::State& state) {
    static sync::CRWWPLock lock;
    const int t = sync::tid();
    for (auto _ : state) {
        lock.read_lock(t);
        lock.read_unlock(t);
    }
}

void BM_leftright_arrive_depart(benchmark::State& state) {
    static sync::LeftRight lr;
    const int t = sync::tid();
    for (auto _ : state) {
        int vi = lr.arrive(t);
        benchmark::DoNotOptimize(lr.read_region());
        lr.depart(t, vi);
    }
}

/// Raise the thread registry's tid high-water mark to at least `n` by
/// briefly holding n registered threads alive at once.  max_tids() never
/// shrinks, so the writer drain below scans an n-slot indicator even though
/// the threads are gone — the long-lived-process shape (thread pools grown
/// and drained) where the drain's scan cost shows.
void inflate_max_tids(int n) {
    if (sync::max_tids() >= n) return;
    std::atomic<int> arrived{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    ts.reserve(n);
    for (int i = 0; i < n; ++i) {
        ts.emplace_back([&] {
            (void)sync::tid();
            arrived.fetch_add(1);
            while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        });
    }
    while (arrived.load() < n) std::this_thread::yield();
    go.store(true, std::memory_order_release);
    for (auto& t : ts) t.join();
}

/// Writer acquire/release over an inflated (96-slot) but empty indicator:
/// the unavoidable one-pass O(max_tids) scan every drain pays.
void BM_crwwp_write_drain_empty(benchmark::State& state) {
    static sync::CRWWPLock lock;
    inflate_max_tids(96);
    for (auto _ : state) {
        lock.write_lock();
        lock.write_unlock();
    }
}

/// Same drain with one reader churning on a high slot (95 of 96): each spin
/// iteration of the resumable drain re-checks only from the busy slot
/// onward, where the old from-scratch is_empty() rescan walked all 95
/// leading empty slots per spin.
void BM_crwwp_write_drain_reader_churn(benchmark::State& state) {
    static sync::CRWWPLock lock;
    inflate_max_tids(96);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            lock.read_lock(95);
            lock.read_unlock(95);
        }
    });
    for (auto _ : state) {
        lock.write_lock();
        lock.write_unlock();
    }
    stop.store(true);
    reader.join();
}

void BM_empty_update_tx(benchmark::State& state) {
    pmem::set_profile(pmem::Profile::NOP);
    for (auto _ : state) RomulusLog::updateTx([&] {});
}

void BM_read_tx(benchmark::State& state) {
    pmem::set_profile(pmem::Profile::NOP);
    for (auto _ : state) RomulusLog::readTx([&] {});
}

}  // namespace

BENCHMARK_CAPTURE(BM_pwb, nop, pmem::Profile::NOP);
BENCHMARK_CAPTURE(BM_pwb, clflush, pmem::Profile::CLFLUSH);
BENCHMARK_CAPTURE(BM_pwb, clflushopt, pmem::Profile::CLFLUSHOPT);
BENCHMARK_CAPTURE(BM_pwb, clwb, pmem::Profile::CLWB);
BENCHMARK_CAPTURE(BM_pwb, stt, pmem::Profile::STT);
BENCHMARK_CAPTURE(BM_pwb, pcm, pmem::Profile::PCM);
BENCHMARK(BM_persist_store);
BENCHMARK(BM_persist_load);
BENCHMARK(BM_alloc_free)->Arg(48)->Arg(256)->Arg(4096);
BENCHMARK(BM_crwwp_read_lock);
BENCHMARK(BM_leftright_arrive_depart);
BENCHMARK(BM_empty_update_tx);
BENCHMARK(BM_read_tx);
// Registered last: inflate_max_tids permanently raises the registry
// high-water, which would slow every later drain in this binary.
BENCHMARK(BM_crwwp_write_drain_empty);
BENCHMARK(BM_crwwp_write_drain_reader_churn);

int main(int argc, char** argv) {
    heap();  // initialise before benchmark touches anything
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
