// Ablation — flat-combining aggregation (§5.2/§5.3): with several threads
// announcing updates, one combiner executes whole batches inside a single
// durable transaction, so the average number of persistence fences *per
// mutation* drops below the worst-case 4 ("the average number of persistent
// fences per mutation can be smaller than 4 because several updates are
// aggregated within a single update transaction").
#include <cstdio>

#include "bench_common.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

template <typename E>
void run(int nthreads) {
    Session<E> session(32u << 20, "fc");
    using PU = typename E::template p<uint64_t>;
    E::updateTx([&] {
        auto* c = E::template tmNew<PU>();
        *c = 0u;
        E::put_object(0, c);
    });
    E::reset_combine_stats();

    std::atomic<uint64_t> total_fences{0};
    std::atomic<uint64_t> total_ops{0};
    std::vector<std::thread> ts;
    std::atomic<bool> stop{false};
    for (int t = 0; t < nthreads; ++t) {
        ts.emplace_back([&] {
            pmem::reset_tl_stats();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                E::updateTx([&] {
                    *E::template get_object<PU>(0) += 1u;
                });
                ++n;
            }
            total_fences.fetch_add(pmem::tl_stats().fences());
            total_ops.fetch_add(n);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(bench_ms()));
    stop.store(true);
    for (auto& t : ts) t.join();

    const auto cs = E::combine_stats();
    std::printf(
        "%-6s %3d thr: %9llu ops, %6.3f fences/op (worst-case 4), "
        "avg batch %5.2f ops/combine\n",
        short_name<E>(), nthreads, (unsigned long long)total_ops.load(),
        double(total_fences.load()) / double(total_ops.load()), cs.avg_batch());
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    // Single-counter increments would commit via the §4.11 stripe fast
    // path and never announce; this bench measures the combiner.
    romulus::update_config().fastpath = false;
    print_header("Flat-combining fence amortisation (Section 5.3)");
    for (int nt : bench_threads()) {
        run<RomulusLog>(nt);
        run<RomulusLR>(nt);
    }
    std::printf(
        "\nWith >1 announcer the combiner executes several mutations inside\n"
        "one begin/end pair: fences per mutation fall below 4.\n");
    return 0;
}
