// E1 — Table 1: persistence-fence count, persistent log footprint,
// interposition type and write amplification per transaction, measured
// empirically for each PTM on transactions of N word-sized stores.
//
// Paper's claims to check (Table 1):
//   Romulus variants: 4 fences/tx regardless of N, ~100% write
//   amplification (user bytes + the back-region replica), store-only
//   interposition, no persistent log.
//   Undo log: fences grow linearly with N, >= 300% write amplification.
//   Redo log: ~constant fences (4-ish), load+store interposition, log
//   amplification of 2 words per stored word (Mnemosyne itself used 8).
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

template <typename E>
const char* interposition_kind() {
    if constexpr (std::is_same_v<E, baselines::RedoLogPTM>)
        return "loads+stores";
    else
        return "stores";
}

template <typename E>
void measure(int nstores) {
    Session<E> session(32u << 20, "table1");
    using PU = typename E::template p<uint64_t>;

    PU* arr = nullptr;
    E::updateTx(
        [&] { arr = static_cast<PU*>(E::alloc_bytes(sizeof(PU) * 4096)); });
    // Initialise in batches (bounded write sets for the redo-log baseline).
    for (int base = 0; base < 4096; base += 512) {
        E::updateTx([&] {
            for (int i = base; i < base + 512; ++i) arr[i] = 0u;
        });
    }

    // Warmup (steady allocator / log state), then measure a batch.
    constexpr int kTxs = 64;
    uint64_t x = 0x2545F4914F6CDD1Dull;
    auto run_txs = [&] {
        for (int t = 0; t < kTxs; ++t) {
            E::updateTx([&] {
                for (int i = 0; i < nstores; ++i) {
                    x ^= x << 13, x ^= x >> 7, x ^= x << 17;
                    // Spread stores over distinct cache lines (worst case).
                    arr[(x % 512) * 8] = x;
                }
            });
        }
    };
    run_txs();
    pmem::reset_tl_stats();
    run_txs();
    pmem::Stats st = pmem::tl_stats();

    const double fences = double(st.fences()) / kTxs;
    const double pwbs = double(st.pwb) / kTxs;
    const double user_bytes = double(nstores) * 8;
    const double wa = double(st.nvm_bytes) / kTxs / user_bytes;
    std::printf("%-10s %8d %10.1f %10.1f %13.0f%% %-13s\n", short_name<E>(),
                nstores, fences, pwbs, wa * 100.0, interposition_kind<E>());
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::NOP);  // count events, not pay for them
    // Table 1 is the paper's *slow-path* cost model; the §4.11 stripe fast
    // path would commit the small transactions with its own fence schedule.
    romulus::update_config().fastpath = false;
    print_header(
        "Table 1: fences, pwbs, write amplification per transaction");
    std::printf("%-10s %8s %10s %10s %14s %-13s\n", "PTM", "stores/tx",
                "fences/tx", "pwbs/tx", "write-amp", "interposition");
    for (int nstores : {1, 4, 16, 64, 256}) {
        for_each_ptm([&]<typename E>() { measure<E>(nstores); });
        std::printf("\n");
    }
    std::printf(
        "Note: write-amp counts every NVM byte written (including the\n"
        "back-region replica for Romulus and the logs for the baselines)\n"
        "per user byte stored.  Romulus' paper-reported 100%% corresponds to\n"
        "the replica copy; cache-line-granular flushing adds the rest.\n");
    return 0;
}
