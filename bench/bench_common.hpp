// Shared infrastructure for the figure/table benchmarks (DESIGN.md §3).
//
// Environment knobs (all optional) so the same binaries run as a quick
// smoke pass here and as a full paper-scale sweep on a big machine:
//   ROMULUS_BENCH_MS       per-data-point measurement window (default 150)
//   ROMULUS_BENCH_THREADS  comma list of thread counts  (default "1,2,4")
//   ROMULUS_BENCH_SCALE    multiplies op counts of fixed-size benches (def 1)
//   ROMULUS_HEAP_MB        persistent heap size for each PTM
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "baselines/redolog.hpp"
#include "baselines/undolog.hpp"
#include "core/romulus.hpp"
#include "pmem/flush.hpp"
#include "pmem/stats.hpp"

namespace romulus::bench {

inline int bench_ms() {
    if (const char* e = std::getenv("ROMULUS_BENCH_MS")) return std::atoi(e);
    return 150;
}

inline double bench_scale() {
    if (const char* e = std::getenv("ROMULUS_BENCH_SCALE")) return std::atof(e);
    return 1.0;
}

inline std::vector<int> bench_threads() {
    std::vector<int> out;
    const char* e = std::getenv("ROMULUS_BENCH_THREADS");
    std::string s = e ? e : "1,2,4";
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) comma = s.size();
        out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
    }
    return out;
}

inline std::string bench_heap_path(const std::string& tag) {
    return pmem::default_pmem_dir() + "/romulus_bench_" + tag + ".heap";
}

/// Fresh heap for engine E, destroyed at scope exit.
template <typename E>
struct Session {
    explicit Session(size_t bytes, const std::string& tag)
        : path(bench_heap_path(tag)) {
        std::remove(path.c_str());
        E::init(bytes, path);
    }
    /// Sharded variant (engines with an init(bytes, file, shards) overload).
    Session(size_t bytes, const std::string& tag, unsigned shards)
        : path(bench_heap_path(tag)) {
        std::remove(path.c_str());
        E::init(bytes, path, shards);
    }
    ~Session() {
        if (E::initialized()) E::destroy();
    }
    std::string path;
};

/// Measured multi-threaded throughput: each thread runs op(thread_idx, rng)
/// in a loop for `ms` milliseconds; returns total operations per second.
template <typename OpFn>
double run_throughput(int nthreads, int ms, OpFn&& op) {
    std::atomic<bool> start{false}, stop{false};
    std::atomic<uint64_t> total{0};
    std::vector<std::thread> ts;
    ts.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(0x9E3779B9u + t);
            while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                op(t, rng);
                ++n;
            }
            total.fetch_add(n);
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : ts) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(total.load()) / secs;
}

/// Run `f.template operator()<PTM>()` for each of the five PTMs of the
/// evaluation.  Use with a generic lambda: for_each_ptm([]<typename E>() {...});
template <typename F>
void for_each_ptm(F&& f) {
    f.template operator()<RomulusNL>();
    f.template operator()<RomulusLog>();
    f.template operator()<RomulusLR>();
    f.template operator()<baselines::UndoLogPTM>();
    f.template operator()<baselines::RedoLogPTM>();
}

/// Short display names matching the paper's figure legends.
template <typename E>
const char* short_name() {
    if constexpr (std::is_same_v<E, RomulusNL>) return "Rom";
    else if constexpr (std::is_same_v<E, RomulusLog>) return "RomL";
    else if constexpr (std::is_same_v<E, RomulusLR>) return "RomLR";
    else if constexpr (std::is_same_v<E, baselines::UndoLogPTM>) return "PMDK*";
    else return "Mne*";
    // * our from-scratch analogs of PMDK / Mnemosyne (DESIGN.md §1)
}

/// Prepopulate helper: runs `insert(i)` for keys [0,n) in batches wrapped in
/// one enclosing transaction each — essential for RomulusNL (one back-copy
/// per batch, not per insert) and required for RedoLogPTM (bounded write
/// sets).
template <typename E, typename InsertFn>
void prepopulate(uint64_t n, InsertFn&& insert, uint64_t batch = 256) {
    for (uint64_t base = 0; base < n; base += batch) {
        const uint64_t hi = std::min(n, base + batch);
        E::updateTx([&] {
            for (uint64_t i = base; i < hi; ++i) insert(i);
        });
    }
}

inline void print_header(const char* title) {
    std::printf("\n=== %s ===\n", title);
}

/// Minimal streaming writer for the ROMULUS_BENCH_JSON artifacts the CI
/// smoke jobs upload: a single top-level object of scalars plus flat arrays
/// of records.  Shared by bench_commit_path and bench_sharding so the two
/// artifacts stay structurally uniform.
///
///     auto json = JsonEmitter::from_env("sharding");
///     json.scalar("profile", pmem::profile_name(...));
///     json.begin_array("sweep");
///     json.record(JsonEmitter::fields(
///         {JsonEmitter::num("threads", t), JsonEmitter::num("x", v, "%.2f")}));
///     // destructor closes the array, the object and the file
///
/// A disabled emitter (env unset / file unwritable) turns every call into a
/// no-op, so benches emit unconditionally and let the env decide.
class JsonEmitter {
  public:
    /// Emitter on $ROMULUS_BENCH_JSON, or a disabled one when unset.
    static JsonEmitter from_env(const char* bench_name) {
        return JsonEmitter(std::getenv("ROMULUS_BENCH_JSON"), bench_name);
    }

    JsonEmitter(const char* path, const char* bench_name) {
        if (path == nullptr) return;
        f_ = std::fopen(path, "w");
        if (f_ == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path);
            return;
        }
        path_ = path;
        std::fprintf(f_, "{\n  \"bench\": \"%s\"", bench_name);
    }
    JsonEmitter(JsonEmitter&& o) noexcept
        : f_(o.f_), path_(std::move(o.path_)), in_array_(o.in_array_),
          first_elem_(o.first_elem_) {
        o.f_ = nullptr;
    }
    JsonEmitter(const JsonEmitter&) = delete;
    JsonEmitter& operator=(const JsonEmitter&) = delete;
    ~JsonEmitter() {
        if (f_ == nullptr) return;
        if (in_array_) std::fprintf(f_, "\n  ]");
        std::fprintf(f_, "\n}\n");
        std::fclose(f_);
        std::printf("\nJSON written to %s\n", path_.c_str());
    }

    explicit operator bool() const { return f_ != nullptr; }

    void scalar(const char* key, const char* value) {
        if (f_ == nullptr) return;
        close_array();
        std::fprintf(f_, ",\n  \"%s\": \"%s\"", key, value);
    }
    void scalar(const char* key, double value, const char* fmt = "%g") {
        if (f_ == nullptr) return;
        close_array();
        std::fprintf(f_, ",\n  \"%s\": ", key);
        std::fprintf(f_, fmt, value);
    }

    void begin_array(const char* key) {
        if (f_ == nullptr) return;
        close_array();
        std::fprintf(f_, ",\n  \"%s\": [", key);
        in_array_ = true;
        first_elem_ = true;
    }
    /// One record (already-joined `"k": v` fields) in the open array.
    void record(const std::string& fields) {
        if (f_ == nullptr || !in_array_) return;
        std::fprintf(f_, "%s\n    {%s}", first_elem_ ? "" : ",",
                     fields.c_str());
        first_elem_ = false;
    }

    // --- field builders ----------------------------------------------------
    static std::string num(const char* key, uint64_t v) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "\"%s\": %llu", key,
                      static_cast<unsigned long long>(v));
        return buf;
    }
    static std::string num(const char* key, double v, const char* fmt = "%g") {
        char val[48];
        std::snprintf(val, sizeof val, fmt, v);
        char buf[96];
        std::snprintf(buf, sizeof buf, "\"%s\": %s", key, val);
        return buf;
    }
    static std::string str(const char* key, const char* v) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "\"%s\": \"%s\"", key, v);
        return buf;
    }
    static std::string fields(std::initializer_list<std::string> fs) {
        std::string out;
        for (const auto& f : fs) {
            if (!out.empty()) out += ", ";
            out += f;
        }
        return out;
    }

  private:
    void close_array() {
        if (in_array_) std::fprintf(f_, "\n  ]");
        in_array_ = false;
    }

    FILE* f_ = nullptr;
    std::string path_;
    bool in_array_ = false;
    bool first_elem_ = true;
};

/// Human-readable ops/sec.
inline std::string fmt_rate(double ops) {
    char buf[64];
    if (ops >= 1e6) {
        std::snprintf(buf, sizeof buf, "%8.2fM", ops / 1e6);
    } else if (ops >= 1e3) {
        std::snprintf(buf, sizeof buf, "%8.2fk", ops / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%8.1f ", ops);
    }
    return buf;
}

}  // namespace romulus::bench
