// E4 — Figure 6: resizable hash map with 10K / 100K / 1M keys, 100% update
// operations, sweeping threads.
//
// Paper shape to check: all log-based implementations hold their throughput
// as the data set grows; the basic Romulus (full main->back copy per
// transaction) collapses with size — "the only exception is the basic
// Romulus algorithm, which suffers from the data size due to the longer
// copy procedure."
//
// 1M keys needs a multi-GB heap and minutes of prepopulation; enable it
// with ROMULUS_BENCH_1M=1 (the 10K->100K trend already shows the collapse).
// The redo-log baseline cannot run the largest resize transactions (bounded
// persistent logs) — reported as n/a, mirroring the paper's footnote 2 that
// Mnemosyne "does not support allocation of sufficiently large amounts of
// data" and is omitted from this figure.
#include <cstdio>

#include "bench_common.hpp"
#include "ds/hash_map.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

template <typename E>
void run_size(uint64_t nkeys, size_t heap_bytes) {
    const auto threads = bench_threads();
    std::printf("%-6s %8luK", short_name<E>(), (unsigned long)(nkeys / 1000));
    for (int nt : threads) {
        Session<E> session(heap_bytes, "fig6");
        using Map = ds::HashMap<E, uint64_t>;
        Map* map = nullptr;
        try {
            E::updateTx([&] {
                // Pre-size the bucket array: the paper prepopulates too, and
                // this keeps resize transactions bounded for the baselines.
                map = E::template tmNew<Map>(nkeys / 2);
            });
            prepopulate<E>(nkeys, [&](uint64_t i) { map->add(i); });
        } catch (const std::exception&) {
            std::printf(" %8s ", "n/a");
            continue;
        }
        const double ops =
            run_throughput(nt, bench_ms(), [&](int, std::mt19937_64& rng) {
                const uint64_t k = rng() % nkeys;
                map->remove(k);
                map->add(k);
            });
        std::printf(" %s", fmt_rate(ops).c_str());
        E::updateTx([&] { E::tmDelete(map); });
    }
    std::printf("  TX/s\n");
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    print_header("Figure 6: hash map, 100% updates, growing key counts");
    std::printf("%-6s %9s", "PTM", "keys");
    for (int nt : bench_threads()) std::printf(" %8dthr", nt);
    std::printf("\n");

    std::vector<std::pair<uint64_t, size_t>> sizes = {
        {10'000, 128u << 20}, {100'000, 512u << 20}};
    if (const char* e = std::getenv("ROMULUS_BENCH_1M"); e && *e == '1')
        sizes.push_back({1'000'000, size_t{4} << 30});

    for (auto [nkeys, heap] : sizes) {
        for_each_ptm([&]<typename E>() { run_size<E>(nkeys, heap); });
        std::printf("\n");
    }
    return 0;
}
