// Commit-path overhaul A/B (DESIGN.md §4): the same sequential-write
// transaction driven through the three commit pipelines selectable at
// runtime via pmem::commit_config() —
//
//   legacy     unsorted per-line flush + per-line cached replication
//              (the pre-overhaul path: coalesce off, NT off),
//   coalesce   merged-run flush + merged-run cached replication,
//   coalesce+nt  merged-run flush + non-temporal streaming replication
//              (the default configuration).
//
// Reported per footprint and mode: pwbs/tx, commit latency, merged runs/tx
// and the NT vs cached replica-byte split.  A second section microbenchmarks
// pmem::persist_copy() directly (cached vs streaming) at copy sizes from one
// page to several MB — the full-copy/recovery path of RomulusNL.
//
// Set ROMULUS_BENCH_JSON=<file> to also emit the numbers as JSON (CI smoke
// run uploads this as an artifact).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

struct Mode {
    const char* name;
    bool coalesce;
    size_t nt_threshold;
};

constexpr Mode kModes[] = {
    {"legacy", false, SIZE_MAX},
    {"coalesce", true, SIZE_MAX},
    {"coalesce+nt", true, 4 * pmem::kCacheLineSize},
};

struct TxResult {
    size_t footprint;
    const char* mode;
    double pwbs_per_tx;
    double ns_per_tx;
    double runs_per_tx;
    double nt_frac;  ///< fraction of replica bytes streamed
};

struct CopyResult {
    size_t bytes;
    const char* path;
    double gib_s;
};

/// One timed cell: sequential 8-byte stores over `footprint` bytes per
/// transaction, commit pipeline per `mode`.
TxResult measure_tx(size_t footprint, const Mode& mode) {
    using E = RomulusLog;
    using PU = E::p<uint64_t>;
    Session<E> session(256u << 20, "cpath");
    const size_t words = footprint / sizeof(uint64_t);
    PU* arr = nullptr;
    E::updateTx([&] {
        // Ballast keeps used_size/2 above the footprint so the range log
        // never degrades to full-copy mode: this bench isolates the
        // log-consuming commit pipeline.
        (void)E::alloc_bytes(4 * footprint + (64u << 10));
        arr = static_cast<PU*>(E::alloc_bytes(footprint));
        for (size_t i = 0; i < words; ++i) arr[i] = 0u;
    });

    pmem::commit_config().coalesce = mode.coalesce;
    pmem::commit_config().nt_threshold = mode.nt_threshold;

    auto run_tx = [&](uint64_t seed) {
        E::updateTx([&] {
            for (size_t i = 0; i < words; ++i) arr[i] = seed + i;
        });
    };
    run_tx(1);  // warm-up under the selected pipeline

    pmem::reset_tl_stats();
    pmem::reset_tl_commit_stats();
    const double budget_ms = bench_ms() / 4.0;
    const auto t0 = std::chrono::steady_clock::now();
    uint64_t txs = 0;
    double elapsed_ns = 0;
    do {
        run_tx(txs);
        ++txs;
        elapsed_ns = std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    } while (txs < 32 || elapsed_ns < budget_ms * 1e6);

    const auto& st = pmem::tl_stats();
    const auto& cs = pmem::tl_commit_stats();
    const double repl = double(cs.nt_bytes + cs.cached_bytes);
    return {footprint,
            mode.name,
            double(st.pwb) / double(txs),
            elapsed_ns / double(txs),
            cs.commits ? double(cs.runs) / double(cs.commits) : 0.0,
            repl > 0 ? double(cs.nt_bytes) / repl : 0.0};
}

void tx_sweep(std::vector<TxResult>& out) {
    std::printf("\n-- RomulusLog sequential-write tx: pwbs + latency by pipeline --\n");
    std::printf("  %-9s %-12s %12s %12s %9s %8s\n", "footprint", "mode",
                "pwbs/tx", "ns/tx", "runs/tx", "nt%");
    for (size_t footprint : {256u, 1024u, 8192u, 65536u}) {
        for (const Mode& mode : kModes) {
            TxResult r = measure_tx(footprint, mode);
            std::printf("  %-9zu %-12s %12.1f %12.0f %9.1f %7.0f%%\n",
                        r.footprint, r.mode, r.pwbs_per_tx, r.ns_per_tx,
                        r.runs_per_tx, r.nt_frac * 100.0);
            out.push_back(r);
        }
    }
}

/// persist_copy directly: the replication/recovery substrate, cached
/// (below-threshold) vs streaming (above-threshold) at each size.
void copy_sweep(std::vector<CopyResult>& out) {
    std::printf("\n-- persist_copy: cached vs non-temporal streaming --\n");
    std::printf("  %-10s %14s %14s\n", "bytes", "cached GiB/s", "nt GiB/s");
    const size_t kMax = 4u << 20;
    std::vector<uint8_t> src(kMax, 0xA5);
    // Heap-backed 64-aligned destination, far larger than any cache.
    std::vector<uint8_t> dst_store(kMax + 64);
    uint8_t* dst = dst_store.data() +
                   (64 - reinterpret_cast<uintptr_t>(dst_store.data()) % 64) % 64;
    for (size_t bytes : {4096u, 65536u, 1048576u, 4194304u}) {
        double rates[2];
        for (int nt = 0; nt < 2; ++nt) {
            pmem::commit_config().nt_threshold = nt ? 1 : SIZE_MAX;
            pmem::persist_copy(dst, src.data(), bytes);  // warm-up
            const double budget_ms = bench_ms() / 8.0;
            const auto t0 = std::chrono::steady_clock::now();
            uint64_t reps = 0;
            double ns = 0;
            do {
                pmem::persist_copy(dst, src.data(), bytes);
                ++reps;
                ns = std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
            } while (reps < 8 || ns < budget_ms * 1e6);
            rates[nt] = double(bytes) * double(reps) / ns * 1e9 /
                        (1024.0 * 1024.0 * 1024.0);
            out.push_back({bytes, nt ? "nt" : "cached", rates[nt]});
        }
        std::printf("  %-10zu %14.2f %14.2f\n", bytes, rates[0], rates[1]);
    }
    pmem::commit_config() = pmem::CommitConfig{};
}

void write_json(const std::vector<TxResult>& tx,
                const std::vector<CopyResult>& copy) {
    auto json = JsonEmitter::from_env("commit_path");
    json.scalar("profile", pmem::profile_name(pmem::effective_profile()));
    json.begin_array("tx_sweep");
    for (const auto& r : tx) {
        json.record(JsonEmitter::fields(
            {JsonEmitter::num("footprint", uint64_t{r.footprint}),
             JsonEmitter::str("mode", r.mode),
             JsonEmitter::num("pwbs_per_tx", r.pwbs_per_tx, "%.2f"),
             JsonEmitter::num("ns_per_tx", r.ns_per_tx, "%.0f"),
             JsonEmitter::num("runs_per_tx", r.runs_per_tx, "%.2f"),
             JsonEmitter::num("nt_frac", r.nt_frac, "%.3f")}));
    }
    json.begin_array("persist_copy");
    for (const auto& r : copy) {
        json.record(JsonEmitter::fields(
            {JsonEmitter::num("bytes", uint64_t{r.bytes}),
             JsonEmitter::str("path", r.path),
             JsonEmitter::num("gib_s", r.gib_s, "%.3f")}));
    }
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLWB);  // degrades to clflushopt/clflush
    // This bench isolates the slow-path commit pipeline (coalesce / NT
    // modes); the small footprints would otherwise commit through the
    // §4.11 stripe fast path and measure fp_apply instead.
    romulus::update_config().fastpath = false;
    print_header("Commit-path pipelines: coalesced runs + streaming replication");
    std::printf("flush profile: %s\n",
                pmem::profile_name(pmem::effective_profile()));

    std::vector<TxResult> tx;
    std::vector<CopyResult> copy;
    tx_sweep(tx);
    copy_sweep(copy);

    write_json(tx, copy);
    return 0;
}
