// Stripe-locked speculative update fast path A/B (DESIGN.md §4.11,
// EXPERIMENTS.md E18): small update transactions, fast path on vs off.
//
//   * disjoint sweep — each thread increments counters on thread-private
//     cache lines, the workload the speculation is built for: commits take
//     only that line's stripe, so N threads commit durably in parallel
//     without ever serializing on the shard writer lock.
//   * conflict sweep — every thread hammers the same line: speculation
//     aborts at acquire time and falls back, so this bounds the tax the
//     fast-path attempt adds to workloads it cannot help.
//
// Engines: the three stripe engines (RomulusNL, RomulusLog, UndoLog*) plus
// RedoLog*, whose native TL2 path is what UpdateConfig::fastpath gates
// there.  RomulusLR is excluded: its updateTx runs remote via flat
// combining and has no speculative path (§4.11).
//
// Set ROMULUS_BENCH_JSON=<file> to emit BENCH_stripe.json for the CI smoke
// job (scripts/bench_trajectory.py gates the stripe schema).
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "core/engine_globals.hpp"

namespace romulus::bench {
namespace {

constexpr size_t kSlotStride = 8;  // uint64_t's per 64-byte line
constexpr int kMaxThreads = 64;

struct UpdateRates {
    double tx_per_sec = 0;
    uint64_t fp_commits = 0;
    uint64_t fp_fallbacks = 0;
};

/// run_throughput plus per-thread CommitStats fast-path deltas (the
/// counters are thread-local, so they must be harvested on each worker).
template <typename OpFn>
UpdateRates run_update_throughput(int nthreads, int ms, OpFn&& op) {
    std::atomic<bool> start{false}, stop{false};
    std::atomic<uint64_t> total{0}, commits{0}, fallbacks{0};
    std::vector<std::thread> ts;
    ts.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t) {
        ts.emplace_back([&, t] {
            const auto& cs = pmem::tl_commit_stats();
            const uint64_t c0 = cs.fastpath_commits;
            const uint64_t f0 = cs.fastpath_fallbacks;
            while (!start.load(std::memory_order_acquire))
                std::this_thread::yield();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                op(t);
                ++n;
            }
            total.fetch_add(n);
            commits.fetch_add(cs.fastpath_commits - c0);
            fallbacks.fetch_add(cs.fastpath_fallbacks - f0);
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : ts) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return {static_cast<double>(total.load()) / secs, commits.load(),
            fallbacks.load()};
}

/// One measured point: nthreads small update transactions, fast path
/// per `fastpath`, each op touching its thread's private line (disjoint)
/// or line 0 (conflict).
template <typename E>
UpdateRates run_updates(int nthreads, bool fastpath, bool disjoint) {
    Session<E> session(64u << 20, "stripe");
    using PU = typename E::template p<uint64_t>;
    PU* slots = nullptr;
    E::updateTx([&] {
        slots = static_cast<PU*>(E::alloc_bytes(kMaxThreads * 64));
        for (int i = 0; i < kMaxThreads; ++i) slots[i * kSlotStride] = 0u;
        E::put_object(0, slots);
    });

    UpdateConfig saved = update_config();
    update_config().fastpath = fastpath;
    UpdateRates r = run_update_throughput(nthreads, bench_ms(), [&](int t) {
        const size_t slot = disjoint ? size_t(t) * kSlotStride : 0;
        E::updateTx(
            [&] { slots[slot] = slots[slot].pload() + 1; });
    });
    update_config() = saved;
    return r;
}

}  // namespace
}  // namespace romulus::bench

int main() {
    using namespace romulus;
    using namespace romulus::bench;
    pmem::set_profile(pmem::Profile::CLFLUSH);
    const auto threads = bench_threads();

    auto json = JsonEmitter::from_env("stripe");
    json.scalar("ms", double(bench_ms()), "%.0f");

    auto sweep = [&](const char* name, bool disjoint) {
        print_header(name);
        std::printf("%-6s %8s %-5s %10s %12s %12s %8s\n", "PTM", "threads",
                    "mode", "tx/s", "fp commits", "fp fallback", "speedup");
        json.begin_array(disjoint ? "disjoint" : "conflict");
        for_each_ptm([&]<typename E>() {
            if constexpr (std::is_same_v<E, RomulusLR>) return;
            for (int nt : threads) {
                double slow_rate = 0;
                for (bool fastpath : {false, true}) {
                    UpdateRates r = run_updates<E>(nt, fastpath, disjoint);
                    const char* mode = fastpath ? "fp" : "slow";
                    const double speedup =
                        fastpath && slow_rate > 0 ? r.tx_per_sec / slow_rate
                                                  : 1.0;
                    if (!fastpath) slow_rate = r.tx_per_sec;
                    std::printf("%-6s %8d %-5s %10.0f %12" PRIu64
                                " %12" PRIu64 " %7.2fx\n",
                                short_name<E>(), nt, mode, r.tx_per_sec,
                                r.fp_commits, r.fp_fallbacks, speedup);
                    json.record(JsonEmitter::fields(
                        {JsonEmitter::str("engine", short_name<E>()),
                         JsonEmitter::num("threads", uint64_t(nt)),
                         JsonEmitter::str("mode", mode),
                         JsonEmitter::num("tx_per_sec", r.tx_per_sec, "%.0f"),
                         JsonEmitter::num("fp_commits", r.fp_commits),
                         JsonEmitter::num("fp_fallbacks", r.fp_fallbacks)}));
                }
            }
        });
    };
    sweep("Disjoint small updates (thread-private lines): fp vs slow",
          /*disjoint=*/true);
    sweep("Conflicting small updates (one shared line): fp tax bound",
          /*disjoint=*/false);
    return 0;
}
