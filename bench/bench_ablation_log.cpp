// E10 (ablation) — design choices behind the volatile range log (§4.7):
//
//  1. Cache-line dedup: transactions that hammer few lines should log (and
//     later flush + replicate) each line once, not once per store.
//  2. Full-copy fallback: past a threshold of logged bytes, one memcpy of
//     the used region beats per-line copying; this is the crossover that
//     makes basic Romulus win the 1,024-swap SPS point in Fig. 9.
//  3. Deferred pwbs: RomulusLog issues one pwb per modified line at commit
//     instead of one per store (the paper: pwbs "were also studied and
//     significantly reduced").
#include <cstdio>

#include "bench_common.hpp"
#include "core/range_log.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

void dedup_effectiveness() {
    std::printf("\n-- RangeLog dedup: stores vs logged lines --\n");
    RangeLog log;
    for (auto [stores, lines_touched] :
         std::vector<std::pair<int, int>>{{64, 1}, {64, 8}, {1024, 16},
                                          {4096, 64}}) {
        log.begin_tx(SIZE_MAX);
        std::mt19937_64 rng(1);
        for (int i = 0; i < stores; ++i) {
            const size_t line = rng() % lines_touched;
            log.add(line * 64 + (rng() % 8) * 8, 8);
        }
        std::printf(
            "  %5d stores over %3d lines -> %4zu log entries (%.1fx dedup)\n",
            stores, lines_touched, log.entries().size(),
            double(stores) / double(log.entries().size()));
    }
}

/// Deferred-pwb effect: same workload, RomulusNL (pwb per store) vs
/// RomulusLog (one pwb per modified line at commit).
void deferred_pwbs() {
    std::printf("\n-- Deferred write-backs: pwbs/tx, 64 stores over 8 lines --\n");
    auto measure = [&]<typename E>() {
        Session<E> session(32u << 20, "ablog");
        using PU = typename E::template p<uint64_t>;
        PU* arr = nullptr;
        E::updateTx(
            [&] { arr = static_cast<PU*>(E::alloc_bytes(sizeof(PU) * 64)); });
        E::updateTx([&] {
            for (int i = 0; i < 64; ++i) arr[i] = 1u;
        });
        pmem::reset_tl_stats();
        E::updateTx([&] {
            for (int rep = 0; rep < 8; ++rep)
                for (int i = 0; i < 8; ++i) arr[i * 8] = uint64_t(rep);
        });
        std::printf("  %-6s: %llu pwbs for 64 stores\n", short_name<E>(),
                    (unsigned long long)pmem::tl_stats().pwb);
    };
    measure.operator()<RomulusNL>();
    measure.operator()<RomulusLog>();
}

/// Full-copy crossover: transactions touching a growing fraction of a fixed
/// 4 MB array — per-line replication wins while sparse, the full memcpy
/// wins once most lines are dirty.
void copy_crossover() {
    std::printf("\n-- Copy strategy crossover (4 MB array, CLFLUSH) --\n");
    std::printf("  %-12s %10s %10s\n", "lines/tx", "RomL TX/s", "Rom TX/s");
    constexpr size_t kWords = (4u << 20) / 8;
    for (size_t touched_lines : {8u, 64u, 512u, 4096u, 32768u}) {
        double rates[2];
        int idx = 0;
        auto measure = [&]<typename E>() {
            Session<E> session(32u << 20, "abcross");
            using PU = typename E::template p<uint64_t>;
            PU* arr = nullptr;
            E::updateTx([&] {
                arr = static_cast<PU*>(E::alloc_bytes(sizeof(PU) * kWords));
            });
            rates[idx++] = run_throughput(
                1, bench_ms() / 2, [&](int, std::mt19937_64& rng) {
                    E::updateTx([&] {
                        for (size_t l = 0; l < touched_lines; ++l)
                            arr[(rng() % (kWords / 8)) * 8] = l;
                    });
                });
        };
        measure.operator()<RomulusLog>();
        measure.operator()<RomulusNL>();
        std::printf("  %-12zu %10.0f %10.0f%s\n", touched_lines, rates[0],
                    rates[1], rates[1] > rates[0] ? "  <- full copy wins" : "");
    }
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::NOP);
    // The range-log ablations measure the slow-path commit pipeline; the
    // §4.11 stripe fast path never consults the RangeLog.
    romulus::update_config().fastpath = false;
    print_header("Ablation: volatile range log design choices (Section 4.7)");
    dedup_effectiveness();
    deferred_pwbs();
    pmem::set_profile(pmem::Profile::CLFLUSH);
    copy_crossover();
    return 0;
}
