// E3 — Figure 5: statically-dimensioned hash map (2,048 buckets, 100 keys),
// update-only, sweeping the VALUE SIZE (8 / 64 / 256 / 1024 bytes), reported
// as speedup relative to the undo-log baseline at 1 thread.
//
// The paper built this fixed map specifically to remove the shared element
// counter that makes the resizable map abort-storm under the redo-log STM;
// here the redo-log baseline should recover reasonable scaling, while
// Romulus again wins outright.  We additionally report the abort count that
// explains the difference (our stats expose what the paper describes in
// prose).
#include <cstdio>

#include "bench_common.hpp"
#include "ds/fixed_hash_map.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

constexpr uint64_t kKeys = 100;
constexpr uint64_t kBuckets = 2048;

template <typename E>
double run_one(int nthreads, uint32_t vsize) {
    Session<E> session(96u << 20, "fig5");
    using Map = ds::FixedHashMap<E, uint64_t>;
    Map* map = nullptr;
    E::updateTx([&] { map = E::template tmNew<Map>(kBuckets); });
    std::vector<uint8_t> init(vsize, 0xAB);
    // Small batches: a 1 KiB value is ~128 redo-log words, and the
    // redo-log baseline's per-thread log is bounded.
    prepopulate<E>(kKeys, [&](uint64_t i) { map->put(i, init.data(), vsize); },
                   /*batch=*/8);

    double ops = run_throughput(nthreads, bench_ms(),
                                [&](int t, std::mt19937_64& rng) {
                                    uint8_t buf[1024];
                                    std::memset(buf, uint8_t(t), vsize);
                                    map->put(rng() % kKeys, buf, vsize);
                                });
    E::updateTx([&] { E::tmDelete(map); });
    return ops;
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    print_header("Figure 5: fixed hash map (2,048 buckets, 100 keys)");
    const auto threads = bench_threads();
    for (uint32_t vsize : {8u, 64u, 256u, 1024u}) {
        std::printf("\n-- value size %u bytes (speedup vs PMDK*@1thr) --\n",
                    vsize);
        const double base = run_one<baselines::UndoLogPTM>(1, vsize);
        std::printf("%-6s", "thr:");
        for (int nt : threads) std::printf(" %6d", nt);
        std::printf("\n");
        for_each_ptm([&]<typename E>() {
            std::printf("%-6s", short_name<E>());
            for (int nt : threads) {
                pmem::reset_tl_stats();
                const double ops = run_one<E>(nt, vsize);
                std::printf(" %6.2f", ops / base);
            }
            std::printf("\n");
        });
    }
    std::printf(
        "\n(The resizable hash map of Fig. 4 adds a shared element counter;\n"
        " see bench_fig4_structures for the abort-collapse it causes on the\n"
        " redo-log STM baseline.)\n");
    return 0;
}
