// Shard-scaling sweep (DESIGN.md sharding section): update throughput of the
// hash-routed ShardedKVStore over RomulusLog as a function of writer threads
// × intra-heap shard count.
//
// Each cell gets a fresh heap formatted with S shards, prepopulated with a
// fixed key space; threads then overwrite random keys with same-size values
// (the in-place store path — no allocator traffic), so every operation is a
// full durable update transaction on the key's shard.  S=1 is the paper's
// single-writer engine: its flat-combining lock serialises all writers, so
// throughput is flat in the thread count.  With S shards, writers on
// different shards hold different C-RW-WP locks and commit in parallel — the
// multi-writer axis this PR adds.
//
// Environment: the usual ROMULUS_BENCH_* knobs (bench_common.hpp); threads
// default to 1,2,4,8 here (the interesting range for writer scaling).
// Set ROMULUS_BENCH_JSON=<file> to emit the sweep as JSON (CI uploads it as
// the BENCH_sharding.json artifact).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "db/sharded_kvstore.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

constexpr uint64_t kKeySpace = 4096;
constexpr size_t kValueBytes = 64;

std::string key_of(uint64_t i) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "key%06llu",
                  static_cast<unsigned long long>(i));
    return buf;
}

struct Cell {
    int threads;
    unsigned shards;
    double puts_per_sec;
    int max_concurrent_writers;
};

Cell measure(int nthreads, unsigned shards) {
    using E = RomulusLog;
    Session<E> session(256u << 20, "sharding", shards);
    db::ShardedKVStore<E> store(/*root_idx=*/0);

    const std::string value(kValueBytes, 'v');
    for (uint64_t i = 0; i < kKeySpace; ++i) store.put(key_of(i), value);

    // Writer-parallelism witness: the body below runs inside the shard's
    // writer critical section, so the high-water of `in_cs` is the number of
    // update transactions genuinely in flight at once.  S=1 pins it at 1 by
    // construction; with S shards it reaches min(threads, shards) — even on
    // a single-core host, where timeslicing interleaves the critical
    // sections but wall-clock throughput cannot exceed 1x.
    std::atomic<int> in_cs{0}, max_cs{0};
    const double rate = run_throughput(nthreads, bench_ms(), [&](int, auto& rng) {
        const std::string key = key_of(rng() % kKeySpace);
        const unsigned sd = store.shard_of(key);
        E::updateTx(sd, [&] {
            const int c = in_cs.fetch_add(1, std::memory_order_relaxed) + 1;
            int hi = max_cs.load(std::memory_order_relaxed);
            while (c > hi && !max_cs.compare_exchange_weak(hi, c)) {}
            store.store(sd)->put(key, value);  // nests flat in this tx
            in_cs.fetch_sub(1, std::memory_order_relaxed);
        });
    });
    return {nthreads, shards, rate, max_cs.load()};
}

/// Pre-PR-shaped baseline: a plain KVStore driven through the default
/// (shard-0) API, exactly the code path the unsharded engine ran.  The S=1
/// column above must stay within noise of this (the "no regression at S=1"
/// criterion); the delta between the two is the ShardedKVStore routing cost.
double measure_direct(int nthreads) {
    using E = RomulusLog;
    Session<E> session(256u << 20, "sharding", 1u);
    db::KVStore<E>* kv = nullptr;
    E::updateTx([&] {
        kv = E::tmNew<db::KVStore<E>>(1024);
        E::put_object(0, kv);
    });
    const std::string value(kValueBytes, 'v');
    for (uint64_t i = 0; i < kKeySpace; ++i) kv->put(key_of(i), value);
    return run_throughput(nthreads, bench_ms(), [&](int, auto& rng) {
        kv->put(key_of(rng() % kKeySpace), value);
    });
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLWB);  // degrades to clflushopt/clflush
    // This bench gauges per-shard *writer-lock* scaling
    // (max_concurrent_writers); the §4.11 stripe fast path bypasses that
    // lock for the small in-place overwrites it issues, so pin it off.
    romulus::update_config().fastpath = false;
    print_header("Sharded RomulusLog: KV update throughput, threads x shards");
    std::printf("flush profile: %s\n",
                pmem::profile_name(pmem::effective_profile()));
    std::printf("%llu keys, %zu-byte values, overwrite-only (in-place path)\n",
                static_cast<unsigned long long>(kKeySpace), kValueBytes);

    std::vector<int> threads = bench_threads();
    if (std::getenv("ROMULUS_BENCH_THREADS") == nullptr)
        threads = {1, 2, 4, 8};  // writer-scaling range
    const std::vector<unsigned> shard_counts = {1, 4, 16};

    std::printf("\n  (cell: puts/s, [w] = max writers in flight at once)\n");
    std::printf("  %-8s", "threads");
    for (unsigned s : shard_counts) std::printf("  S=%-13u", s);
    std::printf("\n");

    std::vector<Cell> sweep;
    for (int t : threads) {
        std::printf("  %-8d", t);
        for (unsigned s : shard_counts) {
            Cell c = measure(t, s);
            std::printf("  %s [%d]", fmt_rate(c.puts_per_sec).c_str(),
                        c.max_concurrent_writers);
            std::fflush(stdout);
            sweep.push_back(c);
        }
        std::printf("\n");
    }
    std::printf("\n(%u hardware threads on this host: wall-clock scaling "
                "needs cores;\n the [w] witness shows commit parallelism "
                "regardless of core count)\n",
                std::thread::hardware_concurrency());

    std::printf("\n  direct KVStore (pre-PR API), S=1:\n");
    std::vector<Cell> direct;
    for (int t : threads) {
        const double rate = measure_direct(t);
        std::printf("  %-8d  %s\n", t, fmt_rate(rate).c_str());
        direct.push_back({t, 1, rate, 1});
    }

    auto json = JsonEmitter::from_env("sharding");
    json.scalar("profile", pmem::profile_name(pmem::effective_profile()));
    json.scalar("keys", double(kKeySpace), "%.0f");
    json.scalar("value_bytes", double(kValueBytes), "%.0f");
    json.begin_array("sweep");
    for (const Cell& c : sweep) {
        json.record(JsonEmitter::fields(
            {JsonEmitter::num("threads", uint64_t(c.threads)),
             JsonEmitter::num("shards", uint64_t{c.shards}),
             JsonEmitter::num("puts_per_sec", c.puts_per_sec, "%.0f"),
             JsonEmitter::num("max_concurrent_writers",
                              uint64_t(c.max_concurrent_writers))}));
    }
    json.begin_array("direct_api");
    for (const Cell& c : direct) {
        json.record(JsonEmitter::fields(
            {JsonEmitter::num("threads", uint64_t(c.threads)),
             JsonEmitter::num("puts_per_sec", c.puts_per_sec, "%.0f")}));
    }
    return 0;
}
