// Ablation — allocator fast path (§6.2): the paper observes that "most of
// the stores inside transactions are triggered by the memory allocator" and
// that PMDK's allocator needs only one flush per small allocation, leaving
// "room for improvement for Romulus, which uses a much less efficient
// allocator."  This bench quantifies that improvement: the small-object
// quick cache vs the plain boundary-tag allocator, measured both as raw
// alloc/free cost and as end-to-end data-structure update throughput.
#include <cstdio>

#include "bench_common.hpp"
#include "ds/linked_list_set.hpp"
#include "ds/rb_tree.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

using E = RomulusLog;

template <template <typename, typename> class DS>
void structure_churn(const char* name, bool quick) {
    Session<E> session(64u << 20, "abal2");
    E::allocator().set_quick_cache(quick);
    using Set = DS<E, uint64_t>;
    Set* set = nullptr;
    E::updateTx([&] { set = E::template tmNew<Set>(); });
    prepopulate<E>(1000, [&](uint64_t i) { set->add(i * 2 + 1); });
    const double ops =
        run_throughput(1, bench_ms(), [&](int, std::mt19937_64& rng) {
            const uint64_t k = (rng() % 1000) * 2 + 1;
            set->remove(k);
            set->add(k);
        });
    std::printf("  %-8s %-6s: %s updates/s\n", name,
                quick ? "quick" : "bins", fmt_rate(ops).c_str());
    E::updateTx([&] { E::tmDelete(set); });
    E::allocator().set_quick_cache(false);
}

void raw_cost(bool quick) {
    Session<E> session(64u << 20, "abal3");
    E::allocator().set_quick_cache(quick);
    for (size_t sz : {48u, 96u, 256u}) {
        // Steady state: one warm chunk in the cache/bin.
        E::updateTx([&] { E::free_bytes(E::alloc_bytes(sz)); });
        pmem::reset_tl_stats();
        constexpr int kN = 1000;
        for (int i = 0; i < kN; ++i) {
            E::updateTx([&] { E::free_bytes(E::alloc_bytes(sz)); });
        }
        const auto st = pmem::tl_stats();
        std::printf("  %-6s %4zu B: %6.2f pwbs / alloc+free tx\n",
                    quick ? "quick" : "bins", sz, double(st.pwb) / kN);
    }
    E::allocator().set_quick_cache(false);
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::NOP);
    print_header("Allocator ablation: small-object quick cache (Section 6.2)");
    std::printf("\n-- flush cost per alloc+free transaction --\n");
    raw_cost(false);
    raw_cost(true);

    pmem::set_profile(pmem::Profile::CLFLUSH);
    std::printf("\n-- end-to-end update throughput (1,000-entry sets) --\n");
    structure_churn<ds::LinkedListSet>("list", false);
    structure_churn<ds::LinkedListSet>("list", true);
    structure_churn<ds::RBTree>("rbtree", false);
    structure_churn<ds::RBTree>("rbtree", true);
    std::printf(
        "\nThe quick cache trims the allocator's share of pwbs per update\n"
        "transaction — the headroom the paper attributes to PMDK's\n"
        "small-allocation-optimised allocator (§6.2).\n");
    return 0;
}
