// E5 — Figure 7: read-dominated workloads on a 1,000-entry hash map.
// Left graph: 2 concurrent writer threads + a sweep of reader threads,
// reporting read TX/s and write TX/s separately.  Right graph: readers only.
//
// Paper shapes to check: RomulusLR's wait-free readers scale and are never
// blocked by the writers; the unfair reader-preference lock of the PMDK
// setup starves its writers as readers grow ("prevents writers from running
// with 16 concurrent reader threads or more"); read-only throughput of all
// Romulus variants is orders of magnitude above the baselines.
#include <atomic>
#include <cstdio>

#include "bench_common.hpp"
#include "ds/hash_map.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

constexpr uint64_t kKeys = 1000;

struct Rates {
    double reads;
    double writes;
};

template <typename E>
Rates run_mixed(int nreaders, int nwriters) {
    Session<E> session(96u << 20, "fig7");
    using Map = ds::HashMap<E, uint64_t>;
    Map* map = nullptr;
    E::updateTx([&] { map = E::template tmNew<Map>(512); });
    prepopulate<E>(kKeys, [&](uint64_t i) { map->add(i); });

    std::atomic<bool> start{false}, stop{false};
    std::atomic<uint64_t> reads{0}, writes{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < nreaders; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(100 + t);
            while (!start.load()) std::this_thread::yield();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                (void)map->contains(rng() % kKeys);
                ++n;
            }
            reads.fetch_add(n);
        });
    }
    for (int t = 0; t < nwriters; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(900 + t);
            while (!start.load()) std::this_thread::yield();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t k = rng() % kKeys;
                map->remove(k);
                map->add(k);
                ++n;
            }
            writes.fetch_add(n);
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    start.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(bench_ms()));
    stop.store(true);
    for (auto& t : ts) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    E::updateTx([&] { E::tmDelete(map); });
    return {reads.load() / secs, writes.load() / secs};
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    const auto threads = bench_threads();

    print_header("Figure 7 (left): N readers + 2 concurrent writers");
    std::printf("%-6s %8s", "PTM", "readers");
    std::printf(" %10s %10s\n", "read TX/s", "write TX/s");
    for_each_ptm([&]<typename E>() {
        for (int nr : threads) {
            Rates r = run_mixed<E>(nr, 2);
            std::printf("%-6s %8d %s %s\n", short_name<E>(), nr,
                        fmt_rate(r.reads).c_str(), fmt_rate(r.writes).c_str());
        }
    });

    print_header("Figure 7 (right): readers only, no writer");
    std::printf("%-6s %8s %10s\n", "PTM", "readers", "read TX/s");
    for_each_ptm([&]<typename E>() {
        for (int nr : threads) {
            Rates r = run_mixed<E>(nr, 0);
            std::printf("%-6s %8d %s\n", short_name<E>(), nr,
                        fmt_rate(r.reads).c_str());
        }
    });
    return 0;
}
