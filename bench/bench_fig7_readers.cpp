// E5 — Figure 7: read-dominated workloads on a 1,000-entry hash map.
// Left graph: 2 concurrent writer threads + a sweep of reader threads,
// reporting read TX/s and write TX/s separately.  Right graph: readers only.
//
// Paper shapes to check: RomulusLR's wait-free readers scale and are never
// blocked by the writers; the unfair reader-preference lock of the PMDK
// setup starves its writers as readers grow ("prevents writers from running
// with 16 concurrent reader threads or more"); read-only throughput of all
// Romulus variants is orders of magnitude above the baselines.
//
// Third section (ISSUE 8): the seqlock optimistic read path A/B — a 90/10
// read-mostly mix on one shard, each engine measured with the fast path on
// and force-pessimistic, emitted as the BENCH_readers.json artifact for the
// trajectory check (scripts/bench_trajectory.py).
#include <atomic>
#include <cstdio>

#include "bench_common.hpp"
#include "ds/hash_map.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

constexpr uint64_t kKeys = 1000;

struct Rates {
    double reads;
    double writes;
};

template <typename E>
Rates run_mixed(int nreaders, int nwriters) {
    Session<E> session(96u << 20, "fig7");
    using Map = ds::HashMap<E, uint64_t>;
    Map* map = nullptr;
    E::updateTx([&] { map = E::template tmNew<Map>(512); });
    prepopulate<E>(kKeys, [&](uint64_t i) { map->add(i); });

    std::atomic<bool> start{false}, stop{false};
    std::atomic<uint64_t> reads{0}, writes{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < nreaders; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(100 + t);
            while (!start.load()) std::this_thread::yield();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                (void)map->contains(rng() % kKeys);
                ++n;
            }
            reads.fetch_add(n);
        });
    }
    for (int t = 0; t < nwriters; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(900 + t);
            while (!start.load()) std::this_thread::yield();
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t k = rng() % kKeys;
                map->remove(k);
                map->add(k);
                ++n;
            }
            writes.fetch_add(n);
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    start.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(bench_ms()));
    stop.store(true);
    for (auto& t : ts) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    E::updateTx([&] { E::tmDelete(map); });
    return {reads.load() / secs, writes.load() / secs};
}

struct ABRates {
    double reads;
    double writes;
    double opt_share;  ///< optimistic commits / read transactions
};

/// 90/10 read-mostly mix, every thread issuing both kinds of operation, on
/// the default single shard — the shape where the pessimistic reader lock
/// pays writer-occupancy on every read and the seqlock path pays nothing.
template <typename E>
ABRates run_read_mostly(int nthreads, bool optimistic) {
    Session<E> session(96u << 20, "fig7ab");
    using Map = ds::HashMap<E, uint64_t>;
    Map* map = nullptr;
    E::updateTx([&] { map = E::template tmNew<Map>(512); });
    prepopulate<E>(kKeys, [&](uint64_t i) { map->add(i); });

    read_config().optimistic = optimistic;
    std::atomic<bool> start{false}, stop{false};
    std::atomic<uint64_t> reads{0}, writes{0}, opt{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < nthreads; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(7 + t);
            reset_tl_read_stats();
            while (!start.load()) std::this_thread::yield();
            uint64_t r = 0, w = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t k = rng() % kKeys;
                if (rng() % 10 == 0) {
                    map->remove(k);
                    map->add(k);
                    ++w;
                } else {
                    (void)map->contains(k);
                    ++r;
                }
            }
            reads.fetch_add(r);
            writes.fetch_add(w);
            opt.fetch_add(tl_read_stats().opt_commits);
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    start.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(bench_ms()));
    stop.store(true);
    for (auto& t : ts) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    E::updateTx([&] { E::tmDelete(map); });
    read_config().optimistic = true;
    const uint64_t nr = reads.load();
    return {nr / secs, writes.load() / secs,
            nr == 0 ? 0.0 : double(opt.load()) / double(nr)};
}

/// The engines with a seqlock fast path (RomulusLR's readers are wait-free
/// without it; the redo-log baseline's reads are natively optimistic).
template <typename F>
void for_each_seqlock_ptm(F&& f) {
    f.template operator()<RomulusNL>();
    f.template operator()<RomulusLog>();
    f.template operator()<baselines::UndoLogPTM>();
}

/// Single-threaded uncontended readTx latency: a one-word read transaction,
/// which prices exactly what the fast path removes — ReadIndicator arrival /
/// departure and writer checks vs one seq snapshot and one validate.
template <typename E>
double run_read_latency(bool optimistic) {
    Session<E> session(64u << 20, "fig7lat");
    using PU = typename E::template p<uint64_t>;
    PU* cell = nullptr;
    E::updateTx([&] {
        cell = E::template tmNew<PU>();
        *cell = 7;
    });
    read_config().optimistic = optimistic;
    constexpr int kReads = 2'000'000;
    uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReads; ++i) {
        uint64_t v = 0;
        E::readTx([&] { v = cell->pload(); });
        sink += v;
    }
    const double ns =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e9 / kReads;
    read_config().optimistic = true;
    if (sink != uint64_t(kReads) * 7) std::abort();
    return ns;
}

struct OverlapResult {
    uint64_t reads;    ///< read transactions committed during the burst
    double busy_secs;  ///< wall-clock of the back-to-back writer txs
};

/// The headline property of the seqlock path: the writer closes its window
/// right after the CPY psync, *before* replicating main to back, so
/// optimistic readers overlap the whole back-replication phase — the
/// dominant cost of a large RomulusNL/RomulusLog commit.  A pessimistic
/// reader sits on the C-RW-WP lock until the writer's unlock instead.
///
/// Measures read transactions completed during a burst of back-to-back 8 MB
/// writer transactions.  A burst rather than one tx: on a single-CPU box one
/// ~13 ms CPU-bound tx often fits inside a single scheduler quantum, so
/// whether the reader runs at all during it is a coin flip.  Several
/// consecutive txs (~100 ms busy) guarantee the reader its fair share of
/// slices; a pessimistic reader can still only slip reads into the
/// microsecond gaps between txs, so the contrast survives.
template <typename E>
OverlapResult run_overlap(bool optimistic) {
    Session<E> session(96u << 20, "fig7ov");
    using PU = typename E::template p<uint64_t>;
    constexpr size_t kBlob = 8u << 20;
    constexpr int kTxs = 8;
    PU* cell = nullptr;
    uint8_t* blob = nullptr;
    E::updateTx([&] {
        cell = E::template tmNew<PU>();
        *cell = 1;
        blob = static_cast<uint8_t*>(E::alloc_bytes(kBlob));
        E::zero_range(blob, kBlob);
    });

    const ReadConfig saved = read_config();
    read_config().optimistic = optimistic;
    // Keep retrying through the writer's MUT phase instead of parking on the
    // reader lock — a parked reader would sleep through the very overlap
    // window this measures.
    read_config().max_attempts = 1u << 20;

    // The reader free-runs from spawn and the burst window is carved out of
    // its counter by snapshot subtraction.  (An earlier version parked the
    // reader on a start flag in a yield loop; on one CPU that phase-locks it
    // behind the writer and whole bursts could pass without the reader ever
    // being scheduled.)
    std::atomic<bool> done{false};
    std::atomic<uint64_t> reads{0};
    std::thread reader([&] {
        while (!done.load(std::memory_order_relaxed)) {
            uint64_t v = 0;
            E::readTx([&] { v = cell->pload(); });
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });

    std::vector<uint8_t> pat(kBlob, 0x5A);
    const uint64_t before = reads.load();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTxs; ++i) {
        E::updateTx([&] {
            E::store_range(blob, pat.data(), kBlob);
            *cell = uint64_t(i) + 2;
        });
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const uint64_t during = reads.load() - before;
    done.store(true, std::memory_order_release);
    reader.join();
    read_config() = saved;
    return {during, secs};
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    const auto threads = bench_threads();

    print_header("Figure 7 (left): N readers + 2 concurrent writers");
    std::printf("%-6s %8s", "PTM", "readers");
    std::printf(" %10s %10s\n", "read TX/s", "write TX/s");
    for_each_ptm([&]<typename E>() {
        for (int nr : threads) {
            Rates r = run_mixed<E>(nr, 2);
            std::printf("%-6s %8d %s %s\n", short_name<E>(), nr,
                        fmt_rate(r.reads).c_str(), fmt_rate(r.writes).c_str());
        }
    });

    print_header("Figure 7 (right): readers only, no writer");
    std::printf("%-6s %8s %10s\n", "PTM", "readers", "read TX/s");
    for_each_ptm([&]<typename E>() {
        for (int nr : threads) {
            Rates r = run_mixed<E>(nr, 0);
            std::printf("%-6s %8d %s\n", short_name<E>(), nr,
                        fmt_rate(r.reads).c_str());
        }
    });

    print_header(
        "Optimistic A/B: 90/10 read-mostly mix, 1 shard "
        "(seqlock fast path vs force-pessimistic)");
    auto json = JsonEmitter::from_env("readers");
    json.scalar("ms", double(bench_ms()), "%.0f");
    std::printf("%-6s %8s %-6s %10s %10s %9s\n", "PTM", "threads", "mode",
                "read TX/s", "write TX/s", "opt share");
    json.begin_array("ab");
    for_each_seqlock_ptm([&]<typename E>() {
        for (int nt : threads) {
            for (bool optimistic : {true, false}) {
                ABRates r = run_read_mostly<E>(nt, optimistic);
                const char* mode = optimistic ? "opt" : "pess";
                std::printf("%-6s %8d %-6s %s %s %8.2f%%\n", short_name<E>(),
                            nt, mode, fmt_rate(r.reads).c_str(),
                            fmt_rate(r.writes).c_str(), 100.0 * r.opt_share);
                json.record(JsonEmitter::fields(
                    {JsonEmitter::str("engine", short_name<E>()),
                     JsonEmitter::num("threads", uint64_t(nt)),
                     JsonEmitter::str("mode", mode),
                     JsonEmitter::num("read_tx_per_sec", r.reads, "%.0f"),
                     JsonEmitter::num("write_tx_per_sec", r.writes, "%.0f"),
                     JsonEmitter::num("opt_share", r.opt_share, "%.3f")}));
            }
        }
    });

    print_header(
        "Uncontended readTx latency: one-word read transaction, 1 thread "
        "(the per-read tax the fast path removes)");
    std::printf("%-6s %-6s %12s\n", "PTM", "mode", "ns/readTx");
    json.begin_array("latency");
    for_each_seqlock_ptm([&]<typename E>() {
        double opt_ns = 0, pess_ns = 0;
        for (bool optimistic : {true, false}) {
            const double ns = run_read_latency<E>(optimistic);
            (optimistic ? opt_ns : pess_ns) = ns;
            std::printf("%-6s %-6s %12.1f\n", short_name<E>(),
                        optimistic ? "opt" : "pess", ns);
            json.record(JsonEmitter::fields(
                {JsonEmitter::str("engine", short_name<E>()),
                 JsonEmitter::str("mode", optimistic ? "opt" : "pess"),
                 JsonEmitter::num("ns_per_read", ns, "%.1f")}));
        }
        std::printf("%-6s ratio  %11.2fx\n", short_name<E>(),
                    pess_ns / (opt_ns > 0 ? opt_ns : 1));
    });

    print_header(
        "Back-replication overlap: reads committed during a burst of 8 MB "
        "writer txs (the window the pessimistic lock spends blocked)");
    std::printf("%-6s %-6s %14s %10s %12s\n", "PTM", "mode", "overlap reads",
                "busy ms", "reads/s busy");
    json.begin_array("overlap");
    auto overlap_for = [&]<typename E>() {
        uint64_t opt_reads = 0, pess_reads = 0;
        for (bool optimistic : {true, false}) {
            OverlapResult r = run_overlap<E>(optimistic);
            (optimistic ? opt_reads : pess_reads) = r.reads;
            std::printf("%-6s %-6s %14llu %10.2f %s\n", short_name<E>(),
                        optimistic ? "opt" : "pess",
                        static_cast<unsigned long long>(r.reads),
                        r.busy_secs * 1e3,
                        fmt_rate(double(r.reads) / r.busy_secs).c_str());
            json.record(JsonEmitter::fields(
                {JsonEmitter::str("engine", short_name<E>()),
                 JsonEmitter::str("mode", optimistic ? "opt" : "pess"),
                 JsonEmitter::num("overlap_reads", r.reads),
                 JsonEmitter::num("busy_ms", r.busy_secs * 1e3, "%.2f")}));
        }
        std::printf("%-6s ratio  %14.1fx\n", short_name<E>(),
                    double(opt_reads) / double(pess_reads ? pess_reads : 1));
    };
    overlap_for.template operator()<RomulusNL>();
    overlap_for.template operator()<RomulusLog>();
    return 0;
}
