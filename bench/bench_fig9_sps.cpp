// E8 — Figure 9: the SPS microbenchmark — an array of 10,000 64-bit
// integers in persistent memory; each transaction swaps S randomly chosen
// pairs, with S swept over {1,4,8,16,32,64,128,256,1024}, for five fence
// configurations: clwb+sfence, clflushopt+sfence, clflush, STT-RAM delays
// (140+200 ns) and PCM delays (340+500 ns).  Single-threaded; reported in
// swaps per microsecond.
//
// Paper shapes to check: RomulusLog/LR lead everywhere except the largest
// transactions, where the basic Romulus' full-array copy amortises and
// overtakes them (crossover near 1,024 swaps/tx); the cheaper the pwb
// (clwb), the bigger Romulus' advantage; with expensive pwbs (PCM) the gap
// to the baselines narrows.
#include <cstdio>

#include "bench_common.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

constexpr uint64_t kArraySize = 10'000;

template <typename E>
double run_sps(int swaps_per_tx) {
    Session<E> session(64u << 20, "fig9");
    using PU = typename E::template p<uint64_t>;
    PU* arr = nullptr;
    E::updateTx(
        [&] { arr = static_cast<PU*>(E::alloc_bytes(sizeof(PU) * kArraySize)); });
    for (uint64_t base = 0; base < kArraySize; base += 500) {
        E::updateTx([&] {
            for (uint64_t i = base; i < std::min(kArraySize, base + 500); ++i)
                arr[i] = i;
        });
    }

    const double tx_per_sec =
        run_throughput(1, bench_ms(), [&](int, std::mt19937_64& rng) {
            E::updateTx([&] {
                for (int s = 0; s < swaps_per_tx; ++s) {
                    const uint64_t i = rng() % kArraySize;
                    const uint64_t j = rng() % kArraySize;
                    const uint64_t vi = arr[i].pload();
                    const uint64_t vj = arr[j].pload();
                    arr[i] = vj;
                    arr[j] = vi;
                }
            });
        });
    return tx_per_sec * swaps_per_tx / 1e6;  // swaps per microsecond
}

}  // namespace

int main() {
    const std::vector<std::pair<pmem::Profile, const char*>> profiles = {
        {pmem::Profile::CLWB, "clwb+sfence"},
        {pmem::Profile::CLFLUSHOPT, "clflushopt+sfence"},
        {pmem::Profile::CLFLUSH, "clflush"},
        {pmem::Profile::STT, "STT (140+200ns)"},
        {pmem::Profile::PCM, "PCM (340+500ns)"},
    };
    const std::vector<int> sizes = {1, 4, 8, 16, 32, 64, 128, 256, 1024};

    print_header("Figure 9: SPS benchmark (swaps/us, single thread)");
    for (auto [prof, label] : profiles) {
        pmem::set_profile(prof);
        std::printf("\n-- %s (effective: %s) --\n", label,
                    pmem::profile_name(pmem::effective_profile()));
        std::printf("%-6s", "sw/tx:");
        for (int s : sizes) std::printf(" %7d", s);
        std::printf("\n");
        for_each_ptm([&]<typename E>() {
            std::printf("%-6s", short_name<E>());
            for (int s : sizes) {
                if (std::is_same_v<E, baselines::RedoLogPTM> && s > 1024) {
                    std::printf(" %7s", "n/a");
                    continue;
                }
                std::printf(" %7.3f", run_sps<E>(s));
            }
            std::printf("\n");
        });
    }
    return 0;
}
