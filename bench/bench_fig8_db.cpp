// E6 — Figure 8: RomulusDB vs the LevelDB-model baseline (WalDB) on the
// LevelDB db_bench workloads: fillseq, fillsync, fillrandom, overwrite
// (16-byte keys, 100-byte values), readseq, readreverse, and fill-100k
// (100 kB values).
//
// Paper shapes to check (§6.4): RomulusDB wins every read benchmark and
// fillsync outright (every RomulusDB write is already durable; LevelDB pays
// an fdatasync per write); on buffered-durability fills RomulusDB may be up
// to ~50% slower (it is doing strictly more — durable transactions vs
// buffered batches); on fill-100k RomulusDB wins by aggregating writes into
// full-cache-line flushes while LevelDB still fdatasyncs.
//
// Scale knobs: ops = 10,000 x ROMULUS_BENCH_SCALE; fill-100k = 32 ops x
// scale; threads from ROMULUS_BENCH_THREADS.
#include <cstdio>

#include "bench_common.hpp"
#include "db/romulusdb.hpp"
#include "db/waldb.hpp"

using namespace romulus;
using namespace romulus::bench;
using db::RomulusDB;
using db::WalDB;
using db::WriteOptions;

namespace {

std::string key_of(uint64_t i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llu", (unsigned long long)i);
    return buf;
}

struct Timer {
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
    double us() const {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }
};

/// Run `per_thread(t)` on nt threads; returns wall-clock microseconds.
template <typename F>
double timed_threads(int nt, F&& per_thread) {
    Timer timer;
    std::vector<std::thread> ts;
    for (int t = 0; t < nt; ++t) ts.emplace_back([&, t] { per_thread(t); });
    for (auto& t : ts) t.join();
    return timer.us();
}

uint64_t ops_count() {
    return static_cast<uint64_t>(10'000 * bench_scale());
}

// ------------------------------------------------------------- RomulusDB

struct RomReport {
    double fillseq, fillsync, fillrandom, overwrite, readseq, readreverse,
        fill100k;
};

RomReport run_romulusdb(int nt) {
    const uint64_t n = ops_count();
    const std::string path = bench_heap_path("fig8_rom");
    std::remove(path.c_str());
    const size_t heap =
        std::max<size_t>(256u << 20, n * nt * 256 * 2 + (64u << 20));
    auto dbp = RomulusDB::open(path, heap);
    auto& d = *dbp;
    WriteOptions wo;
    const std::string val(100, 'v');
    RomReport r{};

    r.fillseq = timed_threads(nt, [&](int t) {
                    for (uint64_t i = 0; i < n; ++i)
                        d.put(wo, key_of(t * n + i), val);
                }) /
                double(n);
    // fillsync: RomulusDB is always durable; same code path.
    const uint64_t nsync = std::max<uint64_t>(1, n / 10);
    r.fillsync = timed_threads(nt, [&](int t) {
                     for (uint64_t i = 0; i < nsync; ++i)
                         d.put(wo, key_of(1'000'000 + t * nsync + i), val);
                 }) /
                 double(nsync);
    r.fillrandom = timed_threads(nt, [&](int t) {
                       std::mt19937_64 rng(t);
                       for (uint64_t i = 0; i < n; ++i)
                           d.put(wo, key_of(rng() % (n * nt)), val);
                   }) /
                   double(n);
    r.overwrite = timed_threads(nt, [&](int t) {
                      std::mt19937_64 rng(77 + t);
                      for (uint64_t i = 0; i < n; ++i)
                          d.put(wo, key_of(rng() % (n * nt)), val);
                  }) /
                  double(n);
    {
        const uint64_t total = d.size();
        r.readseq = timed_threads(nt, [&](int) {
                        uint64_t cnt = 0, bytes = 0;
                        d.for_each([&](std::string_view k, std::string_view v) {
                            cnt++, bytes += k.size() + v.size();
                        });
                    }) /
                    double(total);
        r.readreverse =
            timed_threads(nt, [&](int) {
                uint64_t cnt = 0;
                d.for_each_reverse(
                    [&](std::string_view, std::string_view) { cnt++; });
            }) /
            double(total);
    }
    const uint64_t big_n = std::max<uint64_t>(4, uint64_t(32 * bench_scale()));
    const std::string big(100 * 1024, 'B');
    r.fill100k = timed_threads(nt, [&](int t) {
                     for (uint64_t i = 0; i < big_n; ++i)
                         d.put(wo, "big" + std::to_string(t * big_n + i), big);
                 }) /
                 double(big_n);
    dbp.reset();
    std::remove(path.c_str());
    return r;
}

RomReport run_waldb(int nt) {
    const uint64_t n = ops_count();
    std::remove("/tmp/romulus_fig8.wal");
    WalDB d("/tmp/romulus_fig8.wal", {});
    const std::string val(100, 'v');
    RomReport r{};

    r.fillseq = timed_threads(nt, [&](int t) {
                    for (uint64_t i = 0; i < n; ++i)
                        d.put(key_of(t * n + i), val);
                }) /
                double(n);
    const uint64_t nsync = std::max<uint64_t>(1, n / 10);
    r.fillsync = timed_threads(nt, [&](int t) {
                     for (uint64_t i = 0; i < nsync; ++i)
                         d.put(key_of(1'000'000 + t * nsync + i), val,
                               /*sync=*/true);  // WriteOptions.sync
                 }) /
                 double(nsync);
    r.fillrandom = timed_threads(nt, [&](int t) {
                       std::mt19937_64 rng(t);
                       for (uint64_t i = 0; i < n; ++i)
                           d.put(key_of(rng() % (n * nt)), val);
                   }) /
                   double(n);
    r.overwrite = timed_threads(nt, [&](int t) {
                      std::mt19937_64 rng(77 + t);
                      for (uint64_t i = 0; i < n; ++i)
                          d.put(key_of(rng() % (n * nt)), val);
                  }) /
                  double(n);
    {
        const uint64_t total = d.size();
        r.readseq = timed_threads(nt, [&](int) {
                        uint64_t cnt = 0;
                        d.for_each([&](const std::string&, const std::string&) {
                            cnt++;
                        });
                    }) /
                    double(total);
        r.readreverse = timed_threads(nt, [&](int) {
                            uint64_t cnt = 0;
                            d.for_each_reverse(
                                [&](const std::string&, const std::string&) {
                                    cnt++;
                                });
                        }) /
                        double(total);
    }
    const uint64_t big_n = std::max<uint64_t>(4, uint64_t(32 * bench_scale()));
    const std::string big(100 * 1024, 'B');
    r.fill100k = timed_threads(nt, [&](int t) {
                     for (uint64_t i = 0; i < big_n; ++i)
                         d.put("big" + std::to_string(t * big_n + i), big);
                 }) /
                 double(big_n);
    d.destroy();
    return r;
}

void print_row(const char* name, const RomReport& r) {
    std::printf(
        "%-10s %9.2f %9.2f %10.2f %9.2f %8.3f %11.3f %11.1f\n", name,
        r.fillseq, r.fillsync, r.fillrandom, r.overwrite, r.readseq,
        r.readreverse, r.fill100k);
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    print_header("Figure 8: RomulusDB vs LevelDB-model (us/operation)");
    for (int nt : bench_threads()) {
        std::printf("\n-- %d thread(s) --\n", nt);
        std::printf("%-10s %9s %9s %10s %9s %8s %11s %11s\n", "DB", "fillseq",
                    "fillsync", "fillrandom", "overwrite", "readseq",
                    "readreverse", "fill-100k");
        print_row("RomDB", run_romulusdb(nt));
        print_row("LevelDB*", run_waldb(nt));
    }
    std::printf(
        "\nLevelDB* = WalDB, our LevelDB durability-model baseline: buffered\n"
        "fdatasync every ~1000 kB (or per write when sync=true) with an\n"
        "emulated 100 us device sync (DESIGN.md s1).  RomulusDB rows are\n"
        "durable transactions on every operation.\n");
    return 0;
}
