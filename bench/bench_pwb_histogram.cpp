// E9 (ablation) — §6.2's instrumentation findings, reproduced with our
// stats: pwbs per transaction for the linked list (~10 in the paper) vs the
// red-black tree (bimodal, peaks near 50 and 130), and the share of stores
// issued by the memory allocator ("most of the stores inside transactions
// are triggered by the memory allocator").
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ds/hash_map.hpp"
#include "ds/linked_list_set.hpp"
#include "ds/rb_tree.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

using E = RomulusLog;

struct Histo {
    std::vector<uint64_t> samples;
    void add(uint64_t v) { samples.push_back(v); }
    uint64_t pct(double p) {
        std::sort(samples.begin(), samples.end());
        if (samples.empty()) return 0;
        return samples[std::min(samples.size() - 1,
                                size_t(p * samples.size()))];
    }
    double mean() const {
        uint64_t s = 0;
        for (auto v : samples) s += v;
        return samples.empty() ? 0 : double(s) / samples.size();
    }
};

template <typename Set>
void run(const char* name, size_t heap) {
    Session<E> session(heap, "pwbhist");
    Set* set = nullptr;
    E::updateTx([&] { set = E::template tmNew<Set>(); });
    prepopulate<E>(1000, [&](uint64_t i) { set->add(i * 2 + 1); });

    Histo removes, inserts;
    std::mt19937_64 rng(5);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t k = (rng() % 1000) * 2 + 1;
        pmem::reset_tl_stats();
        set->remove(k);
        removes.add(pmem::tl_stats().pwb);
        pmem::reset_tl_stats();
        set->add(k);
        inserts.add(pmem::tl_stats().pwb);
    }
    std::printf(
        "%-8s  remove: mean %6.1f p50 %4llu p95 %4llu   insert: mean %6.1f "
        "p50 %4llu p95 %4llu  pwbs/tx\n",
        name, removes.mean(), (unsigned long long)removes.pct(0.5),
        (unsigned long long)removes.pct(0.95), inserts.mean(),
        (unsigned long long)inserts.pct(0.5),
        (unsigned long long)inserts.pct(0.95));
    E::updateTx([&] { E::tmDelete(set); });
}

/// Allocator share: compare a tx that allocates (insert) against the same
/// structural work without allocation (in-place value overwrite is not
/// available on a set, so measure alloc_bytes/free_bytes in isolation).
void allocator_share() {
    Session<E> session(64u << 20, "pwbhist2");
    pmem::reset_tl_stats();
    constexpr int kN = 1000;
    for (int i = 0; i < kN; ++i) {
        E::updateTx([&] {
            void* ptr = E::alloc_bytes(48);
            E::free_bytes(ptr);
        });
    }
    const double per_tx = double(pmem::tl_stats().pwb) / kN;
    std::printf(
        "alloc+free pair alone: %.1f pwbs/tx — compare with the list's\n"
        "insert cost above: the allocator contributes the majority of the\n"
        "stores, matching the paper's finding (§6.2).\n",
        per_tx);
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::NOP);  // count pwbs, don't pay for them
    print_header("pwbs per transaction (RomulusLog, 1,000-entry structures)");
    run<ds::LinkedListSet<E, uint64_t>>("list", 64u << 20);
    run<ds::HashMap<E, uint64_t>>("hashmap", 64u << 20);
    run<ds::RBTree<E, uint64_t>>("rbtree", 64u << 20);
    std::printf("\n");
    allocator_share();
    std::printf(
        "\nPaper reference: list ~10 pwbs/tx; red-black tree bimodal with\n"
        "peaks at ~50 and ~130 pwbs/tx (§6.2).\n");
    return 0;
}
