// E2 — Figure 4: update-only and read-only throughput on a linked list,
// a resizable hash map and a red-black tree holding 1,000 entries, for all
// five PTMs across a thread sweep.
//
// Workload definition from §6.2: "An update operation is composed of two
// consecutive transactions, a removal followed by an insertion, whereas a
// read operation is composed of two consecutive read-only transactions,
// each executes a search for an existing random key."
//
// Paper shapes to check: RomulusLog >= ~2x the undo-log baseline and >= ~4x
// the redo-log baseline on updates; reads 1-2 orders of magnitude above
// both baselines; the list outperforms the tree (fewer stores per tx).
#include <cstdio>

#include "bench_common.hpp"
#include "ds/hash_map.hpp"
#include "ds/linked_list_set.hpp"
#include "ds/rb_tree.hpp"

using namespace romulus;
using namespace romulus::bench;

namespace {

constexpr uint64_t kKeys = 1000;  // §6.2 (also Mnemosyne's stability limit)

template <typename E, template <typename, typename> class DS>
void run_structure(const char* ds_name) {
    const auto threads = bench_threads();
    const int ms = bench_ms();

    for (const char* workload : {"update", "read"}) {
        std::printf("%-6s %-9s %-7s", short_name<E>(), ds_name, workload);
        for (int nt : threads) {
            Session<E> session(96u << 20, "fig4");
            using Set = DS<E, uint64_t>;
            Set* set = nullptr;
            E::updateTx([&] { set = E::template tmNew<Set>(); });
            prepopulate<E>(kKeys, [&](uint64_t i) { set->add(i * 2 + 1); });

            double ops;
            if (std::strcmp(workload, "update") == 0) {
                ops = run_throughput(nt, ms, [&](int, std::mt19937_64& rng) {
                    const uint64_t k = (rng() % kKeys) * 2 + 1;
                    set->remove(k);  // two consecutive transactions (§6.2)
                    set->add(k);
                });
            } else {
                ops = run_throughput(nt, ms, [&](int, std::mt19937_64& rng) {
                    const uint64_t k1 = (rng() % kKeys) * 2 + 1;
                    const uint64_t k2 = (rng() % kKeys) * 2 + 1;
                    (void)set->contains(k1);  // two read-only transactions
                    (void)set->contains(k2);
                });
            }
            std::printf(" %s", fmt_rate(ops).c_str());
            E::updateTx([&] { E::tmDelete(set); });
        }
        std::printf("  TX/s\n");
    }
}

}  // namespace

int main() {
    pmem::set_profile(pmem::Profile::CLFLUSH);  // the paper's §6.2 machine
    print_header("Figure 4: data structure throughput, 1,000 entries");
    std::printf("threads:");
    for (int nt : bench_threads()) std::printf(" %8d ", nt);
    std::printf("\n");
    for_each_ptm([&]<typename E>() {
        run_structure<E, ds::LinkedListSet>("list");
        run_structure<E, ds::HashMap>("hashmap");
        run_structure<E, ds::RBTree>("rbtree");
    });
    return 0;
}
