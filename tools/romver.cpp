// romver — offline persist-order analysis and crash-image model checking
// for the five PTM engines (docs/romver.md).
//
// Records one canonical update transaction per engine, runs the static
// protocol rules over its happens-before-persist graph, and (clean mode)
// walks the legal crash images through real engine recovery.
//
//   romver [--engine all|nl|log|lr|undo|redo] [--tx-bytes N] [--heap-mb N]
//          [--budget N] [--window-samples N] [--exhaustive-cap N] [--seed N]
//          [--mutate none|elide-fence|reorder-state] [--expect-violations]
//          [--no-explore] [--report FILE] [--path FILE]
//
// Exit status: 0 when every engine is clean (or, with --expect-violations,
// when every engine is flagged), 1 otherwise, 2 on usage errors.
//
// --mutate arms one of the seeded protocol bugs in the Romulus commit path
// and is only meaningful for the Romulus engines on a -DROMULUS_PERSISTGRAPH
// build; the static rules must flag the mutation, naming the unordered
// line/fence pair.  Mutation runs skip the crash explorer (the point is rule
// detection, not enumerating images of a deliberately broken protocol).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "analysis/romver.hpp"
#include "baselines/redolog.hpp"
#include "baselines/undolog.hpp"
#include "core/romulus.hpp"

namespace {

using namespace romulus;
using namespace romulus::analysis;

struct Cli {
    std::string engine = "all";
    size_t tx_bytes = 8192;
    size_t heap_mb = 16;
    uint64_t budget = 1u << 16;
    uint64_t window_samples = 64;
    uint64_t exhaustive_cap = 512;
    uint64_t seed = 1;
    std::string mutate = "none";
    bool expect_violations = false;
    bool explore = true;
    std::string report_file;
    std::string path;
};

[[noreturn]] void usage(const std::string& err) {
    if (!err.empty()) std::cerr << "romver: " << err << "\n";
    std::cerr << "usage: romver [--engine all|nl|log|lr|undo|redo]"
                 " [--tx-bytes N] [--heap-mb N] [--budget N]"
                 " [--window-samples N] [--exhaustive-cap N] [--seed N]"
                 " [--mutate none|elide-fence|reorder-state]"
                 " [--expect-violations] [--no-explore] [--report FILE]"
                 " [--path FILE]\n";
    std::exit(2);
}

struct EngineResult {
    std::string name;
    bool flagged = false;  // static rules or explorer found violations
    std::string text;
};

template <typename E>
EngineResult run_engine(const std::string& name, const Cli& cli) {
    EngineResult res;
    res.name = name;
    std::ostringstream os;
    os << "=== " << name << " ===\n";

    RomverConfig cfg;
    cfg.path = cli.path.empty() ? "/dev/shm/romver_" + name + "_" +
                                      std::to_string(::getpid()) + ".heap"
                                : cli.path + "." + name;
    cfg.heap_bytes = cli.heap_mb << 20;
    cfg.tx_bytes = cli.tx_bytes;

    RomverHarness<E> harness(cfg);
    harness.record();
    os << "recorded " << harness.recorder().events().size() << " events, "
       << harness.graph().nodes().size() << " write-backs across "
       << harness.graph().window_count() << " fence windows\n";

    GraphAnalysis ga = harness.analyze();
    os << ga.report();
    if (!ga.clean()) res.flagged = true;
    // The redundant-flush diagnostic feeds the same commit-path counter the
    // benches report from.
    ga.record_in(pmem::tl_commit_stats());

    if (cli.explore) {
        ExploreOptions opts;
        opts.max_cuts = cli.budget;
        opts.window_samples = cli.window_samples;
        opts.window_exhaustive_cap = cli.exhaustive_cap;
        opts.seed = cli.seed;
        ExploreReport rep = harness.explore(opts);
        os << rep.summary() << "\n";
        if (rep.violations != 0) res.flagged = true;
    }
    res.text = os.str();
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) usage(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--engine") cli.engine = next("--engine");
        else if (a == "--tx-bytes") cli.tx_bytes = std::stoull(next(a.c_str()));
        else if (a == "--heap-mb") cli.heap_mb = std::stoull(next(a.c_str()));
        else if (a == "--budget") cli.budget = std::stoull(next(a.c_str()));
        else if (a == "--window-samples")
            cli.window_samples = std::stoull(next(a.c_str()));
        else if (a == "--exhaustive-cap")
            cli.exhaustive_cap = std::stoull(next(a.c_str()));
        else if (a == "--seed") cli.seed = std::stoull(next(a.c_str()));
        else if (a == "--mutate") cli.mutate = next("--mutate");
        else if (a == "--expect-violations") cli.expect_violations = true;
        else if (a == "--no-explore") cli.explore = false;
        else if (a == "--report") cli.report_file = next("--report");
        else if (a == "--path") cli.path = next("--path");
        else if (a == "--help" || a == "-h") usage("");
        else usage("unknown argument " + a);
    }

    if (std::string tuned = apply_env_tuning(); !tuned.empty())
        std::cout << "env tuning: " << tuned << "\n";

    if (cli.mutate != "none" && cli.mutate != "elide-fence" &&
        cli.mutate != "reorder-state")
        usage("unknown --mutate " + cli.mutate);
    bool mutating = cli.mutate != "none";
    if (mutating) {
        if (!kPersistGraphEnabled) {
            std::cerr << "romver: --mutate requires a -DROMULUS_PERSISTGRAPH "
                         "build (this binary was built without it)\n";
            return 2;
        }
        if (cli.engine == "undo" || cli.engine == "redo")
            usage("--mutate applies to the Romulus engines only");
        cli.explore = false;  // rule detection, not broken-image enumeration
        protocol_mutations().elide_commit_fence = cli.mutate == "elide-fence";
        protocol_mutations().reorder_state_persist =
            cli.mutate == "reorder-state";
    }

    std::vector<EngineResult> results;
    auto want = [&](const char* n) {
        return cli.engine == "all" || cli.engine == n;
    };
    try {
        if (want("nl")) results.push_back(run_engine<RomulusNL>("nl", cli));
        if (want("log")) results.push_back(run_engine<RomulusLog>("log", cli));
        if (want("lr")) results.push_back(run_engine<RomulusLR>("lr", cli));
        if (!mutating) {
            if (want("undo"))
                results.push_back(
                    run_engine<baselines::UndoLogPTM>("undo", cli));
            if (want("redo"))
                results.push_back(
                    run_engine<baselines::RedoLogPTM>("redo", cli));
        }
    } catch (const std::exception& ex) {
        std::cerr << "romver: " << ex.what() << "\n";
        return 2;
    }
    if (results.empty()) usage("no engine matched " + cli.engine);

    std::ostringstream all;
    all << "romver report (tx-bytes=" << cli.tx_bytes
        << ", seed=" << cli.seed << ", mutate=" << cli.mutate
        << ", mutation-hooks=" << (kPersistGraphEnabled ? "armed" : "absent")
        << ")\n";
    bool any_flagged = false, all_flagged = true;
    for (const EngineResult& r : results) {
        all << r.text;
        any_flagged |= r.flagged;
        all_flagged &= r.flagged;
    }
    bool pass = cli.expect_violations ? all_flagged : !any_flagged;
    all << (pass ? "ROMVER PASS" : "ROMVER FAIL")
        << (cli.expect_violations ? " (expected violations)" : "") << "\n";

    std::cout << all.str();
    if (!cli.report_file.empty()) {
        std::ofstream f(cli.report_file);
        f << all.str();
        if (!f) {
            std::cerr << "romver: cannot write " << cli.report_file << "\n";
            return 2;
        }
    }
    return pass ? 0 : 1;
}
