// crash_torture: operator-grade recovery torture loop.
//
// Repeatedly forks a worker that mutates a persistent hash map through a
// chosen PTM and is killed at a random moment (SIGKILL from the parent —
// the harshest possible death: no unwinding, no signal handlers, any
// instruction boundary).  After each kill the parent attaches to the heap,
// runs recovery and validates every invariant.  Runs until the iteration
// budget is exhausted or a violation is found.
//
//   build/tools/crash_torture [iterations=20] [engine: nl|log|lr|undo|redo]
//
// Exit status 0 = all recoveries consistent.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>

#include "baselines/redolog.hpp"
#include "baselines/undolog.hpp"
#include "core/romulus.hpp"
#include "ds/hash_map.hpp"

using namespace romulus;

namespace {

template <typename E>
int torture(int iterations) {
    const std::string path =
        pmem::default_pmem_dir() + "/romulus_torture_" + std::to_string(getpid()) + ".heap";
    std::remove(path.c_str());

    for (int iter = 0; iter < iterations; ++iter) {
        pid_t pid = fork();
        if (pid == 0) {
            // Worker: churn forever; the parent will SIGKILL us.
            E::init(64u << 20, path);
            using Map = ds::HashMap<E, uint64_t>;
            Map* map = E::template get_object<Map>(0);
            if (map == nullptr) {
                E::updateTx([&] {
                    map = E::template tmNew<Map>(64);
                    E::put_object(0, map);
                });
            }
            std::mt19937_64 rng(getpid() * 31 + iter);
            for (;;) {
                const uint64_t k = rng() % 500;
                if (rng() % 2 == 0) {
                    map->add(k);
                } else {
                    map->remove(k);
                }
            }
        }
        // Parent: let it run a random slice, then kill without mercy.
        std::this_thread::sleep_for(
            std::chrono::microseconds(500 + (iter * 7919) % 20000));
        kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);

        // Attach (recovery runs in init) and audit.
        E::init(64u << 20, path);
        using Map = ds::HashMap<E, uint64_t>;
        Map* map = E::template get_object<Map>(0);
        bool ok = true;
        if (map != nullptr) ok = map->check_invariants();
        if (ok) ok = E::allocator().check_consistency() > 0;
        std::printf("iter %3d: killed pid %d, recovered -> %s (map %s, %llu "
                    "keys)\n",
                    iter, pid, ok ? "CONSISTENT" : "CORRUPT",
                    map ? "present" : "absent",
                    map ? (unsigned long long)map->size() : 0ull);
        if (!ok) {
            std::fprintf(stderr, "TORTURE FAILURE at iteration %d\n", iter);
            return 1;
        }
        E::close();
    }
    std::remove(path.c_str());
    std::printf("all %d kill/recover cycles consistent\n", iterations);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    pmem::set_profile(pmem::Profile::CLFLUSH);
    if (std::string tuned = romulus::apply_env_tuning(); !tuned.empty())
        std::printf("env tuning: %s\n", tuned.c_str());
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 20;
    const std::string engine = argc > 2 ? argv[2] : "log";
    if (engine == "nl") return torture<RomulusNL>(iterations);
    if (engine == "lr") return torture<RomulusLR>(iterations);
    if (engine == "undo") return torture<baselines::UndoLogPTM>(iterations);
    if (engine == "redo") return torture<baselines::RedoLogPTM>(iterations);
    return torture<RomulusLog>(iterations);
}
