// heap_inspect: operator tool that opens a Romulus heap file read-only-ish
// and reports its persistent state — header fields, crash disposition,
// allocator statistics, root table occupancy and a full heap-walk
// consistency check.  Useful after a crash to see what recovery will do
// before letting an application attach.
//
//   build/tools/heap_inspect <heap-file> [--engine nl|log|lr]
//
// NOTE: attaching runs recovery (by design: Algorithm 1 makes attach safe);
// pass --no-recover to inspect the raw header without mapping the engine.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/romulus.hpp"

using namespace romulus;

namespace {

// Raw header mirror (matches RomulusEngine<...>::PHeader's layout v2:
// geometry in the first cache line, one ShardHeader cache line per shard
// starting at byte 64).
struct RawHeader {
    uint64_t magic;
    uint32_t shard_count;
    uint64_t main_size;
    uint64_t region_size;
};
struct RawShardHeader {
    uint32_t state;
    uint64_t used_size;
};
constexpr size_t kShardHeaderOffset = 64;
constexpr size_t kShardHeaderStride = 64;
constexpr unsigned kSaneShardCap = 32;  // mirrors romulus::kMaxShards

const char* state_name(uint32_t s) {
    switch (s) {
        case 0: return "IDL (both copies consistent)";
        case 1: return "MUT (crashed mid-transaction: back is consistent, "
                       "recovery will copy back->main)";
        case 2: return "CPY (crashed mid-replication: main is consistent, "
                       "recovery will copy main->back)";
    }
    return "CORRUPT";
}

/// Decode one shard header out of the raw header page.
RawShardHeader read_shard_header(const uint8_t* page, unsigned s) {
    RawShardHeader sh{};
    const uint8_t* at = page + kShardHeaderOffset + s * kShardHeaderStride;
    std::memcpy(&sh.state, at + 0, 4);
    std::memcpy(&sh.used_size, at + 8, 8);
    return sh;
}

int inspect_raw(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    RawHeader h{};
    // The on-disk header page: magic / shard_count / main_size / region_size
    // in the first cache line, then one 64 B ShardHeader per shard.
    uint8_t page[4096];
    if (::read(fd, page, sizeof page) != static_cast<ssize_t>(sizeof page)) {
        std::fprintf(stderr, "short read\n");
        ::close(fd);
        return 1;
    }
    ::close(fd);
    std::memcpy(&h.magic, page + 0, 8);
    std::memcpy(&h.shard_count, page + 8, 4);
    std::memcpy(&h.main_size, page + 16, 8);
    std::memcpy(&h.region_size, page + 24, 8);

    std::printf("raw header of %s:\n", path.c_str());
    std::printf("  magic       : 0x%016llx\n", (unsigned long long)h.magic);
    std::printf("  shards      : %u\n", h.shard_count);
    std::printf("  main size   : %llu (per shard)\n",
                (unsigned long long)h.main_size);
    std::printf("  region size : %llu\n", (unsigned long long)h.region_size);
    const unsigned n =
        h.shard_count >= 1 && h.shard_count <= kSaneShardCap ? h.shard_count : 0;
    if (n == 0) std::printf("  (shard count implausible: header corrupt?)\n");
    for (unsigned s = 0; s < n; ++s) {
        RawShardHeader sh = read_shard_header(page, s);
        std::printf("  shard %-2u    : state %u — %s; used %llu (%.2f MB)\n", s,
                    sh.state, state_name(sh.state),
                    (unsigned long long)sh.used_size,
                    double(sh.used_size) / (1 << 20));
    }
    return 0;
}

template <typename E>
int inspect_engine(const std::string& path) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "cannot stat %s\n", path.c_str());
        return 1;
    }
    // Worst pre-attach disposition across shards (any non-IDL shard means
    // attach will run a recovery roll for it).
    const uint32_t pre_state = [&] {
        uint32_t worst = 0;
        int fd = ::open(path.c_str(), O_RDONLY);
        uint8_t page[4096];
        if (fd >= 0 && ::read(fd, page, sizeof page) ==
                           static_cast<ssize_t>(sizeof page)) {
            uint32_t nshards = 0;
            std::memcpy(&nshards, page + 8, 4);
            if (nshards < 1 || nshards > kSaneShardCap) nshards = 1;
            for (unsigned s = 0; s < nshards; ++s)
                worst = std::max(worst, read_shard_header(page, s).state);
        }
        if (fd >= 0) ::close(fd);
        return worst;
    }();

    E::init(static_cast<size_t>(st.st_size), path);
    std::printf("engine      : %s\n", E::name());
    std::printf("shards      : %u\n", E::shard_count());
    std::printf("pre-attach  : worst shard %s\n", state_name(pre_state));
    bool all_consistent = true;
    for (unsigned sd = 0; sd < E::shard_count(); ++sd) {
        std::printf("-- shard %u --\n", sd);
        std::printf("post-attach : %s (recovery %s)\n",
                    state_name(E::state(sd)),
                    pre_state == 0 ? "not needed" : "completed");
        std::printf("used bytes  : %llu / %zu main\n",
                    (unsigned long long)E::used_bytes(sd), E::main_size());

        auto& alloc = E::allocator(sd);
        std::printf("allocator   : %llu live allocations, %llu live bytes, "
                    "wilderness at %llu\n",
                    (unsigned long long)alloc.alloc_count(),
                    (unsigned long long)alloc.allocated_bytes(),
                    (unsigned long long)alloc.wilderness_offset());
        const size_t chunks = alloc.check_consistency();
        std::printf("heap walk   : %s (%zu chunks)\n",
                    chunks > 0 ? "CONSISTENT" : "CORRUPT", chunks);

        int roots = 0;
        for (int i = 0; i < kMaxRootObjects; ++i)
            if (E::template get_object<void>(i, sd) != nullptr) {
                std::printf("root[%2d]    : %p\n", i,
                            E::template get_object<void>(i, sd));
                ++roots;
            }
        if (roots == 0) std::printf("roots       : (none set)\n");

        const bool twins_equal =
            std::memcmp(E::main_base(sd), E::back_base(sd),
                        E::used_bytes(sd)) == 0;
        std::printf("twin copies : %s\n",
                    twins_equal ? "byte-identical" : "DIVERGED (BUG)");
        all_consistent = all_consistent && chunks > 0 && twins_equal;
    }
    E::close();
    return all_consistent ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: heap_inspect <heap-file> [--engine nl|log|lr] "
                     "[--no-recover]\n");
        return 2;
    }
    const std::string path = argv[1];
    std::string engine = "log";
    bool raw = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc)
            engine = argv[++i];
        else if (std::strcmp(argv[i], "--no-recover") == 0)
            raw = true;
    }
    if (raw) return inspect_raw(path);
    if (engine == "nl") return inspect_engine<RomulusNL>(path);
    if (engine == "lr") return inspect_engine<RomulusLR>(path);
    return inspect_engine<RomulusLog>(path);
}
