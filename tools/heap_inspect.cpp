// heap_inspect: operator tool that opens a Romulus heap file read-only-ish
// and reports its persistent state — header fields, crash disposition,
// allocator statistics, root table occupancy and a full heap-walk
// consistency check.  Useful after a crash to see what recovery will do
// before letting an application attach.
//
//   build/tools/heap_inspect <heap-file> [--engine nl|log|lr]
//
// NOTE: attaching runs recovery (by design: Algorithm 1 makes attach safe);
// pass --no-recover to inspect the raw header without mapping the engine.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/romulus.hpp"

using namespace romulus;

namespace {

// Raw header mirror (matches RomulusEngine<...>::PHeader's layout).
struct RawHeader {
    uint64_t magic;
    uint32_t state;
    uint64_t used_size;
    uint64_t main_size;
    uint64_t region_size;
};

const char* state_name(uint32_t s) {
    switch (s) {
        case 0: return "IDL (both copies consistent)";
        case 1: return "MUT (crashed mid-transaction: back is consistent, "
                       "recovery will copy back->main)";
        case 2: return "CPY (crashed mid-replication: main is consistent, "
                       "recovery will copy main->back)";
    }
    return "CORRUPT";
}

int inspect_raw(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    RawHeader h{};
    // The on-disk header begins with magic (8B aligned), then state,
    // used_size, main_size, region_size — read the first 64 B and decode.
    uint8_t buf[64];
    if (::read(fd, buf, sizeof buf) != sizeof buf) {
        std::fprintf(stderr, "short read\n");
        ::close(fd);
        return 1;
    }
    ::close(fd);
    std::memcpy(&h.magic, buf + 0, 8);
    std::memcpy(&h.state, buf + 8, 4);
    std::memcpy(&h.used_size, buf + 16, 8);
    std::memcpy(&h.main_size, buf + 24, 8);
    std::memcpy(&h.region_size, buf + 32, 8);

    std::printf("raw header of %s:\n", path.c_str());
    std::printf("  magic       : 0x%016llx\n", (unsigned long long)h.magic);
    std::printf("  state       : %u — %s\n", h.state, state_name(h.state));
    std::printf("  used bytes  : %llu (%.2f MB)\n",
                (unsigned long long)h.used_size,
                double(h.used_size) / (1 << 20));
    std::printf("  main size   : %llu\n", (unsigned long long)h.main_size);
    std::printf("  region size : %llu\n", (unsigned long long)h.region_size);
    return 0;
}

template <typename E>
int inspect_engine(const std::string& path) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "cannot stat %s\n", path.c_str());
        return 1;
    }
    const uint32_t pre_state = [&] {
        RawHeader h{};
        int fd = ::open(path.c_str(), O_RDONLY);
        uint8_t buf[64];
        if (fd >= 0 && ::read(fd, buf, sizeof buf) == sizeof buf)
            std::memcpy(&h.state, buf + 8, 4);
        if (fd >= 0) ::close(fd);
        return h.state;
    }();

    E::init(static_cast<size_t>(st.st_size), path);
    std::printf("engine      : %s\n", E::name());
    std::printf("pre-attach  : %s\n", state_name(pre_state));
    std::printf("post-attach : %s (recovery %s)\n", state_name(E::state()),
                pre_state == 0 ? "not needed" : "completed");
    std::printf("used bytes  : %llu / %zu main\n",
                (unsigned long long)E::used_bytes(), E::main_size());

    auto& alloc = E::allocator();
    std::printf("allocator   : %llu live allocations, %llu live bytes, "
                "wilderness at %llu\n",
                (unsigned long long)alloc.alloc_count(),
                (unsigned long long)alloc.allocated_bytes(),
                (unsigned long long)alloc.wilderness_offset());
    const size_t chunks = alloc.check_consistency();
    std::printf("heap walk   : %s (%zu chunks)\n",
                chunks > 0 ? "CONSISTENT" : "CORRUPT", chunks);

    int roots = 0;
    for (int i = 0; i < kMaxRootObjects; ++i)
        if (E::template get_object<void>(i) != nullptr) {
            std::printf("root[%2d]    : %p\n", i, E::template get_object<void>(i));
            ++roots;
        }
    if (roots == 0) std::printf("roots       : (none set)\n");

    const bool twins_equal =
        std::memcmp(E::main_base(), E::back_base(), E::used_bytes()) == 0;
    std::printf("twin copies : %s\n",
                twins_equal ? "byte-identical" : "DIVERGED (BUG)");
    E::close();
    return chunks > 0 && twins_equal ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: heap_inspect <heap-file> [--engine nl|log|lr] "
                     "[--no-recover]\n");
        return 2;
    }
    const std::string path = argv[1];
    std::string engine = "log";
    bool raw = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc)
            engine = argv[++i];
        else if (std::strcmp(argv[i], "--no-recover") == 0)
            raw = true;
    }
    if (raw) return inspect_raw(path);
    if (engine == "nl") return inspect_engine<RomulusNL>(path);
    if (engine == "lr") return inspect_engine<RomulusLR>(path);
    return inspect_engine<RomulusLog>(path);
}
