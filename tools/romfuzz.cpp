// romfuzz — seeded randomized crash-consistency fuzzing over RomulusDB
// (docs/romfuzz.md).
//
// Generates randomized KV workloads (mixed GET/PUT/DEL/cross-shard BATCH,
// value-size and key-skew knobs, optional concurrent optimistic readers)
// over every engine × shard count, records each episode's persist-event
// stream, and model-checks the recovered state of crash images against the
// committed history:
//
//   * explore mode — every history's persist graph is handed to
//     crash_explorer for down-closed-cut image enumeration; every image runs
//     real engine recovery and must be a prefix-consistent image of the
//     committed history (model_oracle.hpp).
//   * fork mode — the trace re-executes in forked children killed at random
//     fences (the test_crash_fork machinery); the parent recovers the shared
//     heap and runs the same oracle, with the child's reported commit count
//     tightening the admissible window.
//
// Every failure emits a self-contained repro bundle — the trace file carries
// the seed, the op log, the access log, and the explore parameters + cut id
// (or fence) that failed — which `romfuzz --replay FILE` re-executes
// deterministically, byte-for-byte (the access-log digest is compared).
//
//   romfuzz [--engine all|nl|log|lr|undo|redo] [--shards 1,4] [--iters N]
//           [--seed N] [--mode explore|fork|both] [--ops N] [--setup N]
//           [--keys N] [--value-max N] [--batch-ops N] [--readers N]
//           [--budget N] [--window-samples N] [--exhaustive-cap N]
//           [--fork-crashes N] [--heap-mb N] [--out DIR]
//           [--mutate none|elide-fence|reorder-state] [--expect-violations]
//           [--replay FILE]
//
// Exit status: 0 when every history is clean (or, with --expect-violations,
// when at least one violation was found and its bundle written), 1
// otherwise, 2 on usage errors.  ReadConfig/CommitConfig knobs are seeded
// from ROMULUS_* environment variables (apply_env_tuning), so CI legs sweep
// optimistic-on/off and combine_rescans without recompiling.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/romfuzz.hpp"
#include "baselines/redolog.hpp"
#include "baselines/undolog.hpp"
#include "core/romulus.hpp"

namespace {

using namespace romulus;
using namespace romulus::analysis;

struct Cli {
    std::string engine = "all";
    std::vector<unsigned> shards = {1, 4};
    uint64_t iters = 4;
    uint64_t seed = 1;
    std::string mode = "explore";
    GenConfig gen;
    unsigned readers = 0;
    uint64_t budget = 128;
    uint64_t window_samples = 6;
    uint64_t exhaustive_cap = 64;
    unsigned fork_crashes = 3;
    size_t heap_mb = 16;
    std::string out = "romfuzz-out";
    std::string mutate = "none";
    bool expect_violations = false;
    std::string replay;
    std::string path;
};

[[noreturn]] void usage(const std::string& err) {
    if (!err.empty()) std::cerr << "romfuzz: " << err << "\n";
    std::cerr
        << "usage: romfuzz [--engine all|nl|log|lr|undo|redo] [--shards 1,4]"
           " [--iters N] [--seed N] [--mode explore|fork|both] [--ops N]"
           " [--setup N] [--keys N] [--value-max N] [--batch-ops N]"
           " [--readers N] [--budget N] [--window-samples N]"
           " [--exhaustive-cap N] [--fork-crashes N] [--heap-mb N]"
           " [--out DIR] [--mutate none|elide-fence|reorder-state]"
           " [--expect-violations] [--replay FILE] [--path FILE]\n";
    std::exit(2);
}

struct Totals {
    uint64_t histories = 0;
    double cuts = 0;
    uint64_t fork_crashes = 0;
    uint64_t violations = 0;
    uint64_t bundles = 0;
    std::vector<std::string> failures;
};

std::string bundle_path(const Cli& cli, const std::string& engine,
                        unsigned shards, uint64_t seed) {
    std::ostringstream os;
    os << cli.out << "/romfuzz_" << engine << "_s" << shards << "_seed" << seed
       << ".trace";
    return os.str();
}

ExploreOptions explore_opts(const Cli& cli) {
    ExploreOptions o;
    o.max_cuts = cli.budget;
    o.window_samples = cli.window_samples;
    o.window_exhaustive_cap = cli.exhaustive_cap;
    o.max_failures = 8;
    return o;
}

template <typename E>
void run_engine(const std::string& name, const Cli& cli, Totals& tot) {
    for (unsigned shards : cli.shards) {
        if (!KvFacade<E>::kSharded && shards != 1) continue;
        FuzzConfig cfg;
        cfg.path = cli.path.empty()
                       ? "/dev/shm/romfuzz_" + name + "_" +
                             std::to_string(::getpid()) + ".heap"
                       : cli.path + "." + name;
        cfg.heap_bytes = cli.heap_mb << 20;
        cfg.shards = shards;
        cfg.gen = cli.gen;
        cfg.readers = cli.readers;
        FuzzHarness<E> harness(cfg);

        uint64_t engine_viol = 0;
        for (uint64_t it = 0; it < cli.iters; ++it) {
            const uint64_t seed = cli.seed + it;
            ++tot.histories;
            if (cli.mode == "explore" || cli.mode == "both") {
                ExploreOptions opts = explore_opts(cli);
                opts.seed = seed * 0x9E3779B97F4A7C15ull + 1;
                FuzzResult res = harness.run_trace(harness.generate(seed), opts);
                tot.cuts += double(res.report.cuts_explored);
                if (!res.ok()) {
                    tot.violations += res.violations();
                    engine_viol += res.violations();
                    for (const auto& f : res.failures)
                        if (tot.failures.size() < 32)
                            tot.failures.push_back(name + ": " + f);
                    if (tot.bundles < 8 && !res.violating_cuts.empty()) {
                        res.trace.has_repro = true;
                        res.trace.repro.mode = 0;
                        res.trace.repro.explore_seed = opts.seed;
                        res.trace.repro.max_cuts = opts.max_cuts;
                        res.trace.repro.window_exhaustive_cap =
                            opts.window_exhaustive_cap;
                        res.trace.repro.window_samples = opts.window_samples;
                        res.trace.repro.cut_index = res.violating_cuts.front();
                        const std::string bp =
                            bundle_path(cli, name, shards, seed);
                        res.trace.save(bp);
                        std::cout << "  repro bundle: " << bp << "\n";
                        ++tot.bundles;
                    }
                }
            }
            if (cli.mode == "fork" || cli.mode == "both") {
                TxTrace trace = harness.generate(seed);
                ForkResult fr =
                    harness.run_fork(trace, cli.fork_crashes, seed);
                tot.fork_crashes += fr.crashes;
                if (!fr.ok()) {
                    tot.violations += fr.violations;
                    engine_viol += fr.violations;
                    for (const auto& f : fr.failures)
                        if (tot.failures.size() < 32)
                            tot.failures.push_back(name + ": " + f);
                    if (tot.bundles < 8 && !fr.violating_fences.empty()) {
                        trace.has_repro = true;
                        trace.repro.mode = 1;
                        trace.repro.fence = fr.violating_fences.front();
                        const std::string bp =
                            bundle_path(cli, name, shards, seed);
                        trace.save(bp);
                        std::cout << "  repro bundle: " << bp << "\n";
                        ++tot.bundles;
                    }
                }
            }
        }
        std::cout << "engine " << name << " shards=" << shards << ": "
                  << cli.iters << " histories, "
                  << (engine_viol ? "VIOLATIONS" : "clean") << "\n";
    }
}

int replay_bundle(const Cli& cli) {
    TxTrace trace = TxTrace::load(cli.replay);
    const std::string name = engine_tag_name(trace.engine_id);
    std::cout << "replaying " << cli.replay << ": engine " << name
              << ", shards " << trace.shard_count << ", seed " << trace.seed
              << ", " << trace.subtxs.size() << " sub-txs ("
              << trace.setup_count << " setup)\n";
    const uint64_t stored_access =
        trace.access.streams.empty() ? 0 : trace.access.digest();

    auto replay = [&](auto tag) -> int {
        using E = decltype(tag);
        FuzzConfig cfg;
        cfg.path = "/dev/shm/romfuzz_replay_" + std::to_string(::getpid()) +
                   ".heap";
        cfg.heap_bytes = cli.heap_mb << 20;
        cfg.shards = trace.shard_count;
        FuzzHarness<E> harness(cfg);
        bool reproduced = false;
        uint64_t fresh_access = 0;
        if (trace.has_repro && trace.repro.mode == 1) {
            ForkResult fr = harness.run_fork_at(trace, {trace.repro.fence});
            reproduced = !fr.ok();
            for (const auto& f : fr.failures) std::cout << "  " << f << "\n";
        } else {
            ExploreOptions opts;
            if (trace.has_repro) {
                opts.seed = trace.repro.explore_seed;
                opts.max_cuts = trace.repro.max_cuts;
                opts.window_exhaustive_cap = trace.repro.window_exhaustive_cap;
                opts.window_samples = trace.repro.window_samples;
            } else {
                opts = explore_opts(cli);
                opts.seed = trace.seed * 0x9E3779B97F4A7C15ull + 1;
            }
            FuzzResult res = harness.run_trace(trace, opts);
            fresh_access = res.trace.access.digest();
            for (const auto& f : res.failures) std::cout << "  " << f << "\n";
            if (trace.has_repro) {
                for (uint64_t c : res.violating_cuts)
                    reproduced |= c == trace.repro.cut_index;
                std::cout << "  cut " << trace.repro.cut_index
                          << (reproduced ? " reproduced the violation"
                                         : " did NOT reproduce") << "\n";
            } else {
                reproduced = !res.ok();
                std::cout << res.report.summary() << "\n";
            }
        }
        if (stored_access != 0 && fresh_access != 0) {
            std::cout << "  access-log digest "
                      << (stored_access == fresh_access
                              ? "matches the bundle (byte-identical replay)"
                              : "DIFFERS from the bundle")
                      << "\n";
        }
        std::cout << (reproduced ? "ROMFUZZ REPRO OK" : "ROMFUZZ REPRO FAIL")
                  << "\n";
        return reproduced ? 0 : 1;
    };

    switch (trace.engine_id) {
        case kEngineRomulusNL: return replay(RomulusNL{});
        case kEngineRomulusLog: return replay(RomulusLog{});
        case kEngineRomulusLR: return replay(RomulusLR{});
        case kEngineUndoLog: return replay(baselines::UndoLogPTM{});
        case kEngineRedoLog: return replay(baselines::RedoLogPTM{});
        default:
            std::cerr << "romfuzz: bundle names an unknown engine\n";
            return 2;
    }
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) usage(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (a == "--engine") cli.engine = next("--engine");
        else if (a == "--shards") {
            cli.shards.clear();
            std::stringstream ss(next("--shards"));
            for (std::string tok; std::getline(ss, tok, ',');)
                cli.shards.push_back(unsigned(std::stoul(tok)));
            if (cli.shards.empty()) usage("--shards needs a list like 1,4");
        }
        else if (a == "--iters") cli.iters = std::stoull(next(a.c_str()));
        else if (a == "--seed") cli.seed = std::stoull(next(a.c_str()));
        else if (a == "--mode") cli.mode = next("--mode");
        else if (a == "--ops")
            cli.gen.episode_ops = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--setup")
            cli.gen.setup_ops = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--keys")
            cli.gen.key_space = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--value-max")
            cli.gen.value_max = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--batch-ops")
            cli.gen.batch_ops = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--readers")
            cli.readers = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--budget") cli.budget = std::stoull(next(a.c_str()));
        else if (a == "--window-samples")
            cli.window_samples = std::stoull(next(a.c_str()));
        else if (a == "--exhaustive-cap")
            cli.exhaustive_cap = std::stoull(next(a.c_str()));
        else if (a == "--fork-crashes")
            cli.fork_crashes = unsigned(std::stoul(next(a.c_str())));
        else if (a == "--heap-mb") cli.heap_mb = std::stoull(next(a.c_str()));
        else if (a == "--out") cli.out = next("--out");
        else if (a == "--mutate") cli.mutate = next("--mutate");
        else if (a == "--expect-violations") cli.expect_violations = true;
        else if (a == "--replay") cli.replay = next("--replay");
        else if (a == "--path") cli.path = next("--path");
        else if (a == "--help" || a == "-h") usage("");
        else usage("unknown argument " + a);
    }
    if (cli.mode != "explore" && cli.mode != "fork" && cli.mode != "both")
        usage("unknown --mode " + cli.mode);

    if (std::string tuned = apply_env_tuning(); !tuned.empty())
        std::cout << "env tuning: " << tuned << "\n";

    if (cli.mutate != "none") {
        if (cli.mutate != "elide-fence" && cli.mutate != "reorder-state")
            usage("unknown --mutate " + cli.mutate);
        if (!kPersistGraphEnabled) {
            std::cerr << "romfuzz: --mutate requires a -DROMULUS_PERSISTGRAPH "
                         "build (this binary was built without it)\n";
            return 2;
        }
        if (cli.engine == "undo" || cli.engine == "redo")
            usage("--mutate applies to the Romulus engines only");
        protocol_mutations().elide_commit_fence = cli.mutate == "elide-fence";
        protocol_mutations().reorder_state_persist =
            cli.mutate == "reorder-state";
    }

    try {
        if (!cli.replay.empty()) return replay_bundle(cli);

        ::mkdir(cli.out.c_str(), 0755);
        Totals tot;
        auto want = [&](const char* n) {
            return cli.engine == "all" || cli.engine == n;
        };
        if (want("nl")) run_engine<RomulusNL>("nl", cli, tot);
        if (want("log")) run_engine<RomulusLog>("log", cli, tot);
        if (want("lr")) run_engine<RomulusLR>("lr", cli, tot);
        if (cli.mutate == "none") {
            if (want("undo"))
                run_engine<baselines::UndoLogPTM>("undo", cli, tot);
            if (want("redo"))
                run_engine<baselines::RedoLogPTM>("redo", cli, tot);
        }
        if (tot.histories == 0) usage("no engine matched " + cli.engine);

        std::cout << "romfuzz: " << tot.histories << " histories, "
                  << uint64_t(tot.cuts) << " crash images explored, "
                  << tot.fork_crashes << " fork-crashes, " << tot.violations
                  << " violations, " << tot.bundles << " repro bundles\n";
        for (const auto& f : tot.failures) std::cout << "  " << f << "\n";
        const bool pass = cli.expect_violations
                              ? (tot.violations > 0 && tot.bundles > 0)
                              : tot.violations == 0;
        std::cout << (pass ? "ROMFUZZ PASS" : "ROMFUZZ FAIL")
                  << (cli.expect_violations ? " (expected violations)" : "")
                  << "\n";
        return pass ? 0 : 1;
    } catch (const std::exception& ex) {
        std::cerr << "romfuzz: " << ex.what() << "\n";
        return 2;
    }
}
