#!/usr/bin/env python3
"""romlint: interposition lint for Romulus persistent data structures.

Every byte of persistent state must be written through the persist<T>
interposition layer (p<T> assignment, PTM::store_range/zero_range): that is
what guarantees the store is range-logged, flushed, and replicated by the
engine (Algorithm 1).  A store that bypasses the wrappers compiles, runs, and
silently produces a heap that does not survive crashes — the exact class of
bug the PersistencyChecker (src/pmem/checker.hpp) catches at runtime.  This
lint catches the common bypass patterns statically, at review time.

Rules
-----
  raw-field       A struct/class that holds persistent state (i.e. has at
                  least one p<...> member) also declares a plain, unwrapped
                  data member.  Stores to it bypass interposition entirely.
  raw-deref-write An assignment through a dereference (`*ptr = ...`,
                  `(*ptr).f = ...`): persist<T>::operator* returns a raw
                  reference, so this is the canonical way to accidentally
                  skip pstore.
  raw-memcpy      Direct memcpy/memmove/memset: persistent destinations must
                  use PTM::store_range / PTM::zero_range.  Read-direction
                  copies (persistent source, volatile destination) are fine —
                  annotate them.
  direct-pstore   Calling pstore() directly instead of assigning through a
                  p<T> member: it works, but it hard-codes the interposition
                  policy at the call site and breaks engines that need the
                  wrapper types (e.g. synthetic-pointer redirection).
  raw-ptr-escape  A raw pointer declared outside a readTx/updateTx lambda is
                  assigned persistent state (get_object<>, pload(), .addr())
                  inside it.  The pointer outlives the transaction: a
                  RomulusLR reader may hold a synthetic back-region pointer
                  that is invalid once it departs, and in general the object
                  may be freed or superseded by the time the pointer is used.
  barren-pfence   A pfence() with no pwb/persist_copy ordered before it in
                  the same function body.  Either the write-back is missing
                  (the stores this fence was meant to order can still persist
                  after it — the exact bug romver's persist-order rules catch
                  dynamically) or the fence is dead cost.  Fences that drain
                  a *caller's* write-backs by design must be annotated.

Allowlist annotations
---------------------
A violation is suppressed by a comment on the same line or the line above:

    // romlint: allow(raw-memcpy) read-direction copy out of the heap
    std::memcpy(out, n->value_bytes(), vs);

File-wide suppression (e.g. a volatile helper struct in a ds header):

    // romlint: allow-file(raw-field) volatile iterator state

Usage
-----
    romlint.py [paths...] [--expect-all-rules] [--list-rules] [-q]

With no paths, scans src/ds and src/db of the repo the script lives in.
Exit status: 0 = clean, 1 = violations found, 2 = usage/IO error.
--expect-all-rules inverts the contract for fixture tests: exit 0 only if
every rule fired at least once.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = ("raw-field", "raw-deref-write", "raw-memcpy", "direct-pstore",
         "raw-ptr-escape", "barren-pfence")

ALLOW_RE = re.compile(r"romlint:\s*allow\(([a-z-,\s]+)\)")
ALLOW_FILE_RE = re.compile(r"romlint:\s*allow-file\(([a-z-,\s]+)\)")

# A p<...> / persist<...> wrapped member declaration.
P_MEMBER_RE = re.compile(r"^\s*(?:typename\s+)?(?:[A-Za-z_]\w*::)*(?:p|persist)\s*<")
# Start of a struct/class definition (possibly 'struct alignas(64) Name {').
STRUCT_RE = re.compile(r"^\s*(?:struct|class)\s+(?:alignas\s*\([^)]*\)\s*)?([A-Za-z_]\w*)?[^;]*$")
# Assignment through a dereference: a statement that starts with '*expr' or
# '(*expr)' and contains an assignment operator (excluding ==/<=/>=/!=).
DEREF_WRITE_RE = re.compile(
    r"^\s*(?:\*\s*[A-Za-z_(]|\(\s*\*)[^;]*?(?<![=!<>])=(?!=)"
)
MEMCPY_RE = re.compile(r"(?<![\w.])(?:std\s*::\s*)?(?:memcpy|memmove|memset)\s*\(")
PSTORE_RE = re.compile(r"(?<![\w])(?:[\w:.>-]*(?:\.|->|::))?pstore\s*(?:<[^;()]*>)?\s*\(")
# A raw-pointer local/member declaration: `Node* n = ...;`, `auto* n;`, etc.
PTR_DECL_RE = re.compile(
    r"^\s*(?:auto|(?:const\s+)?[A-Za-z_]\w*(?:::\w+)*(?:\s*<[^;={}]*>)?)"
    r"\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*(?:=[^=].*)?;")
# Entry into a transaction lambda (the body opens on the same line).
TX_ENTRY_RE = re.compile(r"(?<!\w)(?:readTx|updateTx)\s*(?:<[^(]*>)?\s*\(")
# A bare `name = <rhs>` statement (the raw-ptr-escape candidate shape).
TX_ASSIGN_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*=(?!=)(.*)$")
# RHS expressions that produce a pointer into the persistent heap.
ESCAPE_SRC_RE = re.compile(r"get_object\s*<|pload\s*\(|\.addr\s*\(")
# barren-pfence: fence and write-back call sites, and a function-body opener
# (an identifier'd parameter list whose `{` is on the same line; control-flow
# parens are excluded by keyword).
PFENCE_RE = re.compile(r"(?<!\w)(?:[\w:.>-]*(?:\.|->|::))?pfence\s*\(")
FLUSH_CALL_RE = re.compile(
    r"(?<!\w)(?:[\w:.>-]*(?:\.|->|::))?(?:pwb|persist_copy)\s*\(")
FUNC_OPEN_RE = re.compile(
    r"[\w>]\s*\([^;{}]*\)\s*(?:const\b|noexcept\b|override\b|final\b|\s)*\{")
CONTROL_KW_RE = re.compile(r"(?<!\w)(?:if|for|while|switch|catch|return)\s*\(")


def strip_comments_and_strings(line, in_block_comment):
    """Return (code, comment, still_in_block).  String/char literals become
    spaces in `code` so patterns never match inside them."""
    code = []
    comment = []
    i, n = 0, len(line)
    state = "block" if in_block_comment else "code"
    quote = ""
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "block":
            comment.append(c)
            if c == "*" and nxt == "/":
                comment.append(nxt)
                i += 1
                state = "code"
        elif state == "str":
            code.append(" ")
            if c == "\\":
                code.append(" ")
                i += 1
            elif c == quote:
                state = "code"
        else:  # code
            if c == "/" and nxt == "/":
                comment.append(line[i:])
                break
            if c == "/" and nxt == "*":
                comment.append("/*")
                i += 1
                state = "block"
            elif c in "\"'":
                code.append(" ")
                quote = c
                state = "str"
            else:
                code.append(c)
        i += 1
    return "".join(code), "".join(comment), state == "block"


def parse_allows(comment):
    out = set()
    for m in ALLOW_RE.finditer(comment):
        out.update(r.strip() for r in m.group(1).split(","))
    return out


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path, self.line_no, self.rule, self.message = (
            path, line_no, rule, message)

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def is_member_decl(code):
    """Heuristic: does this struct-body line declare a plain data member?"""
    s = code.strip()
    if not s.endswith(";") or s == ";":
        return False
    head = s[:-1].strip()
    if not head:
        return False
    # Not declarations: qualifiers, nested types, usings, functions, etc.
    if re.match(r"^(static|constexpr|using|typedef|friend|template|enum|struct"
                r"|class|public|private|protected|return|if|for|while|delete"
                r"|explicit|virtual|operator|~)\b", head):
        return False
    # A '(' before any '=' means function declaration (or ctor-style init):
    # not a plain member we can check.
    eq, par = head.find("="), head.find("(")
    if par != -1 and (eq == -1 or par < eq):
        return False
    # Needs a type followed by a name: two identifier-ish tokens.
    return re.match(r"^[\w:<>,\s*&\[\]]+[\s*&]\w+\s*(\[[^\]]*\])?"
                    r"(\s*[={].*)?$", head) is not None


def scan_file(path, text):
    violations = []
    file_allows = set()
    for m in ALLOW_FILE_RE.finditer(text):
        file_allows.update(r.strip() for r in m.group(1).split(","))

    lines = text.splitlines()
    in_block = False
    prev_allows = set()

    # struct-tracking state: stack of (name, brace_depth_at_entry,
    # [pending (line_no, code, allows) member decls], has_p_member)
    depth = 0
    struct_stack = []
    # raw-ptr-escape state: pointer name -> brace depth of its declaration,
    # plus a stack of brace depths at which a readTx/updateTx lambda opened.
    ptr_decls = {}
    tx_stack = []
    # barren-pfence state: stack of function bodies, each tracking whether a
    # pwb/persist_copy has been seen yet.  Lambdas don't push a frame, so a
    # fence inside one attributes to the enclosing function (lenient).
    func_stack = []

    for line_no, raw in enumerate(lines, 1):
        code, comment, in_block = strip_comments_and_strings(raw, in_block)
        allows = parse_allows(comment) | prev_allows | file_allows
        prev_allows = parse_allows(comment) if code.strip() == "" else set()

        def report(rule, message):
            if rule not in allows:
                violations.append(Violation(path, line_no, rule, message))

        # --- expression-level rules ------------------------------------
        if MEMCPY_RE.search(code):
            report("raw-memcpy",
                   "direct memcpy/memmove/memset: use PTM::store_range / "
                   "PTM::zero_range for persistent destinations (annotate "
                   "read-direction copies)")
        if PSTORE_RE.search(code):
            report("direct-pstore",
                   "direct pstore() call: assign through the p<T> member so "
                   "the engine's wrapper semantics apply")
        if DEREF_WRITE_RE.search(code):
            report("raw-deref-write",
                   "assignment through a dereference bypasses persist<T> "
                   "interposition (operator* returns a raw reference)")
        if func_stack:
            pfm = PFENCE_RE.search(code)
            flm = FLUSH_CALL_RE.search(code)
            if flm and (pfm is None or flm.start() < pfm.start()):
                func_stack[-1]["seen_flush"] = True
            if pfm and not func_stack[-1]["seen_flush"]:
                report("barren-pfence",
                       "pfence with no preceding pwb/persist_copy in this "
                       "function: the fence orders no write-back — add the "
                       "missing flush, or annotate if it drains a caller's "
                       "write-backs by design")
            if flm:
                func_stack[-1]["seen_flush"] = True

        # --- flow-level rule (raw-ptr-escape) --------------------------
        if tx_stack:
            am = TX_ASSIGN_RE.match(code)
            if am:
                name, rhs = am.group(1), am.group(2)
                decl_depth = ptr_decls.get(name)
                if (decl_depth is not None and decl_depth <= tx_stack[-1]
                        and ESCAPE_SRC_RE.search(rhs)):
                    report("raw-ptr-escape",
                           f"raw pointer '{name}' declared outside the "
                           f"transaction is assigned persistent state inside "
                           f"it; the pointer outlives the tx (stale for LR "
                           f"readers, freeable in general) — confine it to "
                           f"the lambda or copy the value out instead")
        pd = PTR_DECL_RE.match(code)
        if pd:
            ptr_decls[pd.group(1)] = depth
        if TX_ENTRY_RE.search(code):
            tx_stack.append(depth)

        # --- struct-level rule (raw-field) -----------------------------
        depth_before = depth
        sm = STRUCT_RE.match(code)
        opened_struct = False
        if sm and "{" in code and ";" not in code.split("{")[0]:
            struct_stack.append({"name": sm.group(1) or "<anon>",
                                 "entry_depth": depth_before,
                                 "members": [], "has_p": False})
            opened_struct = True
        # A line at exactly entry_depth+1 is a direct body line of the
        # innermost struct (method bodies are deeper and skipped).
        if (struct_stack and not opened_struct and
                depth_before == struct_stack[-1]["entry_depth"] + 1):
            if P_MEMBER_RE.match(code):
                struct_stack[-1]["has_p"] = True
            elif is_member_decl(code):
                struct_stack[-1]["members"].append((line_no, code.strip(),
                                                    allows))
        if (not opened_struct and FUNC_OPEN_RE.search(code)
                and not CONTROL_KW_RE.search(code)):
            func_stack.append({"entry_depth": depth_before,
                               "seen_flush": False})
        depth += code.count("{") - code.count("}")
        while tx_stack and depth <= tx_stack[-1]:
            tx_stack.pop()
        while func_stack and depth <= func_stack[-1]["entry_depth"]:
            func_stack.pop()
        if ptr_decls and "}" in code:
            ptr_decls = {k: v for k, v in ptr_decls.items() if v <= depth}
        while struct_stack and depth <= struct_stack[-1]["entry_depth"]:
            st = struct_stack.pop()
            if st["has_p"]:
                for m_line, m_code, m_allows in st["members"]:
                    if "raw-field" not in m_allows:
                        violations.append(Violation(
                            path, m_line, "raw-field",
                            f"unwrapped member in persistent struct "
                            f"'{st['name']}': `{m_code}` — wrap it in p<...> "
                            f"or annotate if volatile by design"))
    return violations


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories to scan "
                    "(default: src/ds and src/db of this repo)")
    ap.add_argument("--expect-all-rules", action="store_true",
                    help="fixture mode: exit 0 only if every rule fired")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    repo = Path(__file__).resolve().parent.parent
    roots = [Path(p) for p in args.paths] or [repo / "src" / "ds",
                                              repo / "src" / "db"]
    files = []
    for r in roots:
        if r.is_dir():
            files.extend(sorted(p for p in r.rglob("*")
                                if p.suffix in (".hpp", ".cpp", ".h", ".cc")))
        elif r.is_file():
            files.append(r)
        else:
            print(f"romlint: no such path: {r}", file=sys.stderr)
            return 2

    all_violations = []
    for f in files:
        try:
            text = f.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"romlint: cannot read {f}: {e}", file=sys.stderr)
            return 2
        all_violations.extend(scan_file(f, text))

    for v in all_violations:
        print(v)
    fired = {v.rule for v in all_violations}
    if args.expect_all_rules:
        missing = [r for r in RULES if r not in fired]
        if missing:
            print(f"romlint: rules that did not fire: {', '.join(missing)}",
                  file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"romlint: all {len(RULES)} rules fired "
                  f"({len(all_violations)} violations) as expected")
        return 0
    if all_violations:
        print(f"romlint: {len(all_violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"romlint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
