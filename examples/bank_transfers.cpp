// ACID demonstration with a real crash: a "bank" of persistent accounts,
// random transfers in durable transactions, and a child process that is
// killed in the middle of a transfer.  After recovery, the total balance is
// intact — money was neither created nor destroyed, because a transfer
// either happened entirely or not at all.
//
//   build/examples/bank_transfers          # run the full demo
//
// Internally: the parent forks a worker, the worker performs transfers and
// _exit()s mid-transaction, the parent re-opens the heap (recovery runs in
// init) and audits the books.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <random>

#include "core/romulus.hpp"

using romulus::RomulusLog;
template <typename T>
using p = RomulusLog::p<T>;

namespace {

constexpr int kAccounts = 64;
constexpr uint64_t kInitialBalance = 1000;
constexpr uint64_t kTotal = kAccounts * kInitialBalance;

struct Bank {
    p<uint64_t> balance[kAccounts];
    p<uint64_t> transfers_completed;
};

std::string heap_file() {
    return romulus::pmem::default_pmem_dir() + "/romulus_bank.heap";
}

uint64_t audit(Bank* bank) {
    uint64_t sum = 0;
    RomulusLog::readTx([&] {
        for (int i = 0; i < kAccounts; ++i) sum += bank->balance[i].pload();
    });
    return sum;
}

[[noreturn]] void worker() {
    RomulusLog::init(16u << 20, heap_file());
    auto* bank = RomulusLog::get_object<Bank>(0);
    std::mt19937_64 rng(::getpid());
    for (int i = 0;; ++i) {
        const int from = rng() % kAccounts;
        const int to = (from + 1 + rng() % (kAccounts - 1)) % kAccounts;
        const uint64_t amount = rng() % 100;
        if (i == 5000) {
            // Simulated power cut: die with the transfer half applied —
            // the money has left `from` but not yet arrived at `to`.
            RomulusLog::begin_transaction();
            bank->balance[from] -= amount;
            std::printf("worker: crashing mid-transfer (%llu debited, not "
                        "credited)...\n",
                        (unsigned long long)amount);
            std::fflush(stdout);
            _exit(1);
        }
        RomulusLog::updateTx([&] {
            if (bank->balance[from].pload() < amount) return;
            bank->balance[from] -= amount;
            bank->balance[to] += amount;
            bank->transfers_completed += 1u;
        });
    }
}

}  // namespace

int main() {
    romulus::pmem::set_profile(romulus::pmem::Profile::CLFLUSH);
    std::remove(heap_file().c_str());

    // Set up the bank.
    RomulusLog::init(16u << 20, heap_file());
    Bank* bank = nullptr;
    RomulusLog::updateTx([&] {
        bank = RomulusLog::tmNew<Bank>();
        for (int i = 0; i < kAccounts; ++i)
            bank->balance[i] = kInitialBalance;
        bank->transfers_completed = 0u;
        RomulusLog::put_object(0, bank);
    });
    std::printf("bank created: %d accounts x %llu = %llu total\n", kAccounts,
                (unsigned long long)kInitialBalance,
                (unsigned long long)kTotal);
    RomulusLog::close();
    std::fflush(stdout);  // don't let the child inherit buffered output

    // Run the worker until it "crashes".
    pid_t pid = fork();
    if (pid == 0) worker();  // never returns
    int status = 0;
    waitpid(pid, &status, 0);
    std::printf("worker died (status %d); re-opening the heap...\n", status);

    // Recovery happens inside init(); then audit.
    RomulusLog::init(16u << 20, heap_file());
    bank = RomulusLog::get_object<Bank>(0);
    const uint64_t total = audit(bank);
    uint64_t done = 0;
    RomulusLog::readTx([&] { done = bank->transfers_completed.pload(); });
    std::printf("after recovery: %llu transfers committed, total balance "
                "%llu (expected %llu) -> %s\n",
                (unsigned long long)done, (unsigned long long)total,
                (unsigned long long)kTotal,
                total == kTotal ? "BOOKS BALANCE" : "MONEY LOST — BUG!");
    RomulusLog::destroy();
    return total == kTotal ? 0 : 1;
}
