// Quickstart: the paper's Algorithms 2 & 3 — a persistent sorted linked
// list, created, used and destroyed inside Romulus transactions.
//
//   build/examples/quickstart           # first run: creates and fills
//   build/examples/quickstart           # second run: data is still there
//   build/examples/quickstart --clean   # deallocate and reset
//
// The heap lives in /dev/shm/romulus_quickstart.heap (override the
// directory with ROMULUS_PMEM_DIR).
#include <cstdio>
#include <cstring>

#include "core/romulus.hpp"
#include "ds/linked_list_set.hpp"

using romulus::RomulusLog;
using List = romulus::ds::LinkedListSet<RomulusLog, int64_t>;

int main(int argc, char** argv) {
    romulus::pmem::set_profile(romulus::pmem::Profile::CLFLUSH);
    RomulusLog::init(32u << 20,
                     romulus::pmem::default_pmem_dir() + "/romulus_quickstart.heap");

    if (argc > 1 && std::strcmp(argv[1], "--clean") == 0) {
        // Algorithm 3, lines 15-21: deallocate and remove from NVM.
        RomulusLog::updateTx([&] {
            if (auto* set = RomulusLog::get_object<List>(0)) {
                RomulusLog::tmDelete(set);
                RomulusLog::put_object(0, nullptr);
            }
        });
        std::printf("list deallocated; heap is empty again\n");
        RomulusLog::close();
        return 0;
    }

    // Algorithm 3, lines 2-8: create the list if this is the first run.
    List* set = RomulusLog::get_object<List>(0);
    if (set == nullptr) {
        RomulusLog::updateTx([&] {
            set = RomulusLog::tmNew<List>();
            RomulusLog::put_object(0, set);
        });
        std::printf("fresh heap: created a new persistent list\n");
    } else {
        std::printf("existing heap: found a list with %llu elements\n",
                    (unsigned long long)set->size());
    }

    // Algorithm 3, lines 10-13: operate on it with durable transactions.
    set->add(33);
    set->add(42);
    set->add(7);
    if (!set->contains(33)) {
        std::fprintf(stderr, "BUG: 33 should be in the set\n");
        return 1;
    }

    std::printf("list contents (sorted): ");
    set->for_each([](int64_t k) { std::printf("%lld ", (long long)k); });
    std::printf("\nevery add() above was durable before it returned —\n"
                "run me again and the data will still be here.\n");

    RomulusLog::close();
    return 0;
}
