// RomulusDB as a tiny persistent key-value CLI (§6.4), demonstrating the
// LevelDB-style API: put/get/del, atomic write batches and full scans, with
// all data surviving across invocations.
//
//   build/examples/kvstore_cli put name romulus
//   build/examples/kvstore_cli put twin remus
//   build/examples/kvstore_cli get name
//   build/examples/kvstore_cli list
//   build/examples/kvstore_cli batch put a 1 put b 2 del name
//   build/examples/kvstore_cli del twin
//   build/examples/kvstore_cli stats
#include <cstdio>
#include <cstring>

#include "db/romulusdb.hpp"

using romulus::db::RomulusDB;
using romulus::db::WriteBatch;
using romulus::db::WriteOptions;

namespace {

void usage() {
    std::fprintf(stderr,
                 "usage: kvstore_cli put <key> <value> | get <key> | "
                 "del <key> | list | stats | batch (put <k> <v> | del <k>)...\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    romulus::pmem::set_profile(romulus::pmem::Profile::CLFLUSH);
    auto db = RomulusDB::open(
        romulus::pmem::default_pmem_dir() + "/romulus_kvstore.heap", 64u << 20);
    WriteOptions wo;
    const std::string cmd = argv[1];

    if (cmd == "put" && argc == 4) {
        db->put(wo, argv[2], argv[3]);
        std::printf("OK (durable)\n");
    } else if (cmd == "get" && argc == 3) {
        std::string v;
        if (db->get(argv[2], &v)) {
            std::printf("%s\n", v.c_str());
        } else {
            std::printf("(not found)\n");
            return 1;
        }
    } else if (cmd == "del" && argc == 3) {
        std::printf(db->del(wo, argv[2]) ? "deleted\n" : "(not found)\n");
    } else if (cmd == "list") {
        db->for_each([](std::string_view k, std::string_view v) {
            std::printf("%.*s = %.*s\n", int(k.size()), k.data(),
                        int(v.size()), v.data());
        });
    } else if (cmd == "stats") {
        std::printf("%llu keys\n", (unsigned long long)db->size());
    } else if (cmd == "batch" && argc > 2) {
        // All operations commit atomically in one durable transaction.
        WriteBatch batch;
        for (int i = 2; i < argc;) {
            if (std::strcmp(argv[i], "put") == 0 && i + 2 < argc) {
                batch.put(argv[i + 1], argv[i + 2]);
                i += 3;
            } else if (std::strcmp(argv[i], "del") == 0 && i + 1 < argc) {
                batch.del(argv[i + 1]);
                i += 2;
            } else {
                usage();
                return 2;
            }
        }
        db->write(wo, batch);
        std::printf("batch of %zu ops committed atomically\n", batch.size());
    } else {
        usage();
        return 2;
    }
    return 0;
}
