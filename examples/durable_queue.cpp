// Durable work queue: jobs survive crashes.  A producer enqueues jobs, a
// "flaky" consumer processes them but crashes partway; on restart, exactly
// the unprocessed jobs remain — nothing is lost, nothing runs twice,
// because dequeue + mark-processed happen in one durable transaction.
//
//   build/examples/durable_queue
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <optional>

#include "core/romulus.hpp"
#include "ds/pqueue.hpp"

using romulus::RomulusLog;
template <typename T>
using p = RomulusLog::p<T>;
using Queue = romulus::ds::PQueue<RomulusLog, uint64_t>;

namespace {

struct JobLedger {
    p<uint64_t> processed_count;
    p<uint64_t> processed_sum;  // checksum of completed job ids
};

std::string heap_file() {
    return romulus::pmem::default_pmem_dir() + "/romulus_queue.heap";
}

[[noreturn]] void flaky_consumer() {
    RomulusLog::init(16u << 20, heap_file());
    auto* q = RomulusLog::get_object<Queue>(0);
    auto* ledger = RomulusLog::get_object<JobLedger>(1);
    int handled = 0;
    for (;;) {
        // Dequeue + record completion in ONE transaction: a crash between
        // the two is impossible, so a job is either still queued or fully
        // accounted — never lost, never double-counted.
        bool empty = false;
        RomulusLog::updateTx([&] {
            std::optional<uint64_t> job = q->dequeue();
            if (!job) {
                empty = true;
                return;
            }
            ledger->processed_count += 1u;
            ledger->processed_sum += *job;
        });
        if (empty) _exit(0);
        if (++handled == 40) {
            std::printf("consumer: crash after %d jobs!\n", handled);
            std::fflush(stdout);
            _exit(9);  // power cut mid-shift
        }
    }
}

}  // namespace

int main() {
    romulus::pmem::set_profile(romulus::pmem::Profile::CLFLUSH);
    std::remove(heap_file().c_str());

    // Producer: enqueue 100 jobs (ids 1..100).
    RomulusLog::init(16u << 20, heap_file());
    RomulusLog::updateTx([&] {
        auto* q = RomulusLog::tmNew<Queue>();
        auto* ledger = RomulusLog::tmNew<JobLedger>();
        ledger->processed_count = 0u;
        ledger->processed_sum = 0u;
        RomulusLog::put_object(0, q);
        RomulusLog::put_object(1, ledger);
    });
    auto* q = RomulusLog::get_object<Queue>(0);
    for (uint64_t id = 1; id <= 100; ++id) q->enqueue(id);
    std::printf("producer: enqueued 100 jobs (sum of ids = %llu)\n",
                (unsigned long long)(100 * 101 / 2));
    RomulusLog::close();
    std::fflush(stdout);

    // Consumers crash and restart until the queue drains.
    int restarts = 0;
    for (;;) {
        pid_t pid = fork();
        if (pid == 0) flaky_consumer();
        int status = 0;
        waitpid(pid, &status, 0);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) break;
        ++restarts;
        std::printf("restarting consumer (#%d)...\n", restarts);
    }

    // Audit the books.
    RomulusLog::init(16u << 20, heap_file());
    auto* ledger = RomulusLog::get_object<JobLedger>(1);
    uint64_t count = 0, sum = 0, still_queued = 0;
    RomulusLog::readTx([&] {
        count = ledger->processed_count.pload();
        sum = ledger->processed_sum.pload();
    });
    still_queued = RomulusLog::get_object<Queue>(0)->size();
    std::printf("done after %d crashes: %llu processed (sum %llu), %llu left "
                "-> %s\n",
                restarts, (unsigned long long)count, (unsigned long long)sum,
                (unsigned long long)still_queued,
                (count == 100 && sum == 5050 && still_queued == 0)
                    ? "EVERY JOB RAN EXACTLY ONCE"
                    : "ACCOUNTING BROKEN — BUG!");
    RomulusLog::destroy();
    return (count == 100 && sum == 5050) ? 0 : 1;
}
