// Wait-free readers with RomulusLR (§5.3): reader threads scan a persistent
// hash map continuously while a writer churns it; the demo prints per-second
// read/write rates and verifies that readers always observe a consistent
// snapshot (never a torn update), thanks to Left-Right's two-instance
// discipline over the twin copies.
//
//   build/examples/concurrent_readers [seconds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "core/romulus.hpp"
#include "ds/hash_map.hpp"

using romulus::RomulusLR;
using Map = romulus::ds::HashMap<RomulusLR, uint64_t>;

namespace {

// The writer maintains the invariant "key k present <=> k+1000 present"
// by inserting/removing pairs atomically; a reader seeing one half of a
// pair would prove a torn (non-linearizable) read.
constexpr uint64_t kPairs = 200;

}  // namespace

int main(int argc, char** argv) {
    const int seconds = argc > 1 ? std::atoi(argv[1]) : 3;
    romulus::pmem::set_profile(romulus::pmem::Profile::CLFLUSH);
    const std::string path =
        romulus::pmem::default_pmem_dir() + "/romulus_readers.heap";
    std::remove(path.c_str());
    RomulusLR::init(64u << 20, path);

    Map* map = nullptr;
    RomulusLR::updateTx([&] {
        map = RomulusLR::tmNew<Map>(256);
        RomulusLR::put_object(0, map);
    });

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0}, writes{0}, torn{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            std::mt19937_64 rng(r);
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t k = rng() % kPairs;
                // One read-only transaction sees both or neither element of
                // a pair — wait-free, never blocked by the writer.
                bool a = false, b = false;
                RomulusLR::readTx([&] {
                    a = map->contains(k);
                    b = map->contains(k + 1000);
                });
                if (a != b) torn.fetch_add(1);
                ++n;
            }
            reads.fetch_add(n);
        });
    }

    std::thread writer([&] {
        std::mt19937_64 rng(999);
        uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t k = rng() % kPairs;
            RomulusLR::updateTx([&] {
                if (map->contains(k)) {
                    map->remove(k);
                    map->remove(k + 1000);
                } else {
                    map->add(k);
                    map->add(k + 1000);
                }
            });
            ++n;
            std::this_thread::yield();
        }
        writes.fetch_add(n);
    });

    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    stop.store(true);
    for (auto& t : readers) t.join();
    writer.join();

    std::printf("in %d s: %.2fM wait-free read txs, %llu durable update txs, "
                "%llu torn reads (must be 0)\n",
                seconds, double(reads.load()) / 1e6,
                (unsigned long long)writes.load(),
                (unsigned long long)torn.load());
    RomulusLR::destroy();
    return torn.load() == 0 ? 0 : 1;
}
