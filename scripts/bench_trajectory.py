#!/usr/bin/env python3
"""bench_trajectory: append / regression-check the bench smoke artifacts.

The CI smoke jobs run bench_commit_path and bench_sharding with a short
measurement window and emit BENCH_<name>.json (bench_common.hpp JsonEmitter).
This script turns those artifacts into a *trajectory*: one JSONL line per
recorded run under bench/trajectory/<name>.jsonl, committed to the repo, so
the perf-relevant counters have a history the CI can diff against.

Metrics come in two classes:

  counter     Deterministic per-configuration counts (pwbs/tx, coalesced
              runs/tx, max concurrent writers).  These do not wobble with
              machine load — a change means the commit path changed.  The
              check fails when one regresses by more than --counter-threshold
              (default 10%).
  throughput  Wall-clock rates (ns/tx, puts/s, GiB/s).  CI runners are noisy,
              so the default --throughput-threshold is a deliberately
              generous 50%: it only catches collapses, not jitter.

Usage
-----
    bench_trajectory.py append BENCH_commit_path.json [--dir DIR] [--note S]
    bench_trajectory.py check  BENCH_commit_path.json [--dir DIR]
                               [--counter-threshold F] [--throughput-threshold F]

`append` flattens the artifact into {metric-key: value}, stamps it with the
current git commit, and appends to bench/trajectory/<bench>.jsonl.
`check` compares the artifact against the LAST committed trajectory point and
exits 1 listing every regression (0 when clean or when there is no history
yet).  Metric keys look like `tx_sweep[8192,coalesce+nt].pwbs_per_tx`.

Exit status: 0 = ok, 1 = regression(s), 2 = usage/IO error.
"""

import argparse
import datetime
import json
import subprocess
import sys
from pathlib import Path

# (metric-class, better-direction) per array-record field, keyed by the
# artifact's "bench" name.  `key` names the fields that identify a record.
SCHEMAS = {
    "commit_path": {
        "tx_sweep": {
            "key": ("footprint", "mode"),
            "metrics": {
                "pwbs_per_tx": ("counter", "lower"),
                "runs_per_tx": ("counter", "lower"),
                "ns_per_tx": ("throughput", "lower"),
            },
        },
        "persist_copy": {
            "key": ("bytes", "path"),
            "metrics": {"gib_s": ("throughput", "higher")},
        },
    },
    "readers": {
        "ab": {
            "key": ("engine", "threads", "mode"),
            "metrics": {
                "read_tx_per_sec": ("throughput", "higher"),
            },
        },
        "latency": {
            "key": ("engine", "mode"),
            "metrics": {
                "ns_per_read": ("throughput", "lower"),
            },
        },
    },
    "stripe": {
        "disjoint": {
            "key": ("engine", "threads", "mode"),
            "metrics": {
                # fp_commits stays in the artifact for humans but is not
                # gated: in a fixed wall-clock window it is as noisy as the
                # throughput it tracks.
                "tx_per_sec": ("throughput", "higher"),
            },
        },
        "conflict": {
            "key": ("engine", "threads", "mode"),
            "metrics": {
                "tx_per_sec": ("throughput", "higher"),
            },
        },
    },
    "sharding": {
        "sweep": {
            "key": ("threads", "shards"),
            "metrics": {
                "max_concurrent_writers": ("counter", "higher"),
                "puts_per_sec": ("throughput", "higher"),
            },
        },
        "direct_api": {
            "key": ("threads",),
            "metrics": {"puts_per_sec": ("throughput", "higher")},
        },
    },
}


def flatten(artifact):
    """Artifact JSON -> (bench_name, {metric_key: (value, class, direction)})."""
    bench = artifact.get("bench")
    schema = SCHEMAS.get(bench)
    if schema is None:
        raise ValueError(f"unknown bench '{bench}' "
                         f"(known: {', '.join(sorted(SCHEMAS))})")
    out = {}
    for array, spec in schema.items():
        for rec in artifact.get(array, []):
            ident = ",".join(str(rec[k]) for k in spec["key"])
            for field, (cls, direction) in spec["metrics"].items():
                if field in rec:
                    out[f"{array}[{ident}].{field}"] = (
                        float(rec[field]), cls, direction)
    if not out:
        raise ValueError(f"artifact for '{bench}' holds no known metrics")
    return bench, out


def git_head(repo):
    try:
        return subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_artifact(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_trajectory: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def last_point(traj_path):
    if not traj_path.exists():
        return None
    last = None
    with open(traj_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                last = line
    return json.loads(last) if last else None


def cmd_append(args, repo):
    artifact = load_artifact(args.artifact)
    bench, metrics = flatten(artifact)
    traj_dir = Path(args.dir) if args.dir else repo / "bench" / "trajectory"
    traj_dir.mkdir(parents=True, exist_ok=True)
    point = {
        "bench": bench,
        "commit": git_head(repo),
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "profile": artifact.get("profile", "unknown"),
        "metrics": {k: v for k, (v, _, _) in metrics.items()},
    }
    if args.note:
        point["note"] = args.note
    traj_path = traj_dir / f"{bench}.jsonl"
    with open(traj_path, "a", encoding="utf-8") as f:
        f.write(json.dumps(point, sort_keys=True) + "\n")
    print(f"bench_trajectory: appended {len(metrics)} metric(s) "
          f"to {traj_path} at {point['commit']}")
    return 0


def cmd_check(args, repo):
    artifact = load_artifact(args.artifact)
    bench, metrics = flatten(artifact)
    traj_dir = Path(args.dir) if args.dir else repo / "bench" / "trajectory"
    base = last_point(traj_dir / f"{bench}.jsonl")
    if base is None:
        print(f"bench_trajectory: no trajectory for '{bench}' yet — "
              f"nothing to check against")
        return 0
    thresholds = {"counter": args.counter_threshold,
                  "throughput": args.throughput_threshold}
    regressions, checked = [], 0
    for key, (value, cls, direction) in metrics.items():
        old = base["metrics"].get(key)
        if old is None:
            continue  # new configuration: no baseline
        checked += 1
        if old == 0:
            worse = value if direction == "lower" else -value
            rel = 1.0 if worse > 0 else 0.0
        elif direction == "lower":
            rel = (value - old) / abs(old)
        else:
            rel = (old - value) / abs(old)
        if rel > thresholds[cls]:
            regressions.append(
                f"  {key} [{cls}]: {old:g} -> {value:g} "
                f"({rel * 100:+.1f}% worse, limit {thresholds[cls] * 100:.0f}%)")
    point_id = f"{base.get('commit', '?')} ({base.get('date', '?')})"
    if regressions:
        print(f"bench_trajectory: {len(regressions)} regression(s) for "
              f"'{bench}' vs {point_id}:")
        print("\n".join(regressions))
        return 1
    print(f"bench_trajectory: '{bench}' ok — {checked} metric(s) within "
          f"thresholds vs {point_id}")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)
    for name in ("append", "check"):
        p = sub.add_parser(name)
        p.add_argument("artifact", help="BENCH_<name>.json from a bench run")
        p.add_argument("--dir", help="trajectory dir "
                       "(default: <repo>/bench/trajectory)")
        if name == "append":
            p.add_argument("--note", help="free-form annotation for the point")
        else:
            p.add_argument("--counter-threshold", type=float, default=0.10,
                           help="max relative regression for deterministic "
                           "counters (default 0.10)")
            p.add_argument("--throughput-threshold", type=float, default=0.50,
                           help="max relative regression for wall-clock "
                           "rates (default 0.50)")
    args = ap.parse_args(argv)
    repo = Path(__file__).resolve().parent.parent
    try:
        return (cmd_append if args.cmd == "append" else cmd_check)(args, repo)
    except ValueError as e:
        print(f"bench_trajectory: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
