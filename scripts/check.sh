#!/usr/bin/env bash
# Build/test matrix for CI and pre-merge checking.
#
#   scripts/check.sh [legs...]
#
# Legs (default: all, in this order):
#   default   RelWithDebInfo build + full ctest (tier-1)
#   werror    strict build: -Wall -Wextra -Werror (ROMULUS_WERROR=ON), no tests
#   asan      ASan/UBSan build (ROMULUS_SANITIZE=ON) + full ctest
#   tsan      TSan build (ROMULUS_TSAN=ON) + targeted concurrency tests
#   race      romrace build (ROMULUS_RACECHECK=ON) + full ctest, including
#             the positive-detection fixtures and the armed clean-suite run
#   persistgraph  romver build (ROMULUS_PERSISTGRAPH=ON) + full ctest
#             (including the seeded protocol-mutation fixtures), then the
#             romver CLI end to end: clean run over all five engines plus
#             both mutations under --expect-violations; reports land in
#             build/check/persistgraph/romver-reports/.  Also runs romfuzz
#             with the planted protocol mutations, which must produce a
#             replayable repro bundle.
#   fuzz      romfuzz leg (docs/romfuzz.md): seeded randomized histories
#             over all five engines x {1,4} shards, every enumerated crash
#             image recovered and model-checked, plus fork-and-crash
#             episodes.  Fixed seed and bounded budgets keep it
#             deterministic and fast; nightly runs raise the budget via
#             ROMFUZZ_ITERS / ROMFUZZ_CRASHES.  Repro bundles from any
#             failure land in build/check/fuzz/romfuzz-bundles/ (CI uploads
#             them as artifacts).
#
# Each leg uses its own build directory (build/check/<leg>) so the matrix
# never dirties the developer's ./build tree — and everything it writes
# (trees and configure/build logs) stays under build/, which .gitignore
# already covers, instead of littering the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
NPROC=$(nproc 2>/dev/null || echo 4)
CHECK_ROOT="build/check"
LEGS=("$@")
[ ${#LEGS[@]} -eq 0 ] && LEGS=(default werror asan tsan race persistgraph fuzz)

configure_build() { # <dir> <cmake-flags...>
    local dir=$1
    shift
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@" \
        > "$dir/configure.log" 2>&1 ||
        { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$NPROC" > "$dir/build.log" 2>&1 ||
        { tail -50 "$dir/build.log"; return 1; }
}

run_leg() {
    local leg=$1 dir="$CHECK_ROOT/$1"
    echo "=== leg: $leg ==="
    case "$leg" in
    default)
        configure_build "$dir"
        (cd "$dir" && ctest --output-on-failure)
        ;;
    werror)
        # Strict compile leg: the whole tree (library, tests, benches,
        # examples) must build warning-free.
        configure_build "$dir" -DROMULUS_WERROR=ON
        ;;
    asan)
        configure_build "$dir" -DROMULUS_SANITIZE=ON
        (cd "$dir" && ctest --output-on-failure)
        ;;
    tsan)
        # TSan reserves most of the address space for its shadow; both the
        # engines' preferred fixed heap bases (0x5X0000000000) and the
        # kernel-chosen MAP_SHARED fallback land outside TSan's app ranges
        # and the runtime aborts ("mmap at bad address").  So the TSan leg
        # covers the volatile synchronisation layer — spinlock, C-RW-WP,
        # read indicators, thread registry, flat combining, Left-Right —
        # which is where the races TSan can find actually live.
        configure_build "$dir" -DROMULUS_TSAN=ON
        TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
            "$dir/tests/romulus_tests" \
            --gtest_filter='SpinLockTest*:ThreadRegistryTest*:ReadIndicatorTest*:CRWWPTest*:FlatCombiningTest*:LeftRightTest*' \
            --gtest_brief=1
        ;;
    race)
        # romrace leg: the happens-before detector the fixed-address heaps
        # keep TSan out of (see tsan leg above).  Runs the whole suite plus
        # the detector-specific cases: the broken-sync fixtures must be
        # detected and the armed clean-suite stress run must stay silent.
        configure_build "$dir" -DROMULUS_RACECHECK=ON
        (cd "$dir" && ctest --output-on-failure)
        ;;
    persistgraph)
        # romver leg: persist-order graph capture + the seeded protocol
        # mutations (docs/romver.md).  The fixtures prove the rules detect
        # the bugs they claim to; the clean CLI run proves the real commit
        # paths satisfy them; the reports are what CI uploads as artifacts.
        configure_build "$dir" -DROMULUS_PERSISTGRAPH=ON
        (cd "$dir" && ctest --output-on-failure)
        local reports="$dir/romver-reports"
        mkdir -p "$reports"
        "$dir/tools/romver" --engine all --budget 2048 \
            --report "$reports/clean.txt"
        "$dir/tools/romver" --mutate elide-fence --expect-violations \
            --report "$reports/mutate-elide-fence.txt"
        "$dir/tools/romver" --mutate reorder-state --expect-violations \
            --report "$reports/mutate-reorder-state.txt"
        # The fuzzer must catch the planted protocol bugs too, and emit a
        # replayable repro bundle for each (exit 1 if no violation found).
        "$dir/tools/romfuzz" --engine log --shards 2 --iters 12 --seed 1 \
            --mutate elide-fence --expect-violations \
            --out "$reports/romfuzz-elide-fence"
        "$dir/tools/romfuzz" --engine nl --shards 1 --iters 12 --seed 1 \
            --mutate reorder-state --expect-violations \
            --out "$reports/romfuzz-reorder-state"
        ;;
    fuzz)
        configure_build "$dir"
        local bundles="$dir/romfuzz-bundles"
        mkdir -p "$bundles"
        "$dir/tools/romfuzz" --engine all --shards 1,4 \
            --iters "${ROMFUZZ_ITERS:-24}" --seed "${ROMFUZZ_SEED:-1}" \
            --mode both --fork-crashes "${ROMFUZZ_CRASHES:-3}" \
            --out "$bundles"
        # Second pass with the stripe fast path pinned on and a generous
        # footprint cap, so the randomized histories commit through the
        # speculative path too (§4.11) — crash images of torn fast-path
        # commits must recover all-or-nothing like every other commit.
        ROMULUS_UPDATE_FASTPATH=1 ROMULUS_UPDATE_MAX_LINES=32 \
            "$dir/tools/romfuzz" --engine all --shards 1,4 \
            --iters "${ROMFUZZ_ITERS:-24}" --seed "${ROMFUZZ_SEED:-2}" \
            --mode both --fork-crashes "${ROMFUZZ_CRASHES:-3}" \
            --out "$bundles-fastpath"
        ;;
    *)
        echo "unknown leg: $leg (default|werror|asan|tsan|race|persistgraph|fuzz)" >&2
        return 2
        ;;
    esac
    echo "=== leg: $leg OK ==="
}

for leg in "${LEGS[@]}"; do run_leg "$leg"; done
echo "check.sh: all legs passed (${LEGS[*]})"
