#!/usr/bin/env bash
# Regenerate every table/figure of the paper (EXPERIMENTS.md) and the test
# log.  Usage:
#   scripts/run_experiments.sh [quick|full|paper]
#
#   quick  — ~2 min smoke pass (60 ms/point, 1-2 threads)
#   full   — the reference configuration used for EXPERIMENTS.md (default)
#   paper  — paper-scale sweep: long windows, wide thread sweep, 1M-key and
#            GB-scale points enabled.  Expect hours; needs many cores and
#            ~10 GB of /dev/shm.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
  quick)
    export ROMULUS_BENCH_MS=60 ROMULUS_BENCH_THREADS=1,2 ROMULUS_BENCH_SCALE=0.3
    ;;
  full)
    export ROMULUS_BENCH_MS=150 ROMULUS_BENCH_THREADS=1,2,4 ROMULUS_BENCH_SCALE=1
    ;;
  paper)
    export ROMULUS_BENCH_MS=2000 ROMULUS_BENCH_THREADS=1,2,4,8,16,32,64
    export ROMULUS_BENCH_SCALE=10 ROMULUS_BENCH_1M=1
    ;;
  *)
    echo "usage: $0 [quick|full|paper]" >&2
    exit 2
    ;;
esac

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== benchmarks ($mode) =="
for b in build/bench/*; do
  "$b"
done 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
