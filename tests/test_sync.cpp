// Unit tests for the synchronization substrate: spin lock, read indicator,
// C-RW-WP, flat combining and Left-Right.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/crwwp.hpp"
#include "sync/flat_combining.hpp"
#include "sync/left_right.hpp"
#include "sync/spinlock.hpp"
#include "sync/thread_registry.hpp"

using namespace romulus::sync;

TEST(SpinLockTest, MutualExclusion) {
    SpinLock lock;
    int counter = 0;
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < 5000; ++i) {
                lock.lock();
                ++counter;  // data race if exclusion is broken (TSan-visible)
                lock.unlock();
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(counter, 4 * 5000);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
    SpinLock lock;
    lock.lock();
    EXPECT_FALSE(lock.try_lock());
    EXPECT_TRUE(lock.is_locked());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(ThreadRegistryTest, IdsAreSmallStableAndRecycled) {
    const int my = tid();
    EXPECT_GE(my, 0);
    EXPECT_LT(my, kMaxThreads);
    EXPECT_EQ(tid(), my);  // stable within the thread

    int child_id1 = -1, child_id2 = -1;
    std::thread([&] { child_id1 = tid(); }).join();
    std::thread([&] { child_id2 = tid(); }).join();
    EXPECT_NE(child_id1, my);
    EXPECT_NE(child_id2, my);
    EXPECT_EQ(child_id1, child_id2);  // slot recycled after thread exit
    EXPECT_GE(max_tids(), 2);
}

TEST(ReadIndicatorTest, ArriveDepartEmptiness) {
    ReadIndicator ri;
    EXPECT_TRUE(ri.is_empty());
    const int t = tid();
    ri.arrive(t);
    EXPECT_FALSE(ri.is_empty());
    ri.arrive(t);  // re-entrant counting
    ri.depart(t);
    EXPECT_FALSE(ri.is_empty());
    ri.depart(t);
    EXPECT_TRUE(ri.is_empty());
}

TEST(CRWWPTest, WriterExcludesReadersAndViceVersa) {
    CRWWPLock lock;
    std::atomic<int> readers_in{0};
    std::atomic<bool> writer_in{false};
    std::atomic<bool> violation{false};
    std::atomic<bool> stop{false};

    std::vector<std::thread> ts;
    for (int r = 0; r < 3; ++r) {
        ts.emplace_back([&] {
            const int t = tid();
            while (!stop.load()) {
                lock.read_lock(t);
                readers_in.fetch_add(1);
                if (writer_in.load()) violation.store(true);
                readers_in.fetch_sub(1);
                lock.read_unlock(t);
            }
        });
    }
    for (int w = 0; w < 2; ++w) {
        ts.emplace_back([&] {
            for (int i = 0; i < 300; ++i) {
                lock.write_lock();
                writer_in.store(true);
                if (readers_in.load() != 0) violation.store(true);
                writer_in.store(false);
                lock.write_unlock();
                std::this_thread::yield();
            }
        });
    }
    // Let writers finish, then stop readers.
    for (size_t i = 3; i < ts.size(); ++i) ts[i].join();
    stop.store(true);
    for (size_t i = 0; i < 3; ++i) ts[i].join();
    EXPECT_FALSE(violation.load());
}

TEST(CRWWPTest, TryWriteLockRespectsExclusivity) {
    CRWWPLock lock;
    EXPECT_TRUE(lock.try_write_lock());
    EXPECT_FALSE(lock.try_write_lock());
    lock.write_unlock();
    EXPECT_TRUE(lock.try_write_lock());
    lock.write_unlock();
}

TEST(FlatCombiningTest, AnnounceExecuteMarkDone) {
    FlatCombiningArray fc;
    const int t = tid();
    EXPECT_TRUE(fc.is_done(t));  // nothing announced yet

    int runs = 0;
    FlatCombiningArray::Op op = [&] { ++runs; };
    fc.announce(t, &op);
    EXPECT_FALSE(fc.is_done(t));

    int seen = 0;
    fc.for_each_announced([&](int slot, FlatCombiningArray::Op* o) {
        (*o)();
        fc.mark_done(slot);
        ++seen;
    });
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(seen, 1);
    EXPECT_TRUE(fc.is_done(t));
}

TEST(FlatCombiningTest, CombinerAggregatesManyThreads) {
    FlatCombiningArray fc;
    SpinLock lock;
    std::atomic<int> executed{0};
    constexpr int kThreads = 4;
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            const int t = tid();
            FlatCombiningArray::Op op = [&] { executed.fetch_add(1); };
            fc.announce(t, &op);
            unsigned spins = 0;
            while (!fc.is_done(t)) {
                if (lock.try_lock()) {
                    fc.for_each_announced([&](int s, FlatCombiningArray::Op* o) {
                        (*o)();
                        fc.mark_done(s);
                    });
                    lock.unlock();
                } else {
                    spin_wait(spins);
                }
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(executed.load(), kThreads);
}

TEST(LeftRightTest, ReadersNeverSeeTheRegionBeingWritten) {
    LeftRight lr;
    // Two "instances" guarded by lr; the writer mutates the one readers are
    // NOT directed at, after draining.
    std::atomic<uint64_t> instance[2] = {{0}, {0}};
    std::atomic<bool> stop{false};
    std::atomic<bool> violation{false};
    std::atomic<uint64_t> being_written{2};  // 2 = none

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            const int t = tid();
            while (!stop.load()) {
                int vi = lr.arrive(t);
                int region = lr.read_region();
                // Map the LR constant onto our instance index: kReadMain=0.
                if (being_written.load() == uint64_t(region))
                    violation.store(true);
                (void)instance[region].load();
                lr.depart(t, vi);
            }
        });
    }

    for (int i = 0; i < 400; ++i) {
        // Writer protocol mirroring RomulusLR's update transaction.
        being_written.store(LeftRight::kReadMain);
        instance[LeftRight::kReadMain].fetch_add(1);
        being_written.store(2);
        lr.set_read_region(LeftRight::kReadMain);
        lr.toggle_version_and_wait();
        being_written.store(LeftRight::kReadBack);
        instance[LeftRight::kReadBack].fetch_add(1);
        being_written.store(2);
        lr.set_read_region(LeftRight::kReadBack);
        lr.toggle_version_and_wait();
    }
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(instance[0].load(), 400u);
    EXPECT_EQ(instance[1].load(), 400u);
}

TEST(LeftRightTest, DefaultReadRegionIsBack) {
    // RomulusLR's steady state: readers on back, writers own main (§5.3).
    LeftRight lr;
    EXPECT_EQ(lr.read_region(), LeftRight::kReadBack);
}
