// Crash-during-recovery ("double crash") tests: recovery itself issues
// persistence fences (Algorithm 1 recover() flushes every copied line), and
// a second power cut in the middle of it must leave the heap recoverable —
// recovery must be idempotent.  We sweep a crash through every fence of the
// recovery procedure under the SimPersistence model.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>

#include "ds/linked_list_set.hpp"
#include "pmem/sim_persistence.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

struct CrashPoint {};

class CrashingSim final : public pmem::SimHooks {
  public:
    CrashingSim(uint8_t* base, size_t size)
        : inner_(base, size,
                 {pmem::SimPersistence::FlushContent::AtFence, 0.0, 1}) {}
    uint64_t crash_at = UINT64_MAX;
    void on_store(const void* a, size_t n) override { inner_.on_store(a, n); }
    void on_pwb(const void* a) override { inner_.on_pwb(a); }
    void on_fence() override {
        inner_.on_fence();
        if (inner_.fence_count() >= crash_at) throw CrashPoint{};
    }
    pmem::SimPersistence& model() { return inner_; }

  private:
    pmem::SimPersistence inner_;
};

using Engines = ::testing::Types<RomulusNL, RomulusLog, RomulusLR>;

}  // namespace

template <typename E>
class DoubleCrash : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(DoubleCrash, Engines);

TYPED_TEST(DoubleCrash, CrashInsideRecoveryStillRecovers) {
    using E = TypeParam;
    using List = ds::LinkedListSet<E, uint64_t>;
    const std::string path = test::heap_path(std::string("dbl_") + E::name());
    const size_t bytes = 12u << 20;

    // For every first-crash fence f1 (sampled) x every recovery fence f2:
    for (uint64_t f1 = 2; f1 <= 40; f1 += 7) {
        std::remove(path.c_str());
        E::init(bytes, path);
        auto sim = std::make_unique<CrashingSim>(E::region().base(),
                                                 E::region().size());
        sim->crash_at = f1;
        pmem::set_sim_hooks(sim.get());
        int committed = -1;
        try {
            E::updateTx([&] {
                auto* l = E::template tmNew<List>();
                E::put_object(0, l);
            });
            committed = 0;
            auto* l = E::template get_object<List>(0);
            for (int j = 0; j < 6; ++j) {
                l->add(j * 10 + 1);
                committed = j + 1;
            }
        } catch (const CrashPoint&) {
        }
        pmem::set_sim_hooks(nullptr);

        if (committed == 6) {  // crash point beyond the workload: skip
            sim.reset();
            E::destroy();
            continue;
        }

        // First crash happened.  Now crash AGAIN inside recovery, at every
        // fence recovery issues, then finally let recovery complete.
        sim->model().crash_restore();
        E::close();
        E::crash_reset_for_tests();

        for (uint64_t f2 = 1; f2 <= 8; ++f2) {
            // After crash_restore() the shadow image equals the live bytes
            // (and the region may be unmapped here), so no rebaseline is
            // needed before the next attempt.
            sim->crash_at = sim->model().fence_count() + f2;
            pmem::set_sim_hooks(sim.get());
            bool crashed_again = false;
            try {
                E::init(bytes, path);  // recovery runs inside init
            } catch (const CrashPoint&) {
                crashed_again = true;
            }
            pmem::set_sim_hooks(nullptr);
            if (!crashed_again) {
                // Recovery completed within f2 fences; heap must be sound.
                break;
            }
            sim->model().crash_restore();
            if (E::initialized()) E::close();
            // init() may have died before setting up; unmap defensively.
            E::region().unmap();
            E::crash_reset_for_tests();
        }
        if (!E::initialized()) E::init(bytes, path);  // final clean recovery

        // Validate: consistent, and contents == some committed prefix state.
        EXPECT_EQ(E::state(), IDL);
        auto* l = E::template get_object<List>(0);
        if (committed >= 0) {
            ASSERT_NE(l, nullptr);
            EXPECT_TRUE(l->check_invariants());
            std::set<uint64_t> got;
            l->for_each([&](uint64_t k) { got.insert(k); });
            // All-or-nothing per tx: got is {1,11,..} prefix of length
            // committed or committed+1.
            EXPECT_GE(got.size(), size_t(committed));
            EXPECT_LE(got.size(), size_t(committed) + 1);
            uint64_t expect = 1;
            for (uint64_t k : got) {
                EXPECT_EQ(k, expect);
                expect += 10;
            }
        } else if (l != nullptr) {
            EXPECT_TRUE(l->check_invariants());
        }
        EXPECT_EQ(std::memcmp(E::main_base(), E::back_base(), E::used_bytes()),
                  0)
            << "twin copies must be identical after recovery";
        sim.reset();
        E::destroy();
    }
}
