// Positive-detection fixtures (compiled only under -DROMULUS_RACECHECK):
// deliberately broken variants of the two synchronization protocols the
// paper's correctness argument leans on, each with a correctly-synchronised
// control run.  The broken run must produce exactly one race with the right
// access-pair attribution; the control run must be silent.  Together with
// the clean-suite run (race_clean_stress) this pins both sides of the
// detector: it fires on the seeded bugs and only on them.
//
// Scheduling uses test-local std::atomics, which create no detector edges,
// so the interleaving the fixture needs is deterministic.  Racing threads
// stay alive concurrently throughout (tid slots are recycled after join).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "analysis/race_detector.hpp"
#include "analysis/race_hooks.hpp"
#include "sync/crwwp.hpp"
#include "sync/left_right.hpp"
#include "sync/read_indicator.hpp"
#include "sync/spinlock.hpp"
#include "sync/stripe_lock.hpp"
#include "sync/thread_registry.hpp"

namespace {

using romulus::analysis::RaceDetector;
using romulus::analysis::race_read;
using romulus::analysis::race_register_region;
using romulus::analysis::race_unregister_region;
using romulus::analysis::race_write;

void await(const std::atomic<int>& step, int v) {
    while (step.load(std::memory_order_acquire) < v) std::this_thread::yield();
}

void advance(std::atomic<int>& step, int v) {
    step.store(v, std::memory_order_release);
}

class RaceFixtureTest : public ::testing::Test {
  protected:
    void SetUp() override {
        auto& d = RaceDetector::instance();
        d.reset();
        d.enable();
        race_register_region(words_, sizeof(words_), "Fixture", "heap",
                             nullptr);
    }
    void TearDown() override {
        race_unregister_region(words_);
        auto& d = RaceDetector::instance();
        d.disable();
        d.reset();
    }
    alignas(8) static uint64_t words_[4];
};

uint64_t RaceFixtureTest::words_[4];

// ---------------------------------------------------------------------------
// Fixture A: C-RW-WP with the writer barrier elided.
// ---------------------------------------------------------------------------

/// CRWWPLock with the seeded bug: write_lock() skips wait_readers(), so the
/// writer can mutate while a reader is still inside its critical section.
/// Everything else (including the annotations) matches sync/crwwp.hpp.
class ElidedBarrierCRWWPLock {
  public:
    void read_lock(int t) {
        unsigned spins = 0;
        while (true) {
            ri_.arrive(t);
            if (!writer_present_.load(std::memory_order_seq_cst)) {
                ROMULUS_RACE_ACQUIRE(this, "crwwp.read_lock");
                return;
            }
            ri_.depart(t);
            while (writer_present_.load(std::memory_order_relaxed))
                romulus::sync::spin_wait(spins);
        }
    }

    void read_unlock(int t) { ri_.depart(t); }

    void write_lock() {
        writers_mutex_.lock();
        writer_present_.store(true, std::memory_order_seq_cst);
        // BUG (seeded): no wait_readers() — the drain, and with it the
        // "crwwp.drain" acquire edge, is missing.
    }

    void write_unlock() {
        ROMULUS_RACE_RELEASE(this, "crwwp.write_unlock");
        writer_present_.store(false, std::memory_order_release);
        writers_mutex_.unlock();
    }

  private:
    romulus::sync::SpinLock writers_mutex_;
    std::atomic<bool> writer_present_{false};
    romulus::sync::ReadIndicator ri_;
};

TEST_F(RaceFixtureTest, CRWWPElidedBarrierIsDetected) {
    ElidedBarrierCRWWPLock lk;
    std::atomic<int> step{0};
    int reader_tid = -1, writer_tid = -1;

    std::thread reader([&] {
        reader_tid = romulus::sync::tid();
        lk.read_lock(reader_tid);
        race_read(&words_[0], 8);
        advance(step, 1);
        await(step, 2);  // still inside the read-side critical section
        lk.read_unlock(reader_tid);
    });
    std::thread writer([&] {
        writer_tid = romulus::sync::tid();
        await(step, 1);
        lk.write_lock();  // does not wait for the reader to depart
        race_write(&words_[0], 8);
        advance(step, 2);
        lk.write_unlock();
    });
    reader.join();
    writer.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    auto r = d.reports()[0];
    EXPECT_STREQ(r.kind, "read-then-write");
    EXPECT_EQ(r.prev.tid, reader_tid);
    EXPECT_FALSE(r.prev.is_write);
    EXPECT_EQ(r.cur.tid, writer_tid);
    EXPECT_TRUE(r.cur.is_write);
    EXPECT_EQ(r.prev.addr, reinterpret_cast<uintptr_t>(&words_[0]));
    EXPECT_EQ(r.cur.addr, reinterpret_cast<uintptr_t>(&words_[0]));
}

// Control: the real sync::CRWWPLock, whose write_lock() drains the read
// indicator (acquiring the departed reader's clock), reports nothing.
TEST_F(RaceFixtureTest, CRWWPProperBarrierIsSilent) {
    romulus::sync::CRWWPLock lk;
    std::atomic<int> step{0};

    std::thread reader([&] {
        const int t = romulus::sync::tid();
        lk.read_lock(t);
        race_read(&words_[0], 8);
        lk.read_unlock(t);  // departed: the ri.depart release is recorded
        advance(step, 1);
        await(step, 2);
    });
    std::thread writer([&] {
        await(step, 1);
        lk.write_lock();  // waits for readers + "crwwp.drain" acquire
        race_write(&words_[0], 8);
        lk.write_unlock();
        advance(step, 2);
    });
    reader.join();
    writer.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u)
        << RaceDetector::instance().report_text();
}

// ---------------------------------------------------------------------------
// Fixture B: Left-Right with the version-toggle edge removed.
// ---------------------------------------------------------------------------

// The real sync::LeftRight, driven by a writer that skips
// toggle_version_and_wait() before re-mutating: readers that observed the
// publication are still inside the region when the writer touches it again.
TEST_F(RaceFixtureTest, LeftRightMissingToggleIsDetected) {
    romulus::sync::LeftRight lr;
    std::atomic<int> step{0};
    int reader_tid = -1, writer_tid = -1;

    std::thread writer([&] {
        writer_tid = romulus::sync::tid();
        race_write(&words_[1], 8);
        lr.set_read_region(romulus::sync::LeftRight::kReadMain);  // publish
        advance(step, 1);
        await(step, 2);
        // BUG (seeded): no lr.toggle_version_and_wait() — the drain edges
        // from the still-arrived reader are missing.
        race_write(&words_[1], 8);
        advance(step, 3);
    });
    std::thread reader([&] {
        reader_tid = romulus::sync::tid();
        await(step, 1);
        const int vi = lr.arrive(reader_tid);
        (void)lr.read_region();  // acquires the publication edge
        race_read(&words_[1], 8);  // ordered after the first write: no race
        advance(step, 2);
        await(step, 3);
        lr.depart(reader_tid, vi);
    });
    writer.join();
    reader.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    auto r = d.reports()[0];
    EXPECT_STREQ(r.kind, "read-then-write");
    EXPECT_EQ(r.prev.tid, reader_tid);
    EXPECT_FALSE(r.prev.is_write);
    EXPECT_EQ(r.cur.tid, writer_tid);
    EXPECT_TRUE(r.cur.is_write);
    EXPECT_EQ(r.cur.addr, reinterpret_cast<uintptr_t>(&words_[1]));
}

// Control: the same protocol with the toggle in place — the drain acquires
// the departed reader's clock, so the second write is ordered.
TEST_F(RaceFixtureTest, LeftRightWithToggleIsSilent) {
    romulus::sync::LeftRight lr;
    std::atomic<int> step{0};

    std::thread writer([&] {
        race_write(&words_[1], 8);
        lr.set_read_region(romulus::sync::LeftRight::kReadMain);
        advance(step, 1);
        await(step, 2);  // reader has departed
        lr.toggle_version_and_wait();
        race_write(&words_[1], 8);
        advance(step, 3);
    });
    std::thread reader([&] {
        const int t = romulus::sync::tid();
        await(step, 1);
        const int vi = lr.arrive(t);
        (void)lr.read_region();
        race_read(&words_[1], 8);
        lr.depart(t, vi);
        advance(step, 2);
        await(step, 3);  // stay alive: distinct tids
    });
    writer.join();
    reader.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u)
        << RaceDetector::instance().report_text();
}

// ---------------------------------------------------------------------------
// Fixture C: stripe try-lock with the committing release elided.
// ---------------------------------------------------------------------------

/// One stripe of sync::StripeLockTable with the seeded bug: the committer
/// publishes the post-commit version word with a plain store, skipping
/// release() and with it the "stripe.release" annotation.  try_acquire and
/// the word accessors match sync/stripe_lock.hpp, so an optimistic reader's
/// "stripe.validate" acquire finds no release edge to pair with.
class ElidedReleaseStripe {
  public:
    using Word = romulus::sync::StripeLockTable::Word;
    static constexpr Word kLockedBit =
        romulus::sync::StripeLockTable::kLockedBit;

    bool try_acquire(Word& observed) {
        Word w = w_.load(std::memory_order_relaxed);
        if ((w & kLockedBit) != 0) {
            observed = w;
            return false;
        }
        if (!w_.compare_exchange_strong(w, w | kLockedBit,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
            observed = w;
            return false;
        }
        observed = w;
        ROMULUS_RACE_ACQUIRE(&w_, "stripe.acquire");
        return true;
    }

    /// BUG (seeded): publishes the new version without the "stripe.release"
    /// annotation of StripeLockTable::release().
    void release_elided(Word new_version) {
        w_.store(new_version << 1, std::memory_order_release);
    }

    Word read() const { return w_.load(std::memory_order_acquire); }
    const std::atomic<Word>* word() const { return &w_; }

  private:
    std::atomic<Word> w_{0};
};

// A fast-path committer that skips release(): its write to the line stays
// unordered before a later optimistic reader, even though the reader's
// version validation succeeds (the version word itself was published).
TEST_F(RaceFixtureTest, StripeElidedReleaseIsDetected) {
    ElidedReleaseStripe stripe;
    std::atomic<int> step{0};
    int writer_tid = -1, reader_tid = -1;

    std::thread writer([&] {
        writer_tid = romulus::sync::tid();
        ElidedReleaseStripe::Word pre = ~0ull;
        EXPECT_TRUE(stripe.try_acquire(pre));
        race_write(&words_[2], 8);
        stripe.release_elided(1);  // BUG: no "stripe.release" edge
        advance(step, 1);
        await(step, 2);  // stay alive: distinct tids
    });
    std::thread reader([&] {
        reader_tid = romulus::sync::tid();
        await(step, 1);
        const ElidedReleaseStripe::Word w0 = stripe.read();
        EXPECT_EQ(w0 & ElidedReleaseStripe::kLockedBit, 0u);
        // The protocol's validation passes (the version word is stable),
        // so the read IS recorded — and races with the unreleased write.
        EXPECT_TRUE(ROMULUS_RACE_OPTIMISTIC_READ(stripe.word(), &words_[2], 8,
                                                 w0, stripe.word(),
                                                 "stripe.validate"));
        advance(step, 2);
    });
    writer.join();
    reader.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    auto r = d.reports()[0];
    EXPECT_STREQ(r.kind, "write-then-read");
    EXPECT_EQ(r.prev.tid, writer_tid);
    EXPECT_TRUE(r.prev.is_write);
    EXPECT_EQ(r.cur.tid, reader_tid);
    EXPECT_FALSE(r.cur.is_write);
    EXPECT_EQ(r.prev.addr, reinterpret_cast<uintptr_t>(&words_[2]));
    EXPECT_EQ(r.cur.addr, reinterpret_cast<uintptr_t>(&words_[2]));
}

// Control: the real sync::StripeLockTable, whose release() records the
// "stripe.release" edge the validate-acquire pairs with, reports nothing.
TEST_F(RaceFixtureTest, StripeProperReleaseIsSilent) {
    romulus::sync::StripeLockTable stripes(16);
    const unsigned s = stripes.stripe_of_line(0);
    std::atomic<int> step{0};

    std::thread writer([&] {
        (void)romulus::sync::tid();
        romulus::sync::StripeLockTable::Word pre = ~0ull;
        EXPECT_TRUE(stripes.try_acquire(s, pre));
        race_write(&words_[2], 8);
        stripes.release(s, stripes.clock_advance());
        advance(step, 1);
        await(step, 2);  // stay alive: distinct tids
    });
    std::thread reader([&] {
        (void)romulus::sync::tid();
        await(step, 1);
        const romulus::sync::StripeLockTable::Word w0 = stripes.read(s);
        EXPECT_FALSE(romulus::sync::StripeLockTable::is_locked(w0));
        EXPECT_TRUE(ROMULUS_RACE_OPTIMISTIC_READ(stripes.word(s), &words_[2],
                                                 8, w0, stripes.word(s),
                                                 "stripe.validate"));
        advance(step, 2);
    });
    writer.join();
    reader.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u)
        << RaceDetector::instance().report_text();
}

}  // namespace
