// Unit tests for the romrace happens-before detector core
// (analysis/race_detector.hpp).  These drive the detector through its free
// funnels directly — no engine, no hook macros — so they compile and run in
// every build configuration, not just -DROMULUS_RACECHECK.
//
// Thread discipline: detector tids come from sync::thread_registry, which
// recycles the slot of a joined thread.  Two *sequential* std::threads would
// therefore share a tid and look like one totally-ordered thread to the
// detector, so every scenario keeps its racing threads alive concurrently
// and sequences them with plain test-local atomics (which create no
// detector edges).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "analysis/race_detector.hpp"

namespace {

using romulus::analysis::RaceDetector;
using romulus::analysis::race_acquire;
using romulus::analysis::race_read;
using romulus::analysis::race_register_region;
using romulus::analysis::race_release;
using romulus::analysis::race_set_tx;
using romulus::analysis::race_unregister_region;
using romulus::analysis::race_write;

void await(const std::atomic<int>& step, int v) {
    while (step.load(std::memory_order_acquire) < v) std::this_thread::yield();
}

void advance(std::atomic<int>& step, int v) {
    step.store(v, std::memory_order_release);
}

class RaceDetectorTest : public ::testing::Test {
  protected:
    void SetUp() override {
        auto& d = RaceDetector::instance();
        d.reset();
        d.enable();
    }
    void TearDown() override {
        auto& d = RaceDetector::instance();
        d.disable();
        d.reset();
    }
};

// Two unsynchronised writers to the same registered word: one write-write
// race, attributed to both threads.
TEST_F(RaceDetectorTest, WriteWriteRaceDetected) {
    alignas(8) static uint64_t words[4];
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);

    std::atomic<int> step{0};
    std::thread a([&] {
        race_write(&words[0], 8);
        advance(step, 1);
        await(step, 2);  // stay alive so b gets a distinct tid
    });
    std::thread b([&] {
        await(step, 1);
        race_write(&words[0], 8);
        advance(step, 2);
    });
    a.join();
    b.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    auto reports = d.reports();
    EXPECT_STREQ(reports[0].kind, "write-write");
    EXPECT_TRUE(reports[0].prev.is_write);
    EXPECT_TRUE(reports[0].cur.is_write);
    EXPECT_NE(reports[0].prev.tid, reports[0].cur.tid);
    EXPECT_EQ(reports[0].cur.addr, reinterpret_cast<uintptr_t>(&words[0]));

    race_unregister_region(words);
}

// The same two writes connected by a release/acquire chain: no race.
TEST_F(RaceDetectorTest, HappensBeforeEdgeSuppressesReport) {
    alignas(8) static uint64_t words[4];
    static int sync_obj;
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);

    std::atomic<int> step{0};
    std::thread a([&] {
        race_write(&words[0], 8);
        race_release(&sync_obj, "test.unlock");
        advance(step, 1);
        await(step, 2);
    });
    std::thread b([&] {
        await(step, 1);
        race_acquire(&sync_obj, "test.lock");
        race_write(&words[0], 8);
        advance(step, 2);
    });
    a.join();
    b.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u)
        << RaceDetector::instance().report_text();
    race_unregister_region(words);
}

// An unsynchronised read after a write is a write-then-read race.
TEST_F(RaceDetectorTest, WriteThenReadRaceDetected) {
    alignas(8) static uint64_t words[4];
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);

    std::atomic<int> step{0};
    std::thread a([&] {
        race_write(&words[1], 8);
        advance(step, 1);
        await(step, 2);
    });
    std::thread b([&] {
        await(step, 1);
        race_read(&words[1], 8);
        advance(step, 2);
    });
    a.join();
    b.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    auto reports = d.reports();
    EXPECT_STREQ(reports[0].kind, "write-then-read");
    EXPECT_TRUE(reports[0].prev.is_write);
    EXPECT_FALSE(reports[0].cur.is_write);
    race_unregister_region(words);
}

// Two concurrent readers promote the shadow cell to a full read vector
// clock; an unsynchronised write afterwards must still be caught against it.
TEST_F(RaceDetectorTest, PromotedReadsCaughtByLaterWrite) {
    alignas(8) static uint64_t words[4];
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);

    std::atomic<int> step{0};
    std::thread r1([&] {
        race_read(&words[2], 8);
        advance(step, 1);
        await(step, 3);
    });
    std::thread r2([&] {
        await(step, 1);
        race_read(&words[2], 8);
        advance(step, 2);
        await(step, 3);
    });
    std::thread w([&] {
        await(step, 2);
        race_write(&words[2], 8);
        advance(step, 3);
    });
    r1.join();
    r2.join();
    w.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    EXPECT_STREQ(d.reports()[0].kind, "read-then-write");
    race_unregister_region(words);
}

// Accesses outside every registered region generate no events.
TEST_F(RaceDetectorTest, UnregisteredAddressesIgnored) {
    alignas(8) static uint64_t outside[2];

    std::atomic<int> step{0};
    std::thread a([&] {
        race_write(&outside[0], 8);
        advance(step, 1);
        await(step, 2);
    });
    std::thread b([&] {
        await(step, 1);
        race_write(&outside[0], 8);
        advance(step, 2);
    });
    a.join();
    b.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u);
}

// Unregistering erases the region's shadow cells: an engine re-mapping the
// same fixed base (close + init, or a different test) starts clean instead
// of racing against stale history.
TEST_F(RaceDetectorTest, UnregisterErasesShadowState) {
    alignas(8) static uint64_t words[4];
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);
    race_write(&words[0], 8);  // main thread's history
    race_unregister_region(words);
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);

    std::atomic<int> step{0};
    std::thread b([&] {
        race_write(&words[0], 8);  // would race against the stale write
        advance(step, 1);
    });
    await(step, 1);
    b.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u)
        << RaceDetector::instance().report_text();
    race_unregister_region(words);
}

// Reports carry the engine context: region name and offset, per-thread
// transaction kind, and the heap state word sampled at access time.
TEST_F(RaceDetectorTest, ReportCarriesRegionTxAndStateContext) {
    alignas(8) static uint64_t words[4];
    static std::atomic<uint32_t> state{1};  // TxState MUT
    race_register_region(words, sizeof(words), "Test", "heap", &state);

    std::atomic<int> step{0};
    std::thread a([&] {
        race_set_tx("read-tx");
        race_read(&words[3], 8);
        race_set_tx(nullptr);
        advance(step, 1);
        await(step, 2);
    });
    std::thread b([&] {
        await(step, 1);
        race_set_tx("update-tx");
        race_write(&words[3], 8);
        race_set_tx(nullptr);
        advance(step, 2);
    });
    a.join();
    b.join();

    auto& d = RaceDetector::instance();
    ASSERT_EQ(d.race_count(), 1u) << d.report_text();
    auto r = d.reports()[0];
    EXPECT_STREQ(r.kind, "read-then-write");
    EXPECT_EQ(r.prev.region, "Test.heap");
    EXPECT_EQ(r.prev.region_off, 3u * 8u);
    EXPECT_EQ(r.prev.tx_kind, "read-tx");
    EXPECT_EQ(r.cur.tx_kind, "update-tx");
    EXPECT_TRUE(r.cur.has_state);
    EXPECT_EQ(r.cur.heap_state, 1u);

    std::string text = d.report_text();
    EXPECT_NE(text.find("race #1"), std::string::npos) << text;
    EXPECT_NE(text.find("Test.heap"), std::string::npos) << text;
    EXPECT_NE(text.find("MUTATING"), std::string::npos) << text;
    race_unregister_region(words);
}

// While disabled, every funnel is a no-op: no events, no reports, no state.
TEST_F(RaceDetectorTest, DisabledDetectorRecordsNothing) {
    alignas(8) static uint64_t words[4];
    race_register_region(words, sizeof(words), "Test", "heap", nullptr);
    RaceDetector::instance().disable();

    std::atomic<int> step{0};
    std::thread a([&] {
        race_write(&words[0], 8);
        advance(step, 1);
        await(step, 2);
    });
    std::thread b([&] {
        await(step, 1);
        race_write(&words[0], 8);
        advance(step, 2);
    });
    a.join();
    b.join();

    EXPECT_EQ(RaceDetector::instance().race_count(), 0u);
}

}  // namespace
