// romfuzz layer 1 (docs/romfuzz.md): trace record/replay determinism and
// repro-bundle robustness.
//
//  * Generation is a pure function of (config, seed, shard_count): same seed
//    ⇒ byte-identical serialized traces; different seeds diverge.
//  * Executing the same trace twice against fresh heaps produces identical
//    ordered access logs and identical final KV digests — the witness that
//    `romfuzz --replay` reproduces a bundle byte-for-byte.
//  * The bundle format rejects every truncation and every corrupted byte
//    (checksum-first parsing), and round-trips all optional sections.
//  * Cross-shard batches serialize as consecutive sub-transactions in
//    ascending shard order — the commit order ShardedKVStore::write uses and
//    the order the prefix oracle assumes.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model_oracle.hpp"
#include "analysis/romfuzz.hpp"
#include "analysis/tx_trace.hpp"
#include "db/sharded_kvstore.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

namespace {

using namespace romulus;
using namespace romulus::analysis;
using romulus::test::heap_path;

GenConfig small_cfg() {
    GenConfig g;
    g.setup_ops = 12;
    g.episode_ops = 10;
    g.key_space = 24;
    g.value_max = 64;
    return g;
}

TxTrace gen(uint64_t seed, uint32_t shards) {
    return generate_trace(
        small_cfg(), seed, shards, kEngineRomulusLog,
        [shards](std::string_view k) { return db::shard_for_key(k, shards); });
}

// ---------------------------------------------------------------------------
// Generator determinism
// ---------------------------------------------------------------------------

TEST(TxTrace, SameSeedGeneratesIdenticalBytes) {
    const TxTrace a = gen(42, 4);
    const TxTrace b = gen(42, 4);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.serialize(), b.serialize());
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(TxTrace, DifferentSeedsDiverge) {
    EXPECT_NE(gen(1, 4).digest(), gen(2, 4).digest());
}

TEST(TxTrace, GeneratorRespectsOpBudgetAndRouting) {
    const TxTrace t = gen(7, 4);
    EXPECT_EQ(t.setup_count, small_cfg().setup_ops);
    EXPECT_GE(t.episode_count(), 1u);
    for (const SubTx& st : t.subtxs) {
        ASSERT_LT(st.shard, 4u);
        for (const TraceOp& op : st.ops) {
            // Every op is routed to the sub-transaction's shard.
            EXPECT_EQ(db::shard_for_key(op.key, 4), st.shard);
        }
    }
}

TEST(TxTrace, CrossShardBatchesAreAscendingAndConsecutive) {
    // Scan several seeds so at least one multi-shard batch is generated.
    bool saw_multi_shard_batch = false;
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        const TxTrace t = gen(seed, 4);
        std::set<uint32_t> closed;
        for (size_t i = t.setup_count; i < t.subtxs.size(); ++i) {
            const SubTx& st = t.subtxs[i];
            if (st.batch_id == 0) continue;
            ASSERT_FALSE(closed.count(st.batch_id))
                << "batch " << st.batch_id << " is not consecutive";
            size_t n = 1;
            while (i + n < t.subtxs.size() &&
                   t.subtxs[i + n].batch_id == st.batch_id) {
                // Ascending shard order within the batch.
                ASSERT_LT(t.subtxs[i + n - 1].shard, t.subtxs[i + n].shard);
                ++n;
            }
            if (n > 1) saw_multi_shard_batch = true;
            closed.insert(st.batch_id);
            i += n - 1;
        }
    }
    EXPECT_TRUE(saw_multi_shard_batch);
}

// ---------------------------------------------------------------------------
// Bundle format robustness
// ---------------------------------------------------------------------------

TEST(TxTrace, RoundTripsAllSections) {
    TxTrace t = gen(3, 2);
    t.has_repro = true;
    t.repro.mode = 0;
    t.repro.explore_seed = 77;
    t.repro.max_cuts = 128;
    t.repro.cut_index = 9;
    t.access.streams = {{{0, 8, 64}, {2, 0, 0}}, {{4, 3, 128}}, {}};

    const std::vector<uint8_t> bytes = t.serialize();
    const TxTrace back = TxTrace::deserialize(bytes);
    EXPECT_EQ(back, t);
    EXPECT_EQ(back.repro.cut_index, 9u);
    EXPECT_EQ(back.access.digest(), t.access.digest());
}

TEST(TxTrace, EveryTruncationIsRejected) {
    const std::vector<uint8_t> bytes = gen(5, 2).serialize();
    for (size_t n = 0; n < bytes.size(); ++n) {
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + n);
        EXPECT_THROW(TxTrace::deserialize(cut), TraceError)
            << "truncation to " << n << " bytes parsed";
    }
}

TEST(TxTrace, EveryCorruptedByteIsRejected) {
    const std::vector<uint8_t> bytes = gen(5, 2).serialize();
    // Flipping any single byte must fail the checksum (stride keeps the
    // test fast; the footer itself is covered by the tail iterations).
    for (size_t i = 0; i < bytes.size(); i += 7) {
        std::vector<uint8_t> bad = bytes;
        bad[i] ^= 0x5A;
        EXPECT_THROW(TxTrace::deserialize(bad), TraceError)
            << "corrupt byte " << i << " parsed";
    }
}

TEST(TxTrace, TrailingGarbageIsRejected) {
    std::vector<uint8_t> bytes = gen(5, 2).serialize();
    bytes.push_back(0);
    EXPECT_THROW(TxTrace::deserialize(bytes), TraceError);
}

TEST(TxTrace, SaveLoadRoundTrips) {
    const std::string path = heap_path("txtrace_file");
    const TxTrace t = gen(11, 1);
    t.save(path);
    EXPECT_EQ(TxTrace::load(path).digest(), t.digest());
    std::remove(path.c_str());
    EXPECT_THROW(TxTrace::load(path), TraceError);
}

// ---------------------------------------------------------------------------
// Record → replay determinism on real engines
// ---------------------------------------------------------------------------

/// Execute `trace` on a fresh heap of E; returns the access-log digest plus
/// the final per-shard KV images.
template <typename E>
std::pair<uint64_t, std::vector<ShardImage>> execute_once(
    const TxTrace& trace, const std::string& path, unsigned shards) {
    std::remove(path.c_str());
    if constexpr (KvFacade<E>::kSharded) {
        E::init(16u << 20, path, shards);
    } else {
        E::init(16u << 20, path);
    }
    uint64_t access_digest = 0;
    std::vector<ShardImage> img;
    {
        KvFacade<E> kv(0);
        for (uint32_t i = 0; i < trace.setup_count; ++i)
            kv.apply(trace.subtxs[i]);
        PersistEventRecorder rec(E::region().base(), E::region().size());
        pmem::set_sim_hooks(&rec);
        for (size_t i = trace.setup_count; i < trace.subtxs.size(); ++i) {
            const SubTx& st = trace.subtxs[i];
            if (st.is_get()) {
                std::string v;
                kv.get(st.ops[0].key, &v);
            } else {
                kv.apply(st);
            }
        }
        pmem::set_sim_hooks(nullptr);
        EXPECT_FALSE(rec.overflowed());
        access_digest =
            AccessLog::from_recording(rec, EngineLayout::of<E>()).digest();

        std::string why;
        EXPECT_TRUE(dump_recovered<E>(kv, img, why)) << why;
        KvModel final_model(trace.shard_count);
        for (const SubTx& st : trace.subtxs) final_model.apply(st);
        for (uint32_t sd = 0; sd < trace.shard_count; ++sd)
            EXPECT_EQ(final_model.shard(sd), img[sd]) << "shard " << sd;
    }
    E::destroy();
    return {access_digest, img};
}

template <typename E>
class TxTraceReplay : public ::testing::Test {};
TYPED_TEST_SUITE(TxTraceReplay, romulus::test::AllPtms);

TYPED_TEST(TxTraceReplay, SameTraceSameAccessLogAndHeapDigest) {
    using E = TypeParam;
    const unsigned shards = KvFacade<E>::kSharded ? 2 : 1;
    const TxTrace trace = generate_trace(
        small_cfg(), 99, shards, engine_id_of<E>(),
        [shards](std::string_view k) { return db::shard_for_key(k, shards); });
    const std::string path = heap_path("txtrace_replay");
    const auto [access1, img1] = execute_once<E>(trace, path, shards);
    const auto [access2, img2] = execute_once<E>(trace, path, shards);
    EXPECT_EQ(access1, access2) << "access log diverged";
    EXPECT_EQ(img1, img2) << "final KV state diverged";
    EXPECT_NE(access1, 0u);
}

}  // namespace
