// Property test behind the Fig. 9 SPS benchmark, parameterised over flush
// profile x swaps-per-transaction (TEST_P sweep): after any number of
// swap transactions the array must still be a permutation of its initial
// contents (swaps conserve the multiset), under every fence configuration
// and on every PTM.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

struct SpsParam {
    pmem::Profile profile;
    int swaps_per_tx;
};

std::string param_name(const ::testing::TestParamInfo<SpsParam>& info) {
    std::string p;
    switch (info.param.profile) {
        case pmem::Profile::NOP: p = "nop"; break;
        case pmem::Profile::CLFLUSH: p = "clflush"; break;
        case pmem::Profile::CLFLUSHOPT: p = "clflushopt"; break;
        case pmem::Profile::CLWB: p = "clwb"; break;
        case pmem::Profile::STT: p = "stt"; break;
        case pmem::Profile::PCM: p = "pcm"; break;
    }
    return p + "_x" + std::to_string(info.param.swaps_per_tx);
}

}  // namespace

class SpsProperty : public ::testing::TestWithParam<SpsParam> {};

TEST_P(SpsProperty, SwapsConserveTheMultisetOnEveryPtm) {
    const auto [profile, swaps] = GetParam();
    pmem::set_profile(profile);
    constexpr uint64_t kN = 512;

    auto run = [&]<typename E>() {
        test::EngineSession<E> session(24u << 20,
                                       std::string("sps") + E::name());
        using PU = typename E::template p<uint64_t>;
        PU* arr = nullptr;
        E::updateTx(
            [&] { arr = static_cast<PU*>(E::alloc_bytes(sizeof(PU) * kN)); });
        for (uint64_t base = 0; base < kN; base += 128) {
            E::updateTx([&] {
                for (uint64_t i = base; i < base + 128; ++i) arr[i] = i * 7;
            });
        }
        std::mt19937_64 rng(swaps * 31 + 1);
        for (int tx = 0; tx < 50; ++tx) {
            E::updateTx([&] {
                for (int s = 0; s < swaps; ++s) {
                    const uint64_t i = rng() % kN, j = rng() % kN;
                    const uint64_t vi = arr[i].pload(), vj = arr[j].pload();
                    arr[i] = vj;
                    arr[j] = vi;
                }
            });
        }
        std::vector<uint64_t> vals;
        E::readTx([&] {
            for (uint64_t i = 0; i < kN; ++i) vals.push_back(arr[i].pload());
        });
        std::sort(vals.begin(), vals.end());
        for (uint64_t i = 0; i < kN; ++i)
            ASSERT_EQ(vals[i], i * 7) << E::name() << " lost a value";
        // The twin-copy invariant must hold after the last commit.
        if constexpr (!std::is_same_v<E, baselines::UndoLogPTM> &&
                      !std::is_same_v<E, baselines::RedoLogPTM>) {
            ASSERT_EQ(
                std::memcmp(E::main_base(), E::back_base(), E::used_bytes()),
                0);
        }
    };
    run.template operator()<RomulusNL>();
    run.template operator()<RomulusLog>();
    run.template operator()<RomulusLR>();
    run.template operator()<baselines::UndoLogPTM>();
    run.template operator()<baselines::RedoLogPTM>();
    pmem::set_profile(pmem::Profile::NOP);
}

INSTANTIATE_TEST_SUITE_P(
    FenceSweep, SpsProperty,
    ::testing::Values(SpsParam{pmem::Profile::NOP, 1},
                      SpsParam{pmem::Profile::NOP, 32},
                      SpsParam{pmem::Profile::CLFLUSH, 1},
                      SpsParam{pmem::Profile::CLFLUSH, 8},
                      SpsParam{pmem::Profile::CLFLUSHOPT, 8},
                      SpsParam{pmem::Profile::CLWB, 8},
                      SpsParam{pmem::Profile::STT, 4},
                      SpsParam{pmem::Profile::PCM, 4}),
    param_name);
