// Persistent data structures across every PTM: unit behaviour plus
// model-based property tests (random op streams mirrored against std::set).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>

#include "ds/fixed_hash_map.hpp"
#include "ds/hash_map.hpp"
#include "ds/linked_list_set.hpp"
#include "ds/rb_tree.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;

template <typename P>
class DsTest : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<EngineSession<P>>(32u << 20, P::name());
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<P>> session_;
};

TYPED_TEST_SUITE(DsTest, romulus::test::AllPtms);

// ---------------------------------------------------------------- list

TYPED_TEST(DsTest, ListAddRemoveContains) {
    using P = TypeParam;
    using List = ds::LinkedListSet<P, uint64_t>;
    List* list = nullptr;
    P::updateTx([&] {
        list = P::template tmNew<List>();
        P::put_object(0, list);
    });
    EXPECT_TRUE(list->add(5));
    EXPECT_TRUE(list->add(3));
    EXPECT_TRUE(list->add(9));
    EXPECT_FALSE(list->add(5));  // duplicate
    EXPECT_TRUE(list->contains(3));
    EXPECT_FALSE(list->contains(4));
    EXPECT_TRUE(list->remove(3));
    EXPECT_FALSE(list->remove(3));
    EXPECT_FALSE(list->contains(3));
    EXPECT_EQ(list->size(), 2u);
    EXPECT_TRUE(list->check_invariants());
    P::updateTx([&] { P::tmDelete(list); });
}

TYPED_TEST(DsTest, ListIsSorted) {
    using P = TypeParam;
    using List = ds::LinkedListSet<P, uint64_t>;
    List* list = nullptr;
    P::updateTx([&] { list = P::template tmNew<List>(); });
    for (uint64_t k : {9u, 1u, 7u, 3u, 5u}) list->add(k);
    std::vector<uint64_t> got;
    list->for_each([&](uint64_t k) { got.push_back(k); });
    EXPECT_EQ(got, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
    P::updateTx([&] { P::tmDelete(list); });
}

TYPED_TEST(DsTest, ListRandomOpsMatchStdSet) {
    using P = TypeParam;
    using List = ds::LinkedListSet<P, uint64_t>;
    List* list = nullptr;
    P::updateTx([&] { list = P::template tmNew<List>(); });
    std::set<uint64_t> model;
    std::mt19937_64 rng(42);
    for (int i = 0; i < 600; ++i) {
        uint64_t k = rng() % 64 + 1;
        switch (rng() % 3) {
            case 0:
                EXPECT_EQ(list->add(k), model.insert(k).second);
                break;
            case 1:
                EXPECT_EQ(list->remove(k), model.erase(k) > 0);
                break;
            default:
                EXPECT_EQ(list->contains(k), model.count(k) > 0);
        }
    }
    EXPECT_EQ(list->size(), model.size());
    EXPECT_TRUE(list->check_invariants());
    P::updateTx([&] { P::tmDelete(list); });
}

// ---------------------------------------------------------------- hash map

TYPED_TEST(DsTest, HashMapBasicAndResize) {
    using P = TypeParam;
    using Map = ds::HashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] {
        map = P::template tmNew<Map>(4);  // tiny: forces several resizes
        P::put_object(0, map);
    });
    for (uint64_t k = 1; k <= 200; ++k) EXPECT_TRUE(map->add(k));
    EXPECT_EQ(map->size(), 200u);
    EXPECT_GT(map->bucket_count(), 4u);  // grew
    for (uint64_t k = 1; k <= 200; ++k) EXPECT_TRUE(map->contains(k));
    EXPECT_FALSE(map->contains(0));
    for (uint64_t k = 1; k <= 100; ++k) EXPECT_TRUE(map->remove(k));
    EXPECT_EQ(map->size(), 100u);
    EXPECT_TRUE(map->check_invariants());
    P::updateTx([&] { P::tmDelete(map); });
}

TYPED_TEST(DsTest, HashMapRandomOpsMatchStdSet) {
    using P = TypeParam;
    using Map = ds::HashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] { map = P::template tmNew<Map>(8); });
    std::set<uint64_t> model;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 800; ++i) {
        uint64_t k = rng() % 300;
        switch (rng() % 3) {
            case 0:
                EXPECT_EQ(map->add(k), model.insert(k).second);
                break;
            case 1:
                EXPECT_EQ(map->remove(k), model.erase(k) > 0);
                break;
            default:
                EXPECT_EQ(map->contains(k), model.count(k) > 0);
        }
    }
    EXPECT_EQ(map->size(), model.size());
    EXPECT_TRUE(map->check_invariants());
    P::updateTx([&] { P::tmDelete(map); });
}

// ---------------------------------------------------------------- fixed map

TYPED_TEST(DsTest, FixedHashMapPutGetValues) {
    using P = TypeParam;
    using Map = ds::FixedHashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] { map = P::template tmNew<Map>(64); });

    std::vector<uint8_t> val(256);
    for (size_t i = 0; i < val.size(); ++i) val[i] = uint8_t(i);
    map->put(10, val.data(), val.size());

    std::vector<uint8_t> out(256, 0);
    EXPECT_EQ(map->get(10, out.data(), out.size()), 256);
    EXPECT_EQ(val, out);
    EXPECT_EQ(map->get(11, nullptr, 0), -1);

    // Overwrite with a different size: reallocates.
    std::vector<uint8_t> small{1, 2, 3};
    map->put(10, small.data(), small.size());
    std::vector<uint8_t> out2(3, 0);
    EXPECT_EQ(map->get(10, out2.data(), out2.size()), 3);
    EXPECT_EQ(small, out2);

    EXPECT_TRUE(map->remove(10));
    EXPECT_FALSE(map->contains(10));
    P::updateTx([&] { P::tmDelete(map); });
}

TYPED_TEST(DsTest, FixedHashMapManyKeysNoResize) {
    using P = TypeParam;
    using Map = ds::FixedHashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] { map = P::template tmNew<Map>(32); });
    uint64_t v;
    for (uint64_t k = 0; k < 300; ++k) map->put(k, &k, sizeof(k));
    EXPECT_EQ(map->size(), 300u);
    for (uint64_t k = 0; k < 300; ++k) {
        ASSERT_EQ(map->get(k, &v, sizeof(v)), int64_t(sizeof(v)));
        EXPECT_EQ(v, k);
    }
    P::updateTx([&] { P::tmDelete(map); });
}

// ---------------------------------------------------------------- RB tree

TYPED_TEST(DsTest, RBTreeBasic) {
    using P = TypeParam;
    using Tree = ds::RBTree<P, uint64_t>;
    Tree* tree = nullptr;
    P::updateTx([&] { tree = P::template tmNew<Tree>(); });
    for (uint64_t k = 1; k <= 100; ++k) EXPECT_TRUE(tree->add(k));
    EXPECT_FALSE(tree->add(50));
    EXPECT_EQ(tree->size(), 100u);
    EXPECT_TRUE(tree->check_invariants());
    for (uint64_t k = 1; k <= 50; ++k) EXPECT_TRUE(tree->remove(k));
    EXPECT_FALSE(tree->remove(50));
    EXPECT_EQ(tree->size(), 50u);
    EXPECT_TRUE(tree->check_invariants());
    std::vector<uint64_t> keys;
    tree->for_each([&](uint64_t k) { keys.push_back(k); });
    ASSERT_EQ(keys.size(), 50u);
    EXPECT_EQ(keys.front(), 51u);
    EXPECT_EQ(keys.back(), 100u);
    P::updateTx([&] { P::tmDelete(tree); });
}

TYPED_TEST(DsTest, RBTreeRandomOpsMatchStdSet) {
    using P = TypeParam;
    using Tree = ds::RBTree<P, uint64_t>;
    Tree* tree = nullptr;
    P::updateTx([&] { tree = P::template tmNew<Tree>(); });
    std::set<uint64_t> model;
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 1000; ++i) {
        uint64_t k = rng() % 200;
        switch (rng() % 3) {
            case 0:
                ASSERT_EQ(tree->add(k), model.insert(k).second) << "i=" << i;
                break;
            case 1:
                ASSERT_EQ(tree->remove(k), model.erase(k) > 0) << "i=" << i;
                break;
            default:
                ASSERT_EQ(tree->contains(k), model.count(k) > 0) << "i=" << i;
        }
        if (i % 100 == 0) {
            ASSERT_TRUE(tree->check_invariants()) << "i=" << i;
        }
    }
    EXPECT_EQ(tree->size(), model.size());
    EXPECT_TRUE(tree->check_invariants());
    std::vector<uint64_t> got, want(model.begin(), model.end());
    tree->for_each([&](uint64_t k) { got.push_back(k); });
    EXPECT_EQ(got, want);
    P::updateTx([&] { P::tmDelete(tree); });
}

// --------------------------------------------------- structures persist

TYPED_TEST(DsTest, HashMapSurvivesReopen) {
    using P = TypeParam;
    using Map = ds::HashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] {
        map = P::template tmNew<Map>(16);
        P::put_object(0, map);
    });
    for (uint64_t k = 0; k < 50; ++k) map->add(k * 3);

    std::string path = this->session_->path;
    P::close();
    P::init(32u << 20, path);

    Map* reopened = P::template get_object<Map>(0);
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->size(), 50u);
    for (uint64_t k = 0; k < 50; ++k) EXPECT_TRUE(reopened->contains(k * 3));
    EXPECT_TRUE(reopened->check_invariants());
}
