// Direct unit tests of the Algorithm 1 recovery semantics on the Romulus
// engines: which twin is authoritative in each state, idempotence, the
// no-op IDL path, reformat on magic mismatch, and used_size monotonicity.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/romulus.hpp"
#include "test_support.hpp"

using namespace romulus;

template <typename E>
class RecoverySemantics : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<test::EngineSession<E>>(8u << 20, E::name());
    }
    void TearDown() override { session_.reset(); }

    // A persistent cell set up in its own committed transaction.
    typename E::template p<uint64_t>* make_cell(uint64_t v) {
        typename E::template p<uint64_t>* cell = nullptr;
        E::updateTx([&] {
            cell = E::template tmNew<typename E::template p<uint64_t>>();
            *cell = v;
            E::put_object(0, cell);
        });
        return cell;
    }
    std::unique_ptr<test::EngineSession<E>> session_;
};

using Engines = ::testing::Types<RomulusNL, RomulusLog, RomulusLR>;
TYPED_TEST_SUITE(RecoverySemantics, Engines);

TYPED_TEST(RecoverySemantics, MutStateRecoversFromBack) {
    using E = TypeParam;
    auto* cell = this->make_cell(100);
    // Simulate a crash mid-transaction: mutate main in an open tx, then
    // "lose" the process (reset thread-locals) and recover.
    E::begin_transaction();
    *cell = 999u;
    ASSERT_EQ(E::state(), MUT);
    E::crash_reset_for_tests();
    E::recover();
    EXPECT_EQ(E::state(), IDL);
    EXPECT_EQ(cell->pload(), 100u) << "back must win in MUT";
    EXPECT_EQ(std::memcmp(E::main_base(), E::back_base(), E::used_bytes()), 0);
}

TYPED_TEST(RecoverySemantics, CpyStateRecoversFromMain) {
    using E = TypeParam;
    auto* cell = this->make_cell(100);
    // Reproduce the CPY window: commit up to the durability point by hand —
    // mutate main, persist it, set state to CPY, then crash before the
    // main->back copy happens.
    E::begin_transaction();
    *cell = 777u;
    // Manually reach CPY (what end_transaction does before copying):
    // we emulate by scribbling state directly, as a crashed process would
    // have left it.  The raw header field is not part of the public API, so
    // go through a targeted end: begin a nested... simpler: copy what
    // end_transaction persists before the copy by finishing the tx and then
    // forcing state back to CPY with back made stale again.
    E::end_transaction();
    // Now main == back == 777.  Make back stale and state CPY: that is
    // byte-wise exactly the crashed-in-CPY picture.
    std::memset(E::back_base(), 0xCD, 64);  // corrupt back's first line
    // Shard 0's state word lives at the head of the first ShardHeader cache
    // line (header layout v2: geometry line, then one line per shard).
    auto* state_addr = reinterpret_cast<std::atomic<uint32_t>*>(
        E::region().base() + 64);
    state_addr->store(CPY);
    E::crash_reset_for_tests();
    E::recover();
    EXPECT_EQ(E::state(), IDL);
    EXPECT_EQ(cell->pload(), 777u) << "main must win in CPY";
    EXPECT_EQ(std::memcmp(E::main_base(), E::back_base(), E::used_bytes()), 0)
        << "back must be refreshed from main";
}

TYPED_TEST(RecoverySemantics, IdleRecoveryIsANoOp) {
    using E = TypeParam;
    auto* cell = this->make_cell(5);
    pmem::reset_tl_stats();
    E::recover();
    EXPECT_EQ(pmem::tl_stats().pwb, 0u) << "IDL recovery must write nothing";
    EXPECT_EQ(cell->pload(), 5u);
}

TYPED_TEST(RecoverySemantics, RecoveryIsIdempotent) {
    using E = TypeParam;
    auto* cell = this->make_cell(42);
    E::begin_transaction();
    *cell = 43u;
    E::crash_reset_for_tests();
    E::recover();
    const uint64_t after_first = cell->pload();
    E::recover();
    E::recover();
    EXPECT_EQ(cell->pload(), after_first);
    EXPECT_EQ(E::state(), IDL);
}

TYPED_TEST(RecoverySemantics, MagicMismatchReformatsInsteadOfMisreading) {
    using E = TypeParam;
    this->make_cell(1234);
    std::string path = this->session_->path;
    E::close();
    // Corrupt the magic: the engine must treat the heap as foreign/new.
    {
        FILE* f = fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        uint64_t bogus = 0x1111111111111111ull;
        fwrite(&bogus, 8, 1, f);
        fclose(f);
    }
    E::init(8u << 20, path);
    EXPECT_EQ(E::template get_object<void>(0), nullptr) << "reformatted";
    EXPECT_EQ(E::state(), IDL);
}

TYPED_TEST(RecoverySemantics, UsedSizeGrowsMonotonicallyAndBoundsRecovery) {
    using E = TypeParam;
    const uint64_t used0 = E::used_bytes();
    this->make_cell(1);
    const uint64_t used1 = E::used_bytes();
    EXPECT_GT(used1, used0);
    E::updateTx([&] {
        void* big = E::alloc_bytes(1u << 20);
        E::free_bytes(big);
    });
    const uint64_t used2 = E::used_bytes();
    EXPECT_GE(used2, used1 + (1u << 20));
    // Freeing never shrinks used_size (it is a high-water mark).
    E::updateTx([&] {
        void* p = E::alloc_bytes(64);
        E::free_bytes(p);
    });
    EXPECT_GE(E::used_bytes(), used2);
    EXPECT_LE(E::used_bytes(), E::main_size());
}
