// Typed tests for the extension data structures (skip list, queue, vector)
// across every PTM, including model-based random-op property tests.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <random>
#include <set>

#include "ds/pqueue.hpp"
#include "ds/pvector.hpp"
#include "ds/skip_list.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;

template <typename P>
class DsExtra : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<EngineSession<P>>(32u << 20, P::name());
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<P>> session_;
};

TYPED_TEST_SUITE(DsExtra, romulus::test::AllPtms);

// --------------------------------------------------------------- skip list

TYPED_TEST(DsExtra, SkipListBasic) {
    using P = TypeParam;
    using SL = ds::SkipListSet<P, uint64_t>;
    SL* sl = nullptr;
    P::updateTx([&] { sl = P::template tmNew<SL>(); });
    for (uint64_t k : {50u, 10u, 90u, 30u, 70u}) EXPECT_TRUE(sl->add(k));
    EXPECT_FALSE(sl->add(50));
    EXPECT_TRUE(sl->contains(30));
    EXPECT_FALSE(sl->contains(31));
    EXPECT_TRUE(sl->remove(30));
    EXPECT_FALSE(sl->remove(30));
    EXPECT_EQ(sl->size(), 4u);
    std::vector<uint64_t> got;
    sl->for_each([&](uint64_t k) { got.push_back(k); });
    EXPECT_EQ(got, (std::vector<uint64_t>{10, 50, 70, 90}));
    EXPECT_TRUE(sl->check_invariants());
    P::updateTx([&] { P::tmDelete(sl); });
}

TYPED_TEST(DsExtra, SkipListRandomOpsMatchStdSet) {
    using P = TypeParam;
    using SL = ds::SkipListSet<P, uint64_t>;
    SL* sl = nullptr;
    P::updateTx([&] { sl = P::template tmNew<SL>(); });
    std::set<uint64_t> model;
    std::mt19937_64 rng(31337);
    for (int i = 0; i < 800; ++i) {
        uint64_t k = rng() % 256;
        switch (rng() % 3) {
            case 0:
                ASSERT_EQ(sl->add(k), model.insert(k).second) << i;
                break;
            case 1:
                ASSERT_EQ(sl->remove(k), model.erase(k) > 0) << i;
                break;
            default:
                ASSERT_EQ(sl->contains(k), model.count(k) > 0) << i;
        }
    }
    EXPECT_EQ(sl->size(), model.size());
    EXPECT_TRUE(sl->check_invariants());
    std::vector<uint64_t> got, want(model.begin(), model.end());
    sl->for_each([&](uint64_t k) { got.push_back(k); });
    EXPECT_EQ(got, want);
    P::updateTx([&] { P::tmDelete(sl); });
}

// ------------------------------------------------------------------- queue

TYPED_TEST(DsExtra, QueueFifoOrder) {
    using P = TypeParam;
    using Q = ds::PQueue<P, uint64_t>;
    Q* q = nullptr;
    P::updateTx([&] { q = P::template tmNew<Q>(); });
    EXPECT_TRUE(q->empty());
    EXPECT_FALSE(q->dequeue().has_value());
    for (uint64_t i = 1; i <= 50; ++i) q->enqueue(i * 11);
    EXPECT_EQ(q->size(), 50u);
    EXPECT_EQ(q->front().value(), 11u);
    for (uint64_t i = 1; i <= 50; ++i) {
        auto v = q->dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i * 11);
    }
    EXPECT_TRUE(q->empty());
    EXPECT_TRUE(q->check_invariants());
    P::updateTx([&] { P::tmDelete(q); });
}

TYPED_TEST(DsExtra, QueueInterleavedMatchesStdDeque) {
    using P = TypeParam;
    using Q = ds::PQueue<P, uint64_t>;
    Q* q = nullptr;
    P::updateTx([&] { q = P::template tmNew<Q>(); });
    std::deque<uint64_t> model;
    std::mt19937_64 rng(5);
    for (int i = 0; i < 600; ++i) {
        if (model.empty() || rng() % 2 == 0) {
            uint64_t v = rng();
            q->enqueue(v);
            model.push_back(v);
        } else {
            auto got = q->dequeue();
            ASSERT_TRUE(got.has_value());
            ASSERT_EQ(*got, model.front());
            model.pop_front();
        }
        if (i % 128 == 0) {
            ASSERT_TRUE(q->check_invariants());
        }
    }
    EXPECT_EQ(q->size(), model.size());
    P::updateTx([&] { P::tmDelete(q); });
}

TYPED_TEST(DsExtra, QueueSurvivesReopen) {
    using P = TypeParam;
    using Q = ds::PQueue<P, uint64_t>;
    Q* q = nullptr;
    P::updateTx([&] {
        q = P::template tmNew<Q>();
        P::put_object(0, q);
    });
    for (uint64_t i = 0; i < 20; ++i) q->enqueue(i);
    (void)q->dequeue();  // 1..19 remain

    std::string path = this->session_->path;
    P::close();
    P::init(32u << 20, path);
    Q* rq = P::template get_object<Q>(0);
    ASSERT_NE(rq, nullptr);
    EXPECT_EQ(rq->size(), 19u);
    EXPECT_EQ(rq->dequeue().value(), 1u);
}

// ------------------------------------------------------------------ vector

TYPED_TEST(DsExtra, VectorPushGrowSetGetPop) {
    using P = TypeParam;
    using V = ds::PVector<P, uint64_t>;
    V* v = nullptr;
    P::updateTx([&] { v = P::template tmNew<V>(4); });
    for (uint64_t i = 0; i < 100; ++i) v->push_back(i * 3);  // several grows
    EXPECT_EQ(v->size(), 100u);
    EXPECT_GE(v->capacity(), 100u);
    for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v->get(i), i * 3);
    v->set(50, 999);
    EXPECT_EQ(v->get(50), 999u);
    EXPECT_EQ(v->pop_back(), 99 * 3);
    EXPECT_EQ(v->size(), 99u);
    uint64_t sum = 0;
    v->for_each([&](uint64_t x) { sum += x; });
    EXPECT_GT(sum, 0u);
    P::updateTx([&] { P::tmDelete(v); });
}

TYPED_TEST(DsExtra, VectorBoundsChecking) {
    using P = TypeParam;
    using V = ds::PVector<P, uint64_t>;
    V* v = nullptr;
    P::updateTx([&] { v = P::template tmNew<V>(); });
    v->push_back(1);
    EXPECT_THROW(v->get(1), std::out_of_range);
    EXPECT_THROW(v->set(5, 0), std::out_of_range);
    (void)v->pop_back();
    EXPECT_THROW(v->pop_back(), std::out_of_range);
    // The throwing transactions must have been rolled back cleanly:
    v->push_back(7);
    EXPECT_EQ(v->get(0), 7u);
    P::updateTx([&] { P::tmDelete(v); });
}
