// Crash-injection property tests (DESIGN.md §4.4).
//
// Under the SimPersistence shadow-cache model, only data whose cache line
// was explicitly written back (or randomly evicted) before a fence is
// persistent.  These tests crash a scripted workload AT EVERY PERSISTENCE
// FENCE, emulate the restart (live region := persisted image, close, init),
// and verify that recovery restores a consistent state:
//
//   * the recovered heap equals the state either before or after the
//     in-flight transaction (failure atomicity: all or nothing),
//   * every transaction whose end_transaction returned is present
//     (durability),
//   * data-structure and allocator invariants hold (§4.4: no leaked or
//     doubly-used chunks after recovery).
//
// The sweep runs under both legal flush-content semantics (content captured
// at pwb vs at fence) and with random spontaneous evictions — algorithms
// must tolerate a dirty line reaching NVM that was never explicitly flushed.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "ds/hash_map.hpp"
#include "ds/linked_list_set.hpp"
#include "pmem/sim_persistence.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

struct CrashPoint {};

class CrashingSim final : public pmem::SimHooks {
  public:
    CrashingSim(uint8_t* base, size_t size, pmem::SimPersistence::Options opts)
        : inner_(base, size, opts) {}

    uint64_t crash_at = UINT64_MAX;  // fence index that "loses power"

    void on_store(const void* a, size_t n) override { inner_.on_store(a, n); }
    void on_pwb(const void* a) override { inner_.on_pwb(a); }
    void on_fence() override {
        inner_.on_fence();
        if (inner_.fence_count() >= crash_at) throw CrashPoint{};
    }

    pmem::SimPersistence& model() { return inner_; }

  private:
    pmem::SimPersistence inner_;
};

template <typename E>
size_t crash_heap_bytes() {
    // RedoLogPTM reserves ~8 MiB of per-thread logs up front.
    if constexpr (std::is_same_v<E, baselines::RedoLogPTM>) return 24u << 20;
    return 12u << 20;
}

/// The scripted workload: kTxs transactions over a persistent sorted list.
/// Returns per-tx expected contents; expected[j] = contents after j txs.
std::vector<std::set<uint64_t>> expected_states(int txs) {
    std::vector<std::set<uint64_t>> states{{}};
    std::set<uint64_t> cur;
    uint64_t x = 88172645463325252ull;  // deterministic xorshift
    for (int j = 0; j < txs; ++j) {
        x ^= x << 13, x ^= x >> 7, x ^= x << 17;
        uint64_t key = x % 40 + 1;
        if (x % 3 != 0) {
            cur.insert(key);
        } else {
            cur.erase(key);
        }
        states.push_back(cur);
    }
    return states;
}

// Committed-transaction counter, updated by the workload after every
// end_transaction return so the crash handler knows the durable lower bound.
thread_local int committed_count_ = -1;

template <typename E>
struct CrashWorkload {
    using List = ds::LinkedListSet<E, uint64_t>;
    static constexpr int kTxs = 12;

    /// Runs the workload; returns the number of *completed* transactions
    /// (creation is tx 0 in a separate accounting slot).
    static int run() {
        committed_count_ = -1;
        E::begin_transaction();
        auto* list = E::template tmNew<List>();
        E::put_object(0, list);
        E::end_transaction();
        committed_count_ = 0;

        uint64_t x = 88172645463325252ull;
        for (int j = 0; j < kTxs; ++j) {
            x ^= x << 13, x ^= x >> 7, x ^= x << 17;
            uint64_t key = x % 40 + 1;
            E::begin_transaction();
            if (x % 3 != 0) {
                list->add(key);
            } else {
                list->remove(key);
            }
            E::end_transaction();
            committed_count_ = j + 1;
        }
        return kTxs;
    }

    /// Post-recovery validation.  `completed` = txs whose end returned
    /// before the crash (-1: creation tx did not complete).
    static void verify(int completed) {
        auto* list = E::template get_object<List>(0);
        if (completed < 0) {
            // The creation tx may or may not have committed; if it did not,
            // the root must still be null (no torn object graph).
            if (list == nullptr) return;
            ASSERT_TRUE(list->check_invariants());
            return;
        }
        ASSERT_NE(list, nullptr);
        ASSERT_TRUE(list->check_invariants());
        auto states = expected_states(kTxs);
        std::set<uint64_t> got;
        list->for_each([&](uint64_t k) { got.insert(k); });
        // All-or-nothing: the recovered contents are the committed prefix,
        // possibly including the transaction in flight at the crash.
        const auto& pre = states[completed];
        const bool match_pre = got == pre;
        const bool match_post =
            completed < kTxs && got == states[completed + 1];
        EXPECT_TRUE(match_pre || match_post)
            << "completed=" << completed << " size=" << got.size();
    }
};

template <typename E>
void run_crash_sweep(pmem::SimPersistence::Options opts, int stride_cap) {
    const std::string path = test::heap_path(std::string("crash_") + E::name());
    const size_t bytes = crash_heap_bytes<E>();

    // Dry run: count total fences in the full workload.
    std::remove(path.c_str());
    E::init(bytes, path);
    auto sim0 = std::make_unique<CrashingSim>(E::region().base(),
                                              E::region().size(), opts);
    pmem::set_sim_hooks(sim0.get());
    CrashWorkload<E>::run();
    pmem::set_sim_hooks(nullptr);
    const uint64_t total = sim0->model().fence_count();
    sim0.reset();
    E::destroy();
    ASSERT_GT(total, 10u);

    const uint64_t stride =
        total > uint64_t(stride_cap) ? total / stride_cap : 1;
    int crashes = 0;
    for (uint64_t k = 1; k <= total; k += stride) {
        std::remove(path.c_str());
        E::init(bytes, path);
        CrashingSim sim(E::region().base(), E::region().size(), opts);
        sim.crash_at = k;
        pmem::set_sim_hooks(&sim);
        int completed = -1;
        bool crashed = false;
        try {
            completed = CrashWorkload<E>::run();
        } catch (const CrashPoint&) {
            crashed = true;
            completed = static_cast<int>(committed_count_);
        }
        pmem::set_sim_hooks(nullptr);
        if (crashed) {
            ++crashes;
            sim.model().crash_restore();  // power cut: cache contents lost
            E::close();
            E::crash_reset_for_tests();
            E::init(bytes, path);  // restart: recovery runs inside init
        }
        CrashWorkload<E>::verify(crashed ? completed : CrashWorkload<E>::kTxs);
        E::destroy();
    }
    EXPECT_GT(crashes, 0);
}

}  // namespace

template <typename E>
class CrashSim : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(CrashSim, romulus::test::AllPtms);

TYPED_TEST(CrashSim, EveryFenceCrashRecovers_FlushAtFence) {
    run_crash_sweep<TypeParam>(
        {pmem::SimPersistence::FlushContent::AtFence, 0.0, 1}, 160);
}

TYPED_TEST(CrashSim, EveryFenceCrashRecovers_FlushAtPwb) {
    run_crash_sweep<TypeParam>(
        {pmem::SimPersistence::FlushContent::AtPwb, 0.0, 2}, 160);
}

TYPED_TEST(CrashSim, EveryFenceCrashRecovers_WithRandomEviction) {
    run_crash_sweep<TypeParam>(
        {pmem::SimPersistence::FlushContent::AtFence, 0.25, 3}, 120);
}

// A structurally different workload for the same sweep: a hash map (bucket
// array + counter + nodes) interleaved with bulk store_range writes into a
// byte buffer — exercising the allocator's array path, the shared counter,
// and the range-store code under crash injection.
namespace {

template <typename E>
struct MixedCrashWorkload {
    static constexpr int kTxs = 10;

    static void run() {
        committed_count_ = -1;
        E::begin_transaction();
        auto* map = E::template tmNew<romulus::ds::HashMap<E, uint64_t>>(4);
        E::put_object(0, map);
        auto* buf = static_cast<uint8_t*>(E::alloc_bytes(256));
        E::zero_range(buf, 256);
        E::put_object(1, buf);
        E::end_transaction();
        committed_count_ = 0;

        uint64_t x = 0x853C49E6748FEA9Bull;
        for (int j = 0; j < kTxs; ++j) {
            x ^= x << 13, x ^= x >> 7, x ^= x << 17;
            E::begin_transaction();
            if (x % 2 == 0) {
                map->add(x % 30);  // may trigger a resize transactionally
            } else {
                map->remove(x % 30);
            }
            std::vector<uint8_t> pat(64, uint8_t(j + 1));
            E::store_range(buf + (j % 4) * 64, pat.data(), 64);
            E::end_transaction();
            committed_count_ = j + 1;
        }
    }

    static void verify(int completed) {
        auto* map =
            E::template get_object<romulus::ds::HashMap<E, uint64_t>>(0);
        auto* buf = E::template get_object<uint8_t>(1);
        if (completed < 0) {
            if (map != nullptr) {
                EXPECT_TRUE(map->check_invariants());
            }
            return;
        }
        ASSERT_NE(map, nullptr);
        ASSERT_NE(buf, nullptr);
        EXPECT_TRUE(map->check_invariants());
        EXPECT_GT(E::allocator().check_consistency(), 0u);
        // Atomicity of the bulk write: each 64-byte stripe is uniform (a
        // torn stripe would mix two pattern bytes).
        for (int s = 0; s < 4; ++s) {
            const uint8_t first = buf[s * 64];
            for (int i = 1; i < 64; ++i)
                ASSERT_EQ(buf[s * 64 + i], first) << "torn stripe " << s;
        }
    }
};

template <typename E>
void run_mixed_sweep() {
    const std::string path =
        test::heap_path(std::string("crashmix_") + E::name());
    const size_t bytes = crash_heap_bytes<E>();
    pmem::SimPersistence::Options opts{
        pmem::SimPersistence::FlushContent::AtFence, 0.0, 5};

    std::remove(path.c_str());
    E::init(bytes, path);
    auto sim0 = std::make_unique<CrashingSim>(E::region().base(),
                                              E::region().size(), opts);
    pmem::set_sim_hooks(sim0.get());
    MixedCrashWorkload<E>::run();
    pmem::set_sim_hooks(nullptr);
    const uint64_t total = sim0->model().fence_count();
    sim0.reset();
    E::destroy();

    const uint64_t stride = total > 120 ? total / 120 : 1;
    for (uint64_t k = 1; k <= total; k += stride) {
        std::remove(path.c_str());
        E::init(bytes, path);
        CrashingSim sim(E::region().base(), E::region().size(), opts);
        sim.crash_at = k;
        pmem::set_sim_hooks(&sim);
        bool crashed = false;
        int completed = MixedCrashWorkload<E>::kTxs;
        try {
            MixedCrashWorkload<E>::run();
        } catch (const CrashPoint&) {
            crashed = true;
            completed = committed_count_;
        }
        pmem::set_sim_hooks(nullptr);
        if (crashed) {
            sim.model().crash_restore();
            E::close();
            E::crash_reset_for_tests();
            E::init(bytes, path);
        }
        MixedCrashWorkload<E>::verify(completed);
        E::destroy();
        if (::testing::Test::HasFatalFailure()) return;
    }
}

}  // namespace

TYPED_TEST(CrashSim, MixedStructureAndRangeWorkloadRecovers) {
    run_mixed_sweep<TypeParam>();
}
