// KVStore<PTM> is PTM-generic: exercise the full key-value surface across
// all five PTMs (RomulusDB itself pins RomulusLog, §6.4, but the
// construction works over any of them — that is the paper's point).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>

#include "db/kvstore.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using db::KVStore;
using db::WriteBatch;
using romulus::test::EngineSession;

template <typename P>
class KvTyped : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<EngineSession<P>>(48u << 20, P::name());
        P::updateTx([&] {
            store_ = P::template tmNew<KVStore<P>>(64);
            P::put_object(0, store_);
        });
    }
    void TearDown() override {
        // No tmDelete here: destroying a store with thousands of entries is
        // one huge transaction (beyond the redo-log baseline's capacity);
        // the session teardown deletes the whole heap file instead.
        session_.reset();
    }
    std::unique_ptr<EngineSession<P>> session_;
    KVStore<P>* store_ = nullptr;
};

TYPED_TEST_SUITE(KvTyped, romulus::test::AllPtms);

TYPED_TEST(KvTyped, PutGetDelOverwrite) {
    auto* kv = this->store_;
    kv->put("k1", "hello");
    kv->put("k2", "world");
    std::string v;
    EXPECT_TRUE(kv->get("k1", &v));
    EXPECT_EQ(v, "hello");
    kv->put("k1", "HELLO");  // same size, in-place
    EXPECT_TRUE(kv->get("k1", &v));
    EXPECT_EQ(v, "HELLO");
    kv->put("k1", "much longer replacement value");  // realloc
    EXPECT_TRUE(kv->get("k1", &v));
    EXPECT_EQ(v, "much longer replacement value");
    EXPECT_TRUE(kv->del("k1"));
    EXPECT_FALSE(kv->del("k1"));
    EXPECT_FALSE(kv->get("k1", &v));
    EXPECT_EQ(kv->size(), 1u);
}

TYPED_TEST(KvTyped, EmptyKeysAndValues) {
    auto* kv = this->store_;
    kv->put("", "empty key");
    kv->put("empty value", "");
    std::string v;
    EXPECT_TRUE(kv->get("", &v));
    EXPECT_EQ(v, "empty key");
    EXPECT_TRUE(kv->get("empty value", &v));
    EXPECT_EQ(v, "");
    EXPECT_EQ(kv->size(), 2u);
}

TYPED_TEST(KvTyped, BinarySafeValues) {
    auto* kv = this->store_;
    std::string bin;
    for (int i = 0; i < 256; ++i) bin.push_back(char(i));
    kv->put("bin", bin);
    std::string v;
    ASSERT_TRUE(kv->get("bin", &v));
    EXPECT_EQ(v, bin);
}

TYPED_TEST(KvTyped, BatchAtomicity) {
    auto* kv = this->store_;
    kv->put("stay", "1");
    WriteBatch b;
    b.put("a", "1");
    b.del("stay");
    b.put("b", "2");
    kv->write(b);
    EXPECT_TRUE(kv->contains("a"));
    EXPECT_TRUE(kv->contains("b"));
    EXPECT_FALSE(kv->contains("stay"));
}

TYPED_TEST(KvTyped, GrowsThroughManyInserts) {
    using P = TypeParam;
    auto* kv = this->store_;
    // Batched (redo-log-friendly) bulk load past several resize points.
    constexpr int kN = 2000;
    for (int base = 0; base < kN; base += 50) {
        P::updateTx([&] {
            for (int i = base; i < base + 50; ++i) {
                WriteBatch b;  // exercise both single puts and batches
                kv->put("key" + std::to_string(i), "v" + std::to_string(i));
            }
        });
    }
    EXPECT_EQ(kv->size(), uint64_t(kN));
    std::string v;
    for (int i = 0; i < kN; i += 97) {
        ASSERT_TRUE(kv->get("key" + std::to_string(i), &v));
        EXPECT_EQ(v, "v" + std::to_string(i));
    }
}

TYPED_TEST(KvTyped, RandomOpsMatchStdMap) {
    auto* kv = this->store_;
    std::map<std::string, std::string> model;
    std::mt19937_64 rng(4242);
    for (int i = 0; i < 1500; ++i) {
        std::string k = "k" + std::to_string(rng() % 120);
        switch (rng() % 4) {
            case 0:
            case 1: {
                std::string v(rng() % 40 + 1, char('a' + rng() % 26));
                kv->put(k, v);
                model[k] = v;
                break;
            }
            case 2:
                ASSERT_EQ(kv->del(k), model.erase(k) > 0) << i;
                break;
            default: {
                std::string got;
                auto it = model.find(k);
                ASSERT_EQ(kv->get(k, &got), it != model.end()) << i;
                if (it != model.end()) {
                    ASSERT_EQ(got, it->second);
                }
            }
        }
    }
    EXPECT_EQ(kv->size(), model.size());
    std::map<std::string, std::string> dumped;
    kv->for_each([&](std::string_view k, std::string_view v) {
        dumped.emplace(std::string(k), std::string(v));
    });
    EXPECT_EQ(dumped, model);
}

TYPED_TEST(KvTyped, SurvivesReopen) {
    using P = TypeParam;
    auto* kv = this->store_;
    for (int i = 0; i < 100; ++i)
        kv->put("p" + std::to_string(i), std::to_string(i * i));

    std::string path = this->session_->path;
    P::close();
    P::init(48u << 20, path);
    auto* re = P::template get_object<KVStore<P>>(0);
    ASSERT_NE(re, nullptr);
    this->store_ = re;
    EXPECT_EQ(re->size(), 100u);
    std::string v;
    ASSERT_TRUE(re->get("p7", &v));
    EXPECT_EQ(v, "49");
}
