// romfuzz layer 3 (docs/romfuzz.md): tier-1 fuzz smokes and the planted-bug
// detection fixture.
//
//  * Short-budget fuzz smoke on every engine × shard count: a handful of
//    seeded histories, every enumerated crash image recovered and
//    model-checked, zero violations expected — the crash-consistency
//    regression net that runs on every ctest invocation.
//  * Fork-mode smoke: the same oracle across real fork-and-_exit crashes.
//  * Planted bug: arming the elide-commit-fence protocol mutation
//    (-DROMULUS_PERSISTGRAPH builds) must produce an image-oracle violation
//    within a bounded number of histories — and the silent control (same
//    seeds, mutation off) must stay clean.  This is the end-to-end witness
//    that the fuzzer detects a real missing-fence bug, not just that it runs.
#include <gtest/gtest.h>

#include <string>

#include "analysis/romfuzz.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

namespace {

using namespace romulus;
using namespace romulus::analysis;
using romulus::test::heap_path;

/// Small budgets keep one smoke under ~2 s while still exploring ~100
/// crash images per engine config.
FuzzConfig smoke_cfg(const std::string& tag, unsigned shards) {
    FuzzConfig cfg;
    cfg.path = heap_path(tag);
    cfg.shards = shards;
    cfg.gen.setup_ops = 16;
    cfg.gen.episode_ops = 8;
    cfg.gen.key_space = 32;
    cfg.gen.value_max = 96;
    cfg.explore.max_cuts = 48;
    cfg.explore.window_samples = 4;
    cfg.explore.window_exhaustive_cap = 16;
    return cfg;
}

template <typename E>
class RomfuzzSmoke : public ::testing::Test {};
TYPED_TEST_SUITE(RomfuzzSmoke, romulus::test::AllPtms);

TYPED_TEST(RomfuzzSmoke, ExploreHistoriesAreClean) {
    using E = TypeParam;
    for (unsigned shards : {1u, 4u}) {
        if (!KvFacade<E>::kSharded && shards != 1) continue;
        FuzzHarness<E> harness(smoke_cfg("romfuzz_smoke", shards));
        for (uint64_t seed = 1; seed <= 2; ++seed) {
            FuzzResult res = harness.run_one(seed);
            EXPECT_TRUE(res.ok())
                << E::name() << " shards=" << shards << " seed=" << seed
                << ": " << (res.failures.empty() ? "?" : res.failures[0]);
            EXPECT_GT(res.report.cuts_explored, 0u);
            EXPECT_GT(res.get_checks, 0u);
        }
    }
}

TYPED_TEST(RomfuzzSmoke, ForkCrashesRecoverConsistently) {
    using E = TypeParam;
    FuzzHarness<E> harness(smoke_cfg("romfuzz_fork", 2));
    const TxTrace trace = harness.generate(3);
    ForkResult fr = harness.run_fork(trace, /*crashes=*/2, /*rng_seed=*/3);
    EXPECT_TRUE(fr.ok()) << E::name() << ": "
                         << (fr.failures.empty() ? "?" : fr.failures[0]);
    EXPECT_GT(fr.fences_total, 0u);
    EXPECT_EQ(fr.crashes, 2u);
}

TEST(RomfuzzRepro, ViolatingCutIndexReplaysDeterministically) {
    // Even on a clean engine, re-running the same trace with the same
    // explore options must enumerate the same cuts and produce the same
    // access log — the property --replay relies on to reproduce a bundle.
    using E = RomulusLog;
    FuzzHarness<E> harness(smoke_cfg("romfuzz_det", 2));
    const TxTrace trace = harness.generate(17);
    ExploreOptions opts;
    opts.max_cuts = 32;
    opts.window_samples = 3;
    opts.window_exhaustive_cap = 8;
    opts.seed = 123;
    FuzzResult a = harness.run_trace(trace, opts);
    FuzzResult b = harness.run_trace(trace, opts);
    EXPECT_EQ(a.report.cuts_explored, b.report.cuts_explored);
    EXPECT_EQ(a.trace.access.digest(), b.trace.access.digest());
    EXPECT_EQ(a.trace.digest(), b.trace.digest());
}

// ---------------------------------------------------------------------------
// Planted bug: the fuzzer must catch a missing commit fence
// ---------------------------------------------------------------------------

struct MutationGuard {
    ~MutationGuard() { protocol_mutations() = ProtocolMutations{}; }
};

TEST(RomfuzzPlantedBug, ElidedCommitFenceIsFlagged) {
    if (!kPersistGraphEnabled)
        GTEST_SKIP() << "mutation hooks need -DROMULUS_PERSISTGRAPH";
    using E = RomulusLog;
    MutationGuard guard;

    // Silent control first: the exact seeds the armed run will use must be
    // clean without the mutation, so a detection below can only come from
    // the planted bug.
    constexpr uint64_t kMaxHistories = 12;
    {
        protocol_mutations() = ProtocolMutations{};
        FuzzHarness<E> harness(smoke_cfg("romfuzz_control", 2));
        for (uint64_t seed = 1; seed <= kMaxHistories; ++seed) {
            FuzzResult res = harness.run_one(seed);
            ASSERT_TRUE(res.ok())
                << "control run violated at seed " << seed << ": "
                << (res.failures.empty() ? "?" : res.failures[0]);
        }
    }

    protocol_mutations().elide_commit_fence = true;
    FuzzHarness<E> harness(smoke_cfg("romfuzz_planted", 2));
    bool flagged = false;
    for (uint64_t seed = 1; seed <= kMaxHistories && !flagged; ++seed) {
        FuzzResult res = harness.run_one(seed);
        if (!res.ok()) {
            flagged = true;
            // The repro bundle round-trip: save the trace + violating cut,
            // reload it, and the violation must reproduce by cut index.
            ASSERT_FALSE(res.violating_cuts.empty());
            res.trace.has_repro = true;
            res.trace.repro.mode = 0;
            res.trace.repro.explore_seed =
                seed * 0x9E3779B97F4A7C15ull + 1;
            res.trace.repro.max_cuts = harness.config().explore.max_cuts;
            res.trace.repro.window_exhaustive_cap =
                harness.config().explore.window_exhaustive_cap;
            res.trace.repro.window_samples =
                harness.config().explore.window_samples;
            res.trace.repro.cut_index = res.violating_cuts.front();
            const std::string bundle = heap_path("romfuzz_bundle") + ".trace";
            res.trace.save(bundle);

            const TxTrace back = TxTrace::load(bundle);
            ExploreOptions opts = harness.config().explore;
            opts.seed = back.repro.explore_seed;
            FuzzResult replay = harness.run_trace(back, opts);
            bool same_cut = false;
            for (uint64_t c : replay.violating_cuts)
                same_cut |= c == back.repro.cut_index;
            EXPECT_TRUE(same_cut)
                << "violating cut " << back.repro.cut_index
                << " did not reproduce from the bundle";
            std::remove(bundle.c_str());
        }
    }
    EXPECT_TRUE(flagged) << "elided commit fence survived " << kMaxHistories
                         << " fuzz histories";
}

TEST(RomfuzzPlantedBug, ReorderedStatePersistIsFlagged) {
    if (!kPersistGraphEnabled)
        GTEST_SKIP() << "mutation hooks need -DROMULUS_PERSISTGRAPH";
    using E = RomulusNL;
    MutationGuard guard;
    protocol_mutations().reorder_state_persist = true;
    FuzzHarness<E> harness(smoke_cfg("romfuzz_reorder", 1));
    bool flagged = false;
    for (uint64_t seed = 1; seed <= 12 && !flagged; ++seed)
        flagged = !harness.run_one(seed).ok();
    EXPECT_TRUE(flagged) << "reordered state persist survived 12 histories";
}

}  // namespace
