// romver unit layer (docs/romver.md): golden persist-graph construction from
// a hand-driven event sequence, the static protocol rules on synthetic
// streams, and crash-cut enumeration on graphs small enough to verify by
// hand — no engine involved, every expectation computed on paper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "analysis/crash_explorer.hpp"
#include "analysis/persist_graph.hpp"
#include "pmem/sim_persistence.hpp"
#include "pmem/stats.hpp"

namespace romulus::analysis {
namespace {

constexpr size_t kLine = pmem::kCacheLineSize;

// A 16-line scratch "region" the tests drive hooks against directly.
struct Scratch {
    alignas(64) uint8_t mem[16 * kLine] = {};
    uint8_t* at(size_t line, size_t byte = 0) { return mem + line * kLine + byte; }
};

// ---------------------------------------------------------------------------
// Golden graph: known event sequence -> known node/window/edge structure
// ---------------------------------------------------------------------------

TEST(PersistGraph, GoldenEventSequenceProducesKnownEdgeSet) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));

    // window 0: lines 0 and 1 written back, line 0 twice (same-line chain).
    rgn.at(0)[0] = 1;
    rec.on_store(rgn.at(0), 1);
    rec.on_pwb(rgn.at(0));          // node 0: line 0, window 0
    rgn.at(0)[1] = 2;
    rec.on_store(rgn.at(0, 1), 1);
    rec.on_pwb(rgn.at(0));          // node 1: line 0, window 0, pred 0
    rgn.at(1)[0] = 3;
    rec.on_store(rgn.at(1), 1);
    rec.on_pwb(rgn.at(1));          // node 2: line 1, window 0
    rec.on_fence();
    // window 1: line 2.
    rgn.at(2)[0] = 4;
    rec.on_store(rgn.at(2), 1);
    rec.on_pwb(rgn.at(2));          // node 3: line 2, window 1
    rec.on_fence();
    // window 2 (trailing, open): empty.

    PersistGraph g = PersistGraph::build(rec);
    ASSERT_EQ(g.nodes().size(), 4u);
    EXPECT_EQ(g.window_count(), 3u);
    ASSERT_EQ(g.window_nodes().size(), 3u);
    EXPECT_EQ(g.window_nodes()[0], (std::vector<uint32_t>{0, 1, 2}));
    EXPECT_EQ(g.window_nodes()[1], (std::vector<uint32_t>{3}));
    EXPECT_TRUE(g.window_nodes()[2].empty());

    EXPECT_EQ(g.nodes()[0].line, 0u);
    EXPECT_EQ(g.nodes()[0].same_line_pred, PersistGraph::kNoNode);
    EXPECT_EQ(g.nodes()[1].line, 0u);
    EXPECT_EQ(g.nodes()[1].same_line_pred, 0u);
    EXPECT_EQ(g.nodes()[2].line, 1u);
    EXPECT_EQ(g.nodes()[2].same_line_pred, PersistGraph::kNoNode);
    EXPECT_EQ(g.nodes()[3].window, 1u);

    // Happens-before: fence edges across windows, same-line chains within,
    // nothing else.
    EXPECT_TRUE(g.ordered_before(0, 3));   // window 0 -> window 1
    EXPECT_TRUE(g.ordered_before(2, 3));
    EXPECT_TRUE(g.ordered_before(0, 1));   // same line, program order
    EXPECT_FALSE(g.ordered_before(1, 0));
    EXPECT_FALSE(g.ordered_before(0, 2));  // different lines, same window
    EXPECT_FALSE(g.ordered_before(2, 0));
    EXPECT_FALSE(g.ordered_before(3, 0));
}

TEST(PersistGraph, PwbCapturesLineContentAtIssueTime) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    rgn.at(3)[7] = 0xAB;
    rec.on_store(rgn.at(3, 7), 1);
    rec.on_pwb(rgn.at(3));
    rgn.at(3)[7] = 0xCD;  // later store must NOT leak into the capture
    const auto& e = rec.events().back();
    EXPECT_EQ(rec.line_content(e)[7], 0xAB);
    // Baseline snapshot is the construction-time content.
    EXPECT_EQ(rec.baseline()[3 * kLine + 7], 0u);
}

TEST(PersistGraph, RecorderChainsToNextObserver) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    pmem::SimPersistence::Options sopts;
    sopts.next = &rec;
    pmem::SimPersistence sim(rgn.mem, sizeof(rgn.mem), sopts);
    rgn.at(0)[0] = 9;
    sim.on_store(rgn.at(0), 1);
    sim.on_pwb(rgn.at(0));
    sim.on_fence();
    sim.on_state_transition(2);
    sim.on_tx_commit();
    ASSERT_EQ(rec.events().size(), 5u);
    EXPECT_EQ(rec.events()[0].kind, PersistEventKind::Store);
    EXPECT_EQ(rec.events()[1].kind, PersistEventKind::Pwb);
    EXPECT_EQ(rec.events()[2].kind, PersistEventKind::Fence);
    EXPECT_EQ(rec.events()[3].kind, PersistEventKind::StateTransition);
    EXPECT_EQ(rec.events()[3].state, 2u);
    EXPECT_EQ(rec.events()[4].kind, PersistEventKind::TxCommit);
    EXPECT_EQ(sim.fence_count(), 1u);  // the sim itself still works
}

// ---------------------------------------------------------------------------
// Static protocol rules on synthetic streams
// ---------------------------------------------------------------------------

// Layout: one shard, main = lines 4..7, state word at line 1 byte 0,
// used word at line 1 byte 8.
EngineLayout one_shard_layout() {
    EngineLayout l;
    l.region_size = 16 * kLine;
    EngineLayout::Shard sh;
    sh.main_off = 4 * kLine;
    sh.main_size = 4 * kLine;
    sh.back_off = EngineLayout::kNone;
    sh.state_off = 1 * kLine;
    sh.used_off = 1 * kLine + 8;
    l.shards.push_back(sh);
    return l;
}

// Emit the MUT prologue + a body store, then the commit-side events per the
// flags, mirroring the engine's end_transaction shapes.
void drive_commit(Scratch& rgn, PersistEventRecorder& rec, bool flush_body,
                  bool fence_before_state) {
    // begin: MUT state persist
    rec.on_store(rgn.at(1), 4);
    rec.on_state_transition(1);
    rec.on_pwb(rgn.at(1));
    rec.on_fence();
    // body
    rec.on_store(rgn.at(4), 8);
    if (flush_body) rec.on_pwb(rgn.at(4));
    if (fence_before_state) rec.on_fence();
    // CPY state persist
    rec.on_store(rgn.at(1), 4);
    rec.on_state_transition(2);
    rec.on_pwb(rgn.at(1));
    rec.on_fence();
}

TEST(ProtocolRules, WellFencedCommitIsClean) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    drive_commit(rgn, rec, /*flush_body=*/true, /*fence_before_state=*/true);
    PersistGraph g = PersistGraph::build(rec);
    GraphAnalysis ga = analyze_protocol(rec, g, one_shard_layout());
    EXPECT_TRUE(ga.clean()) << ga.report();
    EXPECT_EQ(ga.state_persists, 2u);
    EXPECT_EQ(ga.redundant_pwbs, 0u);
}

TEST(ProtocolRules, DirtyLineWithNoWritebackIsFlagged) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    drive_commit(rgn, rec, /*flush_body=*/false, /*fence_before_state=*/true);
    PersistGraph g = PersistGraph::build(rec);
    GraphAnalysis ga = analyze_protocol(rec, g, one_shard_layout());
    ASSERT_EQ(ga.violations.size(), 1u);
    EXPECT_EQ(ga.violations[0].kind, ProtocolViolation::Kind::UnflushedLine);
    EXPECT_EQ(ga.violations[0].line_off, 4 * kLine);
    EXPECT_EQ(ga.violations[0].state_value, 2u);
    EXPECT_NE(ga.violations[0].detail.find("no write-back"),
              std::string::npos);
}

TEST(ProtocolRules, MissingFenceBeforeStatePersistIsFlagged) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    drive_commit(rgn, rec, /*flush_body=*/true, /*fence_before_state=*/false);
    PersistGraph g = PersistGraph::build(rec);
    GraphAnalysis ga = analyze_protocol(rec, g, one_shard_layout());
    ASSERT_EQ(ga.violations.size(), 1u);
    const ProtocolViolation& v = ga.violations[0];
    EXPECT_EQ(v.kind, ProtocolViolation::Kind::UnorderedStatePersist);
    EXPECT_EQ(v.line_off, 4 * kLine);
    // The report names the unordered line/fence-window pair.
    EXPECT_EQ(v.line_window, 1u);
    EXPECT_EQ(v.state_window, 1u);
    EXPECT_NE(v.detail.find("window 1"), std::string::npos);
    EXPECT_NE(v.detail.find("not ordered before"), std::string::npos);
}

TEST(ProtocolRules, RedundantPwbCountedAndWiredIntoCommitStats) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    rec.on_store(rgn.at(4), 8);
    rec.on_pwb(rgn.at(4));  // covers the store
    rec.on_pwb(rgn.at(4));  // redundant: no dirty store since the last pwb
    rec.on_pwb(rgn.at(5));  // redundant: line never stored at all
    PersistGraph g = PersistGraph::build(rec);
    GraphAnalysis ga = analyze_protocol(rec, g, one_shard_layout());
    EXPECT_EQ(ga.redundant_pwbs, 2u);
    pmem::CommitStats cs;
    ga.record_in(cs);
    EXPECT_EQ(cs.redundant_pwbs, 2u);
    ga.record_in(cs);
    EXPECT_EQ(cs.redundant_pwbs, 4u);  // accumulates
}

// ---------------------------------------------------------------------------
// Crash-cut enumeration on hand-checkable graphs
// ---------------------------------------------------------------------------

TEST(CrashExplorer, ExhaustiveEnumerationMatchesTheory) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    // window 0: chains {line0: 2 writebacks} {line1: 1}  -> 3*2 subsets
    rgn.at(0)[0] = 1;
    rec.on_store(rgn.at(0), 1);
    rec.on_pwb(rgn.at(0));
    rgn.at(0)[0] = 2;
    rec.on_store(rgn.at(0), 1);
    rec.on_pwb(rgn.at(0));
    rgn.at(1)[0] = 3;
    rec.on_store(rgn.at(1), 1);
    rec.on_pwb(rgn.at(1));
    rec.on_fence();
    // window 1: chain {line2: 1}  -> 2 subsets
    rgn.at(2)[0] = 4;
    rec.on_store(rgn.at(2), 1);
    rec.on_pwb(rgn.at(2));

    PersistGraph g = PersistGraph::build(rec);
    // cuts = (3*2 - 1) + (2 - 1) + 1 complete = 7
    std::set<std::vector<uint8_t>> images;
    uint64_t complete_seen = 0;
    ExploreReport rep = explore_crash_images(
        g, rec,
        [&](const std::vector<uint8_t>& img, const CrashCut& cut,
            std::string&) {
            images.insert(img);
            if (cut.complete) {
                ++complete_seen;
                EXPECT_EQ(img[0], 2u);
                EXPECT_EQ(img[kLine], 3u);
                EXPECT_EQ(img[2 * kLine], 4u);
            }
            return true;
        });
    EXPECT_TRUE(rep.exhaustive);
    EXPECT_EQ(rep.cuts_total, 7.0);
    EXPECT_EQ(rep.cuts_explored, 7u);
    EXPECT_EQ(rep.cuts_sampled, 0u);
    EXPECT_EQ(rep.cuts_dropped, 0.0);
    EXPECT_EQ(rep.violations, 0u);
    EXPECT_EQ(complete_seen, 1u);
    // Every cut produced a DISTINCT image (no image visited twice): the
    // same-line chain values differ and line2 only appears in window 1.
    EXPECT_EQ(images.size(), 7u);
    EXPECT_NE(rep.summary().find("[exhaustive]"), std::string::npos);
}

TEST(CrashExplorer, DownClosedCutsOnly) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    // line0 persisted in window 0, line1 in window 1: line1 may never be
    // durable without line0.
    rgn.at(0)[0] = 1;
    rec.on_store(rgn.at(0), 1);
    rec.on_pwb(rgn.at(0));
    rec.on_fence();
    rgn.at(1)[0] = 1;
    rec.on_store(rgn.at(1), 1);
    rec.on_pwb(rgn.at(1));

    PersistGraph g = PersistGraph::build(rec);
    ExploreReport rep = explore_crash_images(
        g, rec,
        [&](const std::vector<uint8_t>& img, const CrashCut&, std::string&) {
            if (img[kLine] == 1) {
                EXPECT_EQ(img[0], 1u);  // fence edge holds
            }
            return true;
        });
    EXPECT_TRUE(rep.exhaustive);
    EXPECT_EQ(rep.cuts_explored, 3u);  // {}, {line0}, {line0,line1}
}

TEST(CrashExplorer, SamplingIsDeterministicUnderFixedSeed) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    // One window of 10 single-writeback chains: 2^10 = 1024 subsets.
    for (size_t l = 0; l < 10; ++l) {
        rgn.at(l)[0] = uint8_t(l + 1);
        rec.on_store(rgn.at(l), 1);
        rec.on_pwb(rgn.at(l));
    }
    PersistGraph g = PersistGraph::build(rec);

    ExploreOptions opts;
    opts.window_exhaustive_cap = 64;  // force sampling
    opts.window_samples = 20;
    opts.seed = 42;

    auto run = [&] {
        std::vector<std::vector<uint8_t>> images;
        ExploreReport rep = explore_crash_images(
            g, rec,
            [&](const std::vector<uint8_t>& img, const CrashCut&,
                std::string&) {
                images.push_back(img);
                return true;
            },
            opts);
        return std::make_pair(rep, images);
    };
    auto [rep1, img1] = run();
    auto [rep2, img2] = run();
    EXPECT_EQ(rep1.cuts_explored, rep2.cuts_explored);
    EXPECT_EQ(rep1.cuts_sampled, rep2.cuts_sampled);
    EXPECT_EQ(img1, img2);  // identical cut sequence, byte for byte
    EXPECT_EQ(rep1.windows_sampled, 1u);
    EXPECT_FALSE(rep1.exhaustive);
    EXPECT_EQ(rep1.cuts_total, 1024.0);
    EXPECT_GT(rep1.cuts_dropped, 0.0);
    // Different seed -> different sample set (overwhelmingly likely).
    opts.seed = 43;
    auto [rep3, img3] = run();
    EXPECT_EQ(rep3.cuts_explored, rep1.cuts_explored);
    EXPECT_NE(img1, img3);
}

TEST(CrashExplorer, BudgetTruncationIsReported) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    for (size_t l = 0; l < 8; ++l) {
        rgn.at(l)[0] = uint8_t(l + 1);
        rec.on_store(rgn.at(l), 1);
        rec.on_pwb(rgn.at(l));
    }
    PersistGraph g = PersistGraph::build(rec);
    ExploreOptions opts;
    opts.max_cuts = 10;
    ExploreReport rep = explore_crash_images(
        g, rec,
        [](const std::vector<uint8_t>&, const CrashCut&, std::string&) {
            return true;
        },
        opts);
    EXPECT_TRUE(rep.budget_hit);
    EXPECT_FALSE(rep.exhaustive);
    EXPECT_EQ(rep.cuts_explored, 10u);
    EXPECT_EQ(rep.cuts_total, 256.0);
    EXPECT_EQ(rep.cuts_dropped, 246.0);
    EXPECT_NE(rep.summary().find("dropped 246"), std::string::npos);
    EXPECT_NE(rep.summary().find("[budget hit]"), std::string::npos);
}

TEST(CrashExplorer, ViolationsAreCollectedWithCutDescriptions) {
    Scratch rgn;
    PersistEventRecorder rec(rgn.mem, sizeof(rgn.mem));
    rgn.at(0)[0] = 1;
    rec.on_store(rgn.at(0), 1);
    rec.on_pwb(rgn.at(0));
    PersistGraph g = PersistGraph::build(rec);
    ExploreReport rep = explore_crash_images(
        g, rec,
        [](const std::vector<uint8_t>& img, const CrashCut&,
           std::string& err) {
            if (img[0] == 1) {
                err = "synthetic invariant failure";
                return false;
            }
            return true;
        });
    EXPECT_EQ(rep.violations, 1u);
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_NE(rep.failures[0].find("synthetic invariant failure"),
              std::string::npos);
    EXPECT_NE(rep.summary().find("1 violation(s)"), std::string::npos);
}

}  // namespace
}  // namespace romulus::analysis
