// romver engine layer (docs/romver.md): record real transactions on all five
// PTMs, check the static protocol rules stay clean, and model-check the
// legal crash images through each engine's actual recovery path.
#include <gtest/gtest.h>

#include <string>

#include "analysis/romver.hpp"
#include "pmem/stats.hpp"
#include "test_support.hpp"
#include "ptm_types.hpp"

namespace romulus::test {
namespace {

using analysis::ExploreOptions;
using analysis::ExploreReport;
using analysis::GraphAnalysis;
using analysis::RomverConfig;
using analysis::RomverHarness;

template <typename E>
RomverConfig config_for(const std::string& tag, size_t tx_bytes) {
    RomverConfig cfg;
    cfg.path = heap_path(tag);
    cfg.tx_bytes = tx_bytes;
    return cfg;
}

// ---------------------------------------------------------------------------
// The acceptance run: a single-shard 8 KB update transaction on all five
// engines — static rules clean, every materialized crash image recovers to
// one of the two atomic states, dropped cuts reported.
// ---------------------------------------------------------------------------

template <typename E>
class RomverAcceptance : public ::testing::Test {};
TYPED_TEST_SUITE(RomverAcceptance, AllPtms);

TYPED_TEST(RomverAcceptance, Explore8KBTxCrashImages) {
    using E = TypeParam;
    RomverHarness<E> harness(config_for<E>("romver8k", 8192));
    harness.record();
    ASSERT_FALSE(harness.recorder().overflowed());

    GraphAnalysis ga = harness.analyze();
    EXPECT_TRUE(ga.clean()) << ga.report();
    EXPECT_GT(ga.pwbs, 0u);

    ExploreOptions opts;
    opts.window_samples = 48;
    opts.max_cuts = 2048;
    opts.seed = 7;
    ExploreReport rep = harness.explore(opts);
    EXPECT_EQ(rep.violations, 0u) << rep.summary();
    EXPECT_GT(rep.cuts_explored, 0u);
    EXPECT_FALSE(rep.budget_hit) << rep.summary();
    // An 8 KB transaction has ~2^128 legal images in its body window alone:
    // the run must complete by sampling and say exactly what it dropped.
    EXPECT_GT(rep.windows_sampled, 0u);
    EXPECT_GT(rep.cuts_dropped, 0.0);
    EXPECT_NE(rep.summary().find("dropped"), std::string::npos)
        << rep.summary();
}

// ---------------------------------------------------------------------------
// Truly exhaustive exploration: a one-line transaction has few enough legal
// crash images to visit every single one through real recovery.
// ---------------------------------------------------------------------------

template <typename E>
class RomverExhaustive : public ::testing::Test {};
TYPED_TEST_SUITE(RomverExhaustive, AllPtms);

TYPED_TEST(RomverExhaustive, OneLineTxExploresEveryCut) {
    using E = TypeParam;
    if constexpr (std::is_same_v<E, RomulusNL>) {
        // RomulusNL replicates the whole used range to back at commit, so
        // even a one-line transaction on a minimal heap persists ~16
        // metadata lines in one window (~2^16 legal images — minutes of
        // recoveries).  Its sampled coverage is Explore8KBTxCrashImages.
        GTEST_SKIP() << "NL's full-range replication defeats exhaustiveness";
    }
    RomverConfig cfg = config_for<E>("romver1l", 64);
    // No ballast: keep the persisted footprint as small as it can get.
    cfg.ballast_bytes = 0;
    RomverHarness<E> harness(cfg);
    harness.record();

    ExploreOptions opts;
    opts.window_exhaustive_cap = 1u << 14;
    opts.max_cuts = 1u << 15;
    ExploreReport rep = harness.explore(opts);
    EXPECT_TRUE(rep.exhaustive) << rep.summary();
    EXPECT_EQ(rep.violations, 0u) << rep.summary();
    EXPECT_EQ(double(rep.cuts_explored), rep.cuts_total);
    EXPECT_EQ(rep.cuts_sampled, 0u);
    EXPECT_NE(rep.summary().find("[exhaustive]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Redundant-flush diagnostic on the 8 KB commit-path transaction: the
// coalesced streaming commit path flushes nothing twice, and the count is
// wired into the CommitStats the benches report from.
// ---------------------------------------------------------------------------

TEST(RomverCommitPath, RedundantPwbCountOn8KBTxFeedsCommitStats) {
    RomverHarness<RomulusLog> harness(
        config_for<RomulusLog>("romver_redundant", 8192));
    harness.record();
    GraphAnalysis ga = harness.analyze();
    // The overhauled commit path is flush-minimal: every write-back on the
    // 8 KB transaction covers a dirty line.
    EXPECT_EQ(ga.redundant_pwbs, 0u) << ga.report();

    pmem::reset_tl_commit_stats();
    ga.record_in(pmem::tl_commit_stats());
    EXPECT_EQ(pmem::tl_commit_stats().redundant_pwbs, ga.redundant_pwbs);
    pmem::reset_tl_commit_stats();
}

// A deliberately wasteful flush sequence must show up in the same counter —
// proving the diagnostic measures flushes, not luck.
TEST(RomverCommitPath, SyntheticDoubleFlushIsCounted) {
    alignas(64) static uint8_t rgn[4 * 64] = {};
    analysis::PersistEventRecorder rec(rgn, sizeof(rgn));
    rgn[0] = 1;
    rec.on_store(rgn, 1);
    rec.on_pwb(rgn);
    rec.on_pwb(rgn);  // same line, nothing dirtied in between
    auto g = analysis::PersistGraph::build(rec);
    analysis::EngineLayout layout;
    layout.region_size = sizeof(rgn);
    auto ga = analysis::analyze_protocol(rec, g, layout);
    EXPECT_EQ(ga.redundant_pwbs, 1u);
    pmem::reset_tl_commit_stats();
    ga.record_in(pmem::tl_commit_stats());
    EXPECT_EQ(pmem::tl_commit_stats().redundant_pwbs, 1u);
    pmem::reset_tl_commit_stats();
}

// ---------------------------------------------------------------------------
// The engine layout introspection romver keys on.
// ---------------------------------------------------------------------------

TEST(RomverLayout, RomulusShardsExposeStateAndTwinOffsets) {
    EngineSession<RomulusLog> session(16u << 20, "romver_layout");
    auto l = analysis::EngineLayout::of<RomulusLog>();
    ASSERT_EQ(l.shards.size(), RomulusLog::shard_count());
    const auto& sh = l.shards[0];
    EXPECT_NE(sh.back_off, analysis::EngineLayout::kNone);
    EXPECT_NE(sh.state_off, analysis::EngineLayout::kNone);
    EXPECT_EQ(l.shard_of_state(sh.state_off), 0);
    EXPECT_EQ(l.shard_of_zone(sh.main_off), 0);
    EXPECT_EQ(l.shard_of_zone(sh.back_off), 0);
    EXPECT_EQ(l.shard_of_zone(sh.state_off), -1);  // header is not twin zone
}

TEST(RomverLayout, BaselinesExposeLogArea) {
    EngineSession<baselines::UndoLogPTM> session(16u << 20, "romver_layout_u");
    auto l = analysis::EngineLayout::of<baselines::UndoLogPTM>();
    ASSERT_EQ(l.shards.size(), 1u);
    EXPECT_EQ(l.shards[0].back_off, analysis::EngineLayout::kNone);
    EXPECT_EQ(l.shards[0].state_off, analysis::EngineLayout::kNone);
    ASSERT_NE(l.log_off, analysis::EngineLayout::kNone);
    EXPECT_GT(l.log_size, 0u);
    // The log area and the heap area must not overlap.
    EXPECT_LE(l.log_off + l.log_size, l.shards[0].main_off);
}

}  // namespace
}  // namespace romulus::test
