// Basic engine behaviour common to all three Romulus variants: init/format,
// transactions, roots, allocation, twin-copy invariants, reopen.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/romulus.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;

template <typename E>
class EngineBasic : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);  // fast unit tests
        session_ = std::make_unique<EngineSession<E>>(8u << 20, E::name());
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<E>> session_;
};

using Engines = ::testing::Types<RomulusNL, RomulusLog, RomulusLR>;
TYPED_TEST_SUITE(EngineBasic, Engines);

TYPED_TEST(EngineBasic, FreshHeapStartsIdleAndEmpty) {
    using E = TypeParam;
    EXPECT_EQ(E::state(), IDL);
    EXPECT_EQ(E::template get_object<void>(0), nullptr);
    EXPECT_GT(E::used_bytes(), 0u);  // meta block is accounted
    EXPECT_LT(E::used_bytes(), E::main_size());
}

TYPED_TEST(EngineBasic, SingleThreadedTransactionPersistsAnInt) {
    using E = TypeParam;
    E::begin_transaction();
    auto* x = E::template tmNew<typename E::template p<uint64_t>>();
    *x = 42u;
    E::put_object(0, x);
    E::end_transaction();

    EXPECT_EQ(E::state(), IDL);
    auto* rx = E::template get_object<typename E::template p<uint64_t>>(0);
    ASSERT_NE(rx, nullptr);
    EXPECT_EQ(rx->pload(), 42u);
}

TYPED_TEST(EngineBasic, BackIsByteIdenticalToMainAfterCommit) {
    using E = TypeParam;
    E::begin_transaction();
    auto* x = E::template tmNew<typename E::template p<uint64_t>>();
    *x = 0xDEADBEEFu;
    E::put_object(1, x);
    E::end_transaction();
    EXPECT_EQ(std::memcmp(E::main_base(), E::back_base(), E::used_bytes()), 0);
}

TYPED_TEST(EngineBasic, AbortRestoresPreviousState) {
    using E = TypeParam;
    E::begin_transaction();
    auto* x = E::template tmNew<typename E::template p<uint64_t>>();
    *x = 7u;
    E::put_object(0, x);
    E::end_transaction();

    E::begin_transaction();
    auto* rx = E::template get_object<typename E::template p<uint64_t>>(0);
    *rx = 99u;
    E::put_object(0, nullptr);
    E::abort_transaction();

    auto* after = E::template get_object<typename E::template p<uint64_t>>(0);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->pload(), 7u);
    EXPECT_EQ(std::memcmp(E::main_base(), E::back_base(), E::used_bytes()), 0);
}

TYPED_TEST(EngineBasic, ReopenFindsPersistedData) {
    using E = TypeParam;
    E::begin_transaction();
    auto* x = E::template tmNew<typename E::template p<uint64_t>>();
    *x = 1234u;
    E::put_object(2, x);
    E::end_transaction();

    std::string path = this->session_->path;
    E::close();
    E::init(8u << 20, path);

    auto* rx = E::template get_object<typename E::template p<uint64_t>>(2);
    ASSERT_NE(rx, nullptr);
    EXPECT_EQ(rx->pload(), 1234u);
}

TYPED_TEST(EngineBasic, UpdateTxAndReadTxRoundTrip) {
    using E = TypeParam;
    E::updateTx([&] {
        auto* x = E::template tmNew<typename E::template p<uint64_t>>();
        *x = 5u;
        E::put_object(0, x);
    });
    uint64_t got = 0;
    E::readTx([&] {
        auto* rx = E::template get_object<typename E::template p<uint64_t>>(0);
        got = rx->pload();
    });
    EXPECT_EQ(got, 5u);
}

TYPED_TEST(EngineBasic, ConcurrentCountersAddUp) {
    using E = TypeParam;
    E::updateTx([&] {
        auto* c = E::template tmNew<typename E::template p<uint64_t>>();
        *c = 0u;
        E::put_object(0, c);
    });
    constexpr int kThreads = 4, kIncs = 200;
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            for (int j = 0; j < kIncs; ++j) {
                E::updateTx([&] {
                    auto* c =
                        E::template get_object<typename E::template p<uint64_t>>(0);
                    *c += 1u;
                });
            }
        });
    }
    for (auto& t : ts) t.join();
    uint64_t got = 0;
    E::readTx([&] {
        got = E::template get_object<typename E::template p<uint64_t>>(0)->pload();
    });
    EXPECT_EQ(got, uint64_t(kThreads) * kIncs);
}

TYPED_TEST(EngineBasic, AllocatorRollsBackWithAbortedTransaction) {
    using E = TypeParam;
    E::begin_transaction();
    (void)E::template tmNew<uint64_t>();
    E::end_transaction();
    const uint64_t count_before = E::allocator().alloc_count();

    E::begin_transaction();
    (void)E::template tmNew<uint64_t>();
    (void)E::template tmNew<uint64_t>();
    EXPECT_EQ(E::allocator().alloc_count(), count_before + 2);
    E::abort_transaction();

    EXPECT_EQ(E::allocator().alloc_count(), count_before);
}
