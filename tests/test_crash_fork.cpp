// Real-process crash recovery: a child process mutates a persistent heap
// through the actual mmap code path and dies abruptly (_exit, no cleanup,
// no destructors) at a scripted point mid-transaction; the parent then maps
// the same file, lets init() run recovery, and validates consistency and
// durability of everything the child reported committed.
//
// This complements the SimPersistence sweep: here the crash is a genuine
// process death over a real file (what the paper's DRAM-as-NVM setup can
// exhibit), while the simulation covers flush-loss semantics the file-backed
// emulation cannot.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <random>
#include <set>

#include "ds/hash_map.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

template <typename E>
struct ForkCrashCase {
    using Map = ds::HashMap<E, uint64_t>;
    static constexpr int kTotalTxs = 400;

    /// Child body: create a map, do kTotalTxs update txs, report committed
    /// count through the pipe after each commit, then die mid-transaction.
    [[noreturn]] static void child(const std::string& path, int pipe_fd,
                                   unsigned seed) {
        E::init(48u << 20, path);
        Map* map = nullptr;
        E::updateTx([&] {
            map = E::template tmNew<Map>(16);
            E::put_object(0, map);
        });
        int committed = 0;
        (void)!write(pipe_fd, &committed, sizeof(committed));

        std::mt19937_64 rng(seed);
        const int die_after = static_cast<int>(rng() % (kTotalTxs - 10)) + 5;
        for (int i = 0; i < kTotalTxs; ++i) {
            uint64_t k = rng() % 200;
            if (i == die_after) {
                // Die in the middle of a transaction: after user stores have
                // gone in-place but before the commit sequence finishes.
                E::begin_transaction();
                map->add(k);  // nested: runs inside the open tx
                _exit(42);    // power cut
            }
            if (rng() % 2 == 0) {
                map->add(k);
            } else {
                map->remove(k);
            }
            committed = i + 1;
            (void)!write(pipe_fd, &committed, sizeof(committed));
        }
        _exit(7);  // not reached for die_after < kTotalTxs
    }

    static void run(unsigned seed) {
        const std::string path =
            test::heap_path(std::string("fork_") + E::name() +
                            std::to_string(seed));
        std::remove(path.c_str());

        int fds[2];
        ASSERT_EQ(pipe(fds), 0);
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            close(fds[0]);
            child(path, fds[1], seed);  // never returns
        }
        close(fds[1]);
        int committed = -1, v;
        while (read(fds[0], &v, sizeof(v)) == sizeof(v)) committed = v;
        close(fds[0]);
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 42)
            << "child did not crash as scripted: " << status;
        ASSERT_GE(committed, 0);

        // Parent: attach to the crashed heap; init() runs recovery.
        E::init(48u << 20, path);
        auto* map = E::template get_object<Map>(0);
        ASSERT_NE(map, nullptr);
        EXPECT_TRUE(map->check_invariants());

        // Replay the child's op stream: after `committed` txs the durable
        // contents must be the model (+/- the in-flight tx, which in this
        // scripted crash never reached its durability point).
        std::set<uint64_t> model;
        std::mt19937_64 rng(seed);
        (void)rng();  // die_after draw
        for (int i = 0; i < committed; ++i) {
            uint64_t k = rng() % 200;
            if (rng() % 2 == 0) {
                model.insert(k);
            } else {
                model.erase(k);
            }
        }
        // The tx in flight at the crash (an add) may or may not have become
        // durable depending on where the death interleaved with fences.
        uint64_t inflight_key = rng() % 200;
        std::set<uint64_t> with_inflight = model;
        with_inflight.insert(inflight_key);

        std::set<uint64_t> got;
        map->for_each([&](uint64_t k) { got.insert(k); });
        EXPECT_TRUE(got == model || got == with_inflight)
            << "committed=" << committed << " got.size=" << got.size()
            << " model.size=" << model.size();

        EXPECT_GT(E::allocator().check_consistency(), 0u);
        E::destroy();
    }
};

}  // namespace

template <typename E>
class ForkCrash : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::CLFLUSH); }
};

TYPED_TEST_SUITE(ForkCrash, romulus::test::AllPtms);

TYPED_TEST(ForkCrash, MidTransactionProcessDeathRecovers) {
    for (unsigned seed : {11u, 22u, 33u, 44u}) {
        ForkCrashCase<TypeParam>::run(seed);
        if (this->HasFatalFailure()) return;
    }
}
