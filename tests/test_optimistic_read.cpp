// Seqlock-validated optimistic read path (DESIGN.md §4.9, ISSUE 8).
//
// Coverage layers:
//   1. Zero-cost property: an optimistic read commits with zero pwbs, zero
//      persistence fences (engine counters AND the SimPersistence fence
//      counter) and no lock traffic observable through the read stats.
//   2. Protocol mechanics, made deterministic through the engines'
//      seq_for_tests() hook: an odd window sends the reader to the
//      pessimistic lock after max_attempts; a mid-closure invalidation
//      retries; a torn pointer is rejected by per-load validation *before*
//      anything dereferences it.
//   3. Concurrency: reader/writer churn must never surface a torn snapshot,
//      and the every-fence crash sweep re-runs the commit-path crash
//      discipline with a concurrent optimistic reader attached.
//   4. The sequence word survives the 64-bit wrap (equality validation).
//   5. Under -DROMULUS_RACECHECK, the churn workload runs with the romrace
//      detector armed and must stay silent (the seqlock.validate /
//      seqlock.write_enter / seqlock.write_exit annotations model a sound
//      happens-before edge).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/race_detector.hpp"
#include "pmem/sim_persistence.hpp"
#include "ptm_types.hpp"
#include "sync/seqlock.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

/// RAII: optimistic-read tuning for the duration of a test.
struct ReadConfigGuard {
    ReadConfig saved = read_config();
    ~ReadConfigGuard() { read_config() = saved; }
};

// The engines with a seqlock fast path: the C-RW-WP Romulus variants plus
// the undo-log baseline.  RomulusLR readers are already wait-free through
// Left-Right and bypass the seqlock entirely; the redo-log baseline has its
// own TL2-style optimistic reads (covered below for the force-pessimistic
// knob only).
using SeqlockPtms =
    ::testing::Types<RomulusNL, RomulusLog, baselines::UndoLogPTM>;

template <typename E>
class OptimisticRead : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        reset_tl_read_stats();
    }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(OptimisticRead, SeqlockPtms);

// Two counter cells the update transactions keep equal; the canonical
// torn-snapshot witness for the readers.
template <typename E>
struct TwoCells {
    using PU = typename E::template p<uint64_t>;
    PU* c1 = nullptr;
    PU* c2 = nullptr;

    void create(uint64_t v) {
        E::updateTx([&] {
            c1 = E::template tmNew<PU>();
            *c1 = v;
            E::put_object(0, c1);
            c2 = E::template tmNew<PU>();
            *c2 = v;
            E::put_object(1, c2);
        });
    }

    void set(uint64_t v) {
        E::updateTx([&] {
            *c1 = v;
            *c2 = v;
        });
    }
};

// ---------------------------------------------------- zero-cost fast path

TYPED_TEST(OptimisticRead, CommitsWithZeroFencesAndZeroPwbs) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_zero");
    TwoCells<E> cells;
    cells.create(7);

    // The SimPersistence fence counter is the acceptance-criterion witness:
    // it counts pfence+psync from *any* thread, independent of tl_stats.
    pmem::SimPersistence sim(E::region().base(), E::region().size(),
                             {pmem::FlushContent::AtPwb, 0.0, 1});
    pmem::set_sim_hooks(&sim);
    const pmem::Stats before = pmem::tl_stats();
    const uint64_t fences_before = sim.fence_count();
    reset_tl_read_stats();

    constexpr int kReads = 100;
    for (int i = 0; i < kReads; ++i) {
        uint64_t a = 0, b = 0;
        E::readTx([&] {
            a = cells.c1->pload();
            b = cells.c2->pload();
        });
        ASSERT_EQ(a, 7u);
        ASSERT_EQ(b, 7u);
    }
    pmem::set_sim_hooks(nullptr);

    const pmem::Stats d = pmem::tl_stats() - before;
    EXPECT_EQ(d.pwb, 0u);
    EXPECT_EQ(d.pfence, 0u);
    EXPECT_EQ(d.psync, 0u);
    EXPECT_EQ(sim.fence_count(), fences_before);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_commits, uint64_t(kReads));
    EXPECT_EQ(rs.opt_aborts, 0u);
    EXPECT_EQ(rs.fallbacks, 0u);
}

TYPED_TEST(OptimisticRead, ForcePessimisticKnobDisablesTheFastPath) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_knob");
    TwoCells<E> cells;
    cells.create(11);

    ReadConfigGuard guard;
    read_config().optimistic = false;
    reset_tl_read_stats();
    uint64_t a = 0;
    E::readTx([&] { a = cells.c1->pload(); });
    EXPECT_EQ(a, 11u);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_commits, 0u);
    EXPECT_EQ(rs.opt_aborts, 0u);
    EXPECT_EQ(rs.fallbacks, 0u);  // never attempted, so never "fell back"
}

// ------------------------------------------------- deterministic protocol

TYPED_TEST(OptimisticRead, OddWindowFallsBackToThePessimisticLock) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_odd");
    TwoCells<E> cells;
    cells.create(42);

    ReadConfigGuard guard;
    read_config().max_attempts = 3;
    // Simulate a writer parked mid-transaction: window open, lock free (so
    // the fallback acquires immediately instead of deadlocking the test).
    E::seq_for_tests().write_enter();
    reset_tl_read_stats();
    uint64_t got = 0;
    E::readTx([&] {
        got = 0;  // restartable
        got = cells.c1->pload();
    });
    E::seq_for_tests().write_exit();

    EXPECT_EQ(got, 42u);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_aborts, 3u);  // every attempt saw the odd word
    EXPECT_EQ(rs.fallbacks, 1u);
    EXPECT_EQ(rs.opt_commits, 0u);
}

TYPED_TEST(OptimisticRead, MidClosureInvalidationRetriesAndCommits) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_retry");
    TwoCells<E> cells;
    cells.create(5);

    reset_tl_read_stats();
    bool first = true;
    uint64_t got = 0;
    E::readTx([&] {
        got = 0;  // restartable
        if (first) {
            // A full writer window opens and closes between this attempt's
            // snapshot and its first validated load.
            first = false;
            E::seq_for_tests().write_enter();
            E::seq_for_tests().write_exit();
        }
        got = cells.c1->pload();
    });

    EXPECT_EQ(got, 5u);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_aborts, 1u);
    EXPECT_EQ(rs.opt_commits, 1u);
    EXPECT_EQ(rs.fallbacks, 0u);
}

TYPED_TEST(OptimisticRead, UserExceptionOffValidSnapshotLeavesNoResidue) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_throw");
    TwoCells<E> cells;
    cells.create(3);

    reset_tl_read_stats();
    struct Boom {};
    EXPECT_THROW(E::readTx([&] {
        (void)cells.c1->pload();
        throw Boom{};
    }),
                 Boom);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_exception_exits, 1u);  // propagated, not a commit
    EXPECT_EQ(rs.opt_commits, 0u);
    EXPECT_EQ(rs.fallbacks, 0u);

    // The thrown-through readTx must leave no thread-local residue: the
    // next read still takes the validated fast path.  (A leaked read
    // depth would send it down the flat-nesting branch — no lock, no
    // validation, no stats — silently racing the writer.)
    uint64_t a = 0;
    E::readTx([&] {
        a = 0;  // restartable
        a = cells.c1->pload();
    });
    EXPECT_EQ(a, 3u);
    EXPECT_EQ(rs.opt_commits, 1u);
}

TYPED_TEST(OptimisticRead, TornPointerIsRejectedBeforeDereference) {
    using E = TypeParam;
    using PU = typename E::template p<uint64_t>;
    using PP = typename E::template p<PU*>;
    test::EngineSession<E> session(16u << 20, "opt_torn");

    PU* target = nullptr;
    PP* cell = nullptr;
    E::updateTx([&] {
        target = E::template tmNew<PU>();
        *target = 99;
        cell = E::template tmNew<PP>();
        *cell = target;
        E::put_object(0, cell);
    });

    ReadConfigGuard guard;
    read_config().max_attempts = 3;
    reset_tl_read_stats();

    // The classic seqlock hazard, staged deterministically: mid-attempt the
    // pointer cell is scribbled with garbage under an open window.  The
    // per-load validation in pload() must throw before the garbage pointer
    // can reach the dereference below — if it ever leaks out, the test
    // crashes on the bogus address.
    auto* raw = reinterpret_cast<uint64_t*>(cell);
    const uint64_t good_bits = *raw;
    bool scribbled = false;
    bool first = true;
    uint64_t got = 0;
    E::readTx([&] {
        got = 0;  // restartable
        if (scribbled) {
            // Pessimistic rerun after the fallback: undo the sabotage (the
            // parked "writer" rolls back) so the real pointer is live again.
            *raw = good_bits;
            E::seq_for_tests().write_exit();
            scribbled = false;
        } else if (first) {
            first = false;
            scribbled = true;
            E::seq_for_tests().write_enter();
            *raw = 0xDEADBEEFDEADBEEFull;
        }
        PU* p = cell->pload();  // throws OptimisticAbort on the torn attempt
        got = p->pload();
    });

    EXPECT_EQ(got, 99u);
    const ReadStats& rs = tl_read_stats();
    // Attempt 1 aborted mid-closure on the torn load; attempts 2 and 3 saw
    // the still-odd word; then the pessimistic rerun repaired and committed.
    EXPECT_EQ(rs.opt_aborts, 3u);
    EXPECT_EQ(rs.fallbacks, 1u);
    EXPECT_EQ(rs.opt_commits, 0u);
}

// ------------------------------------------------------------ churn check

/// Reader/writer churn: writers keep the two cells equal inside one
/// transaction; a reader that ever returns a != b has surfaced a torn
/// snapshot.  Shared by the plain and the racecheck-armed suites.
template <typename E>
void run_churn(int writer_txs) {
    test::EngineSession<E> session(16u << 20, "opt_churn");
    TwoCells<E> cells;
    cells.create(0);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> bad{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> opt_commits{0};
    std::thread reader([&] {
        reset_tl_read_stats();
        while (!stop.load(std::memory_order_acquire)) {
            uint64_t a = 0, b = 0;
            E::readTx([&] {
                a = 0;
                b = 0;  // restartable
                a = cells.c1->pload();
                b = cells.c2->pload();
            });
            if (a != b) bad.fetch_add(1);
            reads.fetch_add(1);
        }
        opt_commits.store(tl_read_stats().opt_commits);
    });
    for (int j = 1; j <= writer_txs; ++j) {
        cells.set(uint64_t(j));
        if (j % 16 == 0) std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(bad.load(), 0u) << "torn snapshot after " << reads.load()
                              << " reads";
    EXPECT_GT(reads.load(), 0u);
    // Not asserted == reads: a read that lands inside a writer window may
    // legitimately take the pessimistic lock.
    EXPECT_LE(opt_commits.load(), reads.load());
}

TYPED_TEST(OptimisticRead, ChurnNeverSurfacesATornSnapshot) {
    run_churn<TypeParam>(300);
}

// --------------------------------------------- redo-log baseline's knob

TEST(OptimisticReadRedoLog, ForcePessimisticKnobSerializesReads) {
    pmem::set_profile(pmem::Profile::NOP);
    using E = baselines::RedoLogPTM;
    test::EngineSession<E> session(16u << 20, "opt_redo");
    using PU = E::p<uint64_t>;
    PU* c = nullptr;
    E::updateTx([&] {
        c = E::tmNew<PU>();
        *c = 21;
        E::put_object(0, c);
    });
    ReadConfigGuard guard;
    read_config().optimistic = false;
    uint64_t got = 0;
    E::readTx([&] { got = c->pload(); });
    EXPECT_EQ(got, 21u);
}

TEST(OptimisticReadRedoLog, ForcePessimisticKnobExcludesWriters) {
    pmem::set_profile(pmem::Profile::NOP);
    using E = baselines::RedoLogPTM;
    test::EngineSession<E> session(16u << 20, "opt_redo_excl");
    using PU = E::p<uint64_t>;
    PU* c = nullptr;
    E::updateTx([&] {
        c = E::tmNew<PU>();
        *c = 0;
        E::put_object(0, c);
    });
    ReadConfigGuard guard;
    read_config().optimistic = false;

    // With the knob off every writer routes through the fallback mutex, so
    // a pessimistic reader (which holds it across its transaction) can
    // never overlap a writer's closure — the overlap witness must stay 0.
    std::atomic<bool> stop{false};
    std::atomic<int> in_writer_tx{0};
    std::atomic<uint64_t> overlaps{0};
    std::thread writer([&] {
        uint64_t v = 0;
        while (!stop.load(std::memory_order_acquire)) {
            E::updateTx([&] {
                in_writer_tx.store(1, std::memory_order_release);
                *c = ++v;
                in_writer_tx.store(0, std::memory_order_release);
            });
        }
    });
    for (int i = 0; i < 2000; ++i) {
        E::readTx([&] {
            if (in_writer_tx.load(std::memory_order_acquire) != 0)
                overlaps.fetch_add(1);
            (void)c->pload();
        });
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    EXPECT_EQ(overlaps.load(), 0u);
}

// ------------------------------------------------------------ 64-bit wrap

TEST(SeqLockUnit, SurvivesTheSequenceWrap) {
    sync::SeqLock sl;
    sl.set_for_tests(UINT64_MAX - 1);  // even, one window from the wrap
    const uint64_t sq = sl.read_begin();
    EXPECT_TRUE(sl.validate(sq));

    sl.write_enter();  // UINT64_MAX: odd
    EXPECT_EQ(sl.value() & 1, 1u);
    EXPECT_FALSE(sl.validate(sq));

    sl.write_exit();  // wraps to 0: even again
    EXPECT_EQ(sl.value(), 0u);
    EXPECT_FALSE(sl.validate(sq)) << "pre-wrap snapshot must stay dead";

    const uint64_t sq2 = sl.read_begin();
    EXPECT_EQ(sq2, 0u);
    EXPECT_TRUE(sl.validate(sq2));
}

TEST(SeqLockUnit, ReadersSeeTheWindowEdges) {
    sync::SeqLock sl;
    const uint64_t sq = sl.read_begin();
    EXPECT_EQ(sq & 1, 0u);
    EXPECT_TRUE(sl.validate(sq));
    sl.write_enter();
    EXPECT_EQ(sl.read_begin() & 1, 1u);  // readers refuse to even start
    sl.write_exit();
    EXPECT_FALSE(sl.validate(sq)) << "a completed writer kills the snapshot";
    EXPECT_TRUE(sl.validate(sl.read_begin()));
}

// --------------------------------------- crash sweep + concurrent reader

struct CrashPoint {};

/// SimPersistence wrapper that raises CrashPoint at the N-th fence — and
/// publishes the crash to the reader thread *before* throwing, so the
/// reader can stop asserting on a heap that is legitimately mid-recovery.
class CrashingSim final : public pmem::SimHooks {
  public:
    CrashingSim(uint8_t* base, size_t size, pmem::SimPersistence::Options opts)
        : inner_(base, size, opts) {}

    uint64_t crash_at = UINT64_MAX;
    std::atomic<bool>* crashed = nullptr;

    void on_store(const void* a, size_t n) override { inner_.on_store(a, n); }
    void on_pwb(const void* a) override { inner_.on_pwb(a); }
    void on_fence() override {
        inner_.on_fence();
        if (inner_.fence_count() >= crash_at) {
            if (crashed != nullptr)
                crashed->store(true, std::memory_order_release);
            throw CrashPoint{};
        }
    }

    pmem::SimPersistence& model() { return inner_; }

  private:
    pmem::SimPersistence inner_;
};

/// The commit-path crash sweep with an optimistic reader attached: crash at
/// every fence of the workload; the reader continuously validates the
/// two-cell invariant and must never observe a torn snapshot while the
/// engine is healthy.  After the crash the writer thread "dies" mid-commit
/// (lock held, window odd), so the sweep releases the reader through
/// crash_reset_for_tests() — the same volatile-state rebuild a restart does.
template <typename E>
void run_reader_crash_sweep() {
    using PU = typename E::template p<uint64_t>;
    const std::string path =
        test::heap_path(std::string("opt_crash_") + E::name());
    const size_t bytes = 12u << 20;
    pmem::SimPersistence::Options opts{pmem::FlushContent::AtPwb, 0.0, 11};
    constexpr int kTxs = 6;

    // Setup + workload: cells kept equal inside each tx, plus a 512 B
    // stripe store so the log/replication machinery is exercised.
    auto run_txs = [](int upto) {
        E::begin_transaction();
        auto* c1 = E::template tmNew<PU>();
        *c1 = 0u;
        E::put_object(0, c1);
        auto* c2 = E::template tmNew<PU>();
        *c2 = 0u;
        E::put_object(1, c2);
        auto* buf = static_cast<uint8_t*>(E::alloc_bytes(2048));
        E::zero_range(buf, 2048);
        E::put_object(2, buf);
        E::end_transaction();
        int committed = 0;
        for (int j = 0; j < upto; ++j) {
            std::vector<uint8_t> pat(512, uint8_t(j + 1));
            E::begin_transaction();
            *c1 = uint64_t(j + 1);
            E::store_range(buf + (j % 4) * 512, pat.data(), 512);
            *c2 = uint64_t(j + 1);
            E::end_transaction();
            committed = j + 1;
        }
        return committed;
    };

    // Dry run: count the workload's fences.
    std::remove(path.c_str());
    E::init(bytes, path);
    auto sim0 = std::make_unique<CrashingSim>(E::region().base(),
                                              E::region().size(), opts);
    pmem::set_sim_hooks(sim0.get());
    run_txs(kTxs);
    pmem::set_sim_hooks(nullptr);
    const uint64_t total = sim0->model().fence_count();
    sim0.reset();
    E::destroy();
    ASSERT_GT(total, 5u);

    int crashes = 0;
    for (uint64_t k = 1; k <= total; ++k) {
        std::remove(path.c_str());
        E::init(bytes, path);
        CrashingSim sim(E::region().base(), E::region().size(), opts);
        std::atomic<bool> crashed{false};
        std::atomic<bool> stop{false};
        std::atomic<uint64_t> bad{0};
        sim.crash_at = k;
        sim.crashed = &crashed;
        pmem::set_sim_hooks(&sim);

        std::thread reader([&] {
            while (!stop.load(std::memory_order_acquire)) {
                uint64_t a = 0, b = 0;
                const bool pre = crashed.load(std::memory_order_acquire);
                E::readTx([&] {
                    a = 0;
                    b = 0;  // restartable
                    auto* p1 = E::template get_object<PU>(0);
                    auto* p2 = E::template get_object<PU>(1);
                    if (p1 == nullptr || p2 == nullptr) return;
                    a = p1->pload();
                    b = p2->pload();
                });
                // Only a read fully bracketed by a healthy engine asserts:
                // post-crash the window word is force-reset under a torn
                // main, which is exactly what recovery is for.
                if (!pre && !crashed.load(std::memory_order_acquire) &&
                    a != b)
                    bad.fetch_add(1);
            }
        });

        int completed = -1;
        bool did_crash = false;
        try {
            completed = run_txs(kTxs);
        } catch (const CrashPoint&) {
            did_crash = true;
        }
        pmem::set_sim_hooks(nullptr);
        // The "dead" writer left the lock held and the window odd; rebuild
        // the volatile kit so a reader blocked in the fallback gets out.
        if (did_crash) E::crash_reset_for_tests();
        stop.store(true, std::memory_order_release);
        reader.join();
        EXPECT_EQ(bad.load(), 0u) << "torn snapshot at crash fence " << k;

        if (did_crash) {
            ++crashes;
            sim.model().crash_restore();
            E::close();
            E::crash_reset_for_tests();
            E::init(bytes, path);
        }
        auto* p1 = E::template get_object<PU>(0);
        auto* p2 = E::template get_object<PU>(1);
        if (p1 != nullptr && p2 != nullptr) {
            const uint64_t v1 = p1->pload();
            EXPECT_EQ(v1, p2->pload()) << "recovered cells diverge, k=" << k;
            EXPECT_LE(v1, uint64_t(kTxs));
            if (!did_crash) {
                EXPECT_EQ(v1, uint64_t(completed));
            }
        } else {
            EXPECT_TRUE(did_crash) << "creation tx lost without a crash";
        }
        E::destroy();
        if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_GT(crashes, 0);
}

template <typename E>
class OptimisticReadCrash : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

using CrwwpRomulusPtms = ::testing::Types<RomulusNL, RomulusLog>;
TYPED_TEST_SUITE(OptimisticReadCrash, CrwwpRomulusPtms);

TYPED_TEST(OptimisticReadCrash, EveryFenceCrashWithConcurrentReaders) {
    run_reader_crash_sweep<TypeParam>();
}

// ------------------------------------------- racecheck-armed clean run

#ifdef ROMULUS_RACECHECK
// The churn workload with the romrace detector live: the optimistic read
// path's annotations (seqlock.write_enter / seqlock.validate /
// seqlock.write_exit) must model a sound happens-before edge — zero
// reports across validated optimistic commits racing real writers.
template <typename E>
class OptimisticRaceArmed : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        auto& d = analysis::RaceDetector::instance();
        d.reset();
        d.enable();
    }
    void TearDown() override {
        auto& d = analysis::RaceDetector::instance();
        d.disable();
        d.reset();
        pmem::set_sim_hooks(nullptr);
    }
};

TYPED_TEST_SUITE(OptimisticRaceArmed, SeqlockPtms);

TYPED_TEST(OptimisticRaceArmed, ChurnStaysSilent) {
    run_churn<TypeParam>(150);
    auto& d = analysis::RaceDetector::instance();
    EXPECT_EQ(d.race_count(), 0u) << d.report_text();
}
#endif  // ROMULUS_RACECHECK

}  // namespace
