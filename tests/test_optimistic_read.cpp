// Seqlock-validated optimistic read path (DESIGN.md §4.9, ISSUE 8).
//
// Coverage layers:
//   1. Zero-cost property: an optimistic read commits with zero pwbs, zero
//      persistence fences (engine counters AND the SimPersistence fence
//      counter) and no lock traffic observable through the read stats.
//   2. Protocol mechanics, made deterministic through the engines'
//      seq_for_tests() hook: an odd window sends the reader to the
//      pessimistic lock after max_attempts; a mid-closure invalidation
//      retries; a torn pointer is rejected by per-load validation *before*
//      anything dereferences it.
//   3. Concurrency: reader/writer churn must never surface a torn snapshot,
//      and the every-fence crash sweep re-runs the commit-path crash
//      discipline with a concurrent optimistic reader attached.
//   4. The sequence word survives the 64-bit wrap (equality validation).
//   5. Under -DROMULUS_RACECHECK, the churn workload runs with the romrace
//      detector armed and must stay silent (the seqlock.validate /
//      seqlock.write_enter / seqlock.write_exit annotations model a sound
//      happens-before edge).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/race_detector.hpp"
#include "analysis/tx_trace.hpp"
#include "fence_sweep.hpp"
#include "pmem/sim_persistence.hpp"
#include "ptm_types.hpp"
#include "sync/seqlock.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

/// RAII: optimistic-read tuning for the duration of a test.
struct ReadConfigGuard {
    ReadConfig saved = read_config();
    ~ReadConfigGuard() { read_config() = saved; }
};

// The engines with a seqlock fast path: the C-RW-WP Romulus variants plus
// the undo-log baseline.  RomulusLR readers are already wait-free through
// Left-Right and bypass the seqlock entirely; the redo-log baseline has its
// own TL2-style optimistic reads (covered below for the force-pessimistic
// knob only).
using SeqlockPtms =
    ::testing::Types<RomulusNL, RomulusLog, baselines::UndoLogPTM>;

template <typename E>
class OptimisticRead : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        reset_tl_read_stats();
    }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(OptimisticRead, SeqlockPtms);

// Two counter cells the update transactions keep equal; the canonical
// torn-snapshot witness for the readers.
template <typename E>
struct TwoCells {
    using PU = typename E::template p<uint64_t>;
    PU* c1 = nullptr;
    PU* c2 = nullptr;

    void create(uint64_t v) {
        E::updateTx([&] {
            c1 = E::template tmNew<PU>();
            *c1 = v;
            E::put_object(0, c1);
            c2 = E::template tmNew<PU>();
            *c2 = v;
            E::put_object(1, c2);
        });
    }

    void set(uint64_t v) {
        E::updateTx([&] {
            *c1 = v;
            *c2 = v;
        });
    }
};

// ---------------------------------------------------- zero-cost fast path

TYPED_TEST(OptimisticRead, CommitsWithZeroFencesAndZeroPwbs) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_zero");
    TwoCells<E> cells;
    cells.create(7);

    // The SimPersistence fence counter is the acceptance-criterion witness:
    // it counts pfence+psync from *any* thread, independent of tl_stats.
    pmem::SimPersistence sim(E::region().base(), E::region().size(),
                             {pmem::FlushContent::AtPwb, 0.0, 1});
    pmem::set_sim_hooks(&sim);
    const pmem::Stats before = pmem::tl_stats();
    const uint64_t fences_before = sim.fence_count();
    reset_tl_read_stats();

    constexpr int kReads = 100;
    for (int i = 0; i < kReads; ++i) {
        uint64_t a = 0, b = 0;
        E::readTx([&] {
            a = cells.c1->pload();
            b = cells.c2->pload();
        });
        ASSERT_EQ(a, 7u);
        ASSERT_EQ(b, 7u);
    }
    pmem::set_sim_hooks(nullptr);

    const pmem::Stats d = pmem::tl_stats() - before;
    EXPECT_EQ(d.pwb, 0u);
    EXPECT_EQ(d.pfence, 0u);
    EXPECT_EQ(d.psync, 0u);
    EXPECT_EQ(sim.fence_count(), fences_before);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_commits, uint64_t(kReads));
    EXPECT_EQ(rs.opt_aborts, 0u);
    EXPECT_EQ(rs.fallbacks, 0u);
}

TYPED_TEST(OptimisticRead, ForcePessimisticKnobDisablesTheFastPath) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_knob");
    TwoCells<E> cells;
    cells.create(11);

    ReadConfigGuard guard;
    read_config().optimistic = false;
    reset_tl_read_stats();
    uint64_t a = 0;
    E::readTx([&] { a = cells.c1->pload(); });
    EXPECT_EQ(a, 11u);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_commits, 0u);
    EXPECT_EQ(rs.opt_aborts, 0u);
    EXPECT_EQ(rs.fallbacks, 0u);  // never attempted, so never "fell back"
}

// ------------------------------------------------- deterministic protocol

TYPED_TEST(OptimisticRead, OddWindowFallsBackToThePessimisticLock) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_odd");
    TwoCells<E> cells;
    cells.create(42);

    ReadConfigGuard guard;
    read_config().max_attempts = 3;
    // Simulate a writer parked mid-transaction: window open, lock free (so
    // the fallback acquires immediately instead of deadlocking the test).
    E::seq_for_tests().write_enter();
    reset_tl_read_stats();
    uint64_t got = 0;
    E::readTx([&] {
        got = 0;  // restartable
        got = cells.c1->pload();
    });
    E::seq_for_tests().write_exit();

    EXPECT_EQ(got, 42u);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_aborts, 3u);  // every attempt saw the odd word
    EXPECT_EQ(rs.fallbacks, 1u);
    EXPECT_EQ(rs.opt_commits, 0u);
}

TYPED_TEST(OptimisticRead, MidClosureInvalidationRetriesAndCommits) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_retry");
    TwoCells<E> cells;
    cells.create(5);

    reset_tl_read_stats();
    bool first = true;
    uint64_t got = 0;
    E::readTx([&] {
        got = 0;  // restartable
        if (first) {
            // A full writer window opens and closes between this attempt's
            // snapshot and its first validated load.
            first = false;
            E::seq_for_tests().write_enter();
            E::seq_for_tests().write_exit();
        }
        got = cells.c1->pload();
    });

    EXPECT_EQ(got, 5u);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_aborts, 1u);
    EXPECT_EQ(rs.opt_commits, 1u);
    EXPECT_EQ(rs.fallbacks, 0u);
}

TYPED_TEST(OptimisticRead, UserExceptionOffValidSnapshotLeavesNoResidue) {
    using E = TypeParam;
    test::EngineSession<E> session(16u << 20, "opt_throw");
    TwoCells<E> cells;
    cells.create(3);

    reset_tl_read_stats();
    struct Boom {};
    EXPECT_THROW(E::readTx([&] {
        (void)cells.c1->pload();
        throw Boom{};
    }),
                 Boom);
    const ReadStats& rs = tl_read_stats();
    EXPECT_EQ(rs.opt_exception_exits, 1u);  // propagated, not a commit
    EXPECT_EQ(rs.opt_commits, 0u);
    EXPECT_EQ(rs.fallbacks, 0u);

    // The thrown-through readTx must leave no thread-local residue: the
    // next read still takes the validated fast path.  (A leaked read
    // depth would send it down the flat-nesting branch — no lock, no
    // validation, no stats — silently racing the writer.)
    uint64_t a = 0;
    E::readTx([&] {
        a = 0;  // restartable
        a = cells.c1->pload();
    });
    EXPECT_EQ(a, 3u);
    EXPECT_EQ(rs.opt_commits, 1u);
}

TYPED_TEST(OptimisticRead, TornPointerIsRejectedBeforeDereference) {
    using E = TypeParam;
    using PU = typename E::template p<uint64_t>;
    using PP = typename E::template p<PU*>;
    test::EngineSession<E> session(16u << 20, "opt_torn");

    PU* target = nullptr;
    PP* cell = nullptr;
    E::updateTx([&] {
        target = E::template tmNew<PU>();
        *target = 99;
        cell = E::template tmNew<PP>();
        *cell = target;
        E::put_object(0, cell);
    });

    ReadConfigGuard guard;
    read_config().max_attempts = 3;
    reset_tl_read_stats();

    // The classic seqlock hazard, staged deterministically: mid-attempt the
    // pointer cell is scribbled with garbage under an open window.  The
    // per-load validation in pload() must throw before the garbage pointer
    // can reach the dereference below — if it ever leaks out, the test
    // crashes on the bogus address.
    auto* raw = reinterpret_cast<uint64_t*>(cell);
    const uint64_t good_bits = *raw;
    bool scribbled = false;
    bool first = true;
    uint64_t got = 0;
    E::readTx([&] {
        got = 0;  // restartable
        if (scribbled) {
            // Pessimistic rerun after the fallback: undo the sabotage (the
            // parked "writer" rolls back) so the real pointer is live again.
            *raw = good_bits;
            E::seq_for_tests().write_exit();
            scribbled = false;
        } else if (first) {
            first = false;
            scribbled = true;
            E::seq_for_tests().write_enter();
            *raw = 0xDEADBEEFDEADBEEFull;
        }
        PU* p = cell->pload();  // throws OptimisticAbort on the torn attempt
        got = p->pload();
    });

    EXPECT_EQ(got, 99u);
    const ReadStats& rs = tl_read_stats();
    // Attempt 1 aborted mid-closure on the torn load; attempts 2 and 3 saw
    // the still-odd word; then the pessimistic rerun repaired and committed.
    EXPECT_EQ(rs.opt_aborts, 3u);
    EXPECT_EQ(rs.fallbacks, 1u);
    EXPECT_EQ(rs.opt_commits, 0u);
}

// ------------------------------------------------------------ churn check

/// Reader/writer churn: writers keep the two cells equal inside one
/// transaction; a reader that ever returns a != b has surfaced a torn
/// snapshot.  Shared by the plain and the racecheck-armed suites.
template <typename E>
void run_churn(int writer_txs) {
    test::EngineSession<E> session(16u << 20, "opt_churn");
    TwoCells<E> cells;
    cells.create(0);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> bad{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> opt_commits{0};
    std::thread reader([&] {
        reset_tl_read_stats();
        while (!stop.load(std::memory_order_acquire)) {
            uint64_t a = 0, b = 0;
            E::readTx([&] {
                a = 0;
                b = 0;  // restartable
                a = cells.c1->pload();
                b = cells.c2->pload();
            });
            if (a != b) bad.fetch_add(1);
            reads.fetch_add(1);
        }
        opt_commits.store(tl_read_stats().opt_commits);
    });
    for (int j = 1; j <= writer_txs; ++j) {
        cells.set(uint64_t(j));
        if (j % 16 == 0) std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(bad.load(), 0u) << "torn snapshot after " << reads.load()
                              << " reads";
    EXPECT_GT(reads.load(), 0u);
    // Not asserted == reads: a read that lands inside a writer window may
    // legitimately take the pessimistic lock.
    EXPECT_LE(opt_commits.load(), reads.load());
}

TYPED_TEST(OptimisticRead, ChurnNeverSurfacesATornSnapshot) {
    run_churn<TypeParam>(300);
}

// --------------------------------------------- redo-log baseline's knob

TEST(OptimisticReadRedoLog, ForcePessimisticKnobSerializesReads) {
    pmem::set_profile(pmem::Profile::NOP);
    using E = baselines::RedoLogPTM;
    test::EngineSession<E> session(16u << 20, "opt_redo");
    using PU = E::p<uint64_t>;
    PU* c = nullptr;
    E::updateTx([&] {
        c = E::tmNew<PU>();
        *c = 21;
        E::put_object(0, c);
    });
    ReadConfigGuard guard;
    read_config().optimistic = false;
    uint64_t got = 0;
    E::readTx([&] { got = c->pload(); });
    EXPECT_EQ(got, 21u);
}

TEST(OptimisticReadRedoLog, ForcePessimisticKnobExcludesWriters) {
    pmem::set_profile(pmem::Profile::NOP);
    using E = baselines::RedoLogPTM;
    test::EngineSession<E> session(16u << 20, "opt_redo_excl");
    using PU = E::p<uint64_t>;
    PU* c = nullptr;
    E::updateTx([&] {
        c = E::tmNew<PU>();
        *c = 0;
        E::put_object(0, c);
    });
    ReadConfigGuard guard;
    read_config().optimistic = false;

    // With the knob off every writer routes through the fallback mutex, so
    // a pessimistic reader (which holds it across its transaction) can
    // never overlap a writer's closure — the overlap witness must stay 0.
    std::atomic<bool> stop{false};
    std::atomic<int> in_writer_tx{0};
    std::atomic<uint64_t> overlaps{0};
    std::thread writer([&] {
        uint64_t v = 0;
        while (!stop.load(std::memory_order_acquire)) {
            E::updateTx([&] {
                in_writer_tx.store(1, std::memory_order_release);
                *c = ++v;
                in_writer_tx.store(0, std::memory_order_release);
            });
        }
    });
    for (int i = 0; i < 2000; ++i) {
        E::readTx([&] {
            if (in_writer_tx.load(std::memory_order_acquire) != 0)
                overlaps.fetch_add(1);
            (void)c->pload();
        });
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    EXPECT_EQ(overlaps.load(), 0u);
}

// ------------------------------------------------------------ 64-bit wrap

TEST(SeqLockUnit, SurvivesTheSequenceWrap) {
    sync::SeqLock sl;
    sl.set_for_tests(UINT64_MAX - 1);  // even, one window from the wrap
    const uint64_t sq = sl.read_begin();
    EXPECT_TRUE(sl.validate(sq));

    sl.write_enter();  // UINT64_MAX: odd
    EXPECT_EQ(sl.value() & 1, 1u);
    EXPECT_FALSE(sl.validate(sq));

    sl.write_exit();  // wraps to 0: even again
    EXPECT_EQ(sl.value(), 0u);
    EXPECT_FALSE(sl.validate(sq)) << "pre-wrap snapshot must stay dead";

    const uint64_t sq2 = sl.read_begin();
    EXPECT_EQ(sq2, 0u);
    EXPECT_TRUE(sl.validate(sq2));
}

TEST(SeqLockUnit, ReadersSeeTheWindowEdges) {
    sync::SeqLock sl;
    const uint64_t sq = sl.read_begin();
    EXPECT_EQ(sq & 1, 0u);
    EXPECT_TRUE(sl.validate(sq));
    sl.write_enter();
    EXPECT_EQ(sl.read_begin() & 1, 1u);  // readers refuse to even start
    sl.write_exit();
    EXPECT_FALSE(sl.validate(sq)) << "a completed writer kills the snapshot";
    EXPECT_TRUE(sl.validate(sl.read_begin()));
}

// --------------------------------------- crash sweep + concurrent reader
//
// Trace-driven every-fence sweep (tests/fence_sweep.hpp) with an optimistic
// reader attached through the sweep-client hook: the reader continuously
// snapshot-reads random trace keys and must never observe a torn value
// while the engine is healthy.  After the crash the writer thread "dies"
// mid-commit (lock held, window odd), so the sweep releases the reader
// through crash_reset_for_tests() — the same volatile-state rebuild a
// restart does — before the client joins it.

/// Sweep client: one concurrent reader validating the optimistic read path
/// against the model oracle.  Two oracles per read, both inside ONE readTx:
///   * the same key read twice must agree (snapshot consistency), and
///   * the observation must be in legal_observations() — a value no
///     committed prefix of the trace ever exposes can only come from a torn
///     snapshot.
template <typename E>
struct SnapshotReaderClient {
    const analysis::TxTrace& trace;
    std::vector<std::string> keys;
    std::vector<analysis::KeyObservations> legal;
    analysis::KvFacade<E>* kv = nullptr;
    std::atomic<bool>* crashed = nullptr;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> bad{0};
    std::thread th;

    explicit SnapshotReaderClient(const analysis::TxTrace& t) : trace(t) {
        std::map<std::string, uint32_t> seen;
        for (const analysis::SubTx& st : t.subtxs)
            for (const analysis::TraceOp& op : st.ops)
                seen.emplace(op.key, st.shard);
        for (const auto& [key, sd] : seen) {
            keys.push_back(key);
            legal.push_back(analysis::legal_observations(t, key, sd));
        }
    }

    void begin(analysis::KvFacade<E>& facade, std::atomic<bool>& crash_flag) {
        kv = &facade;
        crashed = &crash_flag;
        stop.store(false, std::memory_order_relaxed);
        bad.store(0, std::memory_order_relaxed);
        th = std::thread([this] { loop(); });
    }

    void loop() {
        uint64_t x = 0x9E3779B97F4A7C15ull;
        while (!stop.load(std::memory_order_acquire)) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            const size_t i = size_t((x >> 33) % keys.size());
            const std::string& key = keys[i];
            const unsigned sd = kv->route(key);
            const bool pre = crashed->load(std::memory_order_acquire);
            bool f1 = false, f2 = false;
            std::string v1, v2;
            E::readTx(sd, [&] {
                f1 = f2 = false;  // restartable
                v1.clear();
                v2.clear();
                auto* s = kv->store(sd);
                if (s == nullptr) return;
                f1 = s->get(key, &v1);
                f2 = s->get(key, &v2);
            });
            // Only a read fully bracketed by a healthy engine asserts:
            // post-crash the window word is force-reset under a torn main,
            // which is exactly what recovery is for.
            if (pre || crashed->load(std::memory_order_acquire)) continue;
            if (f1 != f2 || (f1 && v1 != v2) || !legal[i].admits(f1, v1))
                bad.fetch_add(1);
        }
    }

    void end(uint64_t fence, bool /*did_crash*/) {
        stop.store(true, std::memory_order_release);
        th.join();
        EXPECT_EQ(bad.load(), 0u) << "torn snapshot at crash fence " << fence;
    }
};

template <typename E>
void run_reader_crash_sweep() {
    const std::string path =
        test::heap_path(std::string("opt_crash_") + E::name());
    pmem::SimPersistence::Options opts{pmem::FlushContent::AtPwb, 0.0, 11};
    analysis::GenConfig g;
    g.setup_ops = 0;  // every sub-tx is part of the prefix-checked history
    g.episode_ops = 8;
    g.key_space = 8;  // hot keys: the reader mostly hits live data
    g.value_max = 512;
    g.put_pct = 70;
    g.del_pct = 10;
    g.get_pct = 5;
    g.batch_ops = 3;
    const unsigned shards = 2;
    const analysis::TxTrace trace = analysis::generate_trace(
        g, /*seed=*/20240808, shards, analysis::engine_id_of<E>(),
        [shards](std::string_view key) {
            return db::shard_for_key(key, shards);
        });
    SnapshotReaderClient<E> client(trace);
    test::run_trace_fence_sweep<E>(trace, path, opts, client);
}

template <typename E>
class OptimisticReadCrash : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

using CrwwpRomulusPtms = ::testing::Types<RomulusNL, RomulusLog>;
TYPED_TEST_SUITE(OptimisticReadCrash, CrwwpRomulusPtms);

TYPED_TEST(OptimisticReadCrash, EveryFenceCrashWithConcurrentReaders) {
    run_reader_crash_sweep<TypeParam>();
}

// ------------------------------------------- racecheck-armed clean run

#ifdef ROMULUS_RACECHECK
// The churn workload with the romrace detector live: the optimistic read
// path's annotations (seqlock.write_enter / seqlock.validate /
// seqlock.write_exit) must model a sound happens-before edge — zero
// reports across validated optimistic commits racing real writers.
template <typename E>
class OptimisticRaceArmed : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        auto& d = analysis::RaceDetector::instance();
        d.reset();
        d.enable();
    }
    void TearDown() override {
        auto& d = analysis::RaceDetector::instance();
        d.disable();
        d.reset();
        pmem::set_sim_hooks(nullptr);
    }
};

TYPED_TEST_SUITE(OptimisticRaceArmed, SeqlockPtms);

TYPED_TEST(OptimisticRaceArmed, ChurnStaysSilent) {
    run_churn<TypeParam>(150);
    auto& d = analysis::RaceDetector::instance();
    EXPECT_EQ(d.race_count(), 0u) << d.report_text();
}
#endif  // ROMULUS_RACECHECK

}  // namespace
