// Shared every-fence crash-sweep driver: one parameterized, trace-driven
// sweep body replacing the formerly copy-pasted per-scenario sweeps in
// test_commit_path.cpp and test_optimistic_read.cpp.
//
// A sweep takes a recorded TxTrace (generated with setup_ops = 0 so every
// sub-transaction is part of the checked history), counts the fences of a
// crash-free dry run, then for every fence k re-executes the trace on a
// fresh heap with a SimPersistence-backed injector that throws CrashPoint
// at fence k.  After the crash the persisted-lines image is restored, the
// engine's real recovery runs, and the romfuzz model oracle checks
//   * twin-half agreement + allocator liveness (crash_explorer checks),
//   * the recovered KV content equals SOME committed prefix of the trace
//     inside the all-or-nothing window [committed, committed + 1].
//
// The store roots are created before the injector is armed (mirroring how
// FuzzHarness runs setup unrecorded), so the sweep covers every fence of
// the recorded history itself; root-creation crashes are covered by the
// dedicated fork-crash tests.
//
// A sweep client (template hook) can attach per-iteration machinery — the
// optimistic-read sweep uses it to run a concurrent reader that validates
// snapshot consistency against legal_observations().
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/crash_explorer.hpp"
#include "analysis/model_oracle.hpp"
#include "analysis/romfuzz.hpp"
#include "analysis/tx_trace.hpp"
#include "core/engine_globals.hpp"
#include "pmem/sim_persistence.hpp"
#include "pmem/stats.hpp"
#include "test_support.hpp"

namespace romulus::test {

struct CrashPoint {};

/// SimPersistence wrapper that raises CrashPoint at the `crash_at`-th fence
/// — publishing the crash through `crashed` *before* throwing, so a
/// concurrent reader can stop asserting on a heap that is legitimately
/// mid-recovery.
class FenceCrashSim final : public pmem::SimHooks {
  public:
    FenceCrashSim(uint8_t* base, size_t size,
                  pmem::SimPersistence::Options opts)
        : inner_(base, size, opts) {}

    uint64_t crash_at = UINT64_MAX;
    std::atomic<bool>* crashed = nullptr;

    void on_store(const void* a, size_t n) override { inner_.on_store(a, n); }
    void on_pwb(const void* a) override { inner_.on_pwb(a); }
    void on_fence() override {
        inner_.on_fence();
        if (inner_.fence_count() >= crash_at) {
            if (crashed != nullptr)
                crashed->store(true, std::memory_order_release);
            throw CrashPoint{};
        }
    }

    pmem::SimPersistence& model() { return inner_; }

  private:
    pmem::SimPersistence inner_;
};

/// Default sweep client: no per-iteration machinery.
struct NullSweepClient {
    template <typename Facade>
    void begin(Facade&, std::atomic<bool>&) {}
    void end(uint64_t /*fence*/, bool /*did_crash*/) {}
};

struct FenceSweepStats {
    uint64_t fences_total = 0;
    int crashes = 0;
    uint64_t fastpath_commits = 0;  ///< stripe fast-path commits (dry run)
};

template <typename E, typename Client = NullSweepClient>
FenceSweepStats run_trace_fence_sweep(const analysis::TxTrace& trace,
                                      const std::string& path,
                                      pmem::SimPersistence::Options opts,
                                      Client&& client = Client{},
                                      size_t heap_bytes = 12u << 20) {
    using analysis::KvFacade;
    FenceSweepStats stats;
    if (trace.setup_count != 0) {
        ADD_FAILURE() << "fence sweeps need setup_ops = 0: every "
                         "sub-transaction must be part of the prefix-checked "
                         "history";
        return stats;
    }

    auto init_engine = [&] {
        if constexpr (KvFacade<E>::kSharded) {
            E::init(heap_bytes, path, trace.shard_count);
        } else {
            E::init(heap_bytes, path);
        }
    };
    auto apply_all = [&](KvFacade<E>& kv, size_t& done) {
        for (size_t i = 0; i < trace.subtxs.size(); ++i) {
            const analysis::SubTx& st = trace.subtxs[i];
            if (st.is_get()) {
                std::string v;
                kv.get(st.ops[0].key, &v);
            } else {
                kv.apply(st);
            }
            done = i + 1;
        }
    };

    // Dry run: fence count of the crash-free execution.
    std::remove(path.c_str());
    init_engine();
    {
        KvFacade<E> kv(0);
        FenceCrashSim sim(E::region().base(), E::region().size(), opts);
        pmem::set_sim_hooks(&sim);
        size_t done = 0;
        const uint64_t fp0 = pmem::tl_commit_stats().fastpath_commits;
        apply_all(kv, done);
        stats.fastpath_commits = pmem::tl_commit_stats().fastpath_commits - fp0;
        pmem::set_sim_hooks(nullptr);
        stats.fences_total = sim.model().fence_count();
    }
    E::destroy();
    if (stats.fences_total <= 5) {
        ADD_FAILURE() << "trace produced only " << stats.fences_total
                      << " fences";
        return stats;
    }

    const size_t M = trace.episode_count();
    for (uint64_t k = 1; k <= stats.fences_total; ++k) {
        std::remove(path.c_str());
        init_engine();
        std::atomic<bool> crashed{false};
        size_t committed = 0;
        bool did_crash = false;
        // The sim snapshots its restore baseline at construction, so it must
        // be built only after the facade's root-creation transactions — they
        // play the role of FuzzHarness's unrecorded setup.
        KvFacade<E> kv(0);
        FenceCrashSim sim(E::region().base(), E::region().size(), opts);
        sim.crash_at = k;
        sim.crashed = &crashed;
        {
            client.begin(kv, crashed);
            pmem::set_sim_hooks(&sim);
            try {
                apply_all(kv, committed);
            } catch (const CrashPoint&) {
                did_crash = true;
            }
            pmem::set_sim_hooks(nullptr);
            // The "dead" writer may have left its lock held mid-commit;
            // rebuild the volatile kit so a blocked reader gets out before
            // the client joins it.
            if (did_crash) E::crash_reset_for_tests();
            client.end(k, did_crash);
        }

        if (did_crash) {
            ++stats.crashes;
            // Drop every line that never reached its durability point, then
            // run the engine's real recovery over the surviving image.
            sim.model().crash_restore();
        }
        E::close();
        if (did_crash) E::crash_reset_for_tests();
        init_engine();

        if (analysis::RecoveryCheck rc = analysis::check_twin_halves<E>();
            !rc.ok) {
            ADD_FAILURE() << "fence " << k << ": " << rc.detail;
        }
        {
            KvFacade<E> kv(0, /*create=*/false);
            std::vector<analysis::ShardImage> recovered;
            std::string why;
            if (!analysis::dump_recovered<E>(kv, recovered, why)) {
                ADD_FAILURE() << "fence " << k << ": " << why;
            } else {
                // Fully-applied sub-transactions are durable; the in-flight
                // one may have reached its durability point before the
                // crash.  A crash-free run must recover the full history.
                const size_t min_p = did_crash ? committed : M;
                const size_t max_p =
                    did_crash ? std::min(committed + 1, M) : M;
                analysis::PrefixCheckResult pr =
                    analysis::check_prefix_consistent(trace, recovered, min_p,
                                                      max_p);
                EXPECT_TRUE(pr.ok) << "fence " << k << ": " << pr.detail;
            }
        }
        if (analysis::RecoveryCheck rc = analysis::probe_allocator<E>();
            !rc.ok) {
            ADD_FAILURE() << "fence " << k << ": " << rc.detail;
        }
        E::destroy();
        if (::testing::Test::HasFatalFailure()) return stats;
    }
    EXPECT_GT(stats.crashes, 0);
    return stats;
}

/// Fast-path-armed sweep: pins the stripe-locked speculative update path on
/// (with a footprint generous enough for small KV updates), runs the normal
/// every-fence sweep, and asserts the dry run actually committed through the
/// stripe path — otherwise a sweep advertised as covering fast-path commit
/// fences would silently cover only the slow path.  Crash injection inside
/// fp_apply exercises the claim that torn fast-path commits recover through
/// the unchanged twin-state machinery (DESIGN.md §4.11).
template <typename E, typename Client = NullSweepClient>
FenceSweepStats run_trace_fence_sweep_fastpath(
    const analysis::TxTrace& trace, const std::string& path,
    pmem::SimPersistence::Options opts, Client&& client = Client{},
    size_t heap_bytes = 12u << 20) {
    UpdateConfigGuard guard;
    update_config().fastpath = true;
    update_config().max_fastpath_lines = 16;
    FenceSweepStats stats = run_trace_fence_sweep<E>(
        trace, path, opts, std::forward<Client>(client), heap_bytes);
    EXPECT_GT(stats.fastpath_commits, 0u)
        << "trace never commits through the speculative fast path";
    return stats;
}

}  // namespace romulus::test
