// Tests for the allocator's small-object quick cache (the §6.2 "PMDK's
// allocator is highly optimized for small allocations" fast path).
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/romulus.hpp"
#include "ds/linked_list_set.hpp"
#include "test_support.hpp"

using namespace romulus;
using E = RomulusLog;

class QuickCacheTest : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        // Quick-cache mechanics are slow-path allocator behaviour, and the
        // stress closure mutates a captured `live` vector (not restartable
        // under the §4.11 fast path): pin speculation off.
        update_config().fastpath = false;
        session_ = std::make_unique<test::EngineSession<E>>(32u << 20, "quick");
        E::allocator().set_quick_cache(true);
    }
    void TearDown() override {
        if (E::initialized()) E::allocator().set_quick_cache(false);
        session_.reset();
    }
    test::UpdateConfigGuard update_guard_;
    std::unique_ptr<test::EngineSession<E>> session_;
};

TEST_F(QuickCacheTest, FreedSmallChunkIsReusedExactly) {
    void* a = nullptr;
    E::updateTx([&] { a = E::alloc_bytes(64); });
    E::updateTx([&] { E::free_bytes(a); });
    void* b = nullptr;
    E::updateTx([&] { b = E::alloc_bytes(64); });
    EXPECT_EQ(a, b);  // quick list is LIFO on the exact size class
    E::updateTx([&] { E::free_bytes(b); });
    EXPECT_GT(E::allocator().check_consistency(), 0u);
}

TEST_F(QuickCacheTest, QuickFreeTouchesFewerLinesThanBinFree) {
    void *a = nullptr, *b = nullptr;
    E::updateTx([&] {
        a = E::alloc_bytes(64);
        b = E::alloc_bytes(64);
    });
    // Measure pwbs for a free with the cache on vs off.  The commit-side
    // flush count reflects how many lines the free dirtied.
    pmem::reset_tl_stats();
    E::updateTx([&] { E::free_bytes(a); });
    const uint64_t quick_pwbs = pmem::tl_stats().pwb;

    E::allocator().set_quick_cache(false);
    pmem::reset_tl_stats();
    E::updateTx([&] { E::free_bytes(b); });
    const uint64_t bin_pwbs = pmem::tl_stats().pwb;
    E::allocator().set_quick_cache(true);

    EXPECT_LE(quick_pwbs, bin_pwbs);
}

TEST_F(QuickCacheTest, LargeAllocationsBypassTheCache) {
    void* big = nullptr;
    E::updateTx([&] { big = E::alloc_bytes(4096); });
    E::updateTx([&] { E::free_bytes(big); });
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    // A later large allocation reuses the binned (coalesced) chunk.
    void* big2 = nullptr;
    E::updateTx([&] { big2 = E::alloc_bytes(4096); });
    EXPECT_EQ(big, big2);
    E::updateTx([&] { E::free_bytes(big2); });
}

TEST_F(QuickCacheTest, MixedSizesStressStaysConsistent) {
    std::mt19937_64 rng(21);
    std::vector<void*> live;
    for (int step = 0; step < 300; ++step) {
        E::updateTx([&] {
            for (int i = 0; i < 8; ++i) {
                if (live.empty() || rng() % 3 != 0) {
                    live.push_back(E::alloc_bytes(rng() % 500 + 1));
                } else {
                    size_t idx = rng() % live.size();
                    E::free_bytes(live[idx]);
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
        });
    }
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    E::updateTx([&] {
        for (void* p : live) E::free_bytes(p);
    });
    EXPECT_GT(E::allocator().check_consistency(), 0u);
}

TEST_F(QuickCacheTest, CacheStateRollsBackWithAbortedTransaction) {
    void* a = nullptr;
    E::updateTx([&] { a = E::alloc_bytes(64); });

    E::begin_transaction();
    E::free_bytes(a);  // parks the chunk in the quick list
    E::abort_transaction();

    // The free was rolled back: the chunk is live again and the quick list
    // does not contain it.
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    void* b = nullptr;
    E::updateTx([&] { b = E::alloc_bytes(64); });
    EXPECT_NE(a, b);
    E::updateTx([&] {
        E::free_bytes(a);
        E::free_bytes(b);
    });
}

TEST_F(QuickCacheTest, SurvivesReopenWithPopulatedCache) {
    std::vector<void*> ptrs;
    E::updateTx([&] {
        for (int i = 0; i < 10; ++i) ptrs.push_back(E::alloc_bytes(48));
    });
    E::updateTx([&] {
        for (void* p : ptrs) E::free_bytes(p);  // all parked in quick lists
    });
    std::string path = this->session_->path;
    E::close();
    E::init(32u << 20, path);
    E::allocator().set_quick_cache(true);
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    // The persisted quick lists serve allocations after restart.
    void* p = nullptr;
    E::updateTx([&] { p = E::alloc_bytes(48); });
    EXPECT_NE(p, nullptr);
    E::updateTx([&] { E::free_bytes(p); });
}

TEST_F(QuickCacheTest, ListChurnBenefitsFromCache) {
    using List = ds::LinkedListSet<E, uint64_t>;
    List* list = nullptr;
    E::updateTx([&] { list = E::tmNew<List>(); });
    for (uint64_t k = 0; k < 50; ++k) list->add(k);
    // remove+add churn hits the quick list on every node free/alloc.
    pmem::reset_tl_stats();
    for (uint64_t k = 0; k < 50; ++k) {
        list->remove(k);
        list->add(k);
    }
    EXPECT_TRUE(list->check_invariants());
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    E::updateTx([&] { E::tmDelete(list); });
}
