// Deliberately-buggy persistent data structure: one specimen of every
// interposition-bypass pattern romlint knows about.  This file is NEVER
// compiled into anything — it exists so the lint_fixtures ctest case can
// assert that tools/romlint.py flags each violation class
// (`romlint.py tests/lint_fixtures --expect-all-rules`).
//
// Each bug below is real in the sense that, under a Romulus engine, the
// store it performs would not be range-logged / flushed / replicated and a
// crash would silently lose or tear it.
#pragma once

#include <cstring>

namespace romulus::lint_fixture {

template <typename PTM>
class BadSet {
    template <typename T>
    using p = typename PTM::template p<T>;

    struct Node {
        p<uint64_t> key;
        p<Node*> next;
        // BUG[raw-field]: an unwrapped member in a persistent node.  Stores
        // to it never reach pstore: not logged, not flushed, not replicated.
        uint64_t hits;
    };

    p<Node*> head_;

  public:
    void touch(Node* n) {
        // BUG[raw-deref-write]: persist<T>::operator* hands out a raw
        // reference; writing through it skips the engine entirely.
        *n->key.operator*() = 42;
    }

    void wipe(Node* n) {
        // BUG[raw-memcpy]: a direct memset over persistent bytes — must be
        // PTM::zero_range so the engine interposes the store.
        std::memset(n, 0, sizeof(Node));
    }

    void relink(Node* n, Node* target) {
        // BUG[direct-pstore]: calling pstore() directly instead of assigning
        // through the p<> member hard-codes the interposition policy and
        // bypasses wrapper semantics (e.g. RomulusLR synthetic pointers).
        PTM::pstore(&n->next, target);
    }

    Node* leak_head() {
        // BUG[raw-ptr-escape]: `n` is declared outside the transaction but
        // assigned a persistent-heap pointer inside it, so it escapes the
        // reader's critical section: under RomulusLR it may be a synthetic
        // back-region pointer, and in any engine the node can be freed or
        // superseded by the time the caller dereferences it.
        Node* n = nullptr;
        PTM::readTx([&] {
            n = PTM::template get_object<Node>(0);
        });
        return n;
    }

    void publish(Node* n) {
        n->key = 7;
        // BUG[barren-pfence]: a fence with no write-back ordered before it
        // in this function — the store above was never pwb'd, so it can
        // still persist after the fence; the ordering the fence was meant
        // to establish does not exist.
        PTM::pfence();
    }

    // NOT a bug: read-direction copy with a same-line allow annotation; the
    // fixture test relies on this staying suppressed (violation count == 6).
    void read_out(const Node* n, void* out) {
        std::memcpy(out, n, sizeof(Node));  // romlint: allow(raw-memcpy) read copy
    }

    // NOT a bug: a fence that by design drains the *caller's* outstanding
    // write-backs (a drain barrier, not a publication fence) — annotated, and
    // the fixture test relies on this staying suppressed.
    void drain_barrier() {
        PTM::pfence();  // romlint: allow(barren-pfence) drains caller's pwbs
    }
};

}  // namespace romulus::lint_fixture
