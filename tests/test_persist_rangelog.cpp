// Unit tests for persist<T> interposition semantics and the volatile
// RangeLog (§4.7), including the Left-Right synthetic-pointer adjustment
// (§5.3, Figure 3).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/range_log.hpp"
#include "core/romulus.hpp"
#include "test_support.hpp"

using namespace romulus;

// ------------------------------------------------------------- persist<T>

TEST(PersistT, StackInstancesBehaveLikeRawValues) {
    // Outside any mapped region, persist<T> degrades to a plain value with
    // the same operator surface — this is what makes porting volatile code
    // mechanical (§4.4).
    persist<uint64_t, RomulusLog> x;
    x = 41u;
    x += 1u;
    EXPECT_EQ(uint64_t(x), 42u);
    ++x;
    EXPECT_EQ(x.pload(), 43u);
    --x;
    x -= 3u;
    EXPECT_EQ(x.pload(), 39u);
    EXPECT_TRUE(x == uint64_t{39});
    EXPECT_TRUE(x < uint64_t{40});

    persist<uint64_t, RomulusLog> y{x};  // copy ctor goes through pstore
    EXPECT_EQ(y.pload(), 39u);
    y = x;
    EXPECT_EQ(y.pload(), 39u);
}

TEST(PersistT, PointerSugar) {
    struct Obj {
        int v;
    };
    Obj obj{7};
    persist<Obj*, RomulusLog> p;
    p = &obj;
    EXPECT_EQ(p->v, 7);
    EXPECT_EQ((*p).v, 7);
    persist<void*, RomulusLog> vp;  // void* must compile (roots array)
    vp = &obj;
    EXPECT_EQ(vp.pload(), &obj);
}

TEST(PersistT, SyntheticPointerAdjustmentOnBackRegion) {
    pmem::set_profile(pmem::Profile::NOP);
    test::EngineSession<RomulusLR> session(8u << 20, "synth");
    using E = RomulusLR;
    using PU = E::p<uint64_t>;

    // A persistent cell holding a pointer to another persistent cell.
    struct Cell {
        E::p<PU*> ptr;
    };
    Cell* cell = nullptr;
    PU* target = nullptr;
    E::updateTx([&] {
        target = E::tmNew<PU>();
        *target = 1234u;
        cell = E::tmNew<Cell>();
        cell->ptr = target;
        E::put_object(0, cell);
    });

    // Inside a read transaction the reader runs on the back region: every
    // pointer it loads must land inside back, not main, and dereference to
    // the same value (Figure 3).
    E::readTx([&] {
        Cell* c = E::get_object<Cell>(0);
        auto addr = reinterpret_cast<uintptr_t>(c);
        auto main_lo = reinterpret_cast<uintptr_t>(E::main_base());
        auto back_lo = reinterpret_cast<uintptr_t>(E::back_base());
        ASSERT_GE(addr, back_lo);  // root was adjusted into back
        ASSERT_LT(addr, back_lo + E::main_size());
        PU* t = c->ptr.pload();
        auto taddr = reinterpret_cast<uintptr_t>(t);
        ASSERT_GE(taddr, back_lo);  // interior pointer adjusted too
        ASSERT_LT(taddr, back_lo + E::main_size());
        EXPECT_EQ(t->pload(), 1234u);
        (void)main_lo;
    });

    // Inside an update transaction the same pointers stay in main.
    E::updateTx([&] {
        Cell* c = E::get_object<Cell>(0);
        EXPECT_TRUE(E::in_main(c));
        EXPECT_TRUE(E::in_main(c->ptr.pload()));
    });
}

// --------------------------------------------------------------- RangeLog

TEST(RangeLogTest, DedupsWithinCacheLine) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    for (int i = 0; i < 8; ++i) log.add(i * 8, 8);  // same 64 B line
    EXPECT_EQ(log.entries().size(), 1u);
    EXPECT_EQ(log.logged_bytes(), 64u);
    EXPECT_FALSE(log.full_copy());
}

TEST(RangeLogTest, SpanningStoreLogsEveryCoveredLine) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(60, 200);  // covers lines 0..4 (offset 60 to 260)
    EXPECT_EQ(log.entries().size(), 5u);
}

TEST(RangeLogTest, EpochResetDropsOldEntries) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(0, 8);
    log.add(64, 8);
    EXPECT_EQ(log.entries().size(), 2u);
    log.begin_tx(SIZE_MAX);
    EXPECT_EQ(log.entries().size(), 0u);
    log.add(0, 8);  // the same line logs again in the new transaction
    EXPECT_EQ(log.entries().size(), 1u);
}

TEST(RangeLogTest, ThresholdTriggersFullCopy) {
    RangeLog log;
    log.begin_tx(128);  // at most two lines before giving up
    log.add(0, 8);
    EXPECT_FALSE(log.full_copy());
    log.add(64, 8);
    EXPECT_FALSE(log.full_copy());
    log.add(128, 8);  // 192 logged bytes > 128 threshold
    EXPECT_TRUE(log.full_copy());
    // Subsequent adds are ignored (log content no longer used).
    log.add(4096, 8);
    EXPECT_TRUE(log.full_copy());
}

TEST(RangeLogTest, ZeroLengthAddIsIgnored) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(128, 0);
    EXPECT_TRUE(log.entries().empty());
}

TEST(RangeLogTest, ManyDistinctLinesAllRecorded) {
    RangeLog log(12);  // small table: 4096 slots
    log.begin_tx(SIZE_MAX);
    for (size_t i = 0; i < 1000; ++i) log.add(i * 64, 8);
    ASSERT_TRUE(log.full_copy() || log.entries().size() == 1000u);
    if (!log.full_copy()) {
        // Every line offset must appear exactly once.
        std::set<uint64_t> offs;
        for (const auto& e : log.entries()) offs.insert(e.off);
        EXPECT_EQ(offs.size(), 1000u);
    }
}

// The full-copy fallback must also engage when the table gets too crowded —
// correctness cannot depend on the hash behaving well.
TEST(RangeLogTest, TableOverflowFallsBackToFullCopy) {
    RangeLog log(6);  // tiny: 64 slots
    log.begin_tx(SIZE_MAX);
    for (size_t i = 0; i < 200; ++i) log.add(i * 64, 8);
    EXPECT_TRUE(log.full_copy());
}

// Probe-cluster crowding, as opposed to global table fill: pack more than
// kMaxProbe colliding lines into ONE probe cluster of a mostly-empty table.
// The overflowing add must degrade to full copy, never drop the line.
TEST(RangeLogTest, ProbeClusterCrowdingFallsBackToFullCopy) {
    RangeLog log(6);  // 64 slots
    log.begin_tx(SIZE_MAX);
    // Collect lines that all hash to the same slot (same multiplicative
    // hash as add_line, masked to 64 slots).
    std::vector<size_t> cluster;
    const size_t target = (7u * 0x9E3779B97F4A7C15ull) & 63u;
    for (size_t line = 0; cluster.size() < 40; ++line) {
        if (((line * 0x9E3779B97F4A7C15ull) & 63u) == target)
            cluster.push_back(line);
    }
    size_t added = 0;
    for (size_t line : cluster) {
        log.add(line * 64, 8);
        ++added;
        if (log.full_copy()) break;
    }
    // Every line before the degradation point was recorded exactly once.
    EXPECT_TRUE(log.full_copy());
    EXPECT_EQ(log.entries().size(), added - 1);
    std::set<uint64_t> offs;
    for (const auto& e : log.entries()) offs.insert(e.off);
    EXPECT_EQ(offs.size(), log.entries().size());
}

// ------------------------------------------------- RangeLog::merged_runs

TEST(RangeLogRuns, AdjacentLinesCoalesceIntoOneRun) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    for (int i = 0; i < 16; ++i) log.add(i * 64, 8);  // 16 adjacent lines
    const auto& runs = log.merged_runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].off, 0u);
    EXPECT_EQ(runs[0].len, 16u * 64u);
}

TEST(RangeLogRuns, DisjointGroupsStaySeparate) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(0, 128);      // lines 0..1
    log.add(4096, 8);     // line 64
    log.add(8192, 200);   // lines 128..131
    const auto& runs = log.merged_runs();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].off, 0u);
    EXPECT_EQ(runs[0].len, 128u);
    EXPECT_EQ(runs[1].off, 4096u);
    EXPECT_EQ(runs[1].len, 64u);
    EXPECT_EQ(runs[2].off, 8192u);
    EXPECT_EQ(runs[2].len, 4u * 64u);
}

TEST(RangeLogRuns, OutOfOrderInsertionSortsBeforeMerging) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    // Insert a contiguous region backwards and interleaved.
    for (int i : {7, 2, 5, 0, 6, 1, 4, 3}) log.add(size_t(i) * 64, 8);
    const auto& runs = log.merged_runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].off, 0u);
    EXPECT_EQ(runs[0].len, 8u * 64u);
}

TEST(RangeLogRuns, OverlappingStoresMergeWithoutDoubleCounting) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(60, 200);  // lines 0..4 (spanning store)
    log.add(128, 8);   // line 2 again — deduped at add, but merge must cope
    log.add(300, 8);   // line 4 again
    const auto& runs = log.merged_runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].off, 0u);
    EXPECT_EQ(runs[0].len, 5u * 64u);
}

TEST(RangeLogRuns, CacheInvalidatedByLaterAdds) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(0, 8);
    EXPECT_EQ(log.merged_runs().size(), 1u);  // computed and cached
    log.add(64, 8);  // adjacent: must extend the run, not be dropped
    const auto& runs = log.merged_runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].len, 128u);
    log.add(4096, 8);  // disjoint: becomes a second run
    EXPECT_EQ(log.merged_runs().size(), 2u);
}

TEST(RangeLogRuns, NewTransactionDropsCachedRuns) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(0, 8);
    log.add(4096, 8);
    EXPECT_EQ(log.merged_runs().size(), 2u);
    log.begin_tx(SIZE_MAX);
    EXPECT_TRUE(log.merged_runs().empty());
    log.add(128, 8);
    ASSERT_EQ(log.merged_runs().size(), 1u);
    EXPECT_EQ(log.merged_runs()[0].off, 128u);
}

TEST(RangeLogRuns, FullCopyDegradationStopsAccumulating) {
    RangeLog log;
    log.begin_tx(128);  // at most two lines before degradation
    log.add(0, 8);
    log.add(64, 8);
    log.add(4096, 8);  // trips the threshold
    ASSERT_TRUE(log.full_copy());
    // Commit must not consult the runs in full-copy mode; if it did anyway,
    // the merge still only covers what was logged before degradation.
    for (const auto& r : log.merged_runs())
        EXPECT_LE(r.off + r.len, 4096u + 64u);
    // adds after degradation are ignored entirely
    log.add(1u << 20, 8);
    EXPECT_EQ(log.entries().size(), 3u);
}

TEST(RangeLogRuns, EpochWrapStillDedupsAndMerges) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);
    log.add(0, 8);
    log.add(64, 8);
    log.debug_set_epoch(0xFFFFFFFFu);
    log.begin_tx(SIZE_MAX);  // wrap: table reset, epoch restarts at 1
    ASSERT_EQ(log.debug_epoch(), 1u);
    // Re-log the same lines plus duplicates: dedup must still work (one
    // entry per line) and the merge must produce a single contiguous run.
    log.add(0, 8);
    log.add(64, 8);
    log.add(0, 8);
    log.add(128, 8);
    log.add(64, 8);
    EXPECT_EQ(log.entries().size(), 3u);
    const auto& runs = log.merged_runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].off, 0u);
    EXPECT_EQ(runs[0].len, 3u * 64u);
}

// The 32-bit epoch counter wrapping back to the slot-vector fill value (0)
// must not make stale/empty slots look occupied by the current transaction:
// that would silently drop lines from the commit flush+copy (lost stores
// after ~4 billion transactions).  begin_tx clears the table on wrap.
TEST(RangeLogTest, EpochWrapDoesNotAliasStaleSlots) {
    RangeLog log;
    log.begin_tx(SIZE_MAX);  // epoch 1
    log.add(0, 8);
    log.add(64, 8);
    EXPECT_EQ(log.entries().size(), 2u);

    log.debug_set_epoch(0xFFFFFFFFu);  // pretend 2^32 - 1 txs have run
    log.begin_tx(SIZE_MAX);            // ++epoch wraps: table must be reset
    EXPECT_EQ(log.debug_epoch(), 1u);
    // Same lines as before the wrap: their old slots carry epoch tag 1,
    // which the restarted epoch sequence reuses — without the reset they
    // would be treated as already-logged duplicates and dropped.
    log.add(0, 8);
    log.add(64, 8);
    log.add(128, 8);
    EXPECT_FALSE(log.full_copy());
    EXPECT_EQ(log.entries().size(), 3u);

    // The sequence keeps working on the far side of the wrap.
    log.begin_tx(SIZE_MAX);
    EXPECT_EQ(log.debug_epoch(), 2u);
    EXPECT_TRUE(log.entries().empty());
    log.add(0, 8);
    EXPECT_EQ(log.entries().size(), 1u);
}
