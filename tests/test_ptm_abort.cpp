// Explicit abort and exception-rollback semantics across every PTM: a
// transaction that aborts (or throws) must leave no trace — user data,
// roots, and allocator state all roll back.
#include <gtest/gtest.h>

#include <memory>

#include "ds/hash_map.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;

template <typename P>
class PtmAbort : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<EngineSession<P>>(32u << 20, P::name());
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<P>> session_;
};

TYPED_TEST_SUITE(PtmAbort, romulus::test::AllPtms);

TYPED_TEST(PtmAbort, ExplicitAbortRollsBackStoresRootsAndAllocations) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    P::updateTx([&] {
        auto* x = P::template tmNew<PU>();
        *x = 5u;
        P::put_object(0, x);
    });
    const uint64_t count_before = P::allocator().alloc_count();

    P::begin_transaction();
    auto* x = P::template get_object<PU>(0);
    *x = 999u;
    auto* y = P::template tmNew<PU>();
    *y = 1u;
    P::put_object(1, y);
    P::abort_transaction();

    EXPECT_EQ(P::template get_object<PU>(0)->pload(), 5u);
    EXPECT_EQ(P::template get_object<void>(1), nullptr);
    EXPECT_EQ(P::allocator().alloc_count(), count_before);
}

TYPED_TEST(PtmAbort, UserExceptionInUpdateTxRollsBackAndPropagates) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    P::updateTx([&] {
        auto* x = P::template tmNew<PU>();
        *x = 7u;
        P::put_object(0, x);
    });
    struct Boom {};
    EXPECT_THROW(P::updateTx([&] {
                     auto* x = P::template get_object<PU>(0);
                     *x = 1000u;
                     throw Boom{};
                 }),
                 Boom);
    // After the exception the PTM must be fully usable and the store undone.
    uint64_t got = 0;
    P::readTx([&] { got = P::template get_object<PU>(0)->pload(); });
    EXPECT_EQ(got, 7u);
    P::updateTx([&] { *P::template get_object<PU>(0) += 1u; });
    P::readTx([&] { got = P::template get_object<PU>(0)->pload(); });
    EXPECT_EQ(got, 8u);
}

TYPED_TEST(PtmAbort, UserExceptionInReadTxPropagatesAndReleasesLocks) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    P::updateTx([&] {
        auto* x = P::template tmNew<PU>();
        *x = 3u;
        P::put_object(0, x);
    });
    struct Boom {};
    EXPECT_THROW(P::readTx([&] { throw Boom{}; }), Boom);
    // A writer must still be able to get in (read lock was released).
    P::updateTx([&] { *P::template get_object<PU>(0) = 4u; });
    uint64_t got = 0;
    P::readTx([&] { got = P::template get_object<PU>(0)->pload(); });
    EXPECT_EQ(got, 4u);
}

TYPED_TEST(PtmAbort, AbortedStructuralChangeLeavesMapIntact) {
    using P = TypeParam;
    using Map = ds::HashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] {
        map = P::template tmNew<Map>(8);
        P::put_object(0, map);
    });
    for (uint64_t k = 0; k < 40; ++k) map->add(k);

    P::begin_transaction();
    map->add(100);   // nested, part of the doomed transaction
    map->remove(0);  // ditto
    P::abort_transaction();

    EXPECT_EQ(map->size(), 40u);
    EXPECT_FALSE(map->contains(100));
    EXPECT_TRUE(map->contains(0));
    EXPECT_TRUE(map->check_invariants());
    EXPECT_GT(P::allocator().check_consistency(), 0u);
}
