// RomulusDB / KVStore / WalDB tests: durability semantics, batches,
// iteration, reopen, and the WalDB baseline's buffered-durability model.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <random>

#include "db/romulusdb.hpp"
#include "db/waldb.hpp"
#include "test_support.hpp"

using namespace romulus;
using db::RomulusDB;
using db::WriteBatch;
using db::WriteOptions;

class RomulusDbTest : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        path_ = test::heap_path("romulusdb");
        std::remove(path_.c_str());
        db_ = RomulusDB::open(path_, 64u << 20);
    }
    void TearDown() override {
        db_.reset();
        if (RomulusLog::initialized()) RomulusLog::close();
        std::remove(path_.c_str());
    }
    std::string path_;
    std::unique_ptr<RomulusDB> db_;
};

TEST_F(RomulusDbTest, PutGetDelete) {
    WriteOptions wo;
    db_->put(wo, "alpha", "1");
    db_->put(wo, "beta", "2");
    std::string v;
    EXPECT_TRUE(db_->get("alpha", &v));
    EXPECT_EQ(v, "1");
    EXPECT_TRUE(db_->get("beta", &v));
    EXPECT_EQ(v, "2");
    EXPECT_FALSE(db_->get("gamma", &v));
    EXPECT_TRUE(db_->del(wo, "alpha"));
    EXPECT_FALSE(db_->del(wo, "alpha"));
    EXPECT_FALSE(db_->get("alpha", &v));
    EXPECT_EQ(db_->size(), 1u);
}

TEST_F(RomulusDbTest, OverwriteSameAndDifferentSizes) {
    WriteOptions wo;
    db_->put(wo, "k", "aaaa");
    db_->put(wo, "k", "bbbb");  // same size: in-place
    std::string v;
    ASSERT_TRUE(db_->get("k", &v));
    EXPECT_EQ(v, "bbbb");
    db_->put(wo, "k", "a much longer value than before");  // realloc
    ASSERT_TRUE(db_->get("k", &v));
    EXPECT_EQ(v, "a much longer value than before");
    EXPECT_EQ(db_->size(), 1u);
}

TEST_F(RomulusDbTest, WriteBatchIsAtomic) {
    WriteOptions wo;
    WriteBatch batch;
    batch.put("a", "1");
    batch.put("b", "2");
    batch.del("a");
    batch.put("c", "3");
    db_->write(wo, batch);
    std::string v;
    EXPECT_FALSE(db_->get("a", &v));
    EXPECT_TRUE(db_->get("b", &v));
    EXPECT_TRUE(db_->get("c", &v));
    EXPECT_EQ(db_->size(), 2u);
}

TEST_F(RomulusDbTest, DataSurvivesReopen) {
    WriteOptions wo;
    for (int i = 0; i < 500; ++i)
        db_->put(wo, "key" + std::to_string(i), "val" + std::to_string(i * 2));
    db_.reset();  // closes the engine

    db_ = RomulusDB::open(path_, 64u << 20);
    EXPECT_EQ(db_->size(), 500u);
    std::string v;
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(db_->get("key" + std::to_string(i), &v)) << i;
        EXPECT_EQ(v, "val" + std::to_string(i * 2));
    }
}

TEST_F(RomulusDbTest, IterationVisitsEverythingOnceBothDirections) {
    WriteOptions wo;
    std::map<std::string, std::string> model;
    for (int i = 0; i < 200; ++i) {
        std::string k = "k" + std::to_string(i);
        db_->put(wo, k, std::to_string(i));
        model[k] = std::to_string(i);
    }
    std::map<std::string, std::string> fwd, rev;
    db_->for_each([&](std::string_view k, std::string_view v) {
        fwd.emplace(std::string(k), std::string(v));
    });
    db_->for_each_reverse([&](std::string_view k, std::string_view v) {
        rev.emplace(std::string(k), std::string(v));
    });
    EXPECT_EQ(fwd, model);
    EXPECT_EQ(rev, model);
}

TEST_F(RomulusDbTest, LargeValues100kB) {
    WriteOptions wo;
    std::string big(100 * 1024, 'x');
    for (int i = 0; i < 10; ++i) {
        big[0] = char('a' + i);
        db_->put(wo, "big" + std::to_string(i), big);
    }
    std::string v;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(db_->get("big" + std::to_string(i), &v));
        EXPECT_EQ(v.size(), big.size());
        EXPECT_EQ(v[0], char('a' + i));
    }
}

TEST_F(RomulusDbTest, RandomOpsMatchStdMap) {
    WriteOptions wo;
    std::map<std::string, std::string> model;
    std::mt19937_64 rng(99);
    for (int i = 0; i < 2000; ++i) {
        std::string k = "k" + std::to_string(rng() % 150);
        switch (rng() % 4) {
            case 0:
            case 1: {
                std::string v = "v" + std::to_string(rng() % 1000);
                db_->put(wo, k, v);
                model[k] = v;
                break;
            }
            case 2: {
                EXPECT_EQ(db_->del(wo, k), model.erase(k) > 0);
                break;
            }
            default: {
                std::string got;
                auto it = model.find(k);
                EXPECT_EQ(db_->get(k, &got), it != model.end());
                if (it != model.end()) {
                    EXPECT_EQ(got, it->second);
                }
            }
        }
    }
    EXPECT_EQ(db_->size(), model.size());
}

// ---------------------------------------------------------------- WalDB

TEST(WalDbTest, PutGetDeleteAndOrder) {
    std::remove("/tmp/romulus_waldb_test.wal");
    db::WalDbOptions opts;
    opts.fsync_latency_ns = 0;
    db::WalDB w("/tmp/romulus_waldb_test.wal", opts);
    w.put("b", "2");
    w.put("a", "1");
    w.put("c", "3");
    std::string v;
    EXPECT_TRUE(w.get("b", &v));
    EXPECT_EQ(v, "2");
    w.del("b");
    EXPECT_FALSE(w.get("b", &v));
    std::vector<std::string> keys;
    w.for_each([&](const std::string& k, const std::string&) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<std::string>{"a", "c"}));
    keys.clear();
    w.for_each_reverse(
        [&](const std::string& k, const std::string&) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<std::string>{"c", "a"}));
}

TEST(WalDbTest, BufferedDurabilitySyncsEveryIntervalOnly) {
    db::WalDbOptions opts;
    opts.sync_interval_bytes = 1000;  // tiny interval for the test
    opts.fsync_latency_ns = 0;
    std::remove("/tmp/romulus_waldb_test2.wal");
    db::WalDB w("/tmp/romulus_waldb_test2.wal", opts);
    std::string v100(100, 'v');
    for (int i = 0; i < 100; ++i) w.put("k" + std::to_string(i), v100);
    // ~109 bytes per record -> a sync roughly every 9 writes, not 100 syncs.
    EXPECT_GE(w.fdatasync_count(), 5u);
    EXPECT_LE(w.fdatasync_count(), 20u);
}

TEST(WalDbTest, SyncWritesAlwaysSync) {
    db::WalDbOptions opts;
    opts.fsync_latency_ns = 0;
    std::remove("/tmp/romulus_waldb_test3.wal");
    db::WalDB w("/tmp/romulus_waldb_test3.wal", opts);
    for (int i = 0; i < 25; ++i)
        w.put("k" + std::to_string(i), "v", /*sync=*/true);
    EXPECT_EQ(w.fdatasync_count(), 25u);
}

TEST(WalDbTest, ReplayRecoversSyncedStateAfterReopen) {
    const char* path = "/tmp/romulus_waldb_replay.wal";
    std::remove(path);
    db::WalDbOptions opts;
    opts.fsync_latency_ns = 0;
    opts.write_bandwidth_bps = 0;
    {
        db::WalDB w(path, opts);
        w.put("a", "1", /*sync=*/true);
        w.put("b", "2", /*sync=*/true);
        w.del("a", /*sync=*/true);
        w.put("c", "3", /*sync=*/true);
        // destructor closes the fd; the WAL file remains
    }
    db::WalDB r(path, opts);
    std::string v;
    EXPECT_FALSE(r.get("a", &v));
    EXPECT_TRUE(r.get("b", &v));
    EXPECT_EQ(v, "2");
    EXPECT_TRUE(r.get("c", &v));
    EXPECT_EQ(v, "3");
    EXPECT_EQ(r.size(), 2u);
    r.destroy();
}

TEST(WalDbTest, ReplayIgnoresTornTailRecord) {
    const char* path = "/tmp/romulus_waldb_torn.wal";
    std::remove(path);
    db::WalDbOptions opts;
    opts.fsync_latency_ns = 0;
    opts.write_bandwidth_bps = 0;
    {
        db::WalDB w(path, opts);
        w.put("keep", "me", /*sync=*/true);
    }
    // Simulate a crash mid-append: a partial record at the tail.
    FILE* f = fopen(path, "ab");
    ASSERT_NE(f, nullptr);
    const char partial[] = {'P', 9, 0};  // truncated header
    fwrite(partial, 1, sizeof partial, f);
    fclose(f);

    db::WalDB r(path, opts);
    std::string v;
    EXPECT_TRUE(r.get("keep", &v));
    EXPECT_EQ(v, "me");
    EXPECT_EQ(r.size(), 1u);
    r.destroy();
}
