// Concurrency stress tests across the PTMs: atomicity of multi-location
// update transactions under concurrent readers (no torn snapshots), durable
// linearizability (a returned update is visible to subsequent reads from
// any thread), and mixed-structure churn with invariant checks.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "ds/hash_map.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;

template <typename P>
class ConcStress : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<EngineSession<P>>(48u << 20, P::name());
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<P>> session_;
};

TYPED_TEST_SUITE(ConcStress, romulus::test::AllPtms);

// Writers keep the invariant a + b == 0 (mod 2^64); readers must never
// observe a violated snapshot.
TYPED_TEST(ConcStress, ReadersNeverObserveTornMultiWordUpdates) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    struct Pair {
        PU a, b;
    };
    Pair* pair = nullptr;
    P::updateTx([&] {
        pair = P::template tmNew<Pair>();
        pair->a = 0u;
        pair->b = 0u;
        P::put_object(0, pair);
    });

    std::atomic<bool> stop{false};
    std::atomic<bool> torn{false};
    std::atomic<uint64_t> reads{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                uint64_t va = 0, vb = 0;
                P::readTx([&] {
                    // Re-fetch the root inside the transaction: a raw pointer
                    // captured outside bypasses the synthetic-pointer
                    // redirection of RomulusLR readers (§5.3) and would read
                    // main while the writer mutates it in place.
                    auto* pr = P::template get_object<Pair>(0);
                    va = pr->a.pload();
                    vb = pr->b.pload();
                });
                if (va + vb != 0) torn.store(true);
                reads.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < 2; ++w) {
        // w by value: the loop variable dies before the threads finish.
        writers.emplace_back([&, w] {
            std::mt19937_64 rng(w);
            for (int i = 0; i < 500; ++i) {
                const uint64_t delta = rng();
                P::updateTx([&] {
                    pair->a += delta;
                    pair->b -= delta;
                });
                if (i % 16 == 0) std::this_thread::yield();
            }
        });
    }
    for (auto& t : writers) t.join();
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_FALSE(torn.load());
    uint64_t fa = 0, fb = 0;
    P::readTx([&] {
        auto* pr = P::template get_object<Pair>(0);
        fa = pr->a.pload();
        fb = pr->b.pload();
    });
    EXPECT_EQ(fa + fb, 0u);
}

// Durable linearizability (§5.2/[18]): once updateTx returns, every
// subsequent read — from any thread — sees the effect.
TYPED_TEST(ConcStress, CommittedUpdatesAreImmediatelyVisibleToOtherThreads) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    PU* counter = nullptr;
    P::updateTx([&] {
        counter = P::template tmNew<PU>();
        *counter = 0u;
        P::put_object(0, counter);
    });

    std::atomic<uint64_t> published{0};
    std::atomic<bool> stale{false};
    std::atomic<bool> stop{false};
    std::thread checker([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t floor = published.load(std::memory_order_seq_cst);
            uint64_t got = 0;
            // Re-fetch the root inside the tx: a captured raw pointer would
            // read main even when the LR engine directs this reader at back
            // (the raw-ptr-escape pattern romlint flags in ds code).
            P::readTx([&] {
                auto* c = P::template get_object<PU>(0);
                got = c->pload();
            });
            if (got < floor) stale.store(true);  // regressed: not linearizable
        }
    });
    for (uint64_t i = 1; i <= 1500; ++i) {
        P::updateTx([&] { *counter = i; });
        published.store(i, std::memory_order_seq_cst);
        if (i % 64 == 0) std::this_thread::yield();
    }
    stop.store(true);
    checker.join();
    EXPECT_FALSE(stale.load());
}

// Mixed churn: several threads hammer one hash map with adds/removes of
// disjoint key ranges plus full-map membership readers.
TYPED_TEST(ConcStress, DisjointRangeChurnKeepsMapConsistent) {
    using P = TypeParam;
    using Map = ds::HashMap<P, uint64_t>;
    Map* map = nullptr;
    P::updateTx([&] {
        map = P::template tmNew<Map>(64);
        P::put_object(0, map);
    });

    constexpr int kWriters = 3;
    constexpr uint64_t kRange = 64;
    std::atomic<bool> stop{false};
    std::vector<std::thread> ts;
    for (int w = 0; w < kWriters; ++w) {
        ts.emplace_back([&, w] {
            std::mt19937_64 rng(w * 7 + 1);
            for (int i = 0; i < 400; ++i) {
                const uint64_t k = w * kRange + rng() % kRange;
                if (rng() % 2 == 0) {
                    map->add(k);
                } else {
                    map->remove(k);
                }
            }
        });
    }
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            uint64_t seen = 0;
            map->for_each([&](uint64_t) { ++seen; });
            (void)seen;
        }
    });
    for (auto& t : ts) t.join();
    stop.store(true);
    reader.join();

    EXPECT_TRUE(map->check_invariants());
    EXPECT_GT(P::allocator().check_consistency(), 0u);
    // Each writer only touched its own range: keys outside are absent.
    EXPECT_FALSE(map->contains(kWriters * kRange + 1));
}

// §4.11 clean-churn acceptance: disjoint stripe-fast-path writers hammer
// thread-private cache lines while optimistic readers sweep the same array.
// Functionally this checks exact per-slot sums and monotone snapshots; under
// race_clean_stress (detector armed via test_race_clean_env.cpp) it also
// pins the stripe.acquire / stripe.release / stripe.validate annotations to
// zero false positives on a workload that actually commits speculatively.
TYPED_TEST(ConcStress, StripeFastPathDisjointChurnStaysConsistent) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    constexpr int kWriters = 4;
    constexpr uint64_t kRounds = 250;
    romulus::test::UpdateConfigGuard update_guard;
    update_config().fastpath = true;

    PU* arr = nullptr;
    P::updateTx([&] {
        arr = static_cast<PU*>(P::alloc_bytes(64 * 64));
        for (int i = 0; i < 64; ++i) arr[i * 8] = 0u;
        P::put_object(0, arr);
    });

    std::atomic<bool> stop{false};
    std::atomic<bool> bad{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                uint64_t sum = 0;
                // Re-fetch the root inside the tx (LR redirection) and keep
                // the closure restartable (optimistic readers re-execute).
                P::readTx([&] {
                    auto* a = P::template get_object<PU>(0);
                    sum = 0;
                    for (int i = 0; i < kWriters; ++i) sum += a[i * 8].pload();
                });
                if (sum > kWriters * kRounds) bad.store(true);
            }
        });
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        // w by value: the loop variable dies before the threads finish.
        writers.emplace_back([&, w] {
            for (uint64_t i = 0; i < kRounds; ++i) {
                P::updateTx([&] {
                    auto* a = P::template get_object<PU>(0);
                    a[w * 8] = a[w * 8].pload() + 1;
                });
            }
        });
    }
    for (auto& t : writers) t.join();
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_FALSE(bad.load());

    for (int w = 0; w < kWriters; ++w) {
        uint64_t v = 0;
        P::readTx([&] {
            auto* a = P::template get_object<PU>(0);
            v = a[w * 8].pload();
        });
        EXPECT_EQ(v, kRounds) << "slot " << w;
    }
}
