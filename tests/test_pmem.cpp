// Unit tests for the persistence substrate: flush profiles, range
// write-back coverage, statistics, the mapped region, and the
// SimPersistence shadow-cache model itself.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>

#include "pmem/flush.hpp"
#include "pmem/region.hpp"
#include "pmem/sim_persistence.hpp"
#include "test_support.hpp"

using namespace romulus;

TEST(FlushProfile, AllProfilesSelectable) {
    for (auto p : {pmem::Profile::NOP, pmem::Profile::CLFLUSH,
                   pmem::Profile::CLFLUSHOPT, pmem::Profile::CLWB,
                   pmem::Profile::STT, pmem::Profile::PCM}) {
        pmem::set_profile(p);
        EXPECT_EQ(pmem::profile(), p);
        // The effective profile is never something the CPU can't execute.
        auto eff = pmem::effective_profile();
        if (eff == pmem::Profile::CLWB) {
            EXPECT_TRUE(pmem::cpu_has_clwb());
        }
        if (eff == pmem::Profile::CLFLUSHOPT) {
            EXPECT_TRUE(pmem::cpu_has_clflushopt());
        }
        // Issuing the primitives must be safe whatever the hardware.
        alignas(64) char buf[128] = {};
        pmem::pwb(buf);
        pmem::pfence();
        pmem::psync();
    }
    pmem::set_profile(pmem::Profile::NOP);
}

TEST(FlushProfile, DelayProfilesActuallyDelay) {
    alignas(64) char buf[64] = {};
    pmem::set_profile(pmem::Profile::PCM);  // 340 ns per pwb
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000; ++i) pmem::pwb(buf);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    pmem::set_profile(pmem::Profile::NOP);
    EXPECT_GE(ns, 1000 * 340 / 2);  // at least ~half the nominal delay
}

TEST(FlushStats, CountsEveryPrimitive) {
    pmem::set_profile(pmem::Profile::NOP);
    pmem::reset_tl_stats();
    alignas(64) char buf[256] = {};
    pmem::pwb(buf);
    pmem::pwb_range(buf, 256);  // 4 lines
    pmem::pfence();
    pmem::psync();
    pmem::on_store(buf, 10);
    auto& st = pmem::tl_stats();
    EXPECT_EQ(st.pwb, 5u);
    EXPECT_EQ(st.pfence, 1u);
    EXPECT_EQ(st.psync, 1u);
    EXPECT_EQ(st.fences(), 2u);
    EXPECT_EQ(st.nvm_bytes, 10u);
}

TEST(FlushStats, PwbRangeCoversStraddlingLines) {
    pmem::reset_tl_stats();
    alignas(64) char buf[192] = {};
    pmem::pwb_range(buf + 60, 8);  // straddles a line boundary: 2 lines
    EXPECT_EQ(pmem::tl_stats().pwb, 2u);
    pmem::reset_tl_stats();
    pmem::pwb_range(buf + 60, 0);  // empty range: nothing
    EXPECT_EQ(pmem::tl_stats().pwb, 0u);
}

TEST(PmemRegion, CreateReopenDestroy) {
    const std::string path = test::heap_path("region");
    std::remove(path.c_str());
    pmem::PmemRegion r1;
    EXPECT_TRUE(r1.map(path, 1 << 20, 0));  // created
    ASSERT_NE(r1.base(), nullptr);
    EXPECT_EQ(r1.size(), size_t{1} << 20);
    std::memset(r1.base(), 0x5A, 4096);
    EXPECT_TRUE(r1.contains(r1.base() + 100));
    EXPECT_FALSE(r1.contains(r1.base() + (1 << 20)));
    r1.unmap();
    EXPECT_FALSE(r1.mapped());

    pmem::PmemRegion r2;
    EXPECT_FALSE(r2.map(path, 1 << 20, 0));  // reopened, not created
    EXPECT_EQ(r2.base()[0], 0x5A);           // data survived the unmap
    r2.destroy();
    EXPECT_NE(::access(path.c_str(), F_OK), 0);  // file gone
}

TEST(PmemRegion, FixedAddressIsHonoured) {
    const std::string path = test::heap_path("region_fixed");
    std::remove(path.c_str());
    constexpr uintptr_t kWant = 0x5F0000000000ull;
    pmem::PmemRegion r;
    r.map(path, 1 << 20, kWant);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(r.base()), kWant);
    // Remapping after unmap lands at the same address: pointer stability.
    r.unmap();
    pmem::PmemRegion r2;
    r2.map(path, 1 << 20, kWant);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(r2.base()), kWant);
    r2.destroy();
}

TEST(PmemRegion, ResizedFileIsTreatedAsFresh) {
    const std::string path = test::heap_path("region_resize");
    std::remove(path.c_str());
    pmem::PmemRegion r1;
    EXPECT_TRUE(r1.map(path, 1 << 20, 0));
    r1.unmap();
    pmem::PmemRegion r2;
    EXPECT_TRUE(r2.map(path, 2 << 20, 0));  // different size -> "created"
    r2.destroy();
}

// ----------------------------------------------------------- SimPersistence

class SimModel : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        buf_ = static_cast<uint8_t*>(aligned_alloc(64, kSize));
        std::memset(buf_, 0, kSize);
    }
    void TearDown() override {
        pmem::set_sim_hooks(nullptr);
        free(buf_);
    }
    static constexpr size_t kSize = 4096;
    uint8_t* buf_;
};

TEST_F(SimModel, UnflushedStoreIsLostOnCrash) {
    pmem::SimPersistence sim(buf_, kSize);
    pmem::set_sim_hooks(&sim);
    buf_[0] = 42;
    pmem::on_store(buf_, 1);
    EXPECT_EQ(sim.dirty_line_count(), 1u);
    pmem::set_sim_hooks(nullptr);
    sim.crash_restore();
    EXPECT_EQ(buf_[0], 0);  // never written back: lost
}

TEST_F(SimModel, PwbAloneIsNotEnough) {
    pmem::SimPersistence sim(buf_, kSize);
    pmem::set_sim_hooks(&sim);
    buf_[0] = 42;
    pmem::on_store(buf_, 1);
    pmem::pwb(buf_);  // pending, but no fence yet
    EXPECT_EQ(sim.pending_line_count(), 1u);
    pmem::set_sim_hooks(nullptr);
    sim.crash_restore();
    EXPECT_EQ(buf_[0], 0);
}

TEST_F(SimModel, PwbPlusFencePersists) {
    pmem::SimPersistence sim(buf_, kSize);
    pmem::set_sim_hooks(&sim);
    buf_[0] = 42;
    pmem::on_store(buf_, 1);
    pmem::pwb(buf_);
    pmem::pfence();
    pmem::set_sim_hooks(nullptr);
    sim.crash_restore();
    EXPECT_EQ(buf_[0], 42);
}

TEST_F(SimModel, FlushContentSemanticsDiffer) {
    // Store A, pwb, store B (same line), fence: AtPwb persists A, AtFence B.
    for (auto content : {pmem::SimPersistence::FlushContent::AtPwb,
                         pmem::SimPersistence::FlushContent::AtFence}) {
        std::memset(buf_, 0, kSize);
        pmem::SimPersistence sim(buf_, kSize, {content, 0.0, 1});
        pmem::set_sim_hooks(&sim);
        buf_[0] = 1;
        pmem::on_store(buf_, 1);
        pmem::pwb(buf_);
        buf_[0] = 2;
        pmem::on_store(buf_, 1);
        pmem::pfence();
        pmem::set_sim_hooks(nullptr);
        sim.crash_restore();
        if (content == pmem::SimPersistence::FlushContent::AtPwb) {
            EXPECT_EQ(buf_[0], 1);
        } else {
            EXPECT_EQ(buf_[0], 2);
        }
    }
}

TEST_F(SimModel, RandomEvictionPersistsUnflushedDirtyLines) {
    pmem::SimPersistence sim(buf_, kSize,
                             {pmem::SimPersistence::FlushContent::AtFence,
                              1.0 /*always evict*/, 7});
    pmem::set_sim_hooks(&sim);
    buf_[128] = 9;  // store, never pwb'd
    pmem::on_store(buf_ + 128, 1);
    pmem::pfence();  // eviction pass runs here
    pmem::set_sim_hooks(nullptr);
    sim.crash_restore();
    EXPECT_EQ(buf_[128], 9);  // spontaneously written back
}

TEST_F(SimModel, CheckpointRebaselines) {
    pmem::SimPersistence sim(buf_, kSize);
    pmem::set_sim_hooks(&sim);
    buf_[7] = 77;
    pmem::on_store(buf_ + 7, 1);
    sim.checkpoint_all();  // declare current live state persistent
    pmem::set_sim_hooks(nullptr);
    sim.crash_restore();
    EXPECT_EQ(buf_[7], 77);
}

TEST_F(SimModel, FenceCountAdvances) {
    pmem::SimPersistence sim(buf_, kSize);
    pmem::set_sim_hooks(&sim);
    EXPECT_EQ(sim.fence_count(), 0u);
    pmem::pfence();
    pmem::psync();
    EXPECT_EQ(sim.fence_count(), 2u);
}
