// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/engine_globals.hpp"
#include "pmem/flush.hpp"

namespace romulus::test {

/// Unique heap file per test to keep tests independent.
inline std::string heap_path(const std::string& tag) {
    return "/dev/shm/romulus_test_" + tag + "_" + std::to_string(::getpid()) +
           ".heap";
}

/// RAII: save/restore the speculative-fast-path knobs.  Tests that assert
/// slow-path mechanics (per-store log entries, Table-1 fence counts, checker
/// event sequences) construct one and set `update_config().fastpath = false`.
struct UpdateConfigGuard {
    UpdateConfig saved = update_config();
    ~UpdateConfigGuard() { update_config() = saved; }
};

/// RAII: select a flush profile for the duration of a test.
struct ProfileGuard {
    explicit ProfileGuard(pmem::Profile p) : saved(pmem::profile()) {
        pmem::set_profile(p);
    }
    ~ProfileGuard() { pmem::set_profile(saved); }
    pmem::Profile saved;
};

/// Fresh-heap fixture helper: destroys any pre-existing heap of engine E,
/// initialises a new one, and tears it down at scope exit.
template <typename E>
struct EngineSession {
    explicit EngineSession(size_t bytes, const std::string& tag) : path(heap_path(tag)) {
        std::remove(path.c_str());
        E::init(bytes, path);
    }
    ~EngineSession() {
        if (E::initialized()) E::destroy();
        std::remove(path.c_str());
    }
    std::string path;
};

}  // namespace romulus::test
