// Commit-pipeline overhaul tests: coalesced range-log runs, the
// persist_copy non-temporal replication primitive, the hook-free pwb_range
// fast path and the deferred used_size write-back.
//
// Three layers of coverage:
//   1. persist_copy unit semantics against SimPersistence directly (data
//      copied, lines pending until the next fence, both FlushContent modes,
//      at most one real pwb — the cached sub-16 B tail).
//   2. Whole-engine soundness with the streaming path *forced on*: the
//      PersistencyChecker must stay clean and the crash-injection sweep
//      must recover all-or-nothing on every Romulus variant, under both
//      flush-content semantics.
//   3. The PR's acceptance criterion: a sequential 8 KB-write transaction
//      on the CLWB-or-fallback profile issues >= 30 % fewer pwbs (and
//      commits measurably faster) with the coalesced+streaming commit path
//      than with the pre-overhaul per-line path, verified via Stats and
//      CommitStats counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "analysis/tx_trace.hpp"
#include "fence_sweep.hpp"
#include "pmem/checker.hpp"
#include "pmem/sim_persistence.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

// GCC defines __SANITIZE_*__; clang reports sanitizers via __has_feature.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ROMULUS_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ROMULUS_TEST_SANITIZED 1
#endif
#endif
#ifndef ROMULUS_TEST_SANITIZED
#define ROMULUS_TEST_SANITIZED 0
#endif

using namespace romulus;

namespace {

/// RAII: commit-pipeline tuning for the duration of a test.
struct CommitConfigGuard {
    pmem::CommitConfig saved = pmem::commit_config();
    ~CommitConfigGuard() { pmem::commit_config() = saved; }
};

/// The pre-overhaul commit path: unsorted per-line flush/copy, no streaming.
void select_legacy_commit_path() {
    pmem::commit_config().coalesce = false;
    pmem::commit_config().nt_threshold = SIZE_MAX;
}

/// The overhauled path with streaming forced on for even the smallest runs.
void select_streaming_commit_path() {
    pmem::commit_config().coalesce = true;
    pmem::commit_config().nt_threshold = 16;
}

using RomulusPtms = ::testing::Types<RomulusNL, RomulusLog, RomulusLR>;

// ------------------------------------------------------------ persist_copy

class PersistCopyTest : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TEST_F(PersistCopyTest, CopiesBytesAndPendsLinesUntilFence) {
    for (auto content : {pmem::FlushContent::AtFence, pmem::FlushContent::AtPwb}) {
        CommitConfigGuard guard;
        select_streaming_commit_path();
        constexpr size_t kBytes = 4096;
        alignas(64) static uint8_t dst[kBytes];
        std::vector<uint8_t> src(kBytes);
        for (size_t i = 0; i < kBytes; ++i) src[i] = uint8_t(i * 31 + 7);
        std::memset(dst, 0, kBytes);

        pmem::SimPersistence sim(dst, kBytes, {content, 0.0, 1});
        pmem::set_sim_hooks(&sim);
        const uint64_t pwb_before = pmem::tl_stats().pwb;
        pmem::persist_copy(dst, src.data(), kBytes);
        // The live content is in place immediately...
        EXPECT_EQ(std::memcmp(dst, src.data(), kBytes), 0);
        // ...observed by the model as store+pwb per line (pending, not
        // dirty), and without a single real pwb instruction (no tail here).
        EXPECT_EQ(sim.dirty_line_count(), 0u);
        EXPECT_EQ(sim.pending_line_count(), kBytes / 64);
        EXPECT_EQ(pmem::tl_stats().pwb, pwb_before);
        // A crash before the fence may lose everything streamed...
        pmem::psync();  // ...but after the fence it is persistent.
        pmem::set_sim_hooks(nullptr);
        sim.crash_restore();
        EXPECT_EQ(std::memcmp(dst, src.data(), kBytes), 0);
    }
}

TEST_F(PersistCopyTest, UnalignedTailTakesTheCachedPwbPath) {
    CommitConfigGuard guard;
    select_streaming_commit_path();
    constexpr size_t kBytes = 1024;
    alignas(64) static uint8_t dst[kBytes];
    std::vector<uint8_t> src(kBytes, 0xAB);
    std::memset(dst, 0, kBytes);

    pmem::SimPersistence sim(dst, kBytes, {pmem::FlushContent::AtPwb, 0.0, 1});
    pmem::set_sim_hooks(&sim);
    pmem::reset_tl_commit_stats();
    const uint64_t pwb_before = pmem::tl_stats().pwb;
    pmem::persist_copy(dst, src.data(), 777);  // 768 streamed + 9 cached
    EXPECT_EQ(std::memcmp(dst, src.data(), 777), 0);
    EXPECT_EQ(pmem::tl_stats().pwb, pwb_before + 1);  // exactly the tail line
    EXPECT_EQ(pmem::tl_commit_stats().nt_bytes, 768u);
    EXPECT_EQ(pmem::tl_commit_stats().cached_bytes, 9u);
    pmem::pfence();
    pmem::set_sim_hooks(nullptr);
    sim.crash_restore();
    EXPECT_EQ(std::memcmp(dst, src.data(), 777), 0);
}

TEST_F(PersistCopyTest, BelowThresholdFallsBackToCachedReplication) {
    CommitConfigGuard guard;
    pmem::commit_config().nt_threshold = 4096;
    alignas(64) static uint8_t dst[256];
    std::vector<uint8_t> src(256, 0x5C);
    pmem::reset_tl_commit_stats();
    const uint64_t pwb_before = pmem::tl_stats().pwb;
    pmem::persist_copy(dst, src.data(), 256);
    EXPECT_EQ(std::memcmp(dst, src.data(), 256), 0);
    EXPECT_EQ(pmem::tl_stats().pwb, pwb_before + 4);  // classic one pwb/line
    EXPECT_EQ(pmem::tl_commit_stats().nt_bytes, 0u);
    EXPECT_EQ(pmem::tl_commit_stats().cached_bytes, 256u);
}

// ----------------------------------------------- deferred used_size pwb

TEST(CommitPathDeferredUsed, AllocationsPayNoPerGrowthPwb) {
    test::ProfileGuard profile(pmem::Profile::NOP);
    using E = RomulusLog;
    test::EngineSession<E> session(16u << 20, "cpath_used");
    E::begin_transaction();
    const uint64_t pwb_before = pmem::tl_stats().pwb;
    std::vector<void*> ptrs;
    for (int i = 0; i < 32; ++i) ptrs.push_back(E::alloc_bytes(200));
    // Every allocation above carved fresh wilderness and grew used_size,
    // yet none of them issued a write-back: the pwb is owed at commit.
    EXPECT_EQ(pmem::tl_stats().pwb, pwb_before);
    E::end_transaction();
    EXPECT_GT(pmem::tl_stats().pwb, pwb_before);
    // The grown bound is real and commit made it durable (recovery-visible).
    EXPECT_GE(E::used_bytes(), 32u * 200u);
}

// --------------------------------------- checker soundness, streaming on

template <typename E>
class CommitPathChecker : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(CommitPathChecker, RomulusPtms);

TYPED_TEST(CommitPathChecker, StreamingCommitStaysDisciplineClean) {
    using E = TypeParam;
    for (auto content :
         {pmem::FlushContent::AtFence, pmem::FlushContent::AtPwb}) {
        CommitConfigGuard guard;
        select_streaming_commit_path();
        test::EngineSession<E> session(16u << 20, "cpath_chk");
        using PU = typename E::template p<uint64_t>;
        PU* arr = nullptr;
        uint8_t* buf = nullptr;
        E::updateTx([&] {
            arr = static_cast<PU*>(E::alloc_bytes(sizeof(PU) * 512));
            buf = static_cast<uint8_t*>(E::alloc_bytes(2048));
            E::zero_range(buf, 2048);
        });

        auto layout = pmem::PersistencyChecker::template layout_of<E>();
        pmem::PersistencyChecker::Options opts;
        opts.content = content;
        opts.require_log = !std::is_same_v<E, RomulusNL>;
        pmem::PersistencyChecker checker(layout, opts);
        pmem::set_sim_hooks(&checker);
        for (int r = 0; r < 4; ++r) {
            E::updateTx([&] {
                for (int i = 0; i < 512; ++i) arr[i] = uint64_t(r * i);
                std::vector<uint8_t> pat(512, uint8_t(r + 1));
                E::store_range(buf + (r % 4) * 512, pat.data(), 512);
                (void)E::alloc_bytes(4096);  // grows used_size mid-tx
            });
        }
        pmem::set_sim_hooks(nullptr);
        EXPECT_TRUE(checker.clean()) << checker.report();
        const auto diag = checker.diagnostics();
        EXPECT_EQ(diag.tx_commits, 4u);
    }
}

// ------------------------------------------ crash injection, streaming on
//
// Trace-driven every-fence sweep (tests/fence_sweep.hpp): a generated KV
// history whose value sizes force multi-line store_range runs through the
// streaming replication path on every commit — the coverage the old
// hand-written stripe workload provided, now checked by the romfuzz model
// oracle instead of a bespoke verify body.

/// Values up to 1.5 KB (well past the streaming nt_threshold of 16 forced
/// below) with a small hot key set, so most PUTs overwrite existing
/// multi-line buffers and DELs recycle them through the allocator.
template <typename E>
analysis::TxTrace streaming_trace(unsigned shards) {
    analysis::GenConfig g;
    g.setup_ops = 0;  // every sub-tx is part of the prefix-checked history
    g.episode_ops = 9;
    g.key_space = 10;
    g.value_max = 1536;
    g.put_pct = 70;
    g.del_pct = 10;
    g.get_pct = 5;
    g.batch_ops = 3;
    return analysis::generate_trace(
        g, /*seed=*/20240807, shards, analysis::engine_id_of<E>(),
        [shards](std::string_view key) {
            return db::shard_for_key(key, shards);
        });
}

template <typename E>
void run_streaming_crash_sweep(pmem::FlushContent content) {
    CommitConfigGuard guard;
    select_streaming_commit_path();
    const std::string path =
        test::heap_path(std::string("cpath_crash_") + E::name());
    pmem::SimPersistence::Options opts{content, 0.0, 7};
    test::run_trace_fence_sweep<E>(streaming_trace<E>(2), path, opts);
}

template <typename E>
class CommitPathCrash : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(CommitPathCrash, RomulusPtms);

TYPED_TEST(CommitPathCrash, EveryFenceCrashRecovers_NT_AtFence) {
    run_streaming_crash_sweep<TypeParam>(pmem::FlushContent::AtFence);
}

TYPED_TEST(CommitPathCrash, EveryFenceCrashRecovers_NT_AtPwb) {
    run_streaming_crash_sweep<TypeParam>(pmem::FlushContent::AtPwb);
}

// ------------------------------------------------- acceptance criterion

TEST(CommitPathAcceptance, Sequential8KBTxNeedsFarFewerPwbs) {
    // CLWB-or-fallback profile, as the acceptance criterion specifies
    // (set_profile degrades CLWB -> CLFLUSHOPT -> CLFLUSH on older CPUs).
    test::ProfileGuard profile(pmem::Profile::CLWB);
    using E = RomulusLog;
    test::EngineSession<E> session(64u << 20, "cpath_accept");
    using PU = E::p<uint64_t>;
    constexpr size_t kWords = 8192 / sizeof(uint64_t);
    PU* arr = nullptr;
    E::updateTx([&] {
        // Ballast: full_copy_threshold() is used_size/2, so on a near-empty
        // heap an 8 KB transaction would degrade the log to full-copy mode
        // and the merged-run path (what this test measures) would never run.
        (void)E::alloc_bytes(64 * 1024);
        arr = static_cast<PU*>(E::alloc_bytes(8192));
        for (size_t i = 0; i < kWords; ++i) arr[i] = 0u;
    });

    auto run_tx = [&](uint64_t seed) {
        E::updateTx([&] {
            for (size_t i = 0; i < kWords; ++i) arr[i] = seed + i;
        });
    };
    constexpr int kReps = 200;
    auto measure = [&](auto&& config) -> std::pair<uint64_t, double> {
        config();
        run_tx(1);  // warm-up under the selected path
        pmem::reset_tl_stats();
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r) run_tx(uint64_t(r));
        const double ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - t0)
                .count() /
            kReps;
        return {pmem::tl_stats().pwb / kReps, ns};
    };

    CommitConfigGuard guard;
    auto [legacy_pwb, legacy_ns] = measure(select_legacy_commit_path);
    pmem::reset_tl_commit_stats();
    auto [stream_pwb, stream_ns] =
        measure([] { pmem::commit_config() = pmem::CommitConfig{}; });

    std::printf(
        "  8KB sequential tx (%s): legacy %llu pwbs / %.0f ns, "
        "overhauled %llu pwbs / %.0f ns\n",
        pmem::profile_name(pmem::effective_profile()),
        (unsigned long long)legacy_pwb, legacy_ns,
        (unsigned long long)stream_pwb, stream_ns);

    // >= 30 % fewer pwb invocations (measured: ~50 % — the whole back
    // replica streams instead of paying one pwb per line).
    EXPECT_LE(stream_pwb * 10, legacy_pwb * 7)
        << "streaming commit path must cut pwbs by >= 30%";
    // Latency drops with the pwbs; generous slack keeps CI deterministic.
    // Sanitizer instrumentation inverts the cost model (uninstrumented NT
    // loops vs intercepted memcpy), so the timing claim only holds on
    // plain builds.
#if !ROMULUS_TEST_SANITIZED
    EXPECT_LT(stream_ns, legacy_ns * 1.05);
#endif

    // The CommitStats accessor explains where the savings came from.
    const auto& cs = pmem::tl_commit_stats();
    EXPECT_GE(cs.commits, uint64_t(kReps));
    EXPECT_GE(cs.lines_logged, uint64_t(kReps) * 128u);
    EXPECT_GT(cs.lines_merged(), 0u);
    EXPECT_GT(cs.avg_run_lines(), 64.0);  // 8 KB coalesces into one long run
    EXPECT_GT(cs.nt_bytes, uint64_t(kReps) * 8192u / 2);
}

}  // namespace
