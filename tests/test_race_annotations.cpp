// Annotation-contract tests (compiled only under -DROMULUS_RACECHECK): each
// sync primitive must emit exactly the acquire/release edge sequence the
// detector's happens-before model relies on (docs/race_detector.md).  These
// assert on the detector's sync-event trace, so a refactor that drops or
// reorders an annotation fails here rather than as a false positive (or a
// silent false negative) in the stress suites.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "analysis/race_detector.hpp"
#include "sync/crwwp.hpp"
#include "sync/flat_combining.hpp"
#include "sync/left_right.hpp"
#include "sync/spinlock.hpp"
#include "sync/thread_registry.hpp"

namespace {

using romulus::analysis::RaceDetector;

std::vector<std::string> fmt(const std::vector<RaceDetector::SyncEvent>& es) {
    std::vector<std::string> out;
    for (const auto& e : es)
        out.push_back(std::string(e.is_acquire ? "A:" : "R:") + e.label);
    return out;
}

class RaceAnnotationTest : public ::testing::Test {
  protected:
    void SetUp() override {
        // Acquire the main thread's registry slot while the detector is
        // still disabled: ctest runs each test in its own process, and a
        // first tid() call inside the test body would otherwise prepend an
        // "A:registry.slot" event to the asserted trace.
        (void)romulus::sync::tid();
        auto& d = RaceDetector::instance();
        d.reset();
        RaceDetector::Options opts;
        opts.record_trace = true;
        d.enable(opts);
    }
    void TearDown() override {
        auto& d = RaceDetector::instance();
        d.disable();
        d.reset();
    }
};

TEST_F(RaceAnnotationTest, SpinLockAcquireRelease) {
    romulus::sync::SpinLock sl;
    sl.lock();
    sl.unlock();
    EXPECT_EQ(fmt(RaceDetector::instance().trace_for(&sl)),
              (std::vector<std::string>{"A:spinlock.lock",
                                        "R:spinlock.unlock"}));
}

// Writer side of C-RW-WP: taking the writers' mutex acquires, draining the
// read indicator acquires (the writer barrier), and write_unlock releases
// before unlocking the mutex (which releases again).
TEST_F(RaceAnnotationTest, CRWWPWriterBarrierSequence) {
    romulus::sync::CRWWPLock lk;
    lk.write_lock();
    lk.write_unlock();
    EXPECT_EQ(fmt(RaceDetector::instance().trace()),
              (std::vector<std::string>{"A:spinlock.lock", "A:crwwp.drain",
                                        "R:crwwp.write_unlock",
                                        "R:spinlock.unlock"}));
}

// Reader side: the acquire fires after observing "no writer", the release
// fires in the read indicator's depart.
TEST_F(RaceAnnotationTest, CRWWPReaderSequence) {
    romulus::sync::CRWWPLock lk;
    const int t = romulus::sync::tid();
    lk.read_lock(t);
    lk.read_unlock(t);
    EXPECT_EQ(fmt(RaceDetector::instance().trace()),
              (std::vector<std::string>{"A:crwwp.read_lock", "R:ri.depart"}));
}

// Left-Right: arrive() is unannotated (a reader's edge comes from observing
// the read_region publication, not from arriving); set_read_region releases
// before the publication store; the toggle acquires both indicator drains.
TEST_F(RaceAnnotationTest, LeftRightProtocolSequence) {
    romulus::sync::LeftRight lr;
    const int t = romulus::sync::tid();
    const int vi = lr.arrive(t);  // no annotation expected
    (void)lr.read_region();
    lr.depart(t, vi);
    lr.set_read_region(romulus::sync::LeftRight::kReadMain);
    lr.toggle_version_and_wait();
    EXPECT_EQ(fmt(RaceDetector::instance().trace()),
              (std::vector<std::string>{"A:lr.read_region", "R:ri.depart",
                                        "R:lr.publish", "A:lr.drain",
                                        "A:lr.drain"}));
}

// Flat combining: announce releases into the slot, the combiner's take
// acquires it, mark_done releases back, and the announcer's is_done acquires
// once it observes the cleared slot.
TEST_F(RaceAnnotationTest, FlatCombiningHandoffSequence) {
    romulus::sync::FlatCombiningArray fc;
    const int t = romulus::sync::tid();
    romulus::sync::FlatCombiningArray::Op op = [] {};
    fc.announce(t, &op);
    fc.for_each_announced(
        [&](int slot, romulus::sync::FlatCombiningArray::Op*) {
            fc.mark_done(slot);
        });
    ASSERT_TRUE(fc.is_done(t));
    EXPECT_EQ(fmt(RaceDetector::instance().trace()),
              (std::vector<std::string>{"R:fc.announce", "A:fc.take",
                                        "R:fc.mark_done", "A:fc.is_done"}));
}

// Thread registry: a new thread's slot acquisition acquires the registry
// sentinel and its exit releases it, so a thread recycling a slot inherits
// the previous holder's clock instead of appearing to race with it.
TEST_F(RaceAnnotationTest, ThreadRegistrySlotHandoff) {
    std::thread worker([] { (void)romulus::sync::tid(); });
    worker.join();
    std::vector<std::string> got;
    for (const auto& e : RaceDetector::instance().trace())
        if (std::string(e.label) == "registry.slot")
            got.push_back(e.is_acquire ? "A" : "R");
    EXPECT_EQ(got, (std::vector<std::string>{"A", "R"}));
}

}  // namespace
