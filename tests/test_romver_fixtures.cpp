// Seeded protocol-mutation fixtures (docs/romver.md).  Only compiled under
// -DROMULUS_PERSISTGRAPH (the `persistgraph` leg of scripts/check.sh): the
// engines carry deliberate crash-consistency bugs behind runtime flags, and
// romver's static rules must flag each one — while the silent controls (same
// build, flags off) stay clean.  This is the proof that the rules still
// detect what they claim to.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/romver.hpp"
#include "core/engine_globals.hpp"
#include "test_support.hpp"
#include "ptm_types.hpp"

namespace romulus::test {
namespace {

using analysis::GraphAnalysis;
using analysis::ProtocolViolation;
using analysis::RomverConfig;
using analysis::RomverHarness;
using analysis::protocol_mutations;

static_assert(kPersistGraphEnabled,
              "test_romver_fixtures.cpp requires -DROMULUS_PERSISTGRAPH");

struct MutationGuard {
    MutationGuard() { protocol_mutations() = {}; }
    ~MutationGuard() { protocol_mutations() = {}; }
};

GraphAnalysis record_and_analyze(const std::string& tag) {
    RomverConfig cfg;
    cfg.path = heap_path(tag);
    cfg.tx_bytes = 8192;
    RomverHarness<RomulusLog> harness(cfg);
    harness.record();
    return harness.analyze();
}

TEST(RomverFixtures, SilentControlIsClean) {
    MutationGuard guard;
    GraphAnalysis ga = record_and_analyze("romver_ctl");
    EXPECT_TRUE(ga.clean()) << ga.report();
}

TEST(RomverFixtures, ElidedCommitFenceIsFlagged) {
    MutationGuard guard;
    protocol_mutations().elide_commit_fence = true;
    GraphAnalysis ga = record_and_analyze("romver_elide");
    ASSERT_FALSE(ga.clean());
    // Every violation is the body write-backs sharing the CPY state
    // persist's fence window, and the report names the window pair.
    for (const ProtocolViolation& v : ga.violations) {
        EXPECT_EQ(v.kind, ProtocolViolation::Kind::UnorderedStatePersist);
        EXPECT_EQ(v.state_value, 2u);  // CPY
        EXPECT_EQ(v.line_window, v.state_window);
        EXPECT_NE(v.detail.find("not ordered before"), std::string::npos);
        EXPECT_NE(v.detail.find("CPY"), std::string::npos);
    }
    // The whole 8 KB body is unordered: 128 lines' write-backs.
    EXPECT_GE(ga.violations.size(), 128u);
}

TEST(RomverFixtures, ReorderedStatePersistIsFlagged) {
    MutationGuard guard;
    protocol_mutations().reorder_state_persist = true;
    GraphAnalysis ga = record_and_analyze("romver_reorder");
    ASSERT_FALSE(ga.clean());
    EXPECT_GE(ga.violations.size(), 128u);
    for (const ProtocolViolation& v : ga.violations) {
        EXPECT_EQ(v.kind, ProtocolViolation::Kind::UnorderedStatePersist);
        EXPECT_EQ(v.state_value, 2u);
    }
}

TEST(RomverFixtures, ControlAfterMutationsIsCleanAgain) {
    // Mutations are runtime flags: the same process must go back to a clean
    // protocol once they are dropped (no lingering state).
    {
        MutationGuard guard;
        protocol_mutations().elide_commit_fence = true;
        GraphAnalysis ga = record_and_analyze("romver_ctl2a");
        ASSERT_FALSE(ga.clean());
    }
    GraphAnalysis ga = record_and_analyze("romver_ctl2b");
    EXPECT_TRUE(ga.clean()) << ga.report();
}

}  // namespace
}  // namespace romulus::test
