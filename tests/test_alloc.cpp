// Unit and property tests for the persistent allocator, hosted inside a
// RomulusLog heap (the allocator itself is PTM-generic; the engine supplies
// the persist<> interposition and the transaction context).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <vector>

#include "core/romulus.hpp"
#include "test_support.hpp"

using namespace romulus;
using E = RomulusLog;

class AllocTest : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        // These closures accumulate pointers into captured containers, which
        // is not restartable under the §4.11 speculative fast path (a doomed
        // run would push scratch-arena pointers); they exercise the slow-path
        // allocator anyway, so pin the fast path off.
        update_config().fastpath = false;
        session_ = std::make_unique<test::EngineSession<E>>(32u << 20, "alloc");
    }
    void TearDown() override { session_.reset(); }
    test::UpdateConfigGuard update_guard_;
    std::unique_ptr<test::EngineSession<E>> session_;
};

TEST_F(AllocTest, AllocationsAreAlignedAndDisjoint) {
    std::vector<void*> ptrs;
    E::updateTx([&] {
        for (size_t sz : {1u, 8u, 17u, 64u, 100u, 4096u})
            ptrs.push_back(E::alloc_bytes(sz));
    });
    for (void* p : ptrs)
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u) << "alignment";
    // Disjointness: byte ranges must not overlap (sizes rounded up).
    std::map<uintptr_t, size_t> ranges;
    size_t sizes[] = {1, 8, 17, 64, 100, 4096};
    for (size_t i = 0; i < ptrs.size(); ++i)
        ranges[reinterpret_cast<uintptr_t>(ptrs[i])] = sizes[i];
    uintptr_t prev_end = 0;
    for (auto [start, len] : ranges) {
        EXPECT_GE(start, prev_end);
        prev_end = start + len;
    }
    E::updateTx([&] {
        for (void* p : ptrs) E::free_bytes(p);
    });
    EXPECT_GT(E::allocator().check_consistency(), 0u);
}

TEST_F(AllocTest, PayloadCapacityCoversRequest) {
    E::updateTx([&] {
        for (size_t sz : {1u, 31u, 32u, 33u, 255u, 1000u}) {
            void* p = E::alloc_bytes(sz);
            EXPECT_GE(E::allocator().payload_capacity(p), sz);
            E::free_bytes(p);
        }
    });
}

TEST_F(AllocTest, CoalescingMergesNeighbours) {
    void *a = nullptr, *b = nullptr, *c = nullptr;
    E::updateTx([&] {
        a = E::alloc_bytes(100);
        b = E::alloc_bytes(100);
        c = E::alloc_bytes(100);
    });
    // Free middle then left then right: exercises left-, right- and
    // both-side coalescing paths.
    E::updateTx([&] { E::free_bytes(b); });
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    E::updateTx([&] { E::free_bytes(a); });  // right-coalesce with b
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    E::updateTx([&] { E::free_bytes(c); });  // left-coalesce into a+b
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    // The merged block should satisfy a request of the combined size.
    void* big = nullptr;
    const uint64_t wilderness_before = E::allocator().wilderness_offset();
    E::updateTx([&] { big = E::alloc_bytes(300); });
    EXPECT_EQ(E::allocator().wilderness_offset(), wilderness_before)
        << "should reuse the coalesced block, not grow the wilderness";
    EXPECT_EQ(big, a);
    E::updateTx([&] { E::free_bytes(big); });
}

TEST_F(AllocTest, SplitLeavesUsableRemainder) {
    void* big = nullptr;
    E::updateTx([&] { big = E::alloc_bytes(1024); });
    E::updateTx([&] { E::free_bytes(big); });
    void *small1 = nullptr, *small2 = nullptr;
    E::updateTx([&] {
        small1 = E::alloc_bytes(100);  // splits the 1 KiB block
        small2 = E::alloc_bytes(100);  // fits in the remainder
    });
    EXPECT_EQ(small1, big);
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    E::updateTx([&] {
        E::free_bytes(small1);
        E::free_bytes(small2);
    });
}

TEST_F(AllocTest, ExhaustionThrowsBadAllocAndHeapSurvives) {
    E::begin_transaction();
    EXPECT_THROW(E::alloc_bytes(1u << 30), std::bad_alloc);  // 1 GiB > pool
    E::abort_transaction();
    EXPECT_GT(E::allocator().check_consistency(), 0u);
    // Normal allocation still works afterwards.
    E::updateTx([&] {
        void* p = E::alloc_bytes(64);
        E::free_bytes(p);
    });
}

TEST_F(AllocTest, StatsTrackLiveBytesAndCount) {
    const uint64_t count0 = E::allocator().alloc_count();
    const uint64_t bytes0 = E::allocator().allocated_bytes();
    void *a = nullptr, *b = nullptr;
    E::updateTx([&] {
        a = E::alloc_bytes(100);
        b = E::alloc_bytes(200);
    });
    EXPECT_EQ(E::allocator().alloc_count(), count0 + 2);
    EXPECT_GE(E::allocator().allocated_bytes(), bytes0 + 300);
    E::updateTx([&] {
        E::free_bytes(a);
        E::free_bytes(b);
    });
    EXPECT_EQ(E::allocator().alloc_count(), count0);
    EXPECT_EQ(E::allocator().allocated_bytes(), bytes0);
}

// Property test: random alloc/free streams leave a consistent heap, for a
// sweep of (seed, max allocation size) parameters.
class AllocStress
    : public ::testing::TestWithParam<std::tuple<unsigned, size_t>> {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        // The random alloc/free closures mutate the captured `live` vector,
        // so they are not restartable under the speculative fast path.
        update_config().fastpath = false;
        session_ = std::make_unique<test::EngineSession<E>>(64u << 20, "allocp");
    }
    void TearDown() override { session_.reset(); }
    test::UpdateConfigGuard update_guard_;
    std::unique_ptr<test::EngineSession<E>> session_;
};

TEST_P(AllocStress, RandomAllocFreeKeepsHeapConsistent) {
    auto [seed, max_size] = GetParam();
    std::mt19937_64 rng(seed);
    std::vector<std::pair<void*, uint8_t>> live;  // ptr + fill byte

    for (int step = 0; step < 400; ++step) {
        E::updateTx([&] {
            for (int op = 0; op < 10; ++op) {
                if (live.empty() || rng() % 3 != 0) {
                    const size_t sz = rng() % max_size + 1;
                    auto* p = static_cast<uint8_t*>(E::alloc_bytes(sz));
                    const uint8_t fill = uint8_t(rng());
                    E::store_range(p, std::vector<uint8_t>(sz, fill).data(), sz);
                    live.emplace_back(p, fill);
                } else {
                    const size_t idx = rng() % live.size();
                    E::free_bytes(live[idx].first);
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
        });
        if (step % 100 == 0) {
            ASSERT_GT(E::allocator().check_consistency(), 0u) << "step " << step;
        }
    }
    // No allocation may have scribbled over another: check a sample byte.
    for (auto [p, fill] : live)
        ASSERT_EQ(*static_cast<uint8_t*>(p), fill);
    ASSERT_GT(E::allocator().check_consistency(), 0u);
    E::updateTx([&] {
        for (auto [p, fill] : live) E::free_bytes(p);
    });
    ASSERT_GT(E::allocator().check_consistency(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocStress,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(size_t{64}, size_t{512},
                                         size_t{8192})),
    [](const auto& info) {
        return "seed" + std::to_string(std::get<0>(info.param)) + "_max" +
               std::to_string(std::get<1>(info.param));
    });
