// Behaviour specific to the two baseline PTMs: the undo log's ordering and
// overflow handling, and the redo-log STM's conflict detection, abort
// accounting, opacity, and commit-marker replay.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using baselines::RedoLogPTM;
using baselines::UndoLogPTM;
using romulus::test::EngineSession;

// ----------------------------------------------------------------- undo log

class UndoLogTest : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        // These tests document the undo log's *slow-path* cost model
        // (per-store entries and fences): pin the speculative fast path off
        // so small transactions don't commit through the stripe path.
        update_config().fastpath = false;
        session_ =
            std::make_unique<EngineSession<UndoLogPTM>>(32u << 20, "undospec");
    }
    void TearDown() override { session_.reset(); }
    romulus::test::UpdateConfigGuard update_guard_;
    std::unique_ptr<EngineSession<UndoLogPTM>> session_;
};

TEST_F(UndoLogTest, EveryTxStoreAppendsLogEntries) {
    using PU = UndoLogPTM::p<uint64_t>;
    PU* arr = nullptr;
    UndoLogPTM::updateTx(
        [&] { arr = static_cast<PU*>(UndoLogPTM::alloc_bytes(8 * 16)); });
    UndoLogPTM::updateTx([&] {
        for (int i = 0; i < 16; ++i) arr[i] = uint64_t(i);
        // 16 word stores -> at least 16 entries (plus none for reads).
        EXPECT_GE(UndoLogPTM::log_entries_in_tx(), 16u);
    });
}

TEST_F(UndoLogTest, FencesGrowLinearlyWithStores) {
    using PU = UndoLogPTM::p<uint64_t>;
    PU* arr = nullptr;
    UndoLogPTM::updateTx(
        [&] { arr = static_cast<PU*>(UndoLogPTM::alloc_bytes(8 * 256)); });
    auto fences_for = [&](int n) {
        pmem::reset_tl_stats();
        UndoLogPTM::updateTx([&] {
            for (int i = 0; i < n; ++i) arr[i] = uint64_t(i);
        });
        return pmem::tl_stats().fences();
    };
    const uint64_t f4 = fences_for(4);
    const uint64_t f64 = fences_for(64);
    EXPECT_GT(f64, f4 + 60);  // ~2 fences per store: the Table 1 cost model
}

TEST_F(UndoLogTest, RangedStoreLogsOldContentWordWise) {
    uint8_t* buf = nullptr;
    UndoLogPTM::updateTx(
        [&] { buf = static_cast<uint8_t*>(UndoLogPTM::alloc_bytes(64)); });
    std::vector<uint8_t> a(64, 0xAA), b(64, 0xBB);
    UndoLogPTM::updateTx([&] { UndoLogPTM::store_range(buf, a.data(), 64); });
    UndoLogPTM::begin_transaction();
    UndoLogPTM::store_range(buf, b.data(), 64);
    UndoLogPTM::abort_transaction();  // undo restores the 0xAA content
    for (int i = 0; i < 64; ++i) ASSERT_EQ(buf[i], 0xAA) << i;
}

// ----------------------------------------------------------------- redo log

class RedoLogTest : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ =
            std::make_unique<EngineSession<RedoLogPTM>>(48u << 20, "redospec");
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<RedoLogPTM>> session_;
};

TEST_F(RedoLogTest, StoresAreInvisibleUntilCommit) {
    using PU = RedoLogPTM::p<uint64_t>;
    PU* x = nullptr;
    RedoLogPTM::updateTx([&] {
        x = RedoLogPTM::tmNew<PU>();
        *x = 1u;
        RedoLogPTM::put_object(0, x);
    });
    std::atomic<bool> inside{false}, release{false};
    std::atomic<uint64_t> observed{~0ull};
    std::thread writer([&] {
        RedoLogPTM::updateTx([&] {
            *x = 2u;  // buffered in the write set
            if (!inside.exchange(true)) {
                // Hold the transaction open (pre-commit) while the main
                // thread reads.  Only on the first attempt.
                while (!release.load()) std::this_thread::yield();
            }
        });
    });
    while (!inside.load()) std::this_thread::yield();
    RedoLogPTM::readTx([&] { observed.store(x->pload()); });
    EXPECT_EQ(observed.load(), 1u)
        << "uncommitted redo-log stores must not be visible";
    release.store(true);
    writer.join();
    uint64_t after = 0;
    RedoLogPTM::readTx([&] { after = x->pload(); });
    EXPECT_EQ(after, 2u);
}

TEST_F(RedoLogTest, ConflictingWritersAbortAndRetry) {
    using PU = RedoLogPTM::p<uint64_t>;
    PU* x = nullptr;
    RedoLogPTM::updateTx([&] {
        x = RedoLogPTM::tmNew<PU>();
        *x = 0u;
        RedoLogPTM::put_object(0, x);
    });
    pmem::reset_tl_stats();
    std::atomic<uint64_t> total_aborts{0};
    constexpr int kThreads = 4, kIncs = 500;
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            pmem::reset_tl_stats();
            for (int j = 0; j < kIncs; ++j)
                RedoLogPTM::updateTx([&] { *x += 1u; });
            total_aborts.fetch_add(pmem::tl_stats().tx_aborts);
        });
    }
    for (auto& t : ts) t.join();
    uint64_t got = 0;
    RedoLogPTM::readTx([&] { got = x->pload(); });
    EXPECT_EQ(got, uint64_t(kThreads) * kIncs) << "lost update!";
    // On a contended counter the STM must have experienced aborts (this is
    // the Fig. 5 shared-counter effect).  On a single-core box preemption
    // makes conflicts rarer but over 2000 txs some occur.
    SUCCEED() << "aborts observed: " << total_aborts.load();
}

TEST_F(RedoLogTest, ReadValidationAbortsOnConcurrentCommit) {
    // A reader that loads x, then y after a writer committed to both, must
    // not observe the torn combination (opacity): x_old with y_new.
    using PU = RedoLogPTM::p<uint64_t>;
    PU* x = nullptr;
    PU* y = nullptr;
    RedoLogPTM::updateTx([&] {
        x = RedoLogPTM::tmNew<PU>();
        y = RedoLogPTM::tmNew<PU>();
        *x = 0u;
        *y = 0u;
    });
    std::atomic<bool> stop{false};
    std::atomic<bool> torn{false};
    std::thread reader([&] {
        while (!stop.load()) {
            uint64_t vx = 0, vy = 0;
            RedoLogPTM::readTx([&] {
                vx = x->pload();
                std::this_thread::yield();  // widen the race window
                vy = y->pload();
            });
            if (vx != vy) torn.store(true);
        }
    });
    for (int i = 1; i <= 3000; ++i) {
        RedoLogPTM::updateTx([&] {
            *x = uint64_t(i);
            *y = uint64_t(i);
        });
    }
    stop.store(true);
    reader.join();
    EXPECT_FALSE(torn.load()) << "opacity violation: snapshot was torn";
}

TEST_F(RedoLogTest, CommitMarkerReplayIsIdempotent) {
    // recover() on a clean heap (all markers zero) must be a no-op.
    using PU = RedoLogPTM::p<uint64_t>;
    PU* x = nullptr;
    RedoLogPTM::updateTx([&] {
        x = RedoLogPTM::tmNew<PU>();
        *x = 42u;
        RedoLogPTM::put_object(0, x);
    });
    RedoLogPTM::recover();
    RedoLogPTM::recover();
    uint64_t got = 0;
    RedoLogPTM::readTx([&] { got = x->pload(); });
    EXPECT_EQ(got, 42u);
}

TEST_F(RedoLogTest, OversizeTransactionIsRejectedCleanly) {
    uint8_t* buf = nullptr;
    RedoLogPTM::updateTx(
        [&] { buf = static_cast<uint8_t*>(RedoLogPTM::alloc_bytes(1 << 20)); });
    std::vector<uint8_t> big(1 << 20, 0x11);
    EXPECT_THROW(RedoLogPTM::updateTx([&] {
                     RedoLogPTM::store_range(buf, big.data(), big.size());
                 }),
                 std::runtime_error);
    // And the engine still works afterwards.
    RedoLogPTM::updateTx([&] {
        RedoLogPTM::store_range(buf, big.data(), 256);
    });
    EXPECT_EQ(buf[0], 0x11);
}
