// The five PTMs of the evaluation (3 Romulus variants + 2 baselines), as a
// gtest typed-test type list.
#pragma once

#include <gtest/gtest.h>

#include "baselines/redolog.hpp"
#include "baselines/undolog.hpp"
#include "core/romulus.hpp"

namespace romulus::test {

using AllPtms = ::testing::Types<RomulusNL, RomulusLog, RomulusLR,
                                 baselines::UndoLogPTM, baselines::RedoLogPTM>;

}  // namespace romulus::test
