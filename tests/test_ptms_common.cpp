// Behaviour every PTM must share (the public API contract): transactions,
// roots, allocation, persistence across close/reopen, concurrent counters.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "ptm_types.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;

template <typename P>
class PtmCommon : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        session_ = std::make_unique<EngineSession<P>>(16u << 20, P::name());
    }
    void TearDown() override { session_.reset(); }
    std::unique_ptr<EngineSession<P>> session_;
};

TYPED_TEST_SUITE(PtmCommon, romulus::test::AllPtms);

TYPED_TEST(PtmCommon, RootsStartNull) {
    using P = TypeParam;
    for (int i = 0; i < kMaxRootObjects; ++i)
        EXPECT_EQ(P::template get_object<void>(i), nullptr);
}

TYPED_TEST(PtmCommon, UpdateTxPublishesAndReadTxObserves) {
    using P = TypeParam;
    P::updateTx([&] {
        auto* v = P::template tmNew<typename P::template p<uint64_t>>();
        *v = 77u;
        P::put_object(3, v);
    });
    uint64_t got = 0;
    P::readTx([&] {
        auto* v = P::template get_object<typename P::template p<uint64_t>>(3);
        ASSERT_NE(v, nullptr);
        got = v->pload();
    });
    EXPECT_EQ(got, 77u);
}

TYPED_TEST(PtmCommon, DataSurvivesCloseAndReopen) {
    using P = TypeParam;
    P::updateTx([&] {
        auto* v = P::template tmNew<typename P::template p<uint64_t>>();
        *v = 0xABCDu;
        P::put_object(0, v);
    });
    std::string path = this->session_->path;
    P::close();
    P::init(16u << 20, path);
    uint64_t got = 0;
    P::readTx([&] {
        got = P::template get_object<typename P::template p<uint64_t>>(0)->pload();
    });
    EXPECT_EQ(got, 0xABCDu);
}

TYPED_TEST(PtmCommon, StoreRangeRoundTrips) {
    using P = TypeParam;
    constexpr size_t kN = 1000;
    std::vector<uint8_t> in(kN);
    for (size_t i = 0; i < kN; ++i) in[i] = uint8_t(i * 7 + 1);
    P::updateTx([&] {
        void* buf = P::alloc_bytes(kN);
        P::store_range(buf, in.data(), kN);
        P::put_object(1, buf);
    });
    std::vector<uint8_t> out(kN, 0);
    P::readTx([&] {
        auto* buf = P::template get_object<uint8_t>(1);
        std::memcpy(out.data(), buf, kN);
    });
    EXPECT_EQ(in, out);
}

TYPED_TEST(PtmCommon, NestedUpdateTxRunsFlat) {
    using P = TypeParam;
    P::updateTx([&] {
        auto* v = P::template tmNew<typename P::template p<uint64_t>>();
        *v = 1u;
        P::put_object(2, v);
        P::updateTx([&] { *v += 10u; });  // nested: same transaction
        P::readTx([&] { EXPECT_EQ(v->pload(), 11u); });
    });
    uint64_t got = 0;
    P::readTx([&] {
        got = P::template get_object<typename P::template p<uint64_t>>(2)->pload();
    });
    EXPECT_EQ(got, 11u);
}

TYPED_TEST(PtmCommon, FreedMemoryIsReusedNotLeaked) {
    using P = TypeParam;
    void* first = nullptr;
    P::updateTx([&] {
        first = P::alloc_bytes(256);
        P::free_bytes(first);
    });
    // Allocating the same size again should reuse the freed chunk (the
    // allocator is first-fit within the bin).
    void* second = nullptr;
    P::updateTx([&] {
        second = P::alloc_bytes(256);
        P::free_bytes(second);
    });
    EXPECT_EQ(first, second);
}

TYPED_TEST(PtmCommon, ConcurrentDisjointCountersSumCorrectly) {
    using P = TypeParam;
    constexpr int kThreads = 3, kIncs = 150;
    using PU = typename P::template p<uint64_t>;
    P::updateTx([&] {
        for (int i = 0; i < kThreads; ++i) {
            auto* c = P::template tmNew<PU>();
            *c = 0u;
            P::put_object(i, c);
        }
    });
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&, i] {
            for (int j = 0; j < kIncs; ++j)
                P::updateTx([&] {
                    *P::template get_object<PU>(i) += 1u;
                });
        });
    }
    for (auto& t : ts) t.join();
    for (int i = 0; i < kThreads; ++i) {
        uint64_t got = 0;
        P::readTx([&] { got = P::template get_object<PU>(i)->pload(); });
        EXPECT_EQ(got, uint64_t(kIncs)) << "counter " << i;
    }
}

TYPED_TEST(PtmCommon, ConcurrentSharedCounterIsLinearizable) {
    using P = TypeParam;
    constexpr int kThreads = 4, kIncs = 100;
    using PU = typename P::template p<uint64_t>;
    P::updateTx([&] {
        auto* c = P::template tmNew<PU>();
        *c = 0u;
        P::put_object(0, c);
    });
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            for (int j = 0; j < kIncs; ++j)
                P::updateTx([&] { *P::template get_object<PU>(0) += 1u; });
        });
    }
    for (auto& t : ts) t.join();
    uint64_t got = 0;
    P::readTx([&] { got = P::template get_object<PU>(0)->pload(); });
    EXPECT_EQ(got, uint64_t(kThreads) * kIncs);
}

TYPED_TEST(PtmCommon, ReadersRunWhileWriterCommits) {
    using P = TypeParam;
    using PU = typename P::template p<uint64_t>;
    P::updateTx([&] {
        auto* c = P::template tmNew<PU>();
        *c = 0u;
        P::put_object(0, c);
    });
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::thread reader([&] {
        while (!stop.load()) {
            uint64_t v = 0;
            P::readTx([&] { v = P::template get_object<PU>(0)->pload(); });
            EXPECT_LE(v, 1000000u);
            reads.fetch_add(1);
        }
    });
    // Write until the reader demonstrably made progress alongside us (with
    // a generous cap so a wedged implementation still fails, not hangs).
    uint64_t writes = 0;
    while ((writes < 500 || reads.load() < 10) && writes < 1000000) {
        P::updateTx([&] { *P::template get_object<PU>(0) += 1u; });
        ++writes;
        std::this_thread::yield();  // single-core machines: let readers in
    }
    stop.store(true);
    reader.join();
    EXPECT_GE(reads.load(), 10u);
    uint64_t got = 0;
    P::readTx([&] { got = P::template get_object<PU>(0)->pload(); });
    EXPECT_EQ(got, writes);
}
