// Stripe-locked speculative update fast path (DESIGN.md §4.11).
//
// Unit tests for the stripe table and the speculation buffer (including the
// no-throw doomed-continuation rules), per-engine fast-path behaviour with
// counter witnesses (commit, fallback, user-exception abort, footprint
// overflow, knob-off), the combiner's bounded batch-wait
// (CommitConfig::combine_wait_us), the shared env-knob parser, and
// every-fence crash sweeps of traces that commit through the fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/tx_trace.hpp"
#include "db/kvstore.hpp"
#include "ds/pqueue.hpp"
#include "fence_sweep.hpp"
#include "pmem/sim_persistence.hpp"
#include "pmem/stats.hpp"
#include "ptm_types.hpp"
#include "sync/stripe_lock.hpp"
#include "test_support.hpp"

using namespace romulus;
using romulus::test::EngineSession;
using romulus::test::ProfileGuard;
using romulus::test::UpdateConfigGuard;

// ------------------------------------------------------------ stripe table

TEST(StripeLockTable, TryAcquireIsExclusiveAndReleasePublishes) {
    sync::StripeLockTable t(64);
    sync::StripeLockTable::Word pre = ~0ull;
    ASSERT_TRUE(t.try_acquire(3, pre));
    EXPECT_EQ(pre, 0u);
    sync::StripeLockTable::Word pre2;
    EXPECT_FALSE(t.try_acquire(3, pre2));  // held: try-only, never blocks
    t.release(3, 5);
    const auto w = t.read(3);
    EXPECT_FALSE(sync::StripeLockTable::is_locked(w));
    EXPECT_EQ(sync::StripeLockTable::version_of(w), 5u);
}

TEST(StripeLockTable, ReleaseAbortedRestoresPreAcquireWord) {
    sync::StripeLockTable t(64);
    sync::StripeLockTable::Word pre;
    ASSERT_TRUE(t.try_acquire(9, pre));
    t.release(9, 7);  // version 7 published
    ASSERT_TRUE(t.try_acquire(9, pre));
    EXPECT_EQ(sync::StripeLockTable::version_of(pre), 7u);
    t.release_aborted(9, pre);  // nothing was published
    EXPECT_EQ(t.read(9), pre);
}

TEST(StripeLockTable, ClockAdvancesMonotonically) {
    sync::StripeLockTable t(64);
    EXPECT_EQ(t.clock_now(), 0u);
    EXPECT_EQ(t.clock_advance(), 1u);
    EXPECT_EQ(t.clock_advance(), 2u);
    EXPECT_EQ(t.clock_now(), 2u);
    t.reset_for_tests();
    EXPECT_EQ(t.clock_now(), 0u);
}

TEST(StripeLockTable, StripeOfLineStaysInTable) {
    sync::StripeLockTable t(8);
    for (size_t line = 0; line < 4096; ++line)
        EXPECT_LT(t.stripe_of_line(line), t.stripe_count());
}

// ------------------------------------------------------ speculation buffer

namespace {
alignas(64) uint8_t g_spec_heap[4096];
}

TEST(SpecBuffer, BuffersStoresAndReadsThemBack) {
    sync::StripeLockTable t(64);
    std::memset(g_spec_heap, 0, sizeof(g_spec_heap));
    sync::SpecBuffer b;
    b.begin(8, 64, t.clock_now());
    uint64_t v = 42;
    sync::spec_store(b, t, g_spec_heap, 128, &v, 8);
    uint64_t got = 0;
    sync::spec_load(b, t, g_spec_heap, 128, &got, 8);
    EXPECT_EQ(got, 42u);
    EXPECT_EQ(g_spec_heap[128], 0u);  // heap untouched until apply
    EXPECT_FALSE(b.aborted);
    EXPECT_EQ(b.nw, 1u);
}

TEST(SpecBuffer, FootprintOverflowDoomsButKeepsReadYourWrites) {
    sync::StripeLockTable t(64);
    std::memset(g_spec_heap, 0, sizeof(g_spec_heap));
    sync::SpecBuffer b;
    b.begin(/*max_lines=*/1, 64, t.clock_now());
    uint64_t v = 1;
    sync::spec_store(b, t, g_spec_heap, 0, &v, 8);
    EXPECT_FALSE(b.aborted);
    v = 2;
    sync::spec_store(b, t, g_spec_heap, 64, &v, 8);  // second line: overflow
    EXPECT_TRUE(b.aborted);
    // The doomed continuation still sees its own writes (and never throws).
    uint64_t got = 0;
    sync::spec_load(b, t, g_spec_heap, 64, &got, 8);
    EXPECT_EQ(got, 2u);
    sync::spec_load(b, t, g_spec_heap, 0, &got, 8);
    EXPECT_EQ(got, 1u);
}

TEST(SpecBuffer, NewerStripeVersionDoomsLoadButStillReadsRaw) {
    sync::StripeLockTable t(64);
    std::memset(g_spec_heap, 0, sizeof(g_spec_heap));
    g_spec_heap[256] = 0x5A;
    sync::SpecBuffer b;
    b.begin(8, 64, /*read_version=*/0);
    const unsigned st = t.stripe_of_line(256 / 64);
    sync::StripeLockTable::Word pre;
    ASSERT_TRUE(t.try_acquire(st, pre));
    t.release(st, 9);  // version 9 > rv 0: the speculation must not validate
    uint8_t got = 0;
    sync::spec_load(b, t, g_spec_heap, 256, &got, 1);
    EXPECT_TRUE(b.aborted);
    EXPECT_EQ(got, 0x5A);  // degraded to a raw (word-atomic) read
}

TEST(SpecBuffer, ScratchAllocReturnsAlignedDistinctBlocks) {
    sync::SpecBuffer b;
    b.begin(8, 64, 0);
    void* a = b.scratch_alloc(48);
    void* c = b.scratch_alloc(1);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(a, c);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
    std::memset(a, 0xAB, 48);  // writable
    b.begin(8, 64, 0);         // re-begin discards scratch
    EXPECT_TRUE(b.scratch.empty());
}

// ------------------------------------------------- engine fast-path typed

// The engines with the stripe fast path: the C-RW-WP Romulus variants plus
// the undo-log baseline.  RomulusLR keeps its Left-Right path and the
// redo-log baseline's native TL2 path plays the fast-path role there.
using FastPathPtms =
    ::testing::Types<RomulusNL, RomulusLog, baselines::UndoLogPTM>;

template <typename E>
class StripeFastPath : public ::testing::Test {
  protected:
    void SetUp() override {
        pmem::set_profile(pmem::Profile::NOP);
        update_config().fastpath = true;
        session_ = std::make_unique<EngineSession<E>>(
            32u << 20, std::string("stripefp_") + E::name());
    }
    void TearDown() override { session_.reset(); }

    using PU = typename E::template p<uint64_t>;

    /// A 64-slot array of line-strided counters (slot i at byte i*64), set
    /// up in an allocating (slow-path) transaction and published as root 2.
    PU* setup_counters() {
        PU* arr = nullptr;
        E::updateTx([&] {
            arr = static_cast<PU*>(E::alloc_bytes(64 * 64));
            for (int i = 0; i < 64; ++i) arr[i * 8] = 0u;
            E::put_object(2, arr);
        });
        return arr;
    }

    UpdateConfigGuard update_guard_;
    std::unique_ptr<EngineSession<E>> session_;
};

TYPED_TEST_SUITE(StripeFastPath, FastPathPtms);

TYPED_TEST(StripeFastPath, SmallDisjointUpdateCommitsThroughFastPath) {
    using E = TypeParam;
    auto* arr = this->setup_counters();
    const auto& cs = pmem::tl_commit_stats();
    const uint64_t commits0 = cs.fastpath_commits;
    for (int round = 0; round < 10; ++round) {
        E::updateTx([&] { arr[0] = arr[0].pload() + 1; });
    }
    EXPECT_GE(cs.fastpath_commits - commits0, 10u);
    uint64_t got = 0;
    E::readTx([&] { got = arr[0].pload(); });
    EXPECT_EQ(got, 10u);
}

TYPED_TEST(StripeFastPath, AllocatingTxFallsBackWithoutThrowing) {
    using E = TypeParam;
    const auto& cs = pmem::tl_commit_stats();
    const uint64_t fallbacks0 = cs.fastpath_fallbacks;
    using PU = typename E::template p<uint64_t>;
    PU* obj = nullptr;
    E::updateTx([&] {
        obj = static_cast<PU*>(E::alloc_bytes(8));
        *obj = 77u;
        E::put_object(3, obj);
    });
    EXPECT_GT(cs.fastpath_fallbacks, fallbacks0);
    uint64_t got = 0;
    E::readTx(
        [&] { got = E::template get_object<PU>(3)->pload(); });
    EXPECT_EQ(got, 77u);
}

// Regression for the std::terminate the throwing abort design hit: a
// data-structure destructor (implicitly noexcept) running inside an
// updateTx closure calls tmDelete -> free_bytes while the speculation is
// open.  The doomed continuation must absorb this without an exception and
// re-run the closure on the slow path.
TYPED_TEST(StripeFastPath, NoexceptDestructorFreeInsideTxFallsBack) {
    using E = TypeParam;
    using Q = ds::PQueue<E, uint64_t>;
    Q* q = nullptr;
    E::updateTx([&] { q = E::template tmNew<Q>(); });
    for (uint64_t i = 0; i < 8; ++i) q->enqueue(i);
    const auto& cs = pmem::tl_commit_stats();
    const uint64_t fallbacks0 = cs.fastpath_fallbacks;
    // ~PQueue ploads the chain and tmDeletes every node beneath a noexcept
    // frame; with the fast path armed this doomed the speculation.
    E::updateTx([&] { E::tmDelete(q); });
    EXPECT_GT(cs.fastpath_fallbacks, fallbacks0);
}

TYPED_TEST(StripeFastPath, UserExceptionAbortsWithNoStateChange) {
    using E = TypeParam;
    auto* arr = this->setup_counters();
    E::updateTx([&] { arr[0] = 5u; });
    const auto& cs = pmem::tl_commit_stats();
    const uint64_t aborts0 = cs.fastpath_aborts;
    struct Boom {};
    EXPECT_THROW(E::updateTx([&] {
        arr[0] = 99u;
        throw Boom{};
    }),
                 Boom);
    EXPECT_GT(cs.fastpath_aborts, aborts0);
    uint64_t got = 0;
    E::readTx([&] { got = arr[0].pload(); });
    EXPECT_EQ(got, 5u);  // failure atomicity: the buffered write was dropped
}

TYPED_TEST(StripeFastPath, FootprintOverflowFallsBackAndLandsEveryStore) {
    using E = TypeParam;
    auto* arr = this->setup_counters();
    update_config().max_fastpath_lines = 4;
    const auto& cs = pmem::tl_commit_stats();
    const uint64_t fallbacks0 = cs.fastpath_fallbacks;
    E::updateTx([&] {
        for (int i = 0; i < 16; ++i) arr[i * 8] = uint64_t(i) + 1;  // 16 lines
    });
    EXPECT_GT(cs.fastpath_fallbacks, fallbacks0);
    uint64_t sum = 0;
    E::readTx([&] {
        for (int i = 0; i < 16; ++i) sum += arr[i * 8].pload();
    });
    EXPECT_EQ(sum, 136u);  // 1 + 2 + ... + 16
}

TYPED_TEST(StripeFastPath, KnobOffForcesSlowPath) {
    using E = TypeParam;
    auto* arr = this->setup_counters();
    update_config().fastpath = false;
    const auto& cs = pmem::tl_commit_stats();
    const uint64_t commits0 = cs.fastpath_commits;
    const uint64_t fallbacks0 = cs.fastpath_fallbacks;
    for (int round = 0; round < 5; ++round) {
        E::updateTx([&] { arr[0] = arr[0].pload() + 1; });
    }
    EXPECT_EQ(cs.fastpath_commits, commits0);
    // A knob-off transaction is not an attempted speculation, so it must
    // not count as a fallback either.
    EXPECT_EQ(cs.fastpath_fallbacks, fallbacks0);
    uint64_t v = 0;
    E::readTx([&] { v = arr[0].pload(); });
    EXPECT_EQ(v, 5u);
}

TYPED_TEST(StripeFastPath, DisjointThreadsAllCommitSpeculatively) {
    using E = TypeParam;
    auto* arr = this->setup_counters();
    constexpr int kThreads = 4;
    constexpr uint64_t kRounds = 200;
    std::atomic<uint64_t> total_fp_commits{0};
    std::vector<std::thread> ts;
    for (int w = 0; w < kThreads; ++w) {
        ts.emplace_back([&, w] {
            const auto& cs = pmem::tl_commit_stats();
            const uint64_t c0 = cs.fastpath_commits;
            for (uint64_t r = 0; r < kRounds; ++r) {
                // Thread-private line: no stripe conflicts by construction
                // (64 slots hash to distinct stripes wide apart).
                E::updateTx(
                    [&] { arr[w * 8] = arr[w * 8].pload() + 1; });
            }
            total_fp_commits.fetch_add(cs.fastpath_commits - c0);
        });
    }
    for (auto& t : ts) t.join();
    uint64_t sum = 0;
    E::readTx([&] {
        for (int w = 0; w < kThreads; ++w) sum += arr[w * 8].pload();
    });
    EXPECT_EQ(sum, kThreads * kRounds);  // no lost updates
    // Disjoint lines can still collide on a stripe or race a committer's
    // lock window, so not every update commits speculatively — but the
    // overwhelming majority must.
    EXPECT_GT(total_fp_commits.load(), kThreads * kRounds / 2);
}

// --------------------------------------------------- combiner batch-wait

namespace {
struct CommitConfigGuard {
    pmem::CommitConfig saved = pmem::commit_config();
    ~CommitConfigGuard() { pmem::commit_config() = saved; }
};
}  // namespace

// Satellite of the fast-path PR (ROADMAP item 1): with combine_wait_us set,
// the combiner holds its MUT window open briefly so concurrent announcers
// join one durable batch instead of each paying their own fence pair.
TEST(CombineBatchWait, ConcurrentAnnouncersShareOneDurableBatch) {
    using E = RomulusNL;
    ProfileGuard profile(pmem::Profile::NOP);
    UpdateConfigGuard update_guard;
    // The fast path bypasses the flat combiner entirely; this test is about
    // the slow path's batching.
    update_config().fastpath = false;
    CommitConfigGuard commit_guard;
    pmem::commit_config().combine_wait_us = 3000;
    EngineSession<E> session(32u << 20, "combine_wait");

    using PU = E::p<uint64_t>;
    PU* arr = nullptr;
    E::updateTx([&] {
        arr = static_cast<PU*>(E::alloc_bytes(8 * 64));
        for (int i = 0; i < 64; ++i) arr[i] = 0u;
        E::put_object(2, arr);
    });

    constexpr int kThreads = 4;
    constexpr uint64_t kRounds = 100;
    // combine_hist is thread-local to whichever thread combined: aggregate
    // the multi-op buckets (>= 2 ops, buckets 1..7) across workers.
    std::atomic<uint64_t> multi_op_batches{0};
    std::vector<std::thread> ts;
    for (int w = 0; w < kThreads; ++w) {
        ts.emplace_back([&, w] {
            const auto& cs = pmem::tl_commit_stats();
            uint64_t before = 0;
            for (int b = 1; b < 8; ++b) before += cs.combine_hist[b];
            for (uint64_t r = 0; r < kRounds; ++r) {
                E::updateTx([&] { arr[w] = arr[w].pload() + 1; });
            }
            uint64_t after = 0;
            for (int b = 1; b < 8; ++b) after += cs.combine_hist[b];
            multi_op_batches.fetch_add(after - before);
        });
    }
    for (auto& t : ts) t.join();

    uint64_t sum = 0;
    E::readTx([&] {
        for (int w = 0; w < kThreads; ++w) sum += arr[w].pload();
    });
    EXPECT_EQ(sum, kThreads * kRounds);
    // The wait window must have batched at least one pair of announcers.
    EXPECT_GT(multi_op_batches.load(), 0u);
}

// ------------------------------------------------------- env knob parsing

TEST(EnvTuning, SharedParserRejectsMalformedValues) {
    long v = 123;
    EXPECT_FALSE(parse_env_long(nullptr, 0, &v));
    EXPECT_FALSE(parse_env_long("", 0, &v));
    EXPECT_FALSE(parse_env_long("abc", 0, &v));     // atol would yield 0
    EXPECT_FALSE(parse_env_long("12x", 0, &v));     // trailing garbage
    EXPECT_FALSE(parse_env_long("1.5", 0, &v));     // not an integer
    EXPECT_FALSE(parse_env_long("9999999999999999999999", 0, &v));  // ERANGE
    EXPECT_FALSE(parse_env_long("-3", 0, &v));      // below the floor
    EXPECT_EQ(v, 123);                              // *out untouched
    EXPECT_TRUE(parse_env_long("42", 1, &v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parse_env_long(" 7 ", 0, &v));      // blanks tolerated
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(parse_env_long("0", 0, &v));
    EXPECT_EQ(v, 0);
}

TEST(EnvTuning, MalformedFastPathKnobsLeaveDefaults) {
    UpdateConfigGuard guard;
    const UpdateConfig before = update_config();
    ::setenv("ROMULUS_UPDATE_FASTPATH", "banana", 1);
    ::setenv("ROMULUS_UPDATE_MAX_LINES", "8x", 1);
    ::setenv("ROMULUS_UPDATE_STRIPES", "0", 1);  // below the >= 1 floor
    const std::string applied = apply_env_tuning();
    ::unsetenv("ROMULUS_UPDATE_FASTPATH");
    ::unsetenv("ROMULUS_UPDATE_MAX_LINES");
    ::unsetenv("ROMULUS_UPDATE_STRIPES");
    EXPECT_EQ(update_config().fastpath, before.fastpath);
    EXPECT_EQ(update_config().max_fastpath_lines, before.max_fastpath_lines);
    EXPECT_EQ(update_config().stripes, before.stripes);
    EXPECT_EQ(applied.find("ROMULUS_UPDATE_"), std::string::npos) << applied;
}

TEST(EnvTuning, WellFormedFastPathKnobsApply) {
    UpdateConfigGuard guard;
    ::setenv("ROMULUS_UPDATE_FASTPATH", "0", 1);
    ::setenv("ROMULUS_UPDATE_MAX_LINES", "16", 1);
    ::setenv("ROMULUS_UPDATE_STRIPES", "2048", 1);
    const std::string applied = apply_env_tuning();
    ::unsetenv("ROMULUS_UPDATE_FASTPATH");
    ::unsetenv("ROMULUS_UPDATE_MAX_LINES");
    ::unsetenv("ROMULUS_UPDATE_STRIPES");
    EXPECT_FALSE(update_config().fastpath);
    EXPECT_EQ(update_config().max_fastpath_lines, 16u);
    EXPECT_EQ(update_config().stripes, 2048u);
    EXPECT_NE(applied.find("ROMULUS_UPDATE_FASTPATH=0"), std::string::npos)
        << applied;
}

// -------------------------------------------------- fast-path crash sweeps

/// A trace whose updates mostly overwrite a tiny hot key set with same-size
/// (0/1-byte) values: the KV store reuses the value buffer in place, so the
/// transaction neither allocates nor overflows and commits through the
/// stripe fast path.  New-key puts and buffer reallocations keep a healthy
/// share of slow-path commits in the same history, so the sweep crosses
/// both commit protocols and their interleavings.
template <typename E>
analysis::TxTrace fastpath_trace() {
    analysis::GenConfig g;
    g.setup_ops = 0;  // every sub-tx is part of the prefix-checked history
    g.episode_ops = 14;
    g.key_space = 4;
    g.value_max = 1;
    g.put_pct = 85;
    g.del_pct = 0;
    g.get_pct = 15;  // remainder 0: no cross-shard batches
    g.skew_draws = 1;
    return analysis::generate_trace(
        g, /*seed=*/20260808, /*shard_count=*/1,
        analysis::engine_id_of<E>(),
        [](std::string_view) { return 0u; });
}

template <typename E>
class StripeFastPathCrash : public ::testing::Test {
  protected:
    void SetUp() override { pmem::set_profile(pmem::Profile::NOP); }
    void TearDown() override { pmem::set_sim_hooks(nullptr); }
};

TYPED_TEST_SUITE(StripeFastPathCrash, FastPathPtms);

TYPED_TEST(StripeFastPathCrash, EveryFenceCrashRecoversWithFastPathArmed) {
    using E = TypeParam;
    const std::string path =
        test::heap_path(std::string("fp_crash_") + E::name());
    pmem::SimPersistence::Options opts{pmem::FlushContent::AtFence, 0.0, 7};
    test::run_trace_fence_sweep_fastpath<E>(fastpath_trace<E>(), path, opts);
}
