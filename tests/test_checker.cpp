// PersistencyChecker (src/pmem/checker.hpp): the shadow-state machine that
// turns flush/fence/logging discipline bugs into immediate test failures.
//
// Two kinds of test here:
//   * clean-path: every PTM's real transaction machinery runs under the
//     checker with zero hard violations (and the paper's Table 1 fence
//     count is asserted for the Romulus engines);
//   * buggy-fixture: each violation class is provoked deliberately —
//     an unlogged store, a store that is never written back before commit,
//     a store racing a pending pwb under FlushContent::AtPwb — and the test
//     asserts the checker reports exactly that class, while the equivalent
//     correct sequence stays clean.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/engine_globals.hpp"
#include "pmem/checker.hpp"
#include "pmem/sim_persistence.hpp"
#include "ptm_types.hpp"
#include "test_support.hpp"

namespace romulus::test {
namespace {

using pmem::FlushContent;
using pmem::PersistencyChecker;
using Kind = PersistencyChecker::ViolationKind;

constexpr size_t kHeapBytes = 16u << 20;

/// Does this engine promise that every in-transaction store to main is
/// covered by a log-entry notification?  (RomulusNL flushes each store
/// directly instead of logging.)
template <typename E>
constexpr bool engine_logs_stores() {
    return !std::is_same_v<E, RomulusNL>;
}

/// RAII: install a SimHooks observer, restore the previous one on exit.
struct HooksGuard {
    explicit HooksGuard(pmem::SimHooks* h) : saved(pmem::sim_hooks()) {
        pmem::set_sim_hooks(h);
    }
    ~HooksGuard() { pmem::set_sim_hooks(saved); }
    pmem::SimHooks* saved;
};

bool has_kind(const PersistencyChecker& c, Kind k) {
    for (const auto& v : c.violations())
        if (v.kind == k) return true;
    return false;
}

// ---------------------------------------------------------------------------
// Clean path: all five PTMs run real workloads violation-free.
// ---------------------------------------------------------------------------

template <typename E>
class CheckerCleanTyped : public ::testing::Test {};
TYPED_TEST_SUITE(CheckerCleanTyped, AllPtms);

TYPED_TEST(CheckerCleanTyped, RealTransactionsProduceNoViolations) {
    using E = TypeParam;
    using PU = typename E::template p<uint64_t>;
    struct Rec {
        PU a, b, c;
    };
    EngineSession<E> session(kHeapBytes, "checker_clean");

    PersistencyChecker::Options opts;
    opts.require_log = engine_logs_stores<E>();
    PersistencyChecker checker(PersistencyChecker::template layout_of<E>(),
                               opts);
    const auto before = tx_lifecycle_counters();
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            auto* r = E::template tmNew<Rec>();
            r->a = 1u;
            r->b = 2u;
            r->c = 3u;
            E::put_object(0, r);
        });
        for (uint64_t i = 0; i < 20; ++i) {
            E::updateTx([&] {
                auto* r = E::template get_object<Rec>(0);
                r->a = r->a.pload() + i;
                r->b = r->b.pload() * 3u;
            });
            uint64_t got = 0;
            E::readTx([&] {
                auto* r = E::template get_object<Rec>(0);
                got = r->a.pload();
            });
            (void)got;
        }
        E::updateTx([&] {
            auto* r = E::template get_object<Rec>(0);
            E::template tmDelete<Rec>(r);
            E::put_object(0, nullptr);
        });
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
    const auto d = checker.diagnostics();
    EXPECT_EQ(d.tx_begins, 22u);
    EXPECT_EQ(d.tx_commits, 22u);
    EXPECT_EQ(d.tx_aborts, 0u);
    // The process-wide counters moved by exactly the same amount.
    const auto after = tx_lifecycle_counters();
    EXPECT_EQ(after.begins - before.begins, 22u);
    EXPECT_EQ(after.commits - before.commits, 22u);
}

TYPED_TEST(CheckerCleanTyped, AbortedTransactionsStayClean) {
    using E = TypeParam;
    using PU = typename E::template p<uint64_t>;
    EngineSession<E> session(kHeapBytes, "checker_abort");

    PersistencyChecker::Options opts;
    opts.require_log = engine_logs_stores<E>();
    PersistencyChecker checker(PersistencyChecker::template layout_of<E>(),
                               opts);
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            auto* v = E::template tmNew<PU>();
            *v = 7u;  // romlint would flag this; operator* on persist<> is
                      // pstore-interposed via operator=(T) here (p<> member)
            E::put_object(1, v);
        });
        struct Boom {};
        try {
            E::updateTx([&] {
                auto* v = E::template get_object<PU>(1);
                *v = 99u;
                throw Boom{};
            });
        } catch (const Boom&) {
        }
        uint64_t got = 0;
        E::readTx([&] { got = E::template get_object<PU>(1)->pload(); });
        EXPECT_EQ(got, 7u);  // failure atomicity
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.diagnostics().tx_aborts, 1u);
}

// Table 1: a Romulus transaction costs a constant 4 persistence fences,
// independent of how many stores it performs.
template <typename E>
class RomulusFenceCount : public ::testing::Test {};
using RomulusVariants = ::testing::Types<RomulusNL, RomulusLog, RomulusLR>;
TYPED_TEST_SUITE(RomulusFenceCount, RomulusVariants);

TYPED_TEST(RomulusFenceCount, SimpleTransactionUsesExactlyFourFences) {
    using E = TypeParam;
    using PU = typename E::template p<uint64_t>;
    EngineSession<E> session(kHeapBytes, "checker_fences");

    PersistencyChecker checker(PersistencyChecker::template layout_of<E>());
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            auto* v = E::template tmNew<PU>();
            *v = 1u;
            E::put_object(0, v);
        });
        for (int n : {1, 8, 64}) {
            E::updateTx([&] {
                auto* v = E::template get_object<PU>(0);
                for (int i = 0; i < n; ++i) *v = uint64_t(i);
            });
            EXPECT_EQ(checker.diagnostics().fences_in_last_tx, 4u)
                << "store count " << n;
        }
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
}

// The checker composes: events keep flowing to a chained observer
// (SimPersistence) through Options::next.
TEST(CheckerChain, ForwardsEventsToNextObserver) {
    using E = RomulusLog;
    using PU = typename E::template p<uint64_t>;
    EngineSession<E> session(kHeapBytes, "checker_chain");

    pmem::SimPersistence sim(E::region().base(), E::region().size());
    PersistencyChecker::Options opts;
    opts.require_log = true;
    opts.next = &sim;
    PersistencyChecker checker(PersistencyChecker::template layout_of<E>(),
                               opts);
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            auto* v = E::template tmNew<PU>();
            *v = 5u;
            E::put_object(0, v);
        });
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_GT(sim.fence_count(), 0u);  // the chained model saw the fences
}

// ---------------------------------------------------------------------------
// Buggy fixtures: each hard violation class is provoked and caught.
// ---------------------------------------------------------------------------

// A store to main inside a mutating transaction that bypasses the range log
// (flushed correctly, so the *only* defect is the missing log coverage): the
// commit copy skips the line, so a crash right after commit loses it.
TEST(CheckerViolation, UnloggedStoreInsideTransaction) {
    using E = RomulusLog;
    // This test bypasses the engine's interposition with raw stores to seed
    // the violation; that only makes sense on the pessimistic slow path
    // (a speculation would buffer nothing and commit as a no-op).
    romulus::test::UpdateConfigGuard update_guard;
    update_config().fastpath = false;
    EngineSession<E> session(kHeapBytes, "checker_unlogged");
    struct Wide {
        unsigned char bytes[256];
    };

    PersistencyChecker::Options opts;
    opts.require_log = true;
    PersistencyChecker checker(PersistencyChecker::template layout_of<E>(),
                               opts);
    Wide* w = nullptr;
    E::updateTx([&] {
        w = E::template tmNew<Wide>();
        E::put_object(0, w);
    });
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            // Aligned well inside the object: no other store shares the line.
            unsigned char* raw = w->bytes + 128;
            raw[0] = 0xAB;                // the bypass: a direct store ...
            pmem::on_store(raw, 1);       // ... the wrappers would interpose
            pmem::pwb_range(raw, 1);      // flushed, but never range-logged
        });
    }
    EXPECT_FALSE(checker.clean());
    EXPECT_TRUE(has_kind(checker, Kind::UnloggedStore)) << checker.report();

    // Correct path: same store through the engine's interposition is clean.
    checker.clear();
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            unsigned char b = 0xCD;
            E::store_range(w->bytes + 128, &b, 1);
        });
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
}

// A store that is never written back: the line is still volatile when the
// engine advertises the commit (dirty at CPY transition, dirty at commit).
TEST(CheckerViolation, MissingPwbBeforeCommit) {
    using E = RomulusNL;  // NL: no log discipline, flush-per-store
    // Raw-store bypass scenario: slow path only (see above).
    romulus::test::UpdateConfigGuard update_guard;
    update_config().fastpath = false;
    EngineSession<E> session(kHeapBytes, "checker_nopwb");
    struct Wide {
        unsigned char bytes[256];
    };

    PersistencyChecker checker(PersistencyChecker::template layout_of<E>());
    Wide* w = nullptr;
    E::updateTx([&] {
        w = E::template tmNew<Wide>();
        E::put_object(0, w);
    });
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            unsigned char* raw = w->bytes + 128;
            raw[0] = 0xAB;           // stored ...
            pmem::on_store(raw, 1);  // ... but never pwb'd: stays Dirty
        });
    }
    EXPECT_FALSE(checker.clean());
    EXPECT_TRUE(has_kind(checker, Kind::DirtyAtTransition))
        << checker.report();
    EXPECT_TRUE(has_kind(checker, Kind::DirtyAtCommit)) << checker.report();

    // Correct path: store + pwb (what pstore does) is clean.
    checker.clear();
    {
        HooksGuard guard(&checker);
        E::updateTx([&] {
            unsigned char b = 0xCD;
            E::store_range(w->bytes + 128, &b, 1);
        });
    }
    EXPECT_TRUE(checker.clean()) << checker.report();
}

// ---------------------------------------------------------------------------
// Direct-drive fixtures: the AtPwb race and the soft diagnostics, exercised
// on a synthetic region without an engine.
// ---------------------------------------------------------------------------

struct DirectChecker {
    static constexpr size_t kSize = 4096;
    alignas(64) unsigned char buf[kSize] = {};

    PersistencyChecker::Layout layout() const {
        PersistencyChecker::Layout l;
        l.base = buf;
        l.size = kSize;
        l.main = buf;
        l.main_size = kSize;
        l.back = nullptr;
        return l;
    }
};

// Under AtPwb hardware the write-back captures the line content when the pwb
// executes: a store after the pwb is NOT covered by the following fence.
TEST(CheckerViolation, StoreRacingPendingPwbUnderAtPwb) {
    DirectChecker d;
    PersistencyChecker::Options opts;
    opts.content = FlushContent::AtPwb;
    PersistencyChecker checker(d.layout(), opts);

    checker.on_store(d.buf, 8);
    checker.on_pwb(d.buf);
    checker.on_store(d.buf, 8);  // racing store: pwb already captured
    checker.on_fence();          // fence persists the stale capture
    EXPECT_FALSE(checker.clean());
    EXPECT_TRUE(has_kind(checker, Kind::StoreAfterPwb)) << checker.report();

    // Correct path — the note_used pattern: every store is re-flushed before
    // the fence, so the final capture is current.  Must stay clean.
    PersistencyChecker ok(d.layout(), opts);
    ok.on_store(d.buf, 8);
    ok.on_pwb(d.buf);
    ok.on_store(d.buf, 8);
    ok.on_pwb(d.buf);  // re-capture
    ok.on_fence();
    EXPECT_TRUE(ok.clean()) << ok.report();
}

// The same racing sequence is legal under AtFence semantics (content is read
// when the fence runs): the checker must not cry wolf.
TEST(CheckerViolation, StoreRacingPendingPwbLegalUnderAtFence) {
    DirectChecker d;
    PersistencyChecker checker(d.layout(), PersistencyChecker::Options{});
    checker.on_store(d.buf, 8);
    checker.on_pwb(d.buf);
    checker.on_store(d.buf, 8);
    checker.on_fence();
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST(CheckerDiagnostics, RedundantPwbAndEmptyFenceAreCounted) {
    DirectChecker d;
    PersistencyChecker checker(d.layout(), PersistencyChecker::Options{});

    checker.on_pwb(d.buf);  // line is Clean: wasted write-back
    EXPECT_EQ(checker.diagnostics().redundant_pwb, 1u);
    checker.on_fence();  // drains the (redundant) pending write-back
    EXPECT_EQ(checker.diagnostics().empty_fence, 0u);
    checker.on_fence();  // nothing pending at all now
    EXPECT_EQ(checker.diagnostics().empty_fence, 1u);

    checker.on_store(d.buf + 64, 8);
    checker.on_pwb(d.buf + 64);
    EXPECT_EQ(checker.diagnostics().redundant_pwb, 1u);  // not redundant
    checker.on_fence();
    EXPECT_EQ(checker.diagnostics().empty_fence, 1u);
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.dirty_line_count(), 0u);
    EXPECT_EQ(checker.pending_line_count(), 0u);
}

// A pwb with no fence before the state transition: the write-back may still
// reorder past the state store (the missing-pfence bug of Algorithm 1).
TEST(CheckerViolation, PendingWriteBackAtStateTransition) {
    DirectChecker d;
    PersistencyChecker checker(d.layout(), PersistencyChecker::Options{});
    checker.on_store(d.buf, 8);
    checker.on_pwb(d.buf);
    checker.on_state_transition(2);  // CPY advertised without a fence
    EXPECT_FALSE(checker.clean());
    EXPECT_TRUE(has_kind(checker, Kind::PendingAtTransition))
        << checker.report();

    PersistencyChecker ok(d.layout(), PersistencyChecker::Options{});
    ok.on_store(d.buf, 8);
    ok.on_pwb(d.buf);
    ok.on_fence();
    ok.on_state_transition(2);
    EXPECT_TRUE(ok.clean()) << ok.report();
}

TEST(CheckerReport, RecordsViolationDetailAndRespectsCap) {
    DirectChecker d;
    PersistencyChecker::Options opts;
    opts.max_recorded = 2;
    PersistencyChecker checker(d.layout(), opts);
    for (int i = 0; i < 8; ++i) {
        checker.on_store(d.buf + size_t(i) * 64, 8);
    }
    checker.on_state_transition(2);
    EXPECT_EQ(checker.violation_count(), 8u);
    EXPECT_EQ(checker.violations().size(), 2u);  // capped
    const std::string rep = checker.report();
    EXPECT_NE(rep.find("dirty-at-transition"), std::string::npos);
}

}  // namespace
}  // namespace romulus::test
