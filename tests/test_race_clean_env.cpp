// Global test environment (compiled only under -DROMULUS_RACECHECK) that
// arms the romrace detector for an entire gtest invocation when
// ROMULUS_RACECHECK_ENABLE is set in the environment.  The race_clean_stress
// ctest case (tests/CMakeLists.txt) uses this to run the full concurrent
// stress suite with the detector live and fail if it reports anything: the
// annotations' happens-before model must have zero false positives on the
// real engine workloads.
//
// Without the environment variable this file is inert, so the regular
// per-suite ctest runs of a ROMULUS_RACECHECK build are unaffected.

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/race_detector.hpp"

namespace {

class RaceCheckCleanEnv : public ::testing::Environment {
  public:
    void SetUp() override {
        if (std::getenv("ROMULUS_RACECHECK_ENABLE") == nullptr) return;
        armed_ = true;
        auto& d = romulus::analysis::RaceDetector::instance();
        d.reset();
        d.enable();
    }

    void TearDown() override {
        if (!armed_) return;
        auto& d = romulus::analysis::RaceDetector::instance();
        if (d.race_count() > 0) {
            ADD_FAILURE() << "romrace detected " << d.race_count()
                          << " race(s) in the clean suite:\n"
                          << d.report_text();
        }
        d.disable();
        d.reset();
    }

  private:
    bool armed_ = false;
};

[[maybe_unused]] const auto* const g_race_env =
    ::testing::AddGlobalTestEnvironment(new RaceCheckCleanEnv);

}  // namespace
