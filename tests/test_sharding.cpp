// Intra-heap sharding (ISSUE 5): per-shard twin halves, roots, allocator
// pools and concurrency kits.  Covers shard-zone isolation, the shard-id
// API, deterministic writer parallelism across shards, reopen adoption of
// the stored shard count, the per-shard crash-recovery matrix (one shard
// crashes in CPY while another is mid-transaction), the cross-shard
// WriteBatch atomicity boundary, checker cleanliness of sharded workloads,
// and the RomulusDB lifecycle (double-open, engine ownership).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/romulus.hpp"
#include "db/romulusdb.hpp"
#include "db/sharded_kvstore.hpp"
#include "pmem/checker.hpp"
#include "pmem/sim_persistence.hpp"
#include "test_support.hpp"

using namespace romulus;

namespace {

using E = RomulusLog;
using PU = E::p<uint64_t>;

/// Fresh sharded heap for the duration of a test.
struct ShardedSession {
    ShardedSession(size_t bytes, const std::string& tag, unsigned shards)
        : path(test::heap_path(tag)) {
        std::remove(path.c_str());
        E::init(bytes, path, shards);
    }
    ~ShardedSession() {
        if (E::initialized()) E::destroy();
        std::remove(path.c_str());
    }
    std::string path;
};

/// One committed tx on `sd` that roots a counter cell at slot 0.
PU* make_cell(unsigned sd, uint64_t v) {
    PU* cell = nullptr;
    E::updateTx(sd, [&] {
        cell = E::tmNew<PU>();
        *cell = v;
        E::put_object(0, cell, sd);
    });
    return cell;
}

TEST(Sharding, ShardZonesAndRootsAreIsolated) {
    pmem::set_profile(pmem::Profile::NOP);
    ShardedSession s(32u << 20, "shard_basic", 4);
    ASSERT_EQ(E::shard_count(), 4u);

    // Each shard gets its own cell at root slot 0; the values stay disjoint.
    for (unsigned sd = 0; sd < 4; ++sd) make_cell(sd, 100 + sd);
    for (unsigned sd = 0; sd < 4; ++sd) {
        auto* cell = E::get_object<PU>(0, sd);
        ASSERT_NE(cell, nullptr);
        EXPECT_EQ(cell->pload(), 100 + sd);
        // The object must live inside its own shard's main zone...
        auto* u = reinterpret_cast<uint8_t*>(cell);
        EXPECT_GE(u, E::main_base(sd));
        EXPECT_LT(u, E::main_base(sd) + E::main_size());
        // ...and outside every other shard's.
        for (unsigned other = 0; other < 4; ++other) {
            if (other == sd) continue;
            EXPECT_FALSE(u >= E::main_base(other) &&
                         u < E::main_base(other) + E::main_size());
        }
    }

    // Per-shard twin consistency and independent used_size accounting.
    for (unsigned sd = 0; sd < 4; ++sd) {
        EXPECT_EQ(E::state(sd), IDL);
        EXPECT_GT(E::used_bytes(sd), 0u);
        EXPECT_EQ(std::memcmp(E::main_base(sd), E::back_base(sd),
                              E::used_bytes(sd)),
                  0);
        EXPECT_GT(E::allocator(sd).check_consistency(), 0u);
    }
}

TEST(Sharding, ReopenAdoptsStoredShardCount) {
    pmem::set_profile(pmem::Profile::NOP);
    ShardedSession s(32u << 20, "shard_reopen", 4);
    for (unsigned sd = 0; sd < 4; ++sd) make_cell(sd, 7000 + sd);
    E::close();

    // Reopen with a *different* requested count: a valid heap keeps its
    // stored geometry (anything else would misplace every zone).
    E::init(32u << 20, s.path, 16);
    ASSERT_EQ(E::shard_count(), 4u);
    for (unsigned sd = 0; sd < 4; ++sd) {
        auto* cell = E::get_object<PU>(0, sd);
        ASSERT_NE(cell, nullptr);
        EXPECT_EQ(cell->pload(), 7000 + sd);
    }
}

TEST(Sharding, DefaultApiStaysOnShardZero) {
    pmem::set_profile(pmem::Profile::NOP);
    ShardedSession s(32u << 20, "shard_default", 4);
    // The unsharded API (no shard id anywhere) must behave exactly as the
    // single-shard engine: everything lands on shard 0.
    PU* cell = nullptr;
    E::updateTx([&] {
        cell = E::tmNew<PU>();
        *cell = 42;
        E::put_object(1, cell);
    });
    EXPECT_EQ(E::get_object<PU>(1), E::get_object<PU>(1, 0));
    EXPECT_EQ(E::get_object<PU>(1, 1), nullptr);
    uint64_t got = 0;
    E::readTx([&] { got = cell->pload(); });
    EXPECT_EQ(got, 42u);
}

// Deterministic writer-parallelism witness: one updateTx per shard, each
// holding its critical section until all S are inside simultaneously.  With
// a shared writer lock this rendezvous can never complete; with per-shard
// locks it completes immediately.  (Each thread is its own shard's only
// announcer, so flat combining cannot migrate the ops onto one thread.)
TEST(Sharding, WritersOnDistinctShardsHoldCriticalSectionsConcurrently) {
    pmem::set_profile(pmem::Profile::NOP);
    constexpr unsigned S = 4;
    ShardedSession s(32u << 20, "shard_rendezvous", S);
    std::atomic<unsigned> inside{0};
    std::atomic<bool> ok{true};
    std::vector<std::thread> ts;
    for (unsigned sd = 0; sd < S; ++sd) {
        ts.emplace_back([&, sd] {
            E::updateTx(sd, [&] {
                inside.fetch_add(1);
                const auto deadline = std::chrono::steady_clock::now() +
                                      std::chrono::seconds(30);
                while (inside.load() < S) {
                    if (std::chrono::steady_clock::now() > deadline) {
                        ok.store(false);
                        break;
                    }
                    std::this_thread::yield();
                }
            });
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_TRUE(ok.load()) << "writers on distinct shards failed to overlap: "
                           << "shard locks are not independent";
    EXPECT_EQ(inside.load(), S);
}

// Multi-thread per-shard counter stress; name matches ConcStress* so the
// armed race-checker ctest leg (race_clean_stress) covers the sharded
// lock/publication protocol too.
TEST(ConcStressSharding, PerShardCountersStayExact) {
    pmem::set_profile(pmem::Profile::NOP);
    constexpr unsigned S = 4;
    constexpr int kThreads = 8, kOps = 300;
    ShardedSession s(32u << 20, "shard_stress", S);
    for (unsigned sd = 0; sd < S; ++sd) make_cell(sd, 0);

    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            uint64_t x = 0x9E3779B97F4A7C15ull * (t + 1);
            for (int i = 0; i < kOps; ++i) {
                x ^= x << 13, x ^= x >> 7, x ^= x << 17;
                const unsigned sd = x % S;
                E::updateTx(sd, [&] {
                    auto* cell = E::get_object<PU>(0, sd);
                    *cell = cell->pload() + 1;
                });
                if (i % 16 == 0) {
                    E::readTx(sd, [&] {
                        (void)E::get_object<PU>(0, sd)->pload();
                    });
                }
            }
        });
    }
    for (auto& t : ts) t.join();

    uint64_t total = 0;
    for (unsigned sd = 0; sd < S; ++sd) {
        // Assign, don't accumulate: optimistic readTx may re-run the closure.
        uint64_t part = 0;
        E::readTx(sd, [&] { part = E::get_object<PU>(0, sd)->pload(); });
        total += part;
        EXPECT_EQ(std::memcmp(E::main_base(sd), E::back_base(sd),
                              E::used_bytes(sd)),
                  0);
    }
    EXPECT_EQ(total, uint64_t(kThreads) * kOps);
}

// ---------------------------------------------------------------------------
// Per-shard crash-recovery matrix: crash the process while shard 0 commits
// (sweeping every fence, so its state word is caught in IDL, MUT and CPY)
// while shard 1 sits mid-transaction (MUT) the whole time.  Recovery must
// roll each shard independently: shard 0 to the committed prefix (or the
// in-flight tx, all-or-nothing), shard 1 back to its pre-tx state.
// ---------------------------------------------------------------------------

struct CrashPoint {};

class CrashingSim final : public pmem::SimHooks {
  public:
    CrashingSim(uint8_t* base, size_t size, pmem::SimPersistence::Options opts)
        : inner_(base, size, opts) {}

    uint64_t crash_at = UINT64_MAX;

    void on_store(const void* a, size_t n) override { inner_.on_store(a, n); }
    void on_pwb(const void* a) override { inner_.on_pwb(a); }
    void on_fence() override {
        inner_.on_fence();
        if (inner_.fence_count() >= crash_at) throw CrashPoint{};
    }

    pmem::SimPersistence& model() { return inner_; }

  private:
    pmem::SimPersistence inner_;
};

thread_local int committed_a_ = 0;

/// The shard-0 side of the matrix: kTxs counter increments, each a full
/// durable transaction.  Runs on a worker thread so the main thread can hold
/// shard 1's transaction open across the crash.
constexpr int kMatrixTxs = 6;
void run_shard0_txs() {
    committed_a_ = 0;
    for (int j = 0; j < kMatrixTxs; ++j) {
        E::begin_transaction(0);
        auto* cell = E::get_object<PU>(0, 0);
        *cell = cell->pload() + 1;
        E::end_transaction();
        committed_a_ = j + 1;
    }
}

TEST(ShardingCrash, PerShardRecoveryMatrix) {
    pmem::set_profile(pmem::Profile::NOP);
    const std::string path = test::heap_path("shard_crash_matrix");
    const size_t bytes = 32u << 20;
    const pmem::SimPersistence::Options opts{
        pmem::SimPersistence::FlushContent::AtFence, 0.0, 11};

    // Dry run: count the fences of the full schedule (setup + worker txs).
    std::remove(path.c_str());
    E::init(bytes, path, 2);
    auto sim0 = std::make_unique<CrashingSim>(E::region().base(),
                                              E::region().size(), opts);
    pmem::set_sim_hooks(sim0.get());
    make_cell(0, 0);
    make_cell(1, 500);
    E::begin_transaction(1);
    *E::get_object<PU>(0, 1) = 999;  // shard 1: mid-tx mutation, never commits
    {
        std::thread w(run_shard0_txs);
        w.join();
    }
    E::abort_transaction();
    pmem::set_sim_hooks(nullptr);
    const uint64_t total = sim0->model().fence_count();
    sim0.reset();
    E::destroy();
    ASSERT_GT(total, 10u);

    // Sweep every fence of that schedule.
    int crashes = 0, observed_cpy_while_mut = 0;
    for (uint64_t k = 1; k <= total; ++k) {
        std::remove(path.c_str());
        E::init(bytes, path, 2);
        CrashingSim sim(E::region().base(), E::region().size(), opts);
        pmem::set_sim_hooks(&sim);
        bool crashed = false;
        int completed = kMatrixTxs;
        try {
            make_cell(0, 0);
            make_cell(1, 500);
            E::begin_transaction(1);
            *E::get_object<PU>(0, 1) = 999;
            sim.crash_at = k;  // armed only for the worker's transactions
            std::exception_ptr worker_err;
            int worker_completed = 0;
            std::thread w([&] {
                try {
                    run_shard0_txs();
                } catch (...) {
                    worker_err = std::current_exception();
                }
                worker_completed = committed_a_;
            });
            w.join();
            completed = worker_completed;
            if (worker_err) std::rethrow_exception(worker_err);
            sim.crash_at = UINT64_MAX;
            E::abort_transaction();
        } catch (const CrashPoint&) {
            crashed = true;
        }
        pmem::set_sim_hooks(nullptr);

        if (crashed) {
            ++crashes;
            sim.model().crash_restore();  // power cut: live := persisted image
            // The matrix combination this test exists for: shard 0 caught in
            // its CPY window while shard 1 is parked in MUT.
            if (E::state(0) == CPY && E::state(1) == MUT)
                ++observed_cpy_while_mut;
            E::close();
            E::crash_reset_for_tests();
            E::init(bytes, path, 2);  // restart: recovery rolls both shards

            ASSERT_EQ(E::state(0), IDL);
            ASSERT_EQ(E::state(1), IDL);
            auto* a = E::get_object<PU>(0, 0);
            auto* b = E::get_object<PU>(0, 1);
            if (b != nullptr) {
                // Shard 1's in-flight mutation must never survive: back wins
                // in MUT, restoring the setup value.
                ASSERT_EQ(b->pload(), 500u) << "shard 1 tx leaked at fence " << k;
            }
            if (a != nullptr) {
                // Shard 0: committed prefix, plus at most the in-flight tx.
                const uint64_t v = a->pload();
                ASSERT_TRUE(v == uint64_t(completed) ||
                            v == uint64_t(completed) + 1)
                    << "shard 0 lost/duplicated txs at fence " << k << ": "
                    << v << " vs committed " << completed;
            }
            // Both shards' twins must be re-synchronised, independently.
            for (unsigned sd = 0; sd < 2; ++sd) {
                ASSERT_EQ(std::memcmp(E::main_base(sd), E::back_base(sd),
                                      E::used_bytes(sd)),
                          0)
                    << "shard " << sd << " twins diverged at fence " << k;
            }
        }
        E::destroy();
        if (::testing::Test::HasFatalFailure()) return;
    }
    std::remove(path.c_str());
    EXPECT_GT(crashes, 0);
    // The sweep hits every fence, so the CPY∧MUT cell of the matrix must
    // have been exercised (shard 0 commits kMatrixTxs times while shard 1
    // stays MUT throughout).
    EXPECT_GT(observed_cpy_while_mut, 0)
        << "sweep never caught shard 0 in CPY while shard 1 was MUT";
}

// ---------------------------------------------------------------------------
// Cross-shard WriteBatch: atomic per shard, committed in ascending shard
// order — a crash persists a prefix of the per-shard sub-batches, never a
// torn sub-batch.
// ---------------------------------------------------------------------------

TEST(ShardingCrash, CrossShardWriteBatchIsPerShardAtomic) {
    pmem::set_profile(pmem::Profile::NOP);
    const std::string path = test::heap_path("shard_crash_batch");
    const size_t bytes = 32u << 20;
    constexpr unsigned S = 4;
    const pmem::SimPersistence::Options opts{
        pmem::SimPersistence::FlushContent::AtFence, 0.0, 13};

    // A batch with two keys per shard (paired writes let us detect a torn
    // sub-batch: a shard with only one of its pair applied).
    auto build = [](db::ShardedKVStore<E>& store) {
        db::WriteBatch batch;
        std::array<int, S> per_shard{};
        uint64_t i = 0;
        while (true) {
            bool done = true;
            for (unsigned sd = 0; sd < S; ++sd)
                if (per_shard[sd] < 2) done = false;
            if (done) break;
            const std::string key = "bk" + std::to_string(i++);
            db::ShardedKVStore<E> const& cs = store;
            const unsigned sd = cs.shard_of(key);
            if (per_shard[sd] >= 2) continue;
            ++per_shard[sd];
            batch.put(key, "v" + std::to_string(sd));
        }
        return batch;
    };

    // Dry run for the fence count of the batch commit alone.
    std::remove(path.c_str());
    E::init(bytes, path, S);
    uint64_t batch_fences = 0;
    {
        db::ShardedKVStore<E> store(0);
        const db::WriteBatch batch = build(store);
        auto sim0 = std::make_unique<CrashingSim>(E::region().base(),
                                                  E::region().size(), opts);
        pmem::set_sim_hooks(sim0.get());
        const uint64_t before = sim0->model().fence_count();
        store.write(batch);
        batch_fences = sim0->model().fence_count() - before;
        pmem::set_sim_hooks(nullptr);
        sim0.reset();
    }
    E::destroy();
    ASSERT_GT(batch_fences, 4u);

    int crashes = 0, observed_split = 0;
    for (uint64_t k = 1; k <= batch_fences; ++k) {
        std::remove(path.c_str());
        E::init(bytes, path, S);
        db::WriteBatch batch;
        {
            db::ShardedKVStore<E> store(0);
            batch = build(store);
        }
        CrashingSim sim(E::region().base(), E::region().size(), opts);
        pmem::set_sim_hooks(&sim);
        bool crashed = false;
        try {
            db::ShardedKVStore<E> store(0);
            const uint64_t now = sim.model().fence_count();
            sim.crash_at = now + k;  // crash inside the batch commit only
            store.write(batch);
        } catch (const CrashPoint&) {
            crashed = true;
        }
        pmem::set_sim_hooks(nullptr);
        if (crashed) {
            ++crashes;
            sim.model().crash_restore();
            E::close();
            E::crash_reset_for_tests();
            E::init(bytes, path, S);

            db::ShardedKVStore<E> store(0);
            // Per-shard all-or-nothing, and applied set = prefix in
            // ascending shard order.
            std::array<int, S> applied{};
            for (const auto& op : batch.ops())
                if (store.contains(op.key)) ++applied[store.shard_of(op.key)];
            bool seen_unapplied = false;
            for (unsigned sd = 0; sd < S; ++sd) {
                ASSERT_TRUE(applied[sd] == 0 || applied[sd] == 2)
                    << "torn sub-batch on shard " << sd << " at fence " << k;
                if (applied[sd] == 0) {
                    seen_unapplied = true;
                } else {
                    ASSERT_FALSE(seen_unapplied)
                        << "shard " << sd << " applied after a gap at fence "
                        << k << " — not a prefix in ascending order";
                }
            }
            if (applied[0] == 2 && applied[S - 1] == 0) ++observed_split;
        }
        E::destroy();
        if (::testing::Test::HasFatalFailure()) return;
    }
    std::remove(path.c_str());
    EXPECT_GT(crashes, 0);
    // The atomicity *boundary*: some crash left an applied prefix and an
    // unapplied tail — the documented non-global-atomicity is real.
    EXPECT_GT(observed_split, 0);
}

// ---------------------------------------------------------------------------
// Sharded KV store semantics + checker cleanliness
// ---------------------------------------------------------------------------

TEST(ShardedKv, RoutesPersistsAndReopens) {
    pmem::set_profile(pmem::Profile::NOP);
    ShardedSession s(32u << 20, "shard_kv", 4);
    {
        db::ShardedKVStore<E> store(0);
        EXPECT_EQ(store.shards(), 4u);
        for (int i = 0; i < 200; ++i)
            store.put("key" + std::to_string(i), "val" + std::to_string(i));
        EXPECT_EQ(store.size(), 200u);
        store.put("key7", "updated");
        EXPECT_TRUE(store.del("key8"));
        EXPECT_FALSE(store.del("key8"));
        EXPECT_EQ(store.size(), 199u);

        // Keys actually spread across shards (200 keys over 4 shards).
        int populated = 0;
        for (unsigned sd = 0; sd < 4; ++sd) {
            uint64_t n = 0;
            E::readTx(sd, [&] { n = store.store(sd)->size(); });
            if (n > 0) ++populated;
        }
        EXPECT_GE(populated, 2);
    }
    E::close();

    E::init(32u << 20, s.path);  // reopen, shard count adopted from the heap
    ASSERT_EQ(E::shard_count(), 4u);
    db::ShardedKVStore<E> store(0);
    EXPECT_EQ(store.size(), 199u);
    std::string v;
    ASSERT_TRUE(store.get("key7", &v));
    EXPECT_EQ(v, "updated");
    EXPECT_FALSE(store.get("key8", &v));
    std::set<std::string> seen;
    store.for_each([&](std::string_view k, std::string_view) {
        seen.insert(std::string(k));
    });
    EXPECT_EQ(seen.size(), 199u);
}

TEST(ShardedChecker, SerializedCrossShardWorkloadStaysClean) {
    pmem::set_profile(pmem::Profile::NOP);
    ShardedSession s(32u << 20, "shard_checker", 2);
    for (unsigned sd = 0; sd < 2; ++sd) make_cell(sd, 0);

    // Whole-region tracking with shard 1's zone as the checked twin pair;
    // shard-0 lines are tracked through the state machine but exempt from
    // the transition checks (and vice versa for layout_of<E>(), shard 0).
    pmem::PersistencyChecker::Options opts;
    opts.require_log = true;  // RomulusLog logs every in-tx store
    pmem::PersistencyChecker checker(
        pmem::PersistencyChecker::layout_of_shard<E>(1), opts);
    pmem::set_sim_hooks(&checker);
    for (int i = 0; i < 20; ++i) {
        const unsigned sd = i % 2;  // serialized, alternating shards
        E::updateTx(sd, [&] {
            auto* cell = E::get_object<PU>(0, sd);
            *cell = cell->pload() + 1;
        });
    }
    pmem::set_sim_hooks(nullptr);
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.diagnostics().tx_commits, 20u);
}

// ---------------------------------------------------------------------------
// RomulusDB lifecycle (satellite): double-open error + engine ownership
// ---------------------------------------------------------------------------

TEST(RomulusDbLifecycle, SecondOpenThrowsInsteadOfSharingTheEngine) {
    pmem::set_profile(pmem::Profile::NOP);
    const std::string path = test::heap_path("db_double_open");
    std::remove(path.c_str());
    {
        auto db = db::RomulusDB::open(path, 32u << 20);
        ASSERT_NE(db, nullptr);
        EXPECT_TRUE(db->owns_engine());
        db->put({}, "k", "v");
        EXPECT_THROW(db::RomulusDB::open(path, 32u << 20), std::runtime_error);
        // The failed open must not have torn down the first instance.
        std::string v;
        EXPECT_TRUE(db->get("k", &v));
        EXPECT_EQ(v, "v");
    }
    // First instance closed (it owned the engine): open works again.
    EXPECT_FALSE(RomulusLog::initialized());
    {
        auto db = db::RomulusDB::open(path, 32u << 20);
        std::string v;
        EXPECT_TRUE(db->get("k", &v));
        EXPECT_EQ(v, "v");
    }
    std::remove(path.c_str());
}

TEST(RomulusDbLifecycle, DoesNotCloseAnEngineItDidNotOpen) {
    pmem::set_profile(pmem::Profile::NOP);
    const std::string path = test::heap_path("db_not_owner");
    std::remove(path.c_str());
    E::init(32u << 20, path);  // engine opened externally
    {
        auto db = db::RomulusDB::open(path);
        EXPECT_FALSE(db->owns_engine());
        db->put({}, "a", "1");
    }
    // The db is gone; the externally opened engine must still be alive.
    EXPECT_TRUE(E::initialized());
    E::destroy();
    std::remove(path.c_str());
}

TEST(RomulusDbLifecycle, ShardedOpenRoutesAcrossShards) {
    pmem::set_profile(pmem::Profile::NOP);
    const std::string path = test::heap_path("db_sharded");
    std::remove(path.c_str());
    {
        auto db = db::RomulusDB::open(path, 32u << 20, /*shards=*/4);
        EXPECT_EQ(db->shards(), 4u);
        db::WriteBatch batch;
        for (int i = 0; i < 40; ++i)
            batch.put("wb" + std::to_string(i), std::to_string(i));
        db->write({}, batch);
        EXPECT_EQ(db->size(), 40u);
    }
    {
        auto db = db::RomulusDB::open(path);
        EXPECT_EQ(db->shards(), 4u);
        EXPECT_EQ(db->size(), 40u);
        std::string v;
        ASSERT_TRUE(db->get("wb11", &v));
        EXPECT_EQ(v, "11");
    }
    std::remove(path.c_str());
}

}  // namespace
