// RomulusDB (§6.4): the paper's persistent key-value store — KVStore wrapped
// over RomulusLog with a LevelDB-flavoured open/close lifecycle, extended
// with intra-heap sharding: keys hash-route to one ShardedKVStore slice per
// engine shard, so concurrent writers on different shards commit in
// parallel (S=1, the default, is exactly the paper's store).
//
// "We used RomulusLog to wrap a hash map and implement the same interface as
// the popular LevelDB database."  Every update is a durable transaction; the
// WriteOptions::sync flag LevelDB needs for durability is therefore
// meaningless here (accepted for API compatibility, always behaves as true).
//
// Lifecycle: exactly one RomulusDB may be open per process (RomulusLog is a
// process-wide engine); a second open() throws instead of silently sharing —
// and later closing — the first instance's engine.  The destructor closes
// the engine only when this instance's open() initialized it (owns-engine),
// so opening against an externally initialized engine no longer tears the
// engine down on destruction.
#pragma once

#include <sys/stat.h>

#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/romulus.hpp"
#include "db/sharded_kvstore.hpp"

namespace romulus::db {

struct WriteOptions {
    bool sync = false;  ///< accepted for LevelDB parity; RomulusDB is always durable
};

class RomulusDB {
  public:
    using Store = ShardedKVStore<RomulusLog>;
    static constexpr int kRootIdx = 63;  // reserved root slot in every shard

    /// Open (and create if needed) the database backed by `heap_file`.
    /// `shards` selects the intra-heap shard count for a freshly created
    /// heap (0: engine default); an existing heap keeps its stored count.
    /// Throws std::runtime_error if a RomulusDB is already open.
    static std::unique_ptr<RomulusDB> open(const std::string& heap_file,
                                           size_t heap_bytes = 0,
                                           unsigned shards = 0) {
        bool expected = false;
        if (!open_flag().compare_exchange_strong(expected, true))
            throw std::runtime_error(
                "RomulusDB: already open in this process — close the "
                "existing instance before opening another");
        // From here the instance owns the open flag; its destructor clears
        // it (including on a throw below, via unique_ptr unwinding).
        auto db = std::unique_ptr<RomulusDB>(new RomulusDB());
        if (!RomulusLog::initialized()) {
            // LevelDB-style reopen: with no explicit size, an existing heap
            // is mapped at its own size (a default-sized map over a smaller
            // heap would fail validation and reformat it).
            size_t bytes = heap_bytes;
            struct ::stat st{};
            if (bytes == 0 && ::stat(heap_file.c_str(), &st) == 0)
                bytes = static_cast<size_t>(st.st_size);
            RomulusLog::init(bytes, heap_file, shards);
            db->owns_engine_ = true;
        }
        db->store_.emplace(kRootIdx);
        return db;
    }

    ~RomulusDB() {
        store_.reset();
        if (owns_engine_ && RomulusLog::initialized()) RomulusLog::close();
        open_flag().store(false);
    }

    /// True when this instance initialized (and will close) the engine.
    bool owns_engine() const { return owns_engine_; }

    unsigned shards() const { return store_->shards(); }

    void put(const WriteOptions&, std::string_view key, std::string_view value) {
        store_->put(key, value);
    }
    bool get(std::string_view key, std::string* value_out) const {
        return store_->get(key, value_out);
    }
    bool del(const WriteOptions&, std::string_view key) {
        return store_->del(key);
    }
    /// Cross-shard batches commit shard-by-shard in ascending shard order —
    /// atomic per shard, not globally (see ShardedKVStore).
    void write(const WriteOptions&, const WriteBatch& batch) {
        store_->write(batch);
    }
    uint64_t size() const { return store_->size(); }

    template <typename F>
    void for_each(F&& f) const {
        store_->for_each(std::forward<F>(f));
    }
    template <typename F>
    void for_each_reverse(F&& f) const {
        store_->for_each_reverse(std::forward<F>(f));
    }

  private:
    RomulusDB() = default;

    static std::atomic<bool>& open_flag() {
        static std::atomic<bool> flag{false};
        return flag;
    }

    std::optional<Store> store_;
    bool owns_engine_ = false;
};

}  // namespace romulus::db
