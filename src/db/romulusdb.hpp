// RomulusDB (§6.4): the paper's persistent key-value store — KVStore wrapped
// over RomulusLog with a LevelDB-flavoured open/close lifecycle.
//
// "We used RomulusLog to wrap a hash map and implement the same interface as
// the popular LevelDB database."  Every update is a durable transaction; the
// WriteOptions::sync flag LevelDB needs for durability is therefore
// meaningless here (accepted for API compatibility, always behaves as true).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "core/romulus.hpp"
#include "db/kvstore.hpp"

namespace romulus::db {

struct WriteOptions {
    bool sync = false;  ///< accepted for LevelDB parity; RomulusDB is always durable
};

class RomulusDB {
  public:
    using Store = KVStore<RomulusLog>;
    static constexpr int kRootIdx = 63;  // reserved root slot for the store

    /// Open (and create if needed) the database backed by `heap_file`.
    /// Exactly one RomulusDB may be open per process (RomulusLog is a
    /// process-wide engine).
    static std::unique_ptr<RomulusDB> open(const std::string& heap_file,
                                           size_t heap_bytes = 0) {
        if (!RomulusLog::initialized()) RomulusLog::init(heap_bytes, heap_file);
        auto db = std::unique_ptr<RomulusDB>(new RomulusDB());
        db->store_ = RomulusLog::get_object<Store>(kRootIdx);
        if (db->store_ == nullptr) {
            RomulusLog::updateTx([&] {
                db->store_ = RomulusLog::tmNew<Store>();
                RomulusLog::put_object(kRootIdx, db->store_);
            });
        }
        return db;
    }

    ~RomulusDB() {
        if (RomulusLog::initialized()) RomulusLog::close();
    }

    void put(const WriteOptions&, std::string_view key, std::string_view value) {
        store_->put(key, value);
    }
    bool get(std::string_view key, std::string* value_out) const {
        return store_->get(key, value_out);
    }
    bool del(const WriteOptions&, std::string_view key) {
        return store_->del(key);
    }
    void write(const WriteOptions&, const WriteBatch& batch) {
        store_->write(batch);
    }
    uint64_t size() const { return store_->size(); }

    template <typename F>
    void for_each(F&& f) const {
        store_->for_each(std::forward<F>(f));
    }
    template <typename F>
    void for_each_reverse(F&& f) const {
        store_->for_each_reverse(std::forward<F>(f));
    }

  private:
    RomulusDB() = default;
    Store* store_ = nullptr;
};

}  // namespace romulus::db
