// ShardedKVStore<PTM>: hash-routes keys across the engine's intra-heap
// shards, one KVStore per shard, each rooted in its own shard's objects
// array.  Operations on different shards are independent durable
// transactions on independent writer locks, so writers scale with the shard
// count (the multi-writer axis the single-shard engine lacks).
//
// Atomicity contract (documented, and tested by the atomicity-boundary
// crash test): single-key operations and single-shard batches are fully
// atomic + durable, exactly as in KVStore.  A *cross-shard* WriteBatch is
// atomic per shard only: it is split into per-shard sub-batches (each
// preserving the batch's op order for its keys) and committed shard by
// shard in ascending shard-id order.  A crash can therefore persist a
// prefix of the sub-batches — always a prefix in that fixed order, never a
// torn sub-batch.  Callers needing cross-shard atomicity must route the
// whole batch's keys to one shard (or use S=1).
#pragma once

#include <array>
#include <cassert>
#include <vector>

#include "db/kvstore.hpp"

namespace romulus::db {

/// The routing hash every ShardedKVStore instantiation uses: FNV-1a (as in
/// the per-shard bucket hash) pushed through a murmur3-style finalizer, so
/// shard routing and bucket choice stay decorrelated.  Exposed as a free
/// function so the romfuzz trace generator can route keys without an engine
/// mapped.
///
/// The finalizer is load-bearing: raw FNV-1a barely mixes its high bits for
/// short keys — over sequential keys like "k00000".."k00095" bits 32..39 of
/// the hash are constant, so the previous `(h >> 32) % nshards` routed *all*
/// of them to shard 0 (found by the romfuzz cross-shard batch test).
inline unsigned shard_for_key(std::string_view key, unsigned nshards) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a, as in KVStore
    for (char c : key) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return static_cast<unsigned>(h % nshards);
}

template <typename PTM>
class ShardedKVStore {
  public:
    using Store = KVStore<PTM>;

    /// Attach to (or create, inside per-shard transactions) one KVStore per
    /// engine shard at root slot `root_idx` of each shard's objects array.
    explicit ShardedKVStore(int root_idx, uint64_t initial_buckets = 1024)
        : nshards_(PTM::shard_count()) {
        assert(nshards_ >= 1 && nshards_ <= kMaxShards);
        for (unsigned sd = 0; sd < nshards_; ++sd) {
            stores_[sd] = PTM::template get_object<Store>(root_idx, sd);
            if (stores_[sd] == nullptr) {
                PTM::updateTx(sd, [&] {
                    stores_[sd] = PTM::template tmNew<Store>(initial_buckets);
                    PTM::put_object(root_idx, stores_[sd], sd);
                });
            }
        }
    }

    unsigned shards() const { return nshards_; }

    /// Shard owning `key`.  Uses the top bits of the same FNV-1a hash the
    /// per-shard stores use for buckets, so shard routing and bucket choice
    /// stay decorrelated.
    unsigned shard_of(std::string_view key) const {
        return shard_for_key(key, nshards_);
    }

    void put(std::string_view key, std::string_view value) {
        const unsigned sd = shard_of(key);
        // The store's own updateTx nests flat inside this shard-directed one.
        PTM::updateTx(sd, [&] { stores_[sd]->put(key, value); });
    }

    bool del(std::string_view key) {
        const unsigned sd = shard_of(key);
        bool existed = false;
        PTM::updateTx(sd, [&] { existed = stores_[sd]->del(key); });
        return existed;
    }

    bool get(std::string_view key, std::string* value_out) const {
        const unsigned sd = shard_of(key);
        bool found = false;
        PTM::readTx(sd, [&] { found = stores_[sd]->get(key, value_out); });
        return found;
    }

    bool contains(std::string_view key) const {
        const unsigned sd = shard_of(key);
        bool found = false;
        PTM::readTx(sd, [&] { found = stores_[sd]->contains(key); });
        return found;
    }

    /// Batch write: grouped by shard, committed in ascending shard order —
    /// see the atomicity contract in the header comment.
    void write(const WriteBatch& batch) {
        std::array<std::vector<const BatchOp*>, kMaxShards> groups;
        for (const auto& op : batch.ops())
            groups[shard_of(op.key)].push_back(&op);
        for (unsigned sd = 0; sd < nshards_; ++sd) {
            if (groups[sd].empty()) continue;
            PTM::updateTx(sd, [&] {
                for (const BatchOp* op : groups[sd]) {
                    if (op->kind == BatchOp::kPut) {
                        stores_[sd]->put(op->key, op->value);
                    } else {
                        stores_[sd]->del(op->key);
                    }
                }
            });
        }
    }

    uint64_t size() const {
        uint64_t n = 0;
        for (unsigned sd = 0; sd < nshards_; ++sd) {
            // Accumulate outside the closure: optimistic readTx may re-run
            // it, and `n +=` inside would double-count retried attempts.
            uint64_t part = 0;
            PTM::readTx(sd, [&] { part = stores_[sd]->size(); });
            n += part;
        }
        return n;
    }

    /// Full scan in shard order (hash order within a shard); each shard's
    /// scan is its own read snapshot.
    template <typename F>
    void for_each(F&& f) const {
        for (unsigned sd = 0; sd < nshards_; ++sd) {
            PTM::readTx(sd, [&] { stores_[sd]->for_each(f); });
        }
    }

    template <typename F>
    void for_each_reverse(F&& f) const {
        for (unsigned sd = nshards_; sd-- > 0;) {
            PTM::readTx(sd, [&] { stores_[sd]->for_each_reverse(f); });
        }
    }

    /// Direct access for tests (e.g. to inspect one shard's store).
    Store* store(unsigned sd) const { return stores_[sd]; }

  private:
    unsigned nshards_;
    std::array<Store*, kMaxShards> stores_{};
};

}  // namespace romulus::db
