#include "db/waldb.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace romulus::db {

namespace {
void spin_ns(uint64_t ns) {
    if (ns == 0) return;
    auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < deadline) {
    }
}
}  // namespace

WalDB::WalDB(const std::string& wal_path, WalDbOptions opts)
    : wal_path_(wal_path), opts_(opts) {
    wal_fd_ = ::open(wal_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (wal_fd_ < 0) throw std::runtime_error("WalDB: cannot open WAL " + wal_path);
    replay();
}

WalDB::~WalDB() {
    if (wal_fd_ >= 0) ::close(wal_fd_);
}

// Crash recovery: rebuild the memtable from the log, LevelDB-style.  A
// trailing partial record (crash mid-append) is ignored, matching the
// buffered-durability contract: unsynced suffixes may be lost.
void WalDB::replay() {
    ::lseek(wal_fd_, 0, SEEK_SET);
    for (;;) {
        char hdr[9];
        ssize_t n = ::read(wal_fd_, hdr, sizeof hdr);
        if (n != sizeof hdr) break;
        uint32_t kl, vl;
        // romlint: allow(raw-memcpy) volatile WAL header decode, no pmem involved
        std::memcpy(&kl, hdr + 1, 4);
        // romlint: allow(raw-memcpy) volatile WAL header decode, no pmem involved
        std::memcpy(&vl, hdr + 5, 4);
        if (kl > (1u << 28) || vl > (1u << 28)) break;  // corrupt tail
        std::string key(kl, '\0'), val(vl, '\0');
        if (::read(wal_fd_, key.data(), kl) != ssize_t(kl)) break;
        if (::read(wal_fd_, val.data(), vl) != ssize_t(vl)) break;
        if (hdr[0] == 'P') {
            table_[key] = val;
        } else if (hdr[0] == 'D') {
            table_.erase(key);
        } else {
            break;  // corrupt tail
        }
    }
    ::lseek(wal_fd_, 0, SEEK_END);
}

void WalDB::destroy() {
    std::unique_lock lk(mu_);
    table_.clear();
    if (wal_fd_ >= 0) {
        if (::ftruncate(wal_fd_, 0) != 0) { /* best effort */
        }
    }
    ::unlink(wal_path_.c_str());
}

void WalDB::append_wal(char op, const std::string& key, const std::string& value,
                       bool sync) {
    // Record: op(1) keylen(4) vallen(4) key val — enough to replay.
    uint32_t kl = static_cast<uint32_t>(key.size());
    uint32_t vl = static_cast<uint32_t>(value.size());
    std::vector<char> rec;
    rec.reserve(9 + kl + vl);
    rec.push_back(op);
    rec.insert(rec.end(), reinterpret_cast<char*>(&kl),
               reinterpret_cast<char*>(&kl) + 4);
    rec.insert(rec.end(), reinterpret_cast<char*>(&vl),
               reinterpret_cast<char*>(&vl) + 4);
    rec.insert(rec.end(), key.begin(), key.end());
    rec.insert(rec.end(), value.begin(), value.end());
    if (::write(wal_fd_, rec.data(), rec.size()) !=
        static_cast<ssize_t>(rec.size()))
        throw std::runtime_error("WalDB: WAL write failed");
    unsynced_bytes_ += rec.size();
    bytes_since_sync_ += rec.size();
    maybe_sync(sync);
}

void WalDB::maybe_sync(bool force) {
    if (!force && unsynced_bytes_ < opts_.sync_interval_bytes) return;
    ::fdatasync(wal_fd_);
    spin_ns(opts_.fsync_latency_ns);
    if (opts_.write_bandwidth_bps > 0) {
        // Emulated device transfer time for the bytes this sync flushes.
        spin_ns(bytes_since_sync_ * 1'000'000'000ull /
                opts_.write_bandwidth_bps);
    }
    bytes_since_sync_ = 0;
    sync_count_++;
    unsynced_bytes_ = 0;
}

void WalDB::put(const std::string& key, const std::string& value, bool sync) {
    std::unique_lock lk(mu_);
    table_[key] = value;
    append_wal('P', key, value, sync);
}

bool WalDB::get(const std::string& key, std::string* value) const {
    std::shared_lock lk(mu_);
    auto it = table_.find(key);
    if (it == table_.end()) return false;
    if (value != nullptr) *value = it->second;
    return true;
}

void WalDB::del(const std::string& key, bool sync) {
    std::unique_lock lk(mu_);
    table_.erase(key);
    append_wal('D', key, {}, sync);
}

size_t WalDB::size() const {
    std::shared_lock lk(mu_);
    return table_.size();
}

}  // namespace romulus::db
