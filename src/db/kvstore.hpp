// KVStore<PTM>: a persistent string-keyed key-value store built by wrapping
// a resizable hash map in PTM transactions — the construction behind
// RomulusDB (§6.4): "These PTMs can be straightforwardly applied to any
// sequential implementation of a map data structure and use it to construct
// a key-value store with persistence."
//
// Unlike LevelDB, every operation is a real durable transaction: when put()
// returns, the update has passed the PTM's durability point.  WriteBatch
// gives multi-operation atomicity (all-or-nothing), which LevelDB's write
// batches do not combine with per-write durability unless sync is on.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine_globals.hpp"

namespace romulus::db {

/// One operation of an atomic batch.
struct BatchOp {
    enum Kind { kPut, kDelete } kind;
    std::string key;
    std::string value;
};

class WriteBatch {
  public:
    void put(std::string_view key, std::string_view value) {
        ops_.push_back({BatchOp::kPut, std::string(key), std::string(value)});
    }
    void del(std::string_view key) {
        ops_.push_back({BatchOp::kDelete, std::string(key), {}});
    }
    void clear() { ops_.clear(); }
    size_t size() const { return ops_.size(); }
    const std::vector<BatchOp>& ops() const { return ops_; }

  private:
    std::vector<BatchOp> ops_;
};

template <typename PTM>
class KVStore {
    template <typename T>
    using p = typename PTM::template p<T>;

  public:
    struct Node {
        p<Node*> next;
        p<uint64_t> hash;
        p<char*> key_buf;
        p<uint32_t> key_len;
        p<char*> val_buf;
        p<uint32_t> val_len;
    };

    /// Must be constructed inside a transaction.
    explicit KVStore(uint64_t initial_buckets = 1024) {
        nbuckets = initial_buckets;
        count = 0;
        buckets = alloc_buckets(initial_buckets);
    }

    /// Must be destroyed inside a transaction.
    ~KVStore() {
        const uint64_t nb = nbuckets.pload();
        p<Node*>* b = buckets.pload();
        for (uint64_t i = 0; i < nb; ++i) {
            Node* n = b[i].pload();
            while (n != nullptr) {
                Node* nx = n->next.pload();
                free_node(n);
                n = nx;
            }
        }
        PTM::free_bytes(b);
    }

    /// Insert or overwrite.  Durable when the call returns.
    void put(std::string_view key, std::string_view value) {
        PTM::updateTx([&] { put_in_tx(key, value); });
    }

    /// Delete.  Returns true if the key existed.
    bool del(std::string_view key) {
        bool existed = false;
        PTM::updateTx([&] { existed = del_in_tx(key); });
        return existed;
    }

    /// Atomic multi-operation transaction.
    void write(const WriteBatch& batch) {
        PTM::updateTx([&] {
            for (const auto& op : batch.ops()) {
                if (op.kind == BatchOp::kPut) {
                    put_in_tx(op.key, op.value);
                } else {
                    del_in_tx(op.key);
                }
            }
        });
    }

    bool get(std::string_view key, std::string* value_out) const {
        bool found = false;
        PTM::readTx([&] {
            // Unconditional (re)assignment: optimistic readTx may re-run
            // this closure, so outputs must not leak a previous attempt.
            const Node* n = find(key);
            found = (n != nullptr);
            if (n == nullptr) return;
            if (value_out != nullptr) {
                const char* vb = n->val_buf.pload();
                value_out->resize(n->val_len.pload());
                load_bytes(value_out->data(), vb, value_out->size());
            }
        });
        return found;
    }

    bool contains(std::string_view key) const {
        bool found = false;
        PTM::readTx([&] { found = find(key) != nullptr; });
        return found;
    }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = count.pload(); });
        return n;
    }

    /// Full scan, f(key, value); iteration order is hash order — the paper
    /// notes the traversal order is irrelevant for a hash-based store
    /// (§6.4: readseq/readreverse perform identically on RomulusDB).
    template <typename F>
    void for_each(F&& f) const {
        PTM::readTx([&] {
            const uint64_t nb = nbuckets.pload();
            p<Node*>* b = buckets.pload();
            for (uint64_t i = 0; i < nb; ++i) {
                for (const Node* n = b[i].pload(); n != nullptr;
                     n = n->next.pload()) {
                    f(std::string_view(n->key_buf.pload(), n->key_len.pload()),
                      std::string_view(n->val_buf.pload(), n->val_len.pload()));
                }
            }
        });
    }

    /// Bounds-checked traversal for walking possibly-torn crash images
    /// (romfuzz, post-recovery oracles).  Runs outside any transaction on a
    /// quiescent heap.  `ok(ptr, len)` must answer whether [ptr, ptr+len)
    /// lies inside the store's heap area; no pointer is dereferenced before
    /// it passes.  Returns false — with a reason in `why` — instead of
    /// faulting when the structure is corrupt (wild pointer, absurd length,
    /// chain cycle, or node count disagreeing with the stored `count`).
    template <typename F, typename V>
    bool safe_for_each(F&& f, V&& ok, std::string* why = nullptr) const {
        auto fail = [&](const char* reason) {
            if (why != nullptr) *why = reason;
            return false;
        };
        if (!ok(this, sizeof(*this))) return fail("store header out of bounds");
        const uint64_t nb = nbuckets.pload();
        if (nb == 0 || nb > (uint64_t{1} << 26))
            return fail("implausible bucket count");
        p<Node*>* b = buckets.pload();
        if (!ok(b, nb * sizeof(p<Node*>)))
            return fail("bucket array out of bounds");
        const uint64_t max_nodes = uint64_t{1} << 20;
        uint64_t seen = 0;
        for (uint64_t i = 0; i < nb; ++i) {
            for (const Node* n = b[i].pload(); n != nullptr;
                 n = n->next.pload()) {
                if (!ok(n, sizeof(Node))) return fail("node out of bounds");
                if (++seen > max_nodes) return fail("chain cycle suspected");
                const char* kb = n->key_buf.pload();
                const uint32_t kl = n->key_len.pload();
                const char* vb = n->val_buf.pload();
                const uint32_t vl = n->val_len.pload();
                if (kl > (1u << 20) || vl > (1u << 20))
                    return fail("implausible key/value length");
                if (!ok(kb, kl ? kl : 1)) return fail("key buffer out of bounds");
                if (!ok(vb, vl ? vl : 1))
                    return fail("value buffer out of bounds");
                f(std::string_view(kb, kl), std::string_view(vb, vl));
            }
        }
        if (seen != count.pload())
            return fail("node count disagrees with stored count");
        return true;
    }

    /// Reverse-order scan (readreverse): same cost profile by construction.
    template <typename F>
    void for_each_reverse(F&& f) const {
        PTM::readTx([&] {
            const uint64_t nb = nbuckets.pload();
            p<Node*>* b = buckets.pload();
            for (uint64_t i = nb; i-- > 0;) {
                for (const Node* n = b[i].pload(); n != nullptr;
                     n = n->next.pload()) {
                    f(std::string_view(n->key_buf.pload(), n->key_len.pload()),
                      std::string_view(n->val_buf.pload(), n->val_len.pload()));
                }
            }
        });
    }

  private:
    static uint64_t hash_of(std::string_view s) {
        uint64_t h = 1469598103934665603ull;  // FNV-1a
        for (char c : s) {
            h ^= static_cast<uint8_t>(c);
            h *= 1099511628211ull;
        }
        return h;
    }

    static p<Node*>* alloc_buckets(uint64_t n) {
        auto* b =
            static_cast<p<Node*>*>(PTM::alloc_bytes(n * sizeof(p<Node*>)));
        for (uint64_t i = 0; i < n; ++i) b[i] = nullptr;
        return b;
    }

    const Node* find(std::string_view key) const {
        const uint64_t h = hash_of(key);
        p<Node*>* b = buckets.pload();
        for (const Node* n = b[h % nbuckets.pload()].pload(); n != nullptr;
             n = n->next.pload()) {
            if (n->hash.pload() == h && key_equals(n, key)) return n;
        }
        return nullptr;
    }

    /// Read `n` heap bytes, seeing the current transaction's own buffered
    /// writes.  Engines that apply stores in place (Romulus, undo log) read
    /// the heap directly; a redo-buffering engine provides load_range so a
    /// key or value written earlier in the SAME transaction is visible
    /// before commit (raw memcmp/memcpy would read the stale heap bytes
    /// and, e.g., make a PUT-then-DEL of one key resurrect it).
    static void load_bytes(char* dst, const char* src, size_t n) {
        if constexpr (requires { PTM::load_range(dst, src, n); }) {
            PTM::load_range(dst, src, n);
        } else {
            // romlint: allow(raw-memcpy) read-direction copy out of the heap
            std::memcpy(dst, src, n);
        }
    }

    static bool key_equals(const Node* n, std::string_view key) {
        if (n->key_len.pload() != key.size()) return false;
        const char* kb = n->key_buf.pload();
        if constexpr (requires(char* d) { PTM::load_range(d, kb, size_t{0}); }) {
            char chunk[64];
            size_t off = 0;
            while (off < key.size()) {
                const size_t take =
                    std::min(sizeof(chunk), key.size() - off);
                load_bytes(chunk, kb + off, take);
                if (std::memcmp(chunk, key.data() + off, take) != 0)
                    return false;
                off += take;
            }
            return true;
        } else {
            return std::memcmp(kb, key.data(), key.size()) == 0;
        }
    }

    static char* alloc_string(std::string_view s) {
        char* buf = static_cast<char*>(PTM::alloc_bytes(s.size() ? s.size() : 1));
        PTM::store_range(buf, s.data(), s.size());
        return buf;
    }

    void put_in_tx(std::string_view key, std::string_view value) {
        const uint64_t h = hash_of(key);
        p<Node*>& slot = buckets.pload()[h % nbuckets.pload()];
        for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
            if (n->hash.pload() == h && key_equals(n, key)) {
                // Overwrite: reuse the buffer when the size matches.
                if (n->val_len.pload() == value.size()) {
                    PTM::store_range(n->val_buf.pload(), value.data(),
                                     value.size());
                } else {
                    PTM::free_bytes(n->val_buf.pload());
                    n->val_buf = alloc_string(value);
                    n->val_len = static_cast<uint32_t>(value.size());
                }
                return;
            }
        }
        Node* n = PTM::template tmNew<Node>();
        n->hash = h;
        n->key_buf = alloc_string(key);
        n->key_len = static_cast<uint32_t>(key.size());
        n->val_buf = alloc_string(value);
        n->val_len = static_cast<uint32_t>(value.size());
        n->next = slot.pload();
        slot = n;
        count += 1;
        if (count.pload() > 4 * nbuckets.pload()) grow();
    }

    bool del_in_tx(std::string_view key) {
        const uint64_t h = hash_of(key);
        p<Node*>& slot = buckets.pload()[h % nbuckets.pload()];
        Node* prev = nullptr;
        for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
            if (n->hash.pload() == h && key_equals(n, key)) {
                if (prev == nullptr) {
                    slot = n->next.pload();
                } else {
                    prev->next = n->next.pload();
                }
                free_node(n);
                count -= 1;
                return true;
            }
            prev = n;
        }
        return false;
    }

    void free_node(Node* n) {
        PTM::free_bytes(n->key_buf.pload());
        PTM::free_bytes(n->val_buf.pload());
        PTM::tmDelete(n);
    }

    void grow() {
        const uint64_t nb = nbuckets.pload();
        const uint64_t new_nb = nb * 2;
        p<Node*>* old = buckets.pload();
        p<Node*>* fresh = alloc_buckets(new_nb);
        for (uint64_t i = 0; i < nb; ++i) {
            Node* n = old[i].pload();
            while (n != nullptr) {
                Node* nx = n->next.pload();
                p<Node*>& slot = fresh[n->hash.pload() % new_nb];
                n->next = slot.pload();
                slot = n;
                n = nx;
            }
        }
        PTM::free_bytes(old);
        buckets = fresh;
        nbuckets = new_nb;
    }

    p<p<Node*>*> buckets;
    p<uint64_t> nbuckets;
    p<uint64_t> count;
};

}  // namespace romulus::db
