// WalDB: the LevelDB stand-in used by the Fig. 8 benchmark (DESIGN.md §1).
//
// LevelDB's durability model — the part of its behaviour Fig. 8 actually
// exercises — is: updates go to an in-memory table plus an append-only log
// file; the log is fdatasync'ed only every ~1000 kB (buffered durability)
// unless WriteOptions.sync asks for a sync per write.  WalDB reproduces that
// model: std::map memtable + WAL with batched fdatasync, plus an optional
// emulated per-fsync latency so that results on tmpfs/SSD still show the
// cost structure of the paper's disk-backed LevelDB.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace romulus::db {

struct WalDbOptions {
    /// fdatasync the log every this many bytes (LevelDB-like buffered
    /// durability).  Ignored for writes with sync=true.
    size_t sync_interval_bytes = 1000 * 1024;
    /// Added busy-wait per fdatasync, emulating a storage device.  The
    /// reproduction default (100 us) approximates a fast disk; set 0 to
    /// measure the raw filesystem.
    uint64_t fsync_latency_ns = 100 * 1000;
    /// Emulated device write bandwidth applied to synced bytes (the paper's
    /// LevelDB wrote to a real disk; on tmpfs the transfer cost must be
    /// modelled or 100 kB appends are unrealistically free).  0 disables.
    uint64_t write_bandwidth_bps = 200ull * 1024 * 1024;  // ~200 MB/s
};

class WalDB {
  public:
    WalDB(const std::string& wal_path, WalDbOptions opts = {});
    ~WalDB();

    /// Insert/overwrite.  With sync=true the WAL is fdatasync'ed before
    /// returning (durable write, LevelDB's WriteOptions.sync).
    void put(const std::string& key, const std::string& value, bool sync = false);
    bool get(const std::string& key, std::string* value) const;
    void del(const std::string& key, bool sync = false);

    /// Ordered iteration (readseq / readreverse).
    template <typename F>
    void for_each(F&& f) const {
        std::shared_lock lk(mu_);
        for (const auto& [k, v] : table_) f(k, v);
    }
    template <typename F>
    void for_each_reverse(F&& f) const {
        std::shared_lock lk(mu_);
        for (auto it = table_.rbegin(); it != table_.rend(); ++it)
            f(it->first, it->second);
    }

    size_t size() const;
    uint64_t fdatasync_count() const { return sync_count_; }

    /// Delete the table and the WAL file (tests/benches cleanup).  Without
    /// this, a reopened WalDB replays its log — LevelDB-style recovery.
    void destroy();

  private:
    void append_wal(char op, const std::string& key, const std::string& value,
                    bool sync);
    void maybe_sync(bool force);
    void replay();

    mutable std::shared_mutex mu_;
    std::map<std::string, std::string> table_;
    int wal_fd_ = -1;
    std::string wal_path_;
    WalDbOptions opts_;
    size_t unsynced_bytes_ = 0;
    uint64_t sync_count_ = 0;
    uint64_t bytes_since_sync_ = 0;
};

}  // namespace romulus::db
