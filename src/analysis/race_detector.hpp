// romrace: a happens-before data-race detector for the persistent heaps
// (docs/race_detector.md).
//
// TSan cannot see races on persistent data: its shadow memory reserves the
// address ranges the engines' fixed heap mappings (and the kernel-chosen
// fallback) land in, so the TSan leg of scripts/check.sh only covers the
// volatile synchronisation layer.  This detector closes that hole at the
// interposition layer: every persistent access already funnels through
// persist<T>::pload/pstore, and every happens-before edge the paper's
// correctness argument relies on (§3-§4: C-RW-WP acquire/release, Left-Right
// versionIndex publication, flat-combining handoff) maps onto a small set of
// acquire/release annotations threaded through src/sync.
//
// Algorithm: vector-clock happens-before with the FastTrack epoch
// optimisation (Flanagan & Freund, PLDI'09).  Per 8-byte word of every
// registered region the detector keeps a shadow cell holding the last-writer
// epoch and either the last-reader epoch (the common same-thread /
// lock-ordered case) or a promoted full read vector clock (concurrent
// readers).  A write must happen-after the previous write and every recorded
// read; a read must happen-after the previous write.  Anything else is a
// race, reported with both access sites and the engine's transaction context
// (tx kind, heap state word).
//
// The detector is an observer behind one global mutex: correctness-checking
// builds only (ROMULUS_RACECHECK), never the default build's hot path.  When
// the compile option is off, the hook macros in analysis/race_hooks.hpp
// expand to nothing; when on but the detector is disabled (the default at
// runtime), every hook is one relaxed atomic load.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sync/thread_registry.hpp"

namespace romulus::analysis {

using Clock = uint32_t;

/// One logical clock per registered thread slot (sync::thread_registry).
/// Slot recycling is deliberately benign: a thread reusing a dead thread's
/// slot continues its clock, which merges the two histories — conservative
/// (can only hide races across the reuse, never invent one).
struct VectorClock {
    std::array<Clock, sync::kMaxThreads> c{};

    void join(const VectorClock& o) {
        for (int i = 0; i < sync::kMaxThreads; ++i)
            if (o.c[i] > c[i]) c[i] = o.c[i];
    }
};

class RaceDetector {
  public:
    struct Options {
        /// Record every acquire/release annotation into an inspectable trace
        /// (the annotation-contract unit tests assert on these sequences).
        bool record_trace = false;
        /// Stop recording new reports beyond this many (state keeps
        /// advancing, so later accesses are still checked).
        size_t max_reports = 64;
    };

    /// One racing access, with enough engine context that a report reads as
    /// "reader observed main[] while writer in MUTATING" rather than two
    /// bare addresses.
    struct AccessSite {
        int tid = -1;
        bool is_write = false;
        uintptr_t addr = 0;
        uint32_t len = 0;
        std::string region;    ///< "<engine>.<main|back|heap>" or "?"
        uintptr_t region_off = 0;
        std::string tx_kind;   ///< "update-tx", "read-tx(back)", ... or "-"
        uint32_t heap_state = 0;  ///< engine state word (TxState) at access
        bool has_state = false;
        uint64_t seq = 0;      ///< global event sequence number
        std::string to_string() const;
    };

    struct Report {
        AccessSite prev, cur;
        const char* kind;  ///< "write-write" | "read-then-write" | "write-then-read"
        std::string to_string() const;
    };

    struct SyncEvent {
        bool is_acquire;
        const void* obj;
        int tid;
        const char* label;
    };

    static RaceDetector& instance();

    void enable() { enable(Options{}); }
    void enable(const Options& opts);
    void disable();
    /// Drop all shadow state, sync-object clocks, thread clocks, regions,
    /// reports and trace.  Call between independent test scenarios.
    void reset();
    bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    // ------------------------------------------------------------- regions

    /// Track [base, base+size) under "<name>.<part>".  Accesses outside every
    /// registered region are ignored (stack-resident persist<T> instances and
    /// engine headers generate no events).  `state_word`, if non-null, is
    /// loaded at every access to stamp the engine's TxState into the site.
    void register_region(const void* base, size_t size, const char* name,
                         const char* part,
                         const std::atomic<uint32_t>* state_word);
    /// Remove the region *and erase its shadow cells*, so a later engine
    /// re-mapping the same fixed address starts clean.
    void unregister_region(const void* base);

    // -------------------------------------------------------------- events

    void on_read(const void* addr, size_t len);
    void on_write(const void* addr, size_t len);
    void on_acquire(const void* obj, const char* label);
    void on_release(const void* obj, const char* label);
    /// thread_registry hooks: the tid is passed explicitly because these run
    /// while the calling thread's tid slot is still being constructed.
    void on_acquire_tid(const void* obj, const char* label, int tid);
    void on_release_tid(const void* obj, const char* label, int tid);

    /// Optimistic-read event for validated speculative reads: atomically
    /// re-validates the version/sequence word against `observed` *inside*
    /// the detector's mutex and only then records acquire+release on the
    /// sync object and the read itself.  Returns false (record nothing) if
    /// the word changed — the caller must abort the attempt, exactly as it
    /// would on its own failed validation.  Without the combined re-check, a
    /// writer bumping the word between the caller's validation and the
    /// detector call could record its write first and produce a false race.
    /// Two users: RedoLogPTM's TL2 stripe validation (`label` =
    /// "redo.validate") and the seqlock read fast path of the C-RW-WP
    /// engines ("seqlock.validate", DESIGN.md §4.9).
    bool on_optimistic_read(const void* stripe, const void* addr, size_t len,
                            uint64_t observed,
                            const std::atomic<uint64_t>* lock_word,
                            const char* label);

    /// Set this thread's transaction-context label (a string literal;
    /// nullptr = outside any transaction).  Stamped into access sites.
    void set_tx_context(const char* kind);

    // ------------------------------------------------------------- results

    size_t race_count() const;
    std::vector<Report> reports() const;
    std::string report_text() const;  ///< all reports, human-readable
    std::vector<SyncEvent> trace() const;
    std::vector<SyncEvent> trace_for(const void* obj) const;
    void clear_trace();

  private:
    // FastTrack epoch: (tid << 32) | clock; 0 = no recorded access.
    using Epoch = uint64_t;
    static Epoch make_epoch(int tid, Clock c) {
        return (Epoch(uint32_t(tid)) << 32) | c;
    }
    static int epoch_tid(Epoch e) { return int(e >> 32); }
    static Clock epoch_clock(Epoch e) { return Clock(e); }
    static bool ordered(Epoch e, const VectorClock& vc) {
        return epoch_clock(e) <= vc.c[epoch_tid(e)];
    }

    struct Region {
        uintptr_t base;
        size_t size;
        std::string name;  ///< "<engine>.<part>"
        int name_id;       ///< index into region_names_ (stable, append-only)
        const std::atomic<uint32_t>* state_word;
    };

    // Compact per-access record kept in shadow cells; tx_kind is a string
    // literal (static lifetime), region is an index into region_names_
    // (append-only, survives unregistration so old reports stay printable).
    struct LastAccess {
        int tid = -1;
        uint64_t seq = 0;
        uintptr_t addr = 0;
        uint32_t len = 0;
        int region_id = -1;
        const char* tx_kind = nullptr;
        uint32_t heap_state = 0;
        bool has_state = false;
    };

    struct Shadow {
        Epoch w = 0;  ///< last write
        Epoch r = 0;  ///< last read (exclusive); 0 when none or promoted
        std::unique_ptr<VectorClock> rvc;  ///< promoted concurrent reads
        LastAccess last_w, last_r;
    };

    VectorClock& thread_vc(int t);
    const Region* find_region(uintptr_t addr) const;
    LastAccess make_access(int tid, bool is_write, uintptr_t addr, size_t len,
                           const Region* reg);
    AccessSite materialize(const LastAccess& a, bool is_write) const;
    void record_race(const char* kind, const LastAccess& prev, bool prev_write,
                     const LastAccess& cur, bool cur_write);
    void read_locked(int t, const void* addr, size_t len);
    void write_locked(int t, const void* addr, size_t len);
    void acquire_locked(int t, const void* obj, const char* label);
    void release_locked(int t, const void* obj, const char* label);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    Options opts_;
    std::array<VectorClock, sync::kMaxThreads> threads_{};
    std::unordered_map<const void*, VectorClock> sync_vc_;
    std::unordered_map<uintptr_t, Shadow> shadow_;  ///< keyed by word address
    std::vector<Region> regions_;
    std::vector<std::string> region_names_;
    std::vector<Report> reports_;
    size_t dropped_reports_ = 0;
    std::vector<SyncEvent> trace_;
    uint64_t seq_ = 0;
};

// ---------------------------------------------------------------------------
// Free funnels used by the ROMULUS_RACE_* hook macros (and directly by
// tests).  Each is a cheap no-op while the detector is disabled.
// ---------------------------------------------------------------------------

void race_read(const void* addr, size_t len);
void race_write(const void* addr, size_t len);
void race_acquire(const void* obj, const char* label);
void race_release(const void* obj, const char* label);
void race_thread_acquire(const void* obj, const char* label, int tid);
void race_thread_release(const void* obj, const char* label, int tid);
bool race_optimistic_read(const void* stripe, const void* addr, size_t len,
                          uint64_t observed,
                          const std::atomic<uint64_t>* lock_word,
                          const char* label);
void race_set_tx(const char* kind);
void race_register_region(const void* base, size_t size, const char* name,
                          const char* part, const void* state_word);
void race_unregister_region(const void* base);

}  // namespace romulus::analysis
