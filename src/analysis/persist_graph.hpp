// romver: persist-order graph capture and static protocol analysis
// (docs/romver.md).
//
// Every fence in the Romulus MUT→CPY→IDLE protocol exists to constrain which
// cache lines may be durable at a crash, yet the crash-injection tests cut
// only at fence boundaries with everything before the cut fully persisted —
// an optimistic slice of the states real persistent memory allows.  Between
// two fences, write-backs complete in ANY order (Px86-TSO: pwbs are only
// ordered by pfence/psync); the bugs hide exactly in that unordered window.
//
// This header provides the offline substrate that makes the full space
// analysable:
//
//   * PersistEventRecorder — a SimHooks observer that appends every
//     interposed (store, pwb, pfence, state-transition, tx-lifecycle) event
//     to a flat in-memory log, capturing each written-back cache line's
//     content at pwb time.  Chains to a `next` observer so recording
//     composes with SimPersistence / PersistencyChecker.
//   * PersistGraph — the happens-before-persist DAG over the recorded
//     write-backs: node = one write-back of one cache line; edges are
//     (a) fence ordering — a pwb issued before a pfence/psync persists
//     before any pwb issued after it — and (b) same-line program order —
//     successive write-backs of one line can only leave that line holding
//     a prefix-maximal content.  Everything else is UNordered: the legal
//     crash images are exactly the down-closed cuts of this DAG
//     (crash_explorer.hpp enumerates them).
//   * analyze_protocol() — static rules checked directly on the graph:
//     a line dirtied in MUT with no write-back ordered before the MUT→CPY
//     state persist, a state-word persist not ordered after all body
//     persists, and the redundant-flush perf diagnostic (a pwb of a line
//     with no prior dirty store) fed into pmem::CommitStats.
//
// The recorder rides the existing SimHooks plumbing, so recording costs
// nothing unless hooks are installed.  -DROMULUS_PERSISTGRAPH additionally
// arms the seeded protocol-mutation hooks in the engines (elided commit
// fence, reordered state persist) that the `persistgraph` CI leg uses to
// prove these rules still detect what they claim to; without the flag the
// mutation branches compile away entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "pmem/flush.hpp"
#include "pmem/stats.hpp"

namespace romulus::analysis {

// ---------------------------------------------------------------------------
// Event capture
// ---------------------------------------------------------------------------

enum class PersistEventKind : uint8_t {
    Store,            ///< interposed store of [off, off+len)
    Pwb,              ///< write-back initiated for the line containing off
    Fence,            ///< pfence or psync (both order preceding pwbs)
    StateTransition,  ///< engine stored `state` into a heap state word
    TxBegin,
    TxCommit,
    TxAbort,
    RangeLogged,      ///< [off, off+len) is covered by the engine's log
};

const char* persist_event_kind_name(PersistEventKind k);

struct PersistEvent {
    PersistEventKind kind;
    uint32_t len = 0;      ///< Store/RangeLogged only
    uint32_t state = 0;    ///< StateTransition only
    uint64_t off = 0;      ///< region-relative byte offset (exact, not line)
    uint64_t content = 0;  ///< Pwb only: offset into the recorder's line pool
};

/// Records the interposed persistence-event stream of [base, base+size).
/// Out-of-region events are counted but not recorded.  The live region
/// content at construction time becomes the baseline image: everything in it
/// is assumed durable (the same attach-time assumption SimPersistence makes).
class PersistEventRecorder final : public pmem::SimHooks {
  public:
    struct Options {
        /// Forward every event to this observer after recording (e.g. a
        /// SimPersistence crash model or the PersistencyChecker).  Not owned.
        pmem::SimHooks* next = nullptr;
        /// Stop appending beyond this many events (overflowed() turns true;
        /// a runaway workload would otherwise eat memory 80 B at a time).
        size_t max_events = size_t{1} << 22;
    };

    PersistEventRecorder(const uint8_t* base, size_t size, Options opts);
    PersistEventRecorder(const uint8_t* base, size_t size)
        : PersistEventRecorder(base, size, Options{}) {}

    // SimHooks
    void on_store(const void* addr, size_t len) override;
    void on_pwb(const void* addr) override;
    void on_fence() override;
    void on_tx_begin() override;
    void on_tx_commit() override;
    void on_tx_abort() override;
    void on_state_transition(uint32_t new_state) override;
    void on_range_logged(const void* addr, size_t len) override;

    const std::vector<PersistEvent>& events() const { return events_; }
    /// Region snapshot taken at construction (durable-at-attach assumption).
    const std::vector<uint8_t>& baseline() const { return baseline_; }
    /// The 64-byte content captured when this Pwb event executed.
    const uint8_t* line_content(const PersistEvent& e) const {
        return pool_.data() + e.content;
    }
    const uint8_t* base() const { return base_; }
    size_t size() const { return size_; }
    bool overflowed() const { return overflowed_; }
    uint64_t skipped_out_of_region() const { return out_of_region_; }

    /// Drop recorded events and re-snapshot the baseline from the live
    /// region: starts a fresh recording episode.
    void clear();

  private:
    bool in_region(const void* addr) const {
        auto u = reinterpret_cast<uintptr_t>(addr);
        auto b = reinterpret_cast<uintptr_t>(base_);
        return u >= b && u < b + size_;
    }
    void append(PersistEvent e);

    const uint8_t* base_;
    size_t size_;
    Options opts_;
    std::vector<PersistEvent> events_;
    std::vector<uint8_t> pool_;      ///< captured 64 B line contents (pwb)
    std::vector<uint8_t> baseline_;
    bool overflowed_ = false;
    uint64_t out_of_region_ = 0;
    mutable std::mutex mu_;
};

// ---------------------------------------------------------------------------
// Engine address-space description (which offsets mean what)
// ---------------------------------------------------------------------------

/// Region-relative layout of one engine's persistent areas, in the shape the
/// graph rules need: per shard, the twin halves plus the state/used words.
/// Baselines (no twin, no state machine) leave back/state/used at kNone.
struct EngineLayout {
    static constexpr uint64_t kNone = ~uint64_t{0};

    struct Shard {
        uint64_t main_off = kNone;
        uint64_t back_off = kNone;   ///< kNone: engine has no twin copy
        uint64_t main_size = 0;
        uint64_t state_off = kNone;  ///< exact offset of the state word
        uint64_t used_off = kNone;   ///< exact offset of the used_size word
    };

    size_t region_size = 0;
    std::vector<Shard> shards;
    /// Optional persistent-log area (undo/redo baselines): lets reports
    /// attribute events to header/log/heap areas.
    uint64_t log_off = kNone;
    uint64_t log_size = 0;

    /// Shard whose main (or back) half contains `off`, or -1.
    int shard_of_zone(uint64_t off) const;
    /// Shard whose state word sits exactly at `off`, or -1.
    int shard_of_state(uint64_t off) const;
    bool in_main(const Shard& sh, uint64_t off) const {
        return sh.main_off != kNone && off >= sh.main_off &&
               off < sh.main_off + sh.main_size;
    }
    bool in_back(const Shard& sh, uint64_t off) const {
        return sh.back_off != kNone && off >= sh.back_off &&
               off < sh.back_off + sh.main_size;
    }

    /// Introspect a mapped engine.  Works for the sharded Romulus engines
    /// (state_addr/used_size_addr/shard_count) and the flat baselines
    /// (main_base/main_size only, plus log_base/log_size when exposed).
    template <typename E>
    static EngineLayout of() {
        EngineLayout l;
        l.region_size = E::region().size();
        const uint8_t* base = E::region().base();
        if constexpr (requires { E::shard_count(); E::state_addr(0u); }) {
            for (unsigned i = 0; i < E::shard_count(); ++i) {
                Shard sh;
                sh.main_off = uint64_t(E::main_base(i) - base);
                sh.back_off = E::back_base(i) != nullptr
                                  ? uint64_t(E::back_base(i) - base)
                                  : kNone;
                sh.main_size = E::main_size();
                sh.state_off = uint64_t(
                    static_cast<const uint8_t*>(E::state_addr(i)) - base);
                sh.used_off = uint64_t(
                    static_cast<const uint8_t*>(E::used_size_addr(i)) - base);
                l.shards.push_back(sh);
            }
        } else {
            Shard sh;
            sh.main_off = uint64_t(E::main_base() - base);
            sh.main_size = E::main_size();
            l.shards.push_back(sh);
        }
        if constexpr (requires { E::log_base(); E::log_size(); }) {
            l.log_off = uint64_t(E::log_base() - base);
            l.log_size = E::log_size();
        }
        return l;
    }
};

// ---------------------------------------------------------------------------
// The happens-before-persist DAG
// ---------------------------------------------------------------------------

/// One node per recorded write-back.  The DAG has a layered structure: fences
/// split the execution into windows; write-backs in earlier windows are
/// ordered before write-backs in later windows (fence edges), write-backs of
/// the same line within one window are chained in program order (same-line
/// edges), and everything else is concurrent.
class PersistGraph {
  public:
    static constexpr uint32_t kNoNode = ~uint32_t{0};

    struct Node {
        uint64_t line;            ///< region cache-line index (off / 64)
        uint64_t pwb_off;         ///< exact offset the pwb named
        uint64_t content;         ///< content-pool offset of the 64 B capture
        uint32_t window;          ///< fences observed before this write-back
        uint32_t same_line_pred;  ///< previous write-back of this line, or kNoNode
        size_t event_idx;         ///< index into the recorder's event vector
    };

    static PersistGraph build(const PersistEventRecorder& rec);

    const std::vector<Node>& nodes() const { return nodes_; }
    /// Number of fence windows (trailing open window included): fences + 1.
    uint32_t window_count() const { return window_count_; }
    /// Node indices per window, in program order.
    const std::vector<std::vector<uint32_t>>& window_nodes() const {
        return windows_;
    }
    /// Happens-before-persist: must node a be durable before node b can be?
    bool ordered_before(uint32_t a, uint32_t b) const;
    /// Count of unordered node pairs in window `w` metadata (diagnostics).
    size_t nodes_in_window(uint32_t w) const {
        return w < windows_.size() ? windows_[w].size() : 0;
    }

  private:
    std::vector<Node> nodes_;
    std::vector<std::vector<uint32_t>> windows_;
    uint32_t window_count_ = 1;
};

// ---------------------------------------------------------------------------
// Static protocol rules on the graph
// ---------------------------------------------------------------------------

struct ProtocolViolation {
    enum class Kind {
        /// A line in the shard zone was dirtied since the previous state
        /// persist and has NO write-back at all before the state persist.
        UnflushedLine,
        /// The line has a write-back, but it shares the state persist's
        /// fence window: no pfence orders it before the state word, so the
        /// state may become durable first (the missing/elided-fence bug).
        UnorderedStatePersist,
    };
    Kind kind;
    uint64_t line_off;          ///< first byte of the offending line
    uint32_t shard;
    uint32_t state_value;       ///< the transition being persisted (CPY/IDL)
    uint32_t state_window;      ///< fence window of the state-word persist
    uint32_t line_window;       ///< window of the line's last covering pwb
                                ///< (kNoWindow when none exists)
    std::string detail;         ///< names the unordered line/fence pair
    static constexpr uint32_t kNoWindow = ~uint32_t{0};
};

const char* protocol_violation_kind_name(ProtocolViolation::Kind k);

struct GraphAnalysis {
    std::vector<ProtocolViolation> violations;
    /// Perf diagnostic: write-backs of lines with no prior dirty store.
    uint64_t redundant_pwbs = 0;
    uint64_t stores = 0;
    uint64_t pwbs = 0;
    uint64_t fences = 0;
    uint64_t state_persists = 0;

    bool clean() const { return violations.empty(); }
    std::string report() const;
    /// Feed the redundant-flush diagnostic into the commit-path counters
    /// (the same struct bench_commit_path reports from).
    void record_in(pmem::CommitStats& cs) const {
        cs.redundant_pwbs += redundant_pwbs;
    }
};

/// Run the static rule pass over a recording.  `layout` tells the pass which
/// offsets are twin-zone lines and which are state words; engines without
/// state words get only the redundant-flush diagnostic.
GraphAnalysis analyze_protocol(const PersistEventRecorder& rec,
                               const PersistGraph& graph,
                               const EngineLayout& layout);

// ---------------------------------------------------------------------------
// Seeded protocol mutations (fixtures for the rules above)
// ---------------------------------------------------------------------------

/// Deliberate protocol bugs the engines inject when built with
/// -DROMULUS_PERSISTGRAPH and the corresponding flag is set at runtime.
/// Each one is a real crash-consistency bug; romver must flag both, and the
/// silent controls (flags off, same build) must stay clean.
struct ProtocolMutations {
    /// Elide the pfence between the body write-backs and the MUT→CPY state
    /// store: the CPY state may persist before the data it advertises.
    bool elide_commit_fence = false;
    /// Issue the CPY state store + pwb BEFORE the body write-backs: the
    /// state persist is unordered with (program-order ahead of) the data.
    bool reorder_state_persist = false;
};

ProtocolMutations& protocol_mutations();

}  // namespace romulus::analysis
