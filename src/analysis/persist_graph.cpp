#include "analysis/persist_graph.hpp"

#include <cstring>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace romulus::analysis {

namespace {
constexpr size_t kLine = pmem::kCacheLineSize;
}

const char* persist_event_kind_name(PersistEventKind k) {
    switch (k) {
        case PersistEventKind::Store: return "store";
        case PersistEventKind::Pwb: return "pwb";
        case PersistEventKind::Fence: return "fence";
        case PersistEventKind::StateTransition: return "state";
        case PersistEventKind::TxBegin: return "tx-begin";
        case PersistEventKind::TxCommit: return "tx-commit";
        case PersistEventKind::TxAbort: return "tx-abort";
        case PersistEventKind::RangeLogged: return "range-logged";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// PersistEventRecorder
// ---------------------------------------------------------------------------

PersistEventRecorder::PersistEventRecorder(const uint8_t* base, size_t size,
                                           Options opts)
    : base_(base), size_(size), opts_(opts) {
    baseline_.assign(base_, base_ + size_);
    events_.reserve(1024);
}

void PersistEventRecorder::clear() {
    std::lock_guard<std::mutex> lk(mu_);
    events_.clear();
    pool_.clear();
    overflowed_ = false;
    out_of_region_ = 0;
    baseline_.assign(base_, base_ + size_);
}

void PersistEventRecorder::append(PersistEvent e) {
    if (events_.size() >= opts_.max_events) {
        overflowed_ = true;
        return;
    }
    events_.push_back(e);
}

void PersistEventRecorder::on_store(const void* addr, size_t len) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!in_region(addr)) {
            ++out_of_region_;
        } else {
            PersistEvent e;
            e.kind = PersistEventKind::Store;
            e.off = uint64_t(static_cast<const uint8_t*>(addr) - base_);
            e.len = uint32_t(len);
            append(e);
        }
    }
    if (opts_.next) opts_.next->on_store(addr, len);
}

void PersistEventRecorder::on_pwb(const void* addr) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!in_region(addr)) {
            ++out_of_region_;
        } else {
            PersistEvent e;
            e.kind = PersistEventKind::Pwb;
            e.off = uint64_t(static_cast<const uint8_t*>(addr) - base_);
            // Capture the line's content as of pwb issue: the write-back
            // carries what the line held when it was initiated (pmemcheck's
            // conservative model; engines are verified store-after-pwb clean
            // by the PersistencyChecker, so issue-time == completion-time).
            uint64_t line_base = (e.off / kLine) * kLine;
            e.content = pool_.size();
            pool_.resize(pool_.size() + kLine);
            std::memcpy(pool_.data() + e.content, base_ + line_base, kLine);
            append(e);
        }
    }
    if (opts_.next) opts_.next->on_pwb(addr);
}

void PersistEventRecorder::on_fence() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        PersistEvent e;
        e.kind = PersistEventKind::Fence;
        append(e);
    }
    if (opts_.next) opts_.next->on_fence();
}

void PersistEventRecorder::on_tx_begin() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        PersistEvent e;
        e.kind = PersistEventKind::TxBegin;
        append(e);
    }
    if (opts_.next) opts_.next->on_tx_begin();
}

void PersistEventRecorder::on_tx_commit() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        PersistEvent e;
        e.kind = PersistEventKind::TxCommit;
        append(e);
    }
    if (opts_.next) opts_.next->on_tx_commit();
}

void PersistEventRecorder::on_tx_abort() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        PersistEvent e;
        e.kind = PersistEventKind::TxAbort;
        append(e);
    }
    if (opts_.next) opts_.next->on_tx_abort();
}

void PersistEventRecorder::on_state_transition(uint32_t new_state) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        PersistEvent e;
        e.kind = PersistEventKind::StateTransition;
        e.state = new_state;
        append(e);
    }
    if (opts_.next) opts_.next->on_state_transition(new_state);
}

void PersistEventRecorder::on_range_logged(const void* addr, size_t len) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (in_region(addr)) {
            PersistEvent e;
            e.kind = PersistEventKind::RangeLogged;
            e.off = uint64_t(static_cast<const uint8_t*>(addr) - base_);
            e.len = uint32_t(len);
            append(e);
        }
    }
    if (opts_.next) opts_.next->on_range_logged(addr, len);
}

// ---------------------------------------------------------------------------
// EngineLayout
// ---------------------------------------------------------------------------

int EngineLayout::shard_of_zone(uint64_t off) const {
    for (size_t i = 0; i < shards.size(); ++i) {
        if (in_main(shards[i], off) || in_back(shards[i], off))
            return int(i);
    }
    return -1;
}

int EngineLayout::shard_of_state(uint64_t off) const {
    for (size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].state_off != kNone && shards[i].state_off == off)
            return int(i);
    }
    return -1;
}

// ---------------------------------------------------------------------------
// PersistGraph
// ---------------------------------------------------------------------------

PersistGraph PersistGraph::build(const PersistEventRecorder& rec) {
    PersistGraph g;
    uint32_t window = 0;
    std::unordered_map<uint64_t, uint32_t> last_of_line;
    g.windows_.emplace_back();
    const auto& events = rec.events();
    for (size_t i = 0; i < events.size(); ++i) {
        const PersistEvent& e = events[i];
        if (e.kind == PersistEventKind::Fence) {
            ++window;
            g.windows_.emplace_back();
            continue;
        }
        if (e.kind != PersistEventKind::Pwb) continue;
        Node n;
        n.line = e.off / kLine;
        n.pwb_off = e.off;
        n.content = e.content;
        n.window = window;
        n.event_idx = i;
        auto it = last_of_line.find(n.line);
        n.same_line_pred = it == last_of_line.end() ? kNoNode : it->second;
        uint32_t idx = uint32_t(g.nodes_.size());
        last_of_line[n.line] = idx;
        g.nodes_.push_back(n);
        g.windows_[window].push_back(idx);
    }
    g.window_count_ = window + 1;
    return g;
}

bool PersistGraph::ordered_before(uint32_t a, uint32_t b) const {
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    if (na.window < nb.window) return true;  // fence edge
    if (na.window > nb.window) return false;
    // Same window: only same-line program order constrains completion.
    return na.line == nb.line && a < b;
}

// ---------------------------------------------------------------------------
// Static protocol rules
// ---------------------------------------------------------------------------

const char* protocol_violation_kind_name(ProtocolViolation::Kind k) {
    switch (k) {
        case ProtocolViolation::Kind::UnflushedLine:
            return "unflushed-line";
        case ProtocolViolation::Kind::UnorderedStatePersist:
            return "unordered-state-persist";
    }
    return "?";
}

namespace {

const char* state_name(uint32_t st) {
    switch (st) {
        case 0: return "IDLE";
        case 1: return "MUT";
        case 2: return "CPY";
    }
    return "?";
}

struct LineTrack {
    bool dirty = false;  // store since last write-back (redundancy tracking)
};

}  // namespace

GraphAnalysis analyze_protocol(const PersistEventRecorder& rec,
                               const PersistGraph& graph,
                               const EngineLayout& layout) {
    GraphAnalysis out;
    const auto& events = rec.events();

    // Per-line write-back index (event position + fence window, in event
    // order) straight from the graph nodes.  The ordering rule must look
    // FORWARD from a store — a reordered state persist flushes the body
    // after the state word, and only a whole-stream view can name the pair.
    std::unordered_map<uint64_t, std::vector<std::pair<size_t, uint32_t>>>
        line_pwbs;
    for (const PersistGraph::Node& n : graph.nodes())
        line_pwbs[n.line].emplace_back(n.event_idx, n.window);

    std::unordered_map<uint64_t, LineTrack> lines;
    // Per shard: twin-zone line -> event index of its last store since the
    // shard's previous state-word persist.
    std::vector<std::unordered_map<uint64_t, size_t>> shard_dirty(
        layout.shards.size());
    // Shard whose state word the most recent in-region store hit; the
    // engines call on_state_transition immediately after that store, which
    // is how a transition value gets attributed to a shard.
    int last_state_store_shard = -1;
    std::vector<uint32_t> pending_state(layout.shards.size(), 0);
    uint32_t window = 0;

    for (size_t ei = 0; ei < events.size(); ++ei) {
        const PersistEvent& e = events[ei];
        switch (e.kind) {
            case PersistEventKind::Fence:
                ++window;
                ++out.fences;
                break;
            case PersistEventKind::Store: {
                ++out.stores;
                uint64_t first = e.off / kLine;
                uint64_t last = (e.off + (e.len ? e.len - 1 : 0)) / kLine;
                for (uint64_t ln = first; ln <= last; ++ln)
                    lines[ln].dirty = true;
                int zs = layout.shard_of_zone(e.off);
                if (zs >= 0) {
                    for (uint64_t ln = first; ln <= last; ++ln)
                        shard_dirty[size_t(zs)][ln] = ei;
                }
                int ss = layout.shard_of_state(e.off);
                if (ss >= 0) last_state_store_shard = ss;
                break;
            }
            case PersistEventKind::StateTransition:
                if (last_state_store_shard >= 0)
                    pending_state[size_t(last_state_store_shard)] = e.state;
                break;
            case PersistEventKind::Pwb: {
                ++out.pwbs;
                LineTrack& t = lines[e.off / kLine];
                if (!t.dirty) ++out.redundant_pwbs;
                t.dirty = false;
                int ss = layout.shard_of_state(e.off);
                if (ss < 0) break;
                // A state-word persist: every twin-zone line dirtied since
                // this shard's previous state persist must have a covering
                // write-back in a STRICTLY earlier fence window, or the
                // state word may become durable before the data it
                // advertises.  MUT persists carry no durability promise, so
                // only CPY (body durable) and IDLE (back durable) are
                // checked.
                ++out.state_persists;
                uint32_t st = pending_state[size_t(ss)];
                auto& dirty = shard_dirty[size_t(ss)];
                if (st != 1 /*MUT*/) {
                    for (const auto& [dl, store_idx] : dirty) {
                        // First write-back of this line issued after its
                        // last store, anywhere in the stream.
                        const std::pair<size_t, uint32_t>* cover = nullptr;
                        auto it = line_pwbs.find(dl);
                        if (it != line_pwbs.end()) {
                            for (const auto& p : it->second) {
                                if (p.first > store_idx) {
                                    cover = &p;
                                    break;
                                }
                            }
                        }
                        if (cover && cover->second < window) continue;  // ok
                        ProtocolViolation v;
                        v.line_off = dl * kLine;
                        v.shard = uint32_t(ss);
                        v.state_value = st;
                        v.state_window = window;
                        std::ostringstream os;
                        if (!cover) {
                            v.kind = ProtocolViolation::Kind::UnflushedLine;
                            v.line_window = ProtocolViolation::kNoWindow;
                            os << "shard " << ss << ": line 0x" << std::hex
                               << v.line_off << std::dec
                               << " dirtied before the " << state_name(st)
                               << " state persist (fence window " << window
                               << ") has no write-back at all";
                        } else {
                            v.kind =
                                ProtocolViolation::Kind::UnorderedStatePersist;
                            v.line_window = cover->second;
                            os << "shard " << ss << ": line 0x" << std::hex
                               << v.line_off << std::dec
                               << " write-back in fence window "
                               << cover->second
                               << " is not ordered before the "
                               << state_name(st)
                               << " state persist in window " << window
                               << " (no pfence between them)";
                        }
                        v.detail = os.str();
                        out.violations.push_back(std::move(v));
                    }
                }
                dirty.clear();
                break;
            }
            default:
                break;
        }
    }
    return out;
}

std::string GraphAnalysis::report() const {
    std::ostringstream os;
    os << "persist-graph: " << stores << " stores, " << pwbs
       << " write-backs (" << redundant_pwbs << " redundant), " << fences
       << " fences, " << state_persists << " state persists\n";
    if (violations.empty()) {
        os << "protocol rules: clean\n";
    } else {
        os << "protocol rules: " << violations.size() << " violation(s)\n";
        for (const ProtocolViolation& v : violations)
            os << "  [" << protocol_violation_kind_name(v.kind) << "] "
               << v.detail << "\n";
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Protocol mutations
// ---------------------------------------------------------------------------

ProtocolMutations& protocol_mutations() {
    static ProtocolMutations m;
    return m;
}

}  // namespace romulus::analysis
