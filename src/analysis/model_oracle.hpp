// romfuzz layer 2 (docs/romfuzz.md): the linearizable in-DRAM model and the
// prefix-consistency oracle.
//
// The fuzz generator is single-threaded, so the committed history is totally
// ordered and the model is simply the per-shard map state after each
// sub-transaction.  The durability contract under test: a recovered crash
// image must equal the model state after the setup plus SOME prefix of the
// episode sub-transactions — per shard all-or-nothing, and for a cross-shard
// WriteBatch (split into ascending-shard-order sub-transactions) always a
// prefix in that fixed order, never a torn sub-batch.  Callers tighten the
// admissible prefix window when they know more: a complete crash cut must
// match the full history, a fork-crash whose child reported c committed
// sub-transactions must match c or c+1 (the in-flight one may have reached
// its durability point).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/tx_trace.hpp"

namespace romulus::analysis {

/// One shard's recovered (or modeled) content: key -> value.
using ShardImage = std::map<std::string, std::string>;

/// The in-DRAM model: per-shard maps advanced one sub-transaction at a time.
class KvModel {
  public:
    explicit KvModel(uint32_t shards) : shards_(shards) {}

    /// Apply one sub-transaction (kGet is a no-op).
    void apply(const SubTx& st);
    /// Model answer for a read: true + value when present.
    bool lookup(uint32_t shard, const std::string& key,
                std::string* value_out) const;
    const ShardImage& shard(uint32_t sd) const { return shards_[sd]; }
    uint32_t shard_count() const { return uint32_t(shards_.size()); }
    uint64_t digest() const;

  private:
    std::vector<ShardImage> shards_;
};

struct PrefixCheckResult {
    bool ok = false;
    /// Episode sub-transactions applied in the matched prefix (counting
    /// kGets, which change nothing, so adjacent prefixes may coincide).
    size_t matched_prefix = 0;
    std::string detail;  ///< on failure: first divergence, per shard
};

/// Check `recovered` (one ShardImage per shard, from the post-recovery heap)
/// against the trace: it must equal the model after setup plus j episode
/// sub-transactions for some j in [min_prefix, max_prefix].
PrefixCheckResult check_prefix_consistent(const TxTrace& trace,
                                          const std::vector<ShardImage>& recovered,
                                          size_t min_prefix = 0,
                                          size_t max_prefix = SIZE_MAX);

/// The set of values `key` legally holds at ANY point of the trace —
/// including kMissing markers when the key is absent at some prefix.  The
/// concurrent-reader oracle uses this: a read observation outside the set
/// can only come from a torn snapshot.
struct KeyObservations {
    std::vector<std::string> values;  ///< sorted, deduplicated
    bool may_be_missing = false;

    bool admits(bool found, const std::string& value) const;
};
KeyObservations legal_observations(const TxTrace& trace, const std::string& key,
                                   uint32_t shard);

}  // namespace romulus::analysis
