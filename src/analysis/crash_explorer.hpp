// romver: exhaustive crash-image model checking over the persist graph
// (docs/romver.md).
//
// A legal crash image is a down-closed cut of the happens-before-persist DAG:
// a set of write-backs S such that whenever the graph orders a before b and
// b ∈ S, then a ∈ S.  With the layered fence-window structure PersistGraph
// exposes, every cut factors as: all windows before a FRONTIER window fully
// persisted, a down-closed subset of the frontier window (one prefix per
// same-line chain), and nothing after.  The explorer walks the frontier
// through the windows in order, materializes every (or, above budget, a
// seeded random sample of) frontier subset into a scratch image built from
// the recorder's baseline + captured line contents, and hands each image to
// a caller-provided check — typically: write the image over the heap file,
// run engine recovery, validate invariants.
//
// Cut counting: a window with chains of lengths c_1..c_k admits
// Π (c_i + 1) down-closed subsets; the full subset is excluded (it is the
// zero subset of the next frontier), and the everything-persisted cut is
// emitted once at the end, so each legal image is visited exactly once and
// the theoretical total is  Σ_w (Π_i (c_i + 1) − 1) + 1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/persist_graph.hpp"

namespace romulus::analysis {

struct CrashCut {
    uint64_t index = 0;           ///< position in deterministic visit order
    uint32_t frontier_window = 0; ///< first window not fully persisted
    bool complete = false;        ///< every recorded write-back persisted
    bool sampled = false;         ///< drawn by the sampler, not enumerated
};

struct ExploreOptions {
    /// Hard ceiling on materialized images across the whole run.
    uint64_t max_cuts = 1u << 16;
    /// Enumerate a frontier window exhaustively when its subset count is at
    /// most this; otherwise fall back to seeded sampling.
    uint64_t window_exhaustive_cap = 512;
    /// Distinct subsets drawn per sampled window.
    uint64_t window_samples = 64;
    uint64_t seed = 1;
    /// Keep at most this many failure descriptions in the report.
    size_t max_failures = 16;
};

struct ExploreReport {
    /// Theoretical number of legal crash images (double: real transactions
    /// reach 2^100+ for a single fence window, far past uint64_t).
    double cuts_total = 0;
    uint64_t cuts_explored = 0;
    uint64_t cuts_sampled = 0;    ///< subset of cuts_explored drawn randomly
    double cuts_dropped = 0;      ///< cuts_total - cuts_explored
    uint32_t windows_total = 0;
    uint32_t windows_sampled = 0; ///< windows where sampling replaced enumeration
    bool exhaustive = false;      ///< every legal image was materialized
    bool budget_hit = false;      ///< max_cuts stopped the walk early
    uint64_t violations = 0;      ///< images the check rejected
    std::vector<std::string> failures;

    std::string summary() const;
};

/// Validate one materialized crash image.  `image` is the full region
/// content; return false and fill `err` to record a violation.  The image
/// buffer is reused between calls — copy anything that must outlive the
/// call.
using CrashImageCheck = std::function<bool(
    const std::vector<uint8_t>& image, const CrashCut& cut, std::string& err)>;

ExploreReport explore_crash_images(const PersistGraph& graph,
                                   const PersistEventRecorder& rec,
                                   const CrashImageCheck& check,
                                   const ExploreOptions& opts = {});

}  // namespace romulus::analysis
