// romver: exhaustive crash-image model checking over the persist graph
// (docs/romver.md).
//
// A legal crash image is a down-closed cut of the happens-before-persist DAG:
// a set of write-backs S such that whenever the graph orders a before b and
// b ∈ S, then a ∈ S.  With the layered fence-window structure PersistGraph
// exposes, every cut factors as: all windows before a FRONTIER window fully
// persisted, a down-closed subset of the frontier window (one prefix per
// same-line chain), and nothing after.  The explorer walks the frontier
// through the windows in order, materializes every (or, above budget, a
// seeded random sample of) frontier subset into a scratch image built from
// the recorder's baseline + captured line contents, and hands each image to
// a caller-provided check — typically: write the image over the heap file,
// run engine recovery, validate invariants.
//
// Cut counting: a window with chains of lengths c_1..c_k admits
// Π (c_i + 1) down-closed subsets; the full subset is excluded (it is the
// zero subset of the next frontier), and the everything-persisted cut is
// emitted once at the end, so each legal image is visited exactly once and
// the theoretical total is  Σ_w (Π_i (c_i + 1) − 1) + 1.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/persist_graph.hpp"

namespace romulus::analysis {

struct CrashCut {
    uint64_t index = 0;           ///< position in deterministic visit order
    uint32_t frontier_window = 0; ///< first window not fully persisted
    bool complete = false;        ///< every recorded write-back persisted
    bool sampled = false;         ///< drawn by the sampler, not enumerated
};

struct ExploreOptions {
    /// Hard ceiling on materialized images across the whole run.
    uint64_t max_cuts = 1u << 16;
    /// Enumerate a frontier window exhaustively when its subset count is at
    /// most this; otherwise fall back to seeded sampling.
    uint64_t window_exhaustive_cap = 512;
    /// Distinct subsets drawn per sampled window.
    uint64_t window_samples = 64;
    uint64_t seed = 1;
    /// Keep at most this many failure descriptions in the report.
    size_t max_failures = 16;
};

struct ExploreReport {
    /// Theoretical number of legal crash images (double: real transactions
    /// reach 2^100+ for a single fence window, far past uint64_t).
    double cuts_total = 0;
    uint64_t cuts_explored = 0;
    uint64_t cuts_sampled = 0;    ///< subset of cuts_explored drawn randomly
    double cuts_dropped = 0;      ///< cuts_total - cuts_explored
    uint32_t windows_total = 0;
    uint32_t windows_sampled = 0; ///< windows where sampling replaced enumeration
    bool exhaustive = false;      ///< every legal image was materialized
    bool budget_hit = false;      ///< max_cuts stopped the walk early
    uint64_t violations = 0;      ///< images the check rejected
    std::vector<std::string> failures;

    std::string summary() const;
};

/// Validate one materialized crash image.  `image` is the full region
/// content; return false and fill `err` to record a violation.  The image
/// buffer is reused between calls — copy anything that must outlive the
/// call.
using CrashImageCheck = std::function<bool(
    const std::vector<uint8_t>& image, const CrashCut& cut, std::string& err)>;

ExploreReport explore_crash_images(const PersistGraph& graph,
                                   const PersistEventRecorder& rec,
                                   const CrashImageCheck& check,
                                   const ExploreOptions& opts = {});

// ---------------------------------------------------------------------------
// Reusable recovery-image validation
// ---------------------------------------------------------------------------
//
// The oracle glue every crash-image consumer needs, factored out of the
// romver harness so romfuzz and test code share one implementation: write
// the materialized image over the heap file, re-init the engine (running its
// real recovery), then check the engine-structural invariants below.  Root
// reachability / content oracles stay with the caller — only it knows what
// the roots mean.

/// Overwrite the heap file in place with a materialized crash image.
/// Throws std::runtime_error if the file cannot be rewritten.
void write_crash_image(const std::string& path,
                       const std::vector<uint8_t>& image);

struct RecoveryCheck {
    bool ok = true;
    std::string detail;  ///< semicolon-joined reasons when !ok

    void fail(std::string why) {
        ok = false;
        detail += why + "; ";
    }
};

/// Twin-half consistency: after recovery both halves of every shard must
/// agree over the allocated range, and every shard must be IDLE.  Engines
/// without twin copies (the log baselines) pass vacuously.  The engine must
/// already be init()ed (i.e. recovery has run).
template <typename E>
RecoveryCheck check_twin_halves() {
    RecoveryCheck rc;
    if constexpr (requires { E::shard_count(); }) {
        using TxS = decltype(E::state(0u));
        for (unsigned sh = 0; sh < E::shard_count(); ++sh) {
            std::ostringstream os;
            if (E::state(sh) != TxS::IDL) {
                os << "shard " << sh << " not IDLE after recovery";
                rc.fail(os.str());
                continue;
            }
            if (E::back_base(sh) != nullptr &&
                std::memcmp(E::main_base(sh), E::back_base(sh),
                            size_t(E::used_bytes(sh))) != 0) {
                os << "shard " << sh << " twin halves differ over "
                   << E::used_bytes(sh) << " used bytes";
                rc.fail(os.str());
            }
        }
    }
    return rc;
}

/// Allocator liveness: a post-recovery transaction on every shard must still
/// be able to allocate and free.  The free-list metadata is walked
/// defensively first — a corrupt image (e.g. recovered under a planted
/// protocol mutation) has garbage chunk pointers, and letting the real
/// alloc path chase them would crash the prober instead of reporting.
template <typename E>
RecoveryCheck probe_allocator() {
    RecoveryCheck rc;
    auto alloc_of = [](unsigned sh) -> auto& {
        if constexpr (requires(unsigned s) { E::allocator(s); }) {
            return E::allocator(sh);
        } else {
            (void)sh;
            return E::allocator();
        }
    };
    auto probe = [&](auto run, unsigned sh) {
        // metadata_sane makes the free lists safe to walk; check_consistency
        // then validates the boundary tags the free path's coalescing
        // trusts.  Only a heap that passes both is given to the real
        // allocator.
        if (!alloc_of(sh).metadata_sane() ||
            alloc_of(sh).check_consistency() == 0) {
            std::ostringstream os;
            os << "allocator metadata corrupt after recovery (shard " << sh
               << ")";
            rc.fail(os.str());
            return;
        }
        try {
            run([&] {
                void* p = E::alloc_bytes(64);
                if (p == nullptr)
                    throw std::runtime_error("alloc_bytes returned null");
                E::free_bytes(p);
            });
        } catch (const std::exception& ex) {
            std::ostringstream os;
            os << "allocator broken after recovery (shard " << sh
               << "): " << ex.what();
            rc.fail(os.str());
        }
    };
    if constexpr (requires { E::shard_count(); }) {
        for (unsigned sh = 0; sh < E::shard_count(); ++sh)
            probe([&](auto&& f) { E::updateTx(sh, f); }, sh);
    } else {
        probe([&](auto&& f) { E::updateTx(f); }, 0);
    }
    return rc;
}

/// Both structural checks in one call (the common shape).
template <typename E>
RecoveryCheck validate_recovered_engine() {
    RecoveryCheck rc = check_twin_halves<E>();
    RecoveryCheck pa = probe_allocator<E>();
    if (!pa.ok) {
        rc.ok = false;
        rc.detail += pa.detail;
    }
    return rc;
}

}  // namespace romulus::analysis
