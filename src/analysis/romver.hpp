// romver engine harness (docs/romver.md): drives the canonical romver
// workload against any of the five PTMs — record one update transaction's
// persist-event stream, run the static protocol rules on its graph, and
// model-check every (or a budgeted sample of) legal crash image through the
// engine's real recovery path.
//
// The workload is the acceptance shape from the commit-path work: a heap
// carrying a 64 KiB ballast allocation (keeps the engines out of full-copy
// mode), a `tx_bytes` buffer and a counter as root objects, then exactly one
// recorded transaction that overwrites the buffer with a pattern and bumps
// the counter 0 → 1.  Every legal crash image must recover to one of the two
// atomic states: (counter == 0, buffer all-zero) or (counter == 1, buffer
// all-pattern) — plus twin-half/allocator/root invariants.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/crash_explorer.hpp"
#include "analysis/persist_graph.hpp"
#include "core/persist.hpp"
#include "pmem/flush.hpp"

namespace romulus::analysis {

struct RomverConfig {
    std::string path;               ///< heap file (required)
    /// Keep small — every crash cut rewrites the whole file — but the redo
    /// baseline's fixed per-thread logs alone need ~8 MiB.
    size_t heap_bytes = 16u << 20;
    size_t tx_bytes = 8192;
    size_t ballast_bytes = 64 * 1024;
    uint8_t pattern = 0xA5;
};

template <typename E>
class RomverHarness {
  public:
    explicit RomverHarness(RomverConfig cfg) : cfg_(std::move(cfg)) {
        if (cfg_.path.empty())
            throw std::invalid_argument("RomverHarness: empty heap path");
    }

    ~RomverHarness() {
        if (E::initialized()) E::close();
        std::remove(cfg_.path.c_str());
    }

    RomverHarness(const RomverHarness&) = delete;
    RomverHarness& operator=(const RomverHarness&) = delete;

    /// Format a fresh heap, commit the setup transaction (ballast + buffer +
    /// counter roots, all durable), then record exactly one update
    /// transaction and close the engine.  The on-disk heap is left in the
    /// fully-committed state; the recorder's baseline is the pre-transaction
    /// durable image.
    void record() {
        std::remove(cfg_.path.c_str());
        init_engine();
        E::updateTx([&] {
            if (cfg_.ballast_bytes != 0)
                (void)E::alloc_bytes(cfg_.ballast_bytes);  // pins used_size
            auto* buf = static_cast<uint8_t*>(E::alloc_bytes(cfg_.tx_bytes));
            std::vector<uint8_t> zero(cfg_.tx_bytes, 0);
            E::store_range(buf, zero.data(), cfg_.tx_bytes);
            auto* ctr = static_cast<Counter*>(E::alloc_bytes(sizeof(Counter)));
            ctr->pstore(0);
            E::put_object(0, buf);
            E::put_object(1, ctr);
        });

        rec_ = std::make_unique<PersistEventRecorder>(E::region().base(),
                                                      E::region().size());
        pmem::set_sim_hooks(rec_.get());
        E::updateTx([&] {
            auto* buf = E::template get_object<uint8_t>(0);
            std::vector<uint8_t> pat(cfg_.tx_bytes, cfg_.pattern);
            E::store_range(buf, pat.data(), cfg_.tx_bytes);
            auto* ctr = E::template get_object<Counter>(1);
            ctr->pstore(1);
        });
        pmem::set_sim_hooks(nullptr);

        layout_ = EngineLayout::of<E>();
        graph_ = std::make_unique<PersistGraph>(PersistGraph::build(*rec_));
        E::close();
    }

    const PersistEventRecorder& recorder() const { return *rec_; }
    const PersistGraph& graph() const { return *graph_; }
    const EngineLayout& layout() const { return layout_; }

    /// Static protocol rules + redundant-flush diagnostic on the recording.
    GraphAnalysis analyze() const {
        return analyze_protocol(*rec_, *graph_, layout_);
    }

    /// Model-check the crash images: each cut is written over the heap file,
    /// the engine re-initialised (running its recovery), and the invariants
    /// validated.  record() must have run first.
    ExploreReport explore(const ExploreOptions& opts = {}) {
        if (!rec_ || !graph_)
            throw std::logic_error("RomverHarness::explore before record");
        return explore_crash_images(
            *graph_, *rec_,
            [this](const std::vector<uint8_t>& image, const CrashCut& cut,
                   std::string& err) {
                return validate_image(image, cut, err);
            },
            opts);
    }

  private:
    using Counter = persist<uint64_t, E>;

    void init_engine() {
        if constexpr (requires { E::init(size_t{0}, std::string{}, 1u); }) {
            E::init(cfg_.heap_bytes, cfg_.path, 1);  // single-shard workload
        } else {
            E::init(cfg_.heap_bytes, cfg_.path);
        }
    }

    bool validate_image(const std::vector<uint8_t>& image, const CrashCut& cut,
                        std::string& err) {
        write_crash_image(cfg_.path, image);
        E::crash_reset_for_tests();
        try {
            init_engine();
        } catch (const std::exception& ex) {
            err = std::string("recovery threw: ") + ex.what();
            return false;
        }
        std::ostringstream os;
        bool ok = true;

        // Engine-structural invariants (shared with romfuzz): twin-half
        // consistency + IDLE states after recovery.
        if (RecoveryCheck rc = check_twin_halves<E>(); !rc.ok) {
            ok = false;
            os << rc.detail;
        }

        // Root reachability + KV oracle: the transaction was atomic, so the
        // counter selects exactly one of the two legal buffer states.
        auto* buf = E::template get_object<uint8_t>(0);
        auto* ctr = E::template get_object<Counter>(1);
        if (buf == nullptr || ctr == nullptr) {
            ok = false;
            os << "root objects unreachable after recovery; ";
        } else {
            uint64_t k = ctr->pload();
            if (k != 0 && k != 1) {
                ok = false;
                os << "counter holds " << k << ", expected 0 or 1; ";
            } else if (cut.complete && k != 1) {
                ok = false;
                os << "complete cut recovered to counter 0; ";
            } else {
                uint8_t want = k == 1 ? cfg_.pattern : uint8_t{0};
                size_t bad = cfg_.tx_bytes;
                for (size_t i = 0; i < cfg_.tx_bytes; ++i) {
                    if (buf[i] != want) {
                        bad = i;
                        break;
                    }
                }
                if (bad != cfg_.tx_bytes) {
                    ok = false;
                    os << "buffer byte " << bad << " is 0x" << std::hex
                       << unsigned(buf[bad]) << std::dec
                       << " but counter says 0x" << std::hex << unsigned(want)
                       << std::dec << " (torn transaction); ";
                }
            }
        }

        // Allocator metadata: a post-recovery transaction must still be able
        // to allocate and free (shared validator, every shard probed).
        if (ok) {
            if (RecoveryCheck rc = probe_allocator<E>(); !rc.ok) {
                ok = false;
                os << rc.detail;
            }
        }

        E::close();
        if (!ok) err = os.str();
        return ok;
    }

    RomverConfig cfg_;
    std::unique_ptr<PersistEventRecorder> rec_;
    std::unique_ptr<PersistGraph> graph_;
    EngineLayout layout_;
};

}  // namespace romulus::analysis
