// romfuzz layer 1 (docs/romfuzz.md): transaction record/replay.
//
// A TxTrace is the complete, self-contained description of one fuzz history
// over the KV store: a seeded generator emits an op sequence (setup
// population + recorded episode), the harness executes it as durable
// transactions, and the same trace replayed against a fresh heap re-executes
// byte-for-byte — same allocations, same persist-event stream.  Cross-shard
// WriteBatches appear in the trace as consecutive per-shard sub-transactions
// in ascending shard order, mirroring ShardedKVStore::write's commit order,
// which is what makes the prefix-persistence contract checkable offline.
//
// The trace serializes to a compact binary log (a repro bundle): header +
// sub-transaction records + optional repro parameters (explore budget + the
// violating cut) + optional per-shard access log + FNV-1a checksum footer.
// Truncated or corrupted bundles are rejected with TraceError, never
// misparsed.
//
// The access log is the "ordered access recorder" half: per-shard streams of
// interposed stores plus tx-boundary/state events, distilled from a
// PersistEventRecorder capture (the same SimHooks plumbing romrace's
// pload/pstore interposition rides).  Two runs of the same trace must
// produce identical access logs — the replay-determinism witness
// tests/test_tx_trace.cpp asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/persist_graph.hpp"

namespace romulus::analysis {

/// Malformed trace bundle: truncation, bad magic/version, checksum mismatch.
struct TraceError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

enum class TraceOpKind : uint8_t { kPut = 0, kDel = 1, kGet = 2 };

struct TraceOp {
    TraceOpKind kind = TraceOpKind::kPut;
    std::string key;
    std::string value;  ///< empty for kDel/kGet

    bool operator==(const TraceOp&) const = default;
};

/// One durable transaction on one shard.  A cross-shard batch is a run of
/// consecutive SubTx records sharing a nonzero batch_id, in ascending shard
/// order.  A kGet rides alone in its own SubTx (one read transaction).
struct SubTx {
    uint8_t shard = 0;
    uint32_t batch_id = 0;  ///< 0: standalone; >0: part of a cross-shard batch
    std::vector<TraceOp> ops;

    bool is_get() const {
        return ops.size() == 1 && ops[0].kind == TraceOpKind::kGet;
    }
    bool operator==(const SubTx&) const = default;
};

/// Everything needed to re-run the exact crash scenario that failed.
struct ReproInfo {
    uint8_t mode = 0;  ///< 0: crash_explorer cuts, 1: fork-and-crash
    uint64_t explore_seed = 1;
    uint64_t max_cuts = 0;
    uint64_t window_exhaustive_cap = 0;
    uint64_t window_samples = 0;
    uint64_t cut_index = 0;  ///< explore mode: the violating cut's index
    uint64_t fence = 0;      ///< fork mode: episode fence the child died at

    bool operator==(const ReproInfo&) const = default;
};

/// One entry of the ordered access log.
struct AccessEvent {
    /// 0 store, 1 tx-begin, 2 tx-commit, 3 tx-abort, 4 state transition.
    uint8_t kind = 0;
    uint32_t len = 0;  ///< store length / state value
    uint64_t off = 0;  ///< region-relative offset (stores and states)

    bool operator==(const AccessEvent&) const = default;
};

/// Per-shard ordered access streams.  Stream s < shard_count holds the
/// stores attributed to shard s's twin zone; the final stream is global
/// (tx boundaries, state transitions, and stores outside any shard zone —
/// header words, baseline logs).
struct AccessLog {
    std::vector<std::vector<AccessEvent>> streams;

    /// Distill the access streams from a persist-event capture, attributing
    /// stores to shards via the engine layout.
    static AccessLog from_recording(const PersistEventRecorder& rec,
                                    const EngineLayout& layout);

    bool empty() const;
    size_t total_events() const;
    uint64_t digest() const;
    bool operator==(const AccessLog&) const = default;
};

/// Engine tags stored in trace headers so --replay can route the bundle.
enum : uint8_t {
    kEngineRomulusNL = 0,
    kEngineRomulusLog = 1,
    kEngineRomulusLR = 2,
    kEngineUndoLog = 3,
    kEngineRedoLog = 4,
    kEngineUnknown = 255,
};
const char* engine_tag_name(uint8_t tag);

struct TxTrace {
    uint8_t engine_id = kEngineUnknown;
    uint32_t shard_count = 1;
    uint64_t seed = 0;
    /// Leading sub-transactions that populate the store before recording
    /// starts; they are durable in every crash image (the recorder baseline).
    uint32_t setup_count = 0;
    std::vector<SubTx> subtxs;

    bool has_repro = false;
    ReproInfo repro;
    AccessLog access;  ///< empty until a run fills it

    size_t episode_count() const { return subtxs.size() - setup_count; }
    const SubTx& episode(size_t i) const { return subtxs[setup_count + i]; }

    /// Serialize to the bundle format (always internally consistent:
    /// deserialize(serialize()) round-trips).
    std::vector<uint8_t> serialize() const;
    /// Parse a bundle; throws TraceError on any truncation, bad
    /// magic/version, or checksum mismatch.
    static TxTrace deserialize(const std::vector<uint8_t>& bytes);

    void save(const std::string& path) const;
    static TxTrace load(const std::string& path);

    /// FNV-1a over the serialized bytes — the replay-determinism witness.
    uint64_t digest() const;

    bool operator==(const TxTrace&) const = default;
};

/// Workload-shape knobs for the seeded generator.
struct GenConfig {
    uint32_t setup_ops = 48;    ///< unrecorded population PUTs
    uint32_t episode_ops = 24;  ///< recorded sub-transaction budget
    uint32_t key_space = 96;    ///< distinct keys
    uint32_t value_max = 160;   ///< value length drawn from [0, value_max]
    uint32_t put_pct = 50;
    uint32_t del_pct = 15;
    uint32_t get_pct = 20;      ///< remainder of 100 goes to batches
    uint32_t batch_ops = 6;     ///< ops per cross-shard WriteBatch
    /// Key skew: each key index is the minimum of this many uniform draws,
    /// biasing the workload toward low-numbered (hot) keys.  1 = uniform.
    uint32_t skew_draws = 2;
};

/// Deterministically generate a trace: same (cfg, seed, shard_count, route)
/// ⇒ identical trace bytes.  `route` maps a key to its shard (pass
/// db::shard_for_key routing for ShardedKVStore; a constant 0 for the
/// single-shard baselines).  Uses only integer arithmetic on mt19937_64
/// outputs, so the bytes are stable across platforms.
TxTrace generate_trace(const GenConfig& cfg, uint64_t seed,
                       uint32_t shard_count, uint8_t engine_id,
                       const std::function<unsigned(std::string_view)>& route);

}  // namespace romulus::analysis
