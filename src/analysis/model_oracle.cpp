#include "analysis/model_oracle.hpp"

#include <algorithm>
#include <sstream>

namespace romulus::analysis {

namespace {

uint64_t fnv1a(const void* p, size_t n, uint64_t h) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 1099511628211ull;
    }
    return h;
}

/// Human-readable first divergence between a model shard and a recovered one.
std::string describe_diff(uint32_t sd, const ShardImage& want,
                          const ShardImage& got) {
    std::ostringstream os;
    os << "shard " << sd << ": ";
    for (const auto& [k, v] : want) {
        auto it = got.find(k);
        if (it == got.end()) {
            os << "missing key \"" << k << "\"";
            return os.str();
        }
        if (it->second != v) {
            os << "key \"" << k << "\" holds " << it->second.size()
               << " bytes, model expects " << v.size()
               << (it->second.size() == v.size() ? " (content differs)" : "");
            return os.str();
        }
    }
    for (const auto& [k, v] : got) {
        if (!want.count(k)) {
            os << "unexpected key \"" << k << "\"";
            return os.str();
        }
    }
    os << "identical";
    return os.str();
}

}  // namespace

void KvModel::apply(const SubTx& st) {
    ShardImage& sh = shards_[st.shard];
    for (const TraceOp& op : st.ops) {
        switch (op.kind) {
            case TraceOpKind::kPut:
                sh[op.key] = op.value;
                break;
            case TraceOpKind::kDel:
                sh.erase(op.key);
                break;
            case TraceOpKind::kGet:
                break;
        }
    }
}

bool KvModel::lookup(uint32_t shard, const std::string& key,
                     std::string* value_out) const {
    const ShardImage& sh = shards_[shard];
    auto it = sh.find(key);
    if (it == sh.end()) return false;
    if (value_out != nullptr) *value_out = it->second;
    return true;
}

uint64_t KvModel::digest() const {
    uint64_t h = 1469598103934665603ull;
    for (const ShardImage& sh : shards_) {
        uint64_t n = sh.size();
        h = fnv1a(&n, sizeof(n), h);
        for (const auto& [k, v] : sh) {
            uint64_t kl = k.size(), vl = v.size();
            h = fnv1a(&kl, sizeof(kl), h);
            h = fnv1a(k.data(), k.size(), h);
            h = fnv1a(&vl, sizeof(vl), h);
            h = fnv1a(v.data(), v.size(), h);
        }
    }
    return h;
}

PrefixCheckResult check_prefix_consistent(
    const TxTrace& trace, const std::vector<ShardImage>& recovered,
    size_t min_prefix, size_t max_prefix) {
    PrefixCheckResult r;
    if (recovered.size() != trace.shard_count) {
        r.detail = "recovered image has " + std::to_string(recovered.size()) +
                   " shards, trace has " + std::to_string(trace.shard_count);
        return r;
    }

    KvModel model(trace.shard_count);
    for (uint32_t i = 0; i < trace.setup_count; ++i)
        model.apply(trace.subtxs[i]);

    // Walk prefixes j = 0..M, keeping a per-shard equality flag and only
    // re-comparing the shard each step touches.
    const size_t M = trace.episode_count();
    std::vector<char> equal(trace.shard_count);
    size_t bad = 0;
    for (uint32_t sd = 0; sd < trace.shard_count; ++sd) {
        equal[sd] = model.shard(sd) == recovered[sd];
        if (!equal[sd]) ++bad;
    }
    std::vector<size_t> matched_outside;
    for (size_t j = 0;; ++j) {
        if (bad == 0) {
            if (j >= min_prefix && j <= max_prefix) {
                r.ok = true;
                r.matched_prefix = j;
                return r;
            }
            matched_outside.push_back(j);
        }
        if (j == M) break;
        const SubTx& st = trace.episode(j);
        if (!st.is_get()) {
            model.apply(st);
            const bool now = model.shard(st.shard) == recovered[st.shard];
            if (now != bool(equal[st.shard])) {
                equal[st.shard] = now;
                bad += now ? -1 : 1;
            }
        }
    }

    std::ostringstream os;
    os << "recovered image matches no committed prefix in ["
       << min_prefix << ", "
       << (max_prefix > M ? M : max_prefix) << "] of " << M
       << " episode sub-txs; ";
    if (!matched_outside.empty()) {
        // Matching a prefix outside the admissible window is the
        // lost-durability / phantom-commit signature, as opposed to a torn
        // image that matches nothing.
        os << "it equals prefix";
        for (size_t j : matched_outside) os << " " << j;
        os << " outside the window";
    } else {
        // Diff against the model at the window's lower bound — the state the
        // recovered image is closest to being obliged to match.
        KvModel at(trace.shard_count);
        for (uint32_t i = 0; i < trace.setup_count; ++i)
            at.apply(trace.subtxs[i]);
        const size_t lo = std::min(min_prefix, M);
        for (size_t j = 0; j < lo; ++j) at.apply(trace.episode(j));
        os << "vs prefix " << lo << ": ";
        for (uint32_t sd = 0; sd < trace.shard_count; ++sd) {
            if (at.shard(sd) != recovered[sd])
                os << describe_diff(sd, at.shard(sd), recovered[sd]) << "; ";
        }
    }
    r.detail = os.str();
    return r;
}

bool KeyObservations::admits(bool found, const std::string& value) const {
    if (!found) return may_be_missing;
    return std::binary_search(values.begin(), values.end(), value);
}

KeyObservations legal_observations(const TxTrace& trace, const std::string& key,
                                   uint32_t shard) {
    KeyObservations obs;
    bool present = false;
    std::string current;
    auto note = [&] {
        if (present) {
            obs.values.push_back(current);
        } else {
            obs.may_be_missing = true;
        }
    };
    note();  // state before any sub-transaction
    for (const SubTx& st : trace.subtxs) {
        if (st.shard != shard) continue;
        for (const TraceOp& op : st.ops) {
            if (op.key != key) continue;
            if (op.kind == TraceOpKind::kPut) {
                present = true;
                current = op.value;
            } else if (op.kind == TraceOpKind::kDel) {
                present = false;
                current.clear();
            }
        }
        note();
    }
    std::sort(obs.values.begin(), obs.values.end());
    obs.values.erase(std::unique(obs.values.begin(), obs.values.end()),
                     obs.values.end());
    return obs;
}

}  // namespace romulus::analysis
