#include "analysis/crash_explorer.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace romulus::analysis {

void write_crash_image(const std::string& path,
                       const std::vector<uint8_t>& image) {
    std::ofstream f(path, std::ios::binary | std::ios::in);
    if (!f)
        throw std::runtime_error("write_crash_image: cannot reopen heap file " +
                                 path);
    f.write(reinterpret_cast<const char*>(image.data()),
            std::streamsize(image.size()));
    if (!f)
        throw std::runtime_error("write_crash_image: image write failed for " +
                                 path);
}

namespace {

constexpr size_t kLine = pmem::kCacheLineSize;

// One frontier window, factored into same-line chains.  A down-closed
// subset of the window is a choice of prefix length per chain.
struct WindowChains {
    std::vector<std::vector<uint32_t>> chains;  // node indices, program order
    double subsets() const {  // down-closed subsets incl. empty + full
        double n = 1;
        for (const auto& c : chains) n *= double(c.size() + 1);
        return n;
    }
};

WindowChains factor_window(const PersistGraph& g, uint32_t w) {
    WindowChains wc;
    std::unordered_map<uint64_t, size_t> chain_of_line;
    for (uint32_t node : g.window_nodes()[w]) {
        uint64_t line = g.nodes()[node].line;
        auto it = chain_of_line.find(line);
        if (it == chain_of_line.end()) {
            chain_of_line.emplace(line, wc.chains.size());
            wc.chains.push_back({node});
        } else {
            wc.chains[it->second].push_back(node);
        }
    }
    return wc;
}

// Applies / reverts one frontier subset on the shared image.
class FrontierPatch {
  public:
    FrontierPatch(std::vector<uint8_t>& image, const PersistGraph& g,
                  const PersistEventRecorder& rec, const WindowChains& wc)
        : image_(image), g_(g), rec_(rec), wc_(wc) {
        // Save the pre-window content of every line the window touches.
        for (const auto& chain : wc_.chains) {
            uint64_t line = g_.nodes()[chain[0]].line;
            saved_.emplace_back(line, std::vector<uint8_t>(
                                          image_.begin() + line * kLine,
                                          image_.begin() + (line + 1) * kLine));
        }
    }

    /// digits[i] = how many write-backs of chain i persisted (prefix length).
    void apply(const std::vector<uint32_t>& digits) {
        for (size_t i = 0; i < wc_.chains.size(); ++i) {
            if (digits[i] == 0) continue;
            // Only the LAST persisted write-back of a line is visible.
            uint32_t node = wc_.chains[i][digits[i] - 1];
            const PersistGraph::Node& n = g_.nodes()[node];
            std::memcpy(image_.data() + n.line * kLine,
                        rec_.line_content(rec_.events()[n.event_idx]),
                        kLine);
        }
    }

    void revert() {
        for (const auto& [line, bytes] : saved_)
            std::memcpy(image_.data() + line * kLine, bytes.data(), kLine);
    }

  private:
    std::vector<uint8_t>& image_;
    const PersistGraph& g_;
    const PersistEventRecorder& rec_;
    const WindowChains& wc_;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> saved_;
};

uint64_t digits_key(const std::vector<uint32_t>& digits) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (uint32_t d : digits) {
        h ^= d;
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace

ExploreReport explore_crash_images(const PersistGraph& graph,
                                   const PersistEventRecorder& rec,
                                   const CrashImageCheck& check,
                                   const ExploreOptions& opts) {
    ExploreReport rep;
    rep.windows_total = graph.window_count();
    std::mt19937_64 rng(opts.seed);

    // Factor every window up front so cuts_total (and therefore the dropped
    // count) is exact even when the budget truncates the walk early.
    std::vector<WindowChains> factored;
    factored.reserve(graph.window_count());
    for (uint32_t w = 0; w < graph.window_count(); ++w) {
        factored.push_back(factor_window(graph, w));
        rep.cuts_total += factored.back().subsets() - 1;
    }
    rep.cuts_total += 1;  // the everything-persisted cut

    // The shared image starts as the baseline and advances window by window:
    // while window w is the frontier, every window < w has been applied in
    // full and nothing at or after w has.
    std::vector<uint8_t> image = rec.baseline();
    uint64_t cut_index = 0;
    bool truncated = false;

    auto run_check = [&](const CrashCut& cut) {
        ++rep.cuts_explored;
        if (cut.sampled) ++rep.cuts_sampled;
        std::string err;
        if (!check(image, cut, err)) {
            ++rep.violations;
            if (rep.failures.size() < opts.max_failures) {
                std::ostringstream os;
                os << "cut " << cut.index << " (frontier window "
                   << cut.frontier_window
                   << (cut.sampled ? ", sampled" : "")
                   << (cut.complete ? ", complete" : "") << "): "
                   << (err.empty() ? "check failed" : err);
                rep.failures.push_back(os.str());
            }
        }
    };

    for (uint32_t w = 0; w < graph.window_count() && !truncated; ++w) {
        const WindowChains& wc = factored[w];
        // Proper subsets of this frontier (full subset excluded: it is the
        // zero subset of the next frontier; the all-windows-complete cut is
        // emitted after the loop).
        double proper = wc.subsets() - 1;
        if (proper <= 0) continue;  // empty window: same cut as next frontier

        FrontierPatch patch(image, graph, rec, wc);
        std::vector<uint32_t> digits(wc.chains.size(), 0);
        auto visit = [&](bool sampled) {
            if (rep.cuts_explored >= opts.max_cuts) {
                truncated = true;
                return false;
            }
            CrashCut cut;
            cut.index = cut_index++;
            cut.frontier_window = w;
            cut.sampled = sampled;
            patch.apply(digits);
            run_check(cut);
            patch.revert();
            return true;
        };

        if (proper + 1 <= double(opts.window_exhaustive_cap)) {
            // Mixed-radix count over chain-prefix lengths, skipping the
            // all-full combination.
            bool full;
            do {
                full = true;
                for (size_t i = 0; i < digits.size(); ++i)
                    if (digits[i] != wc.chains[i].size()) {
                        full = false;
                        break;
                    }
                if (!full && !visit(false)) break;
                // increment
                size_t i = 0;
                while (i < digits.size()) {
                    if (digits[i] < wc.chains[i].size()) {
                        ++digits[i];
                        break;
                    }
                    digits[i] = 0;
                    ++i;
                }
                if (i == digits.size()) break;  // wrapped: done
            } while (!truncated);
        } else {
            ++rep.windows_sampled;
            // Seeded sampling of distinct proper subsets.  Always include
            // the empty subset (crash exactly at the fence) — it is the
            // boundary cut the legacy tests exercise.
            std::unordered_set<uint64_t> seen;
            std::fill(digits.begin(), digits.end(), 0u);
            seen.insert(digits_key(digits));
            if (!visit(true)) break;
            uint64_t want = std::min<double>(double(opts.window_samples),
                                             proper);
            for (uint64_t s = 1; s < want && !truncated; ++s) {
                for (int attempt = 0; attempt < 64; ++attempt) {
                    bool full = true;
                    for (size_t i = 0; i < digits.size(); ++i) {
                        digits[i] = uint32_t(
                            rng() % (uint64_t(wc.chains[i].size()) + 1));
                        if (digits[i] != wc.chains[i].size()) full = false;
                    }
                    if (full) continue;  // proper subsets only
                    if (seen.insert(digits_key(digits)).second) break;
                }
                if (!visit(true)) break;
            }
        }

        // Advance the frontier: apply window w in full, permanently.
        std::fill(digits.begin(), digits.end(), 0u);
        for (size_t i = 0; i < wc.chains.size(); ++i)
            digits[i] = uint32_t(wc.chains[i].size());
        patch.apply(digits);
    }

    // The everything-persisted cut.
    if (!truncated) {
        CrashCut cut;
        cut.index = cut_index++;
        cut.frontier_window = graph.window_count();
        cut.complete = true;
        run_check(cut);
    }
    rep.budget_hit = truncated;
    rep.cuts_dropped = rep.cuts_total - double(rep.cuts_explored);
    if (rep.cuts_dropped < 0) rep.cuts_dropped = 0;
    rep.exhaustive = !truncated && rep.cuts_sampled == 0 &&
                     double(rep.cuts_explored) == rep.cuts_total;
    return rep;
}

std::string ExploreReport::summary() const {
    std::ostringstream os;
    os << "crash-explorer: " << cuts_explored << " image(s) checked ("
       << cuts_sampled << " sampled) of ";
    if (cuts_total < 1e15)
        os << uint64_t(cuts_total);
    else
        os << cuts_total;
    os << " legal crash image(s), " << windows_total << " fence window(s) ("
       << windows_sampled << " sampled)";
    if (exhaustive) {
        os << " [exhaustive]";
    } else {
        os << "; dropped ";
        if (cuts_dropped < 1e15)
            os << uint64_t(cuts_dropped);
        else
            os << cuts_dropped;
        os << " cut(s)" << (budget_hit ? " [budget hit]" : "");
    }
    os << "; " << violations << " violation(s)";
    for (const std::string& f : failures) os << "\n  " << f;
    return os.str();
}

}  // namespace romulus::analysis
