#include "analysis/race_detector.hpp"

#include <algorithm>
#include <sstream>

namespace romulus::analysis {

namespace {

// Transaction context of the current thread (a string literal set by the
// engines' tx lifecycle hooks; nullptr = outside any transaction).
thread_local const char* tl_tx_kind = nullptr;

const char* state_name(uint32_t st) {
    switch (st) {
        case 0: return "IDLE";
        case 1: return "MUTATING";
        case 2: return "COPYING";
        default: return "?";
    }
}

}  // namespace

RaceDetector& RaceDetector::instance() {
    static RaceDetector d;
    return d;
}

void RaceDetector::enable(const Options& opts) {
    std::lock_guard lk(mu_);
    opts_ = opts;
    enabled_.store(true, std::memory_order_relaxed);
}

void RaceDetector::disable() {
    enabled_.store(false, std::memory_order_relaxed);
}

void RaceDetector::reset() {
    std::lock_guard lk(mu_);
    for (auto& vc : threads_) vc = VectorClock{};
    sync_vc_.clear();
    shadow_.clear();
    regions_.clear();
    region_names_.clear();
    reports_.clear();
    dropped_reports_ = 0;
    trace_.clear();
    seq_ = 0;
}

// ---------------------------------------------------------------- regions

void RaceDetector::register_region(const void* base, size_t size,
                                   const char* name, const char* part,
                                   const std::atomic<uint32_t>* state_word) {
    if (!enabled()) return;
    std::lock_guard lk(mu_);
    const auto b = reinterpret_cast<uintptr_t>(base);
    // Re-registration of the same base (engine re-init) replaces the entry.
    regions_.erase(std::remove_if(regions_.begin(), regions_.end(),
                                  [&](const Region& r) { return r.base == b; }),
                   regions_.end());
    std::string full = std::string(name) + "." + part;
    region_names_.push_back(full);
    regions_.push_back(Region{b, size, std::move(full),
                              int(region_names_.size()) - 1, state_word});
}

void RaceDetector::unregister_region(const void* base) {
    if (!enabled()) return;
    std::lock_guard lk(mu_);
    const auto b = reinterpret_cast<uintptr_t>(base);
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
        if (it->base != b) continue;
        const uintptr_t lo = it->base, hi = it->base + it->size;
        for (auto s = shadow_.begin(); s != shadow_.end();) {
            if (s->first >= lo && s->first < hi)
                s = shadow_.erase(s);
            else
                ++s;
        }
        regions_.erase(it);
        return;
    }
}

const RaceDetector::Region* RaceDetector::find_region(uintptr_t addr) const {
    for (const auto& r : regions_)
        if (addr >= r.base && addr < r.base + r.size) return &r;
    return nullptr;
}

// ----------------------------------------------------------------- events

VectorClock& RaceDetector::thread_vc(int t) {
    VectorClock& vc = threads_[size_t(t)];
    if (vc.c[size_t(t)] == 0) vc.c[size_t(t)] = 1;  // first event of this slot
    return vc;
}

RaceDetector::LastAccess RaceDetector::make_access(int tid, bool is_write,
                                                   uintptr_t addr, size_t len,
                                                   const Region* reg) {
    LastAccess a;
    a.tid = tid;
    a.seq = ++seq_;
    a.addr = addr;
    a.len = uint32_t(len);
    a.tx_kind = tl_tx_kind;
    a.region_id = reg->name_id;
    if (reg->state_word != nullptr) {
        a.heap_state = reg->state_word->load(std::memory_order_relaxed);
        a.has_state = true;
    }
    (void)is_write;
    return a;
}

RaceDetector::AccessSite RaceDetector::materialize(const LastAccess& a,
                                                   bool is_write) const {
    AccessSite s;
    s.tid = a.tid;
    s.is_write = is_write;
    s.addr = a.addr;
    s.len = a.len;
    s.seq = a.seq;
    s.tx_kind = a.tx_kind ? a.tx_kind : "-";
    s.heap_state = a.heap_state;
    s.has_state = a.has_state;
    if (a.region_id >= 0 && size_t(a.region_id) < region_names_.size()) {
        s.region = region_names_[size_t(a.region_id)];
        // Recompute the offset from the live region table when possible.
        for (const auto& r : regions_) {
            if (a.addr >= r.base && a.addr < r.base + r.size) {
                s.region_off = a.addr - r.base;
                break;
            }
        }
    } else {
        s.region = "?";
    }
    return s;
}

void RaceDetector::record_race(const char* kind, const LastAccess& prev,
                               bool prev_write, const LastAccess& cur,
                               bool cur_write) {
    if (reports_.size() >= opts_.max_reports) {
        ++dropped_reports_;
        return;
    }
    Report r;
    r.kind = kind;
    r.prev = materialize(prev, prev_write);
    r.cur = materialize(cur, cur_write);
    reports_.push_back(std::move(r));
}

void RaceDetector::read_locked(int t, const void* addr, size_t len) {
    const auto a = reinterpret_cast<uintptr_t>(addr);
    const Region* reg = find_region(a);
    if (reg == nullptr || len == 0) return;
    VectorClock& C = thread_vc(t);
    const uintptr_t first = a & ~uintptr_t{7};
    const uintptr_t last = (a + len - 1) & ~uintptr_t{7};
    for (uintptr_t w = first; w <= last; w += 8) {
        Shadow& cell = shadow_[w];
        LastAccess acc = make_access(t, /*is_write=*/false, a, len, reg);
        if (cell.w != 0 && !ordered(cell.w, C))
            record_race("write-then-read", cell.last_w, true, acc, false);
        // FastTrack read recording: keep a single epoch while reads are
        // totally ordered; promote to a full vector clock otherwise.
        if (cell.rvc) {
            cell.rvc->c[size_t(t)] = C.c[size_t(t)];
        } else if (cell.r == 0 || epoch_tid(cell.r) == t ||
                   ordered(cell.r, C)) {
            cell.r = make_epoch(t, C.c[size_t(t)]);
        } else {
            cell.rvc = std::make_unique<VectorClock>();
            cell.rvc->c[size_t(epoch_tid(cell.r))] = epoch_clock(cell.r);
            cell.rvc->c[size_t(t)] = C.c[size_t(t)];
            cell.r = 0;
        }
        cell.last_r = acc;
    }
}

void RaceDetector::write_locked(int t, const void* addr, size_t len) {
    const auto a = reinterpret_cast<uintptr_t>(addr);
    const Region* reg = find_region(a);
    if (reg == nullptr || len == 0) return;
    VectorClock& C = thread_vc(t);
    const uintptr_t first = a & ~uintptr_t{7};
    const uintptr_t last = (a + len - 1) & ~uintptr_t{7};
    for (uintptr_t w = first; w <= last; w += 8) {
        Shadow& cell = shadow_[w];
        LastAccess acc = make_access(t, /*is_write=*/true, a, len, reg);
        if (cell.w != 0 && !ordered(cell.w, C))
            record_race("write-write", cell.last_w, true, acc, true);
        if (cell.rvc) {
            for (int u = 0; u < sync::kMaxThreads; ++u) {
                if (u != t && cell.rvc->c[size_t(u)] > C.c[size_t(u)]) {
                    record_race("read-then-write", cell.last_r, false, acc,
                                true);
                    break;
                }
            }
        } else if (cell.r != 0 && !ordered(cell.r, C)) {
            record_race("read-then-write", cell.last_r, false, acc, true);
        }
        cell.w = make_epoch(t, C.c[size_t(t)]);
        cell.r = 0;
        cell.rvc.reset();
        cell.last_w = acc;
    }
}

void RaceDetector::acquire_locked(int t, const void* obj, const char* label) {
    auto it = sync_vc_.find(obj);
    if (it != sync_vc_.end()) thread_vc(t).join(it->second);
    if (opts_.record_trace) trace_.push_back({true, obj, t, label});
}

void RaceDetector::release_locked(int t, const void* obj, const char* label) {
    VectorClock& C = thread_vc(t);
    // Join (not copy): several threads may release into the same object
    // (read indicators, shared locks).  Extra edges are conservative — they
    // can only suppress a report, never invent one.
    sync_vc_[obj].join(C);
    C.c[size_t(t)]++;
    if (opts_.record_trace) trace_.push_back({false, obj, t, label});
}

void RaceDetector::on_read(const void* addr, size_t len) {
    const int t = sync::tid();
    std::lock_guard lk(mu_);
    read_locked(t, addr, len);
}

void RaceDetector::on_write(const void* addr, size_t len) {
    const int t = sync::tid();
    std::lock_guard lk(mu_);
    write_locked(t, addr, len);
}

void RaceDetector::on_acquire(const void* obj, const char* label) {
    const int t = sync::tid();
    std::lock_guard lk(mu_);
    acquire_locked(t, obj, label);
}

void RaceDetector::on_release(const void* obj, const char* label) {
    const int t = sync::tid();
    std::lock_guard lk(mu_);
    release_locked(t, obj, label);
}

void RaceDetector::on_acquire_tid(const void* obj, const char* label,
                                  int tid) {
    std::lock_guard lk(mu_);
    acquire_locked(tid, obj, label);
}

void RaceDetector::on_release_tid(const void* obj, const char* label,
                                  int tid) {
    std::lock_guard lk(mu_);
    release_locked(tid, obj, label);
}

bool RaceDetector::on_optimistic_read(const void* stripe, const void* addr,
                                      size_t len, uint64_t observed,
                                      const std::atomic<uint64_t>* lock_word,
                                      const char* label) {
    const int t = sync::tid();
    std::lock_guard lk(mu_);
    if (lock_word->load(std::memory_order_seq_cst) != observed) return false;
    // Acquire first (a committed writer's step-6 release orders its applies
    // before this read), then record the read, then release.  The release
    // must come last: it bumps this thread's clock, so recording the read
    // after it would stamp an epoch the stripe's sync clock never carries
    // and a correctly-synchronised committer would be flagged.
    acquire_locked(t, stripe, label);
    read_locked(t, addr, len);
    release_locked(t, stripe, label);
    return true;
}

void RaceDetector::set_tx_context(const char* kind) { tl_tx_kind = kind; }

// ---------------------------------------------------------------- results

size_t RaceDetector::race_count() const {
    std::lock_guard lk(mu_);
    return reports_.size() + dropped_reports_;
}

std::vector<RaceDetector::Report> RaceDetector::reports() const {
    std::lock_guard lk(mu_);
    return reports_;
}

std::string RaceDetector::report_text() const {
    std::lock_guard lk(mu_);
    if (reports_.empty() && dropped_reports_ == 0) return "no races detected";
    std::ostringstream os;
    for (size_t i = 0; i < reports_.size(); ++i)
        os << "race #" << (i + 1) << " " << reports_[i].to_string() << "\n";
    if (dropped_reports_ > 0)
        os << "(" << dropped_reports_ << " further report(s) dropped)\n";
    return os.str();
}

std::vector<RaceDetector::SyncEvent> RaceDetector::trace() const {
    std::lock_guard lk(mu_);
    return trace_;
}

std::vector<RaceDetector::SyncEvent> RaceDetector::trace_for(
    const void* obj) const {
    std::lock_guard lk(mu_);
    std::vector<SyncEvent> out;
    for (const auto& e : trace_)
        if (e.obj == obj) out.push_back(e);
    return out;
}

void RaceDetector::clear_trace() {
    std::lock_guard lk(mu_);
    trace_.clear();
}

std::string RaceDetector::AccessSite::to_string() const {
    std::ostringstream os;
    os << "T" << tid << " " << (is_write ? "write" : "read ") << " " << len
       << "B @ " << region << "[0x" << std::hex << region_off << std::dec
       << "] tx=" << tx_kind;
    if (has_state) os << " heap-state=" << state_name(heap_state);
    os << " (seq " << seq << ")";
    return os.str();
}

std::string RaceDetector::Report::to_string() const {
    std::ostringstream os;
    os << "(" << kind << ") on " << cur.region << "[0x" << std::hex
       << cur.region_off << std::dec << "]:\n"
       << "  prev: " << prev.to_string() << "\n"
       << "  cur:  " << cur.to_string() << "\n"
       << "  hint: no happens-before edge connects the two accesses — a "
          "release/acquire\n"
          "        chain (lock hand-off, Left-Right publication+drain, "
          "flat-combining\n"
          "        hand-off) is missing between them.";
    return os.str();
}

// ---------------------------------------------------------------- funnels

void race_read(const void* addr, size_t len) {
    RaceDetector& d = RaceDetector::instance();
    if (d.enabled()) d.on_read(addr, len);
}

void race_write(const void* addr, size_t len) {
    RaceDetector& d = RaceDetector::instance();
    if (d.enabled()) d.on_write(addr, len);
}

void race_acquire(const void* obj, const char* label) {
    RaceDetector& d = RaceDetector::instance();
    if (d.enabled()) d.on_acquire(obj, label);
}

void race_release(const void* obj, const char* label) {
    RaceDetector& d = RaceDetector::instance();
    if (d.enabled()) d.on_release(obj, label);
}

void race_thread_acquire(const void* obj, const char* label, int tid) {
    RaceDetector& d = RaceDetector::instance();
    if (d.enabled()) d.on_acquire_tid(obj, label, tid);
}

void race_thread_release(const void* obj, const char* label, int tid) {
    RaceDetector& d = RaceDetector::instance();
    if (d.enabled()) d.on_release_tid(obj, label, tid);
}

bool race_optimistic_read(const void* stripe, const void* addr, size_t len,
                          uint64_t observed,
                          const std::atomic<uint64_t>* lock_word,
                          const char* label) {
    RaceDetector& d = RaceDetector::instance();
    if (!d.enabled()) return true;
    return d.on_optimistic_read(stripe, addr, len, observed, lock_word, label);
}

void race_set_tx(const char* kind) {
    RaceDetector::instance().set_tx_context(kind);
}

void race_register_region(const void* base, size_t size, const char* name,
                          const char* part, const void* state_word) {
    RaceDetector::instance().register_region(
        base, size, name, part,
        static_cast<const std::atomic<uint32_t>*>(state_word));
}

void race_unregister_region(const void* base) {
    RaceDetector::instance().unregister_region(base);
}

}  // namespace romulus::analysis
