// romfuzz layer 3 (docs/romfuzz.md): the fuzz harness gluing the trace
// recorder (tx_trace.hpp), the in-DRAM model oracle (model_oracle.hpp) and
// the crash-image enumeration (crash_explorer.hpp) to a real engine.
//
// One fuzz iteration: generate a seeded trace, execute its setup unrecorded
// (the population becomes the durable baseline), execute the episode under a
// PersistEventRecorder — checking every GET against the model as it runs —
// then either
//   * explore mode: enumerate down-closed crash cuts of the persist graph,
//     write each image over the heap file, run real recovery, dump the
//     recovered KV state with the bounds-checked walker and require it to be
//     a prefix-consistent image of the committed history; or
//   * fork mode: re-execute the trace in a forked child that _exit()s at a
//     chosen fence (the test_crash_fork machinery), then recover the shared
//     heap file in the parent and run the same oracle with the child's
//     reported commit count tightening the admissible prefix window.
//
// The oracle is stronger than "matches some prefix": commit psyncs are
// mapped to fence windows, so a cut that lies past transaction i's
// durability point must contain i — silently rolling back a committed
// transaction (lost durability) is a violation, not a shorter prefix.
//
// Engines without intra-heap sharding (the undo/redo log baselines) run the
// same workloads through a single flat KVStore; the shard axis applies to
// the Romulus engines only.
#pragma once

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/crash_explorer.hpp"
#include "analysis/model_oracle.hpp"
#include "analysis/persist_graph.hpp"
#include "analysis/tx_trace.hpp"
#include "db/sharded_kvstore.hpp"

namespace romulus::analysis {

template <typename E>
uint8_t engine_id_of() {
    const std::string_view n = E::name();
    if (n == "RomulusNL") return kEngineRomulusNL;
    if (n == "RomulusLog") return kEngineRomulusLog;
    if (n == "RomulusLR") return kEngineRomulusLR;
    if (n.substr(0, 7) == "UndoLog") return kEngineUndoLog;
    if (n.substr(0, 7) == "RedoLog") return kEngineRedoLog;
    return kEngineUnknown;
}

namespace detail {
struct NoShardedStore {};
}  // namespace detail

/// Uniform KV surface over both engine families: ShardedKVStore for the
/// intra-heap-sharded Romulus engines, a single flat KVStore for the
/// baselines.  Executes trace sub-transactions with the exact per-shard
/// transaction grouping ShardedKVStore::write uses.
template <typename E>
class KvFacade {
  public:
    static constexpr bool kSharded = requires { E::shard_count(); };
    using Store = db::KVStore<E>;

    /// `create`: allocate missing per-shard stores (setup).  With create
    /// false (post-recovery attach), a missing root is left null — check
    /// attached() before use.
    explicit KvFacade(int root_idx, bool create = true) {
        if constexpr (kSharded) {
            if (create) {
                sharded_.emplace(root_idx);
            } else {
                for (unsigned sd = 0; sd < E::shard_count(); ++sd)
                    attach_[sd] = E::template get_object<Store>(root_idx, sd);
                nattach_ = E::shard_count();
            }
        } else {
            attach_[0] = E::template get_object<Store>(root_idx);
            if (attach_[0] == nullptr && create) {
                E::updateTx([&] {
                    attach_[0] = E::template tmNew<Store>(uint64_t{256});
                    E::put_object(root_idx, attach_[0]);
                });
            }
            nattach_ = 1;
        }
    }

    unsigned shards() const {
        if constexpr (kSharded) {
            return sharded_ ? sharded_->shards() : nattach_;
        } else {
            return 1;
        }
    }

    bool attached() const {
        for (unsigned sd = 0; sd < nattach_; ++sd)
            if (attach_[sd] == nullptr) return false;
        return sharded_.has_value() || nattach_ > 0;
    }

    Store* store(unsigned sd) const {
        if constexpr (kSharded) {
            if (sharded_) return sharded_->store(sd);
        }
        return attach_[sd];
    }

    /// Execute one trace sub-transaction as one durable transaction on its
    /// shard (kGet sub-transactions are handled by the caller).
    void apply(const SubTx& st) {
        auto body = [&] {
            Store* s = store(st.shard);
            for (const TraceOp& op : st.ops) {
                if (op.kind == TraceOpKind::kPut) {
                    s->put(op.key, op.value);
                } else if (op.kind == TraceOpKind::kDel) {
                    s->del(op.key);
                }
            }
        };
        if constexpr (kSharded) {
            E::updateTx(unsigned(st.shard), body);
        } else {
            E::updateTx(body);
        }
    }

    bool get(const std::string& key, std::string* out) const {
        const unsigned sd = route(key);
        bool found = false;
        auto body = [&] { found = store(sd)->get(key, out); };
        if constexpr (kSharded) {
            E::readTx(sd, body);
        } else {
            E::readTx(body);
        }
        return found;
    }

    unsigned route(std::string_view key) const {
        return db::shard_for_key(key, shards());
    }

  private:
    std::conditional_t<kSharded, std::optional<db::ShardedKVStore<E>>,
                       std::optional<detail::NoShardedStore>>
        sharded_{};
    std::array<Store*, kMaxShards> attach_{};
    unsigned nattach_ = 0;
};

/// Dump every shard's recovered content with the bounds-checked walker.
/// Returns false (structural corruption) without faulting on torn images.
template <typename E>
bool dump_recovered(const KvFacade<E>& kv, std::vector<ShardImage>& out,
                    std::string& why) {
    out.assign(kv.shards(), {});
    for (unsigned sd = 0; sd < kv.shards(); ++sd) {
        auto* store = kv.store(sd);
        if (store == nullptr) {
            why = "shard " + std::to_string(sd) + " store root unreachable";
            return false;
        }
        const uint8_t* lo;
        const uint8_t* hi;
        if constexpr (KvFacade<E>::kSharded) {
            // used_bytes comes from the (possibly corrupt) recovered header;
            // clamp to the mapped main half so a garbage used_size cannot
            // turn the bounds check into a pass for wild pointers.
            lo = E::main_base(sd);
            hi = lo + std::min(size_t(E::used_bytes(sd)), E::main_size());
        } else {
            lo = E::main_base();
            hi = lo + E::main_size();
        }
        auto ok = [&](const void* p, size_t len) {
            const auto* b = static_cast<const uint8_t*>(p);
            // b <= hi first: for a wild pointer above hi the difference
            // would be negative and the size_t cast would wrap to "huge".
            return b >= lo && b <= hi && len <= size_t(hi - b);
        };
        std::string reason;
        ShardImage& img = out[sd];
        const bool clean = store->safe_for_each(
            [&](std::string_view k, std::string_view v) {
                img.emplace(std::string(k), std::string(v));
            },
            ok, &reason);
        if (!clean) {
            why = "shard " + std::to_string(sd) + " structurally corrupt: " +
                  reason;
            return false;
        }
    }
    return true;
}

struct FuzzConfig {
    std::string path;  ///< heap file (required)
    size_t heap_bytes = 16u << 20;
    unsigned shards = 1;  ///< clamped to 1 for unsharded engines
    int root_idx = 0;
    GenConfig gen;
    /// Per-history crash-image budget (explore mode).
    ExploreOptions explore{.max_cuts = 128,
                           .window_exhaustive_cap = 64,
                           .window_samples = 6,
                           .seed = 1,
                           .max_failures = 8};
    /// Concurrent reader threads live during the recorded episode,
    /// exercising the optimistic read path against the torn-snapshot oracle.
    unsigned readers = 0;
};

struct FuzzResult {
    TxTrace trace;  ///< with access log filled in by the run
    ExploreReport report;
    uint64_t get_checks = 0;
    uint64_t get_mismatches = 0;
    uint64_t reader_checks = 0;
    uint64_t reader_violations = 0;
    std::vector<uint64_t> violating_cuts;
    std::vector<std::string> failures;  ///< bounded, human-readable

    uint64_t violations() const {
        return report.violations + get_mismatches + reader_violations;
    }
    bool ok() const { return violations() == 0; }
};

struct ForkResult {
    uint64_t fences_total = 0;  ///< episode fences available to crash at
    uint64_t crashes = 0;       ///< children actually killed mid-episode
    uint64_t violations = 0;
    std::vector<std::string> failures;
    std::vector<uint64_t> violating_fences;

    bool ok() const { return violations == 0; }
};

template <typename E>
class FuzzHarness {
  public:
    explicit FuzzHarness(FuzzConfig cfg) : cfg_(std::move(cfg)) {
        if (cfg_.path.empty())
            throw std::invalid_argument("FuzzHarness: empty heap path");
        if constexpr (!KvFacade<E>::kSharded) cfg_.shards = 1;
        if (cfg_.shards < 1) cfg_.shards = 1;
    }

    ~FuzzHarness() {
        if (E::initialized()) E::close();
        std::remove(cfg_.path.c_str());
    }

    FuzzHarness(const FuzzHarness&) = delete;
    FuzzHarness& operator=(const FuzzHarness&) = delete;

    const FuzzConfig& config() const { return cfg_; }

    TxTrace generate(uint64_t seed) const {
        const unsigned ns = cfg_.shards;
        return generate_trace(
            cfg_.gen, seed, ns, engine_id_of<E>(),
            [ns](std::string_view key) { return db::shard_for_key(key, ns); });
    }

    /// One full fuzz iteration: generate from `seed`, execute, explore.
    FuzzResult run_one(uint64_t seed) {
        ExploreOptions opts = cfg_.explore;
        opts.seed = seed * 0x9E3779B97F4A7C15ull + 1;
        return run_trace(generate(seed), opts);
    }

    /// Execute `trace` and model-check its crash images (the --replay path:
    /// deterministic, so a violating cut reproduces by index).
    FuzzResult run_trace(TxTrace trace, const ExploreOptions& opts) {
        FuzzResult res;
        Execution ex = execute(std::move(trace));
        res.trace = std::move(ex.trace);
        res.get_checks = ex.get_checks;
        res.get_mismatches = ex.get_mismatches;
        res.reader_checks = ex.reader_checks;
        res.reader_violations = ex.reader_violations;
        res.failures = std::move(ex.failures);

        const size_t M = res.trace.episode_count();
        res.report = explore_crash_images(
            *ex.graph, *ex.rec,
            [&](const std::vector<uint8_t>& image, const CrashCut& cut,
                std::string& err) {
                const bool ok =
                    validate_image(res.trace, ex.commit_windows, image, cut,
                                   M, err);
                if (!ok) res.violating_cuts.push_back(cut.index);
                return ok;
            },
            opts);
        for (const std::string& f : res.report.failures)
            res.failures.push_back(f);
        return res;
    }

    /// Fork-and-crash mode: re-execute the trace in child processes that die
    /// at `crashes` randomly drawn episode fences, recovering and
    /// oracle-checking the heap after each.  Also runs one surviving child
    /// (full history) as the crash-free control.
    ForkResult run_fork(const TxTrace& trace, unsigned crashes,
                        uint64_t rng_seed) {
        const uint64_t total = count_episode_fences(trace);
        std::mt19937_64 rng(rng_seed ^ 0xD1B54A32D192ED03ull);
        std::vector<uint64_t> ks;
        for (unsigned i = 0; i < crashes && total > 0; ++i)
            ks.push_back(1 + rng() % total);
        ks.push_back(total + 1);  // survivor control
        return run_fork_at(trace, ks, total);
    }

    /// Fork-and-crash at the given episode fences (the --replay path).
    ForkResult run_fork_at(const TxTrace& trace,
                           const std::vector<uint64_t>& ks,
                           uint64_t fences_total = 0) {
        ForkResult res;
        res.fences_total =
            fences_total ? fences_total : count_episode_fences(trace);
        for (uint64_t k : ks) {
            std::string err;
            if (!fork_crash_at(trace, k, err)) {
                ++res.violations;
                res.violating_fences.push_back(k);
                if (res.failures.size() < 16) {
                    res.failures.push_back("fence " + std::to_string(k) +
                                           ": " + err);
                }
            }
            if (k <= res.fences_total) ++res.crashes;
        }
        return res;
    }

  private:
    struct Execution {
        TxTrace trace;
        std::unique_ptr<PersistEventRecorder> rec;
        std::unique_ptr<PersistGraph> graph;
        /// Fence-window index after each episode sub-transaction's commit
        /// psync (SIZE_MAX for kGets): the durability points the oracle's
        /// lower bound is derived from.
        std::vector<uint32_t> commit_windows;
        uint64_t get_checks = 0;
        uint64_t get_mismatches = 0;
        uint64_t reader_checks = 0;
        uint64_t reader_violations = 0;
        std::vector<std::string> failures;
    };

    void init_engine() {
        if constexpr (KvFacade<E>::kSharded) {
            E::init(cfg_.heap_bytes, cfg_.path, cfg_.shards);
        } else {
            E::init(cfg_.heap_bytes, cfg_.path);
        }
    }

    /// Run setup unrecorded, then the episode under the recorder, checking
    /// GETs against the model inline.  Leaves the engine closed and the heap
    /// file holding the full-history image.
    Execution execute(TxTrace trace) {
        Execution ex;
        std::remove(cfg_.path.c_str());
        init_engine();
        {
            KvFacade<E> kv(cfg_.root_idx);
            KvModel model(trace.shard_count);
            for (uint32_t i = 0; i < trace.setup_count; ++i) {
                kv.apply(trace.subtxs[i]);
                model.apply(trace.subtxs[i]);
            }

            ex.rec = std::make_unique<PersistEventRecorder>(
                E::region().base(), E::region().size());
            pmem::set_sim_hooks(ex.rec.get());

            std::atomic<bool> stop{false};
            std::vector<std::thread> readers;
            std::atomic<uint64_t> r_checks{0}, r_viol{0};
            std::mutex fail_mu;
            if (cfg_.readers > 0) start_readers(trace, kv, stop, readers,
                                                r_checks, r_viol, fail_mu,
                                                ex.failures);
            try {
                for (size_t i = trace.setup_count; i < trace.subtxs.size();
                     ++i) {
                    const SubTx& st = trace.subtxs[i];
                    if (st.is_get()) {
                        std::string got, want;
                        const bool found = kv.get(st.ops[0].key, &got);
                        const bool wfound =
                            model.lookup(st.shard, st.ops[0].key, &want);
                        ++ex.get_checks;
                        if (found != wfound || (found && got != want)) {
                            ++ex.get_mismatches;
                            if (ex.failures.size() < 16) {
                                ex.failures.push_back(
                                    "live GET \"" + st.ops[0].key +
                                    "\" disagrees with the model");
                            }
                        }
                    } else {
                        kv.apply(st);
                        model.apply(st);
                    }
                }
            } catch (...) {
                stop.store(true);
                for (auto& t : readers) t.join();
                pmem::set_sim_hooks(nullptr);
                throw;
            }
            stop.store(true);
            for (auto& t : readers) t.join();
            pmem::set_sim_hooks(nullptr);
            ex.reader_checks = r_checks.load();
            ex.reader_violations = r_viol.load();

            trace.access =
                AccessLog::from_recording(*ex.rec, EngineLayout::of<E>());
            ex.graph = std::make_unique<PersistGraph>(
                PersistGraph::build(*ex.rec));
            ex.commit_windows = map_commit_windows(*ex.rec, trace);
        }
        E::close();
        ex.trace = std::move(trace);
        return ex;
    }

    /// Fence-window index after each episode sub-transaction.  The recorded
    /// episode is single-writer, so TxCommit events correspond 1:1, in
    /// order, to the non-GET episode sub-transactions (read transactions
    /// emit no lifecycle events).  Readers don't perturb this: they produce
    /// no SimHooks events at all.
    static std::vector<uint32_t> map_commit_windows(
        const PersistEventRecorder& rec, const TxTrace& trace) {
        std::vector<uint32_t> commit_fences;
        uint32_t fences = 0;
        for (const PersistEvent& e : rec.events()) {
            if (e.kind == PersistEventKind::Fence) ++fences;
            if (e.kind == PersistEventKind::TxCommit)
                commit_fences.push_back(fences);
        }
        std::vector<uint32_t> windows(trace.episode_count(), ~uint32_t{0});
        size_t next = 0;
        for (size_t j = 0; j < trace.episode_count(); ++j) {
            if (trace.episode(j).is_get()) continue;
            windows[j] = next < commit_fences.size() ? commit_fences[next]
                                                     : ~uint32_t{0};
            ++next;
        }
        return windows;
    }

    /// Minimal admissible prefix for a cut with this frontier window: every
    /// sub-transaction whose commit psync lies in a fully-persisted window
    /// must be present in the recovered image.
    static size_t min_prefix_for(const std::vector<uint32_t>& commit_windows,
                                 uint32_t frontier_window) {
        size_t min_prefix = 0;
        for (size_t j = 0; j < commit_windows.size(); ++j) {
            if (commit_windows[j] != ~uint32_t{0} &&
                commit_windows[j] <= frontier_window) {
                min_prefix = j + 1;
            }
        }
        return min_prefix;
    }

    bool validate_image(const TxTrace& trace,
                        const std::vector<uint32_t>& commit_windows,
                        const std::vector<uint8_t>& image, const CrashCut& cut,
                        size_t episode_total, std::string& err) {
        write_crash_image(cfg_.path, image);
        E::crash_reset_for_tests();
        try {
            init_engine();
        } catch (const std::exception& ex) {
            err = std::string("recovery threw: ") + ex.what();
            return false;
        }
        bool ok = true;
        std::ostringstream os;
        if (RecoveryCheck rc = check_twin_halves<E>(); !rc.ok) {
            ok = false;
            os << rc.detail;
        }
        if (ok) {
            KvFacade<E> kv(cfg_.root_idx, /*create=*/false);
            std::vector<ShardImage> recovered;
            std::string why;
            if (!dump_recovered<E>(kv, recovered, why)) {
                ok = false;
                os << why << "; ";
            } else {
                const size_t min_p =
                    cut.complete
                        ? episode_total
                        : min_prefix_for(commit_windows, cut.frontier_window);
                PrefixCheckResult pr = check_prefix_consistent(
                    trace, recovered, min_p, episode_total);
                if (!pr.ok) {
                    ok = false;
                    os << pr.detail << "; ";
                }
            }
        }
        if (ok) {
            if (RecoveryCheck rc = probe_allocator<E>(); !rc.ok) {
                ok = false;
                os << rc.detail;
            }
        }
        E::close();
        if (!ok) err = os.str();
        return ok;
    }

    /// SimHooks observer that kills the process at the k-th fence.
    class FenceKiller final : public pmem::SimHooks {
      public:
        explicit FenceKiller(uint64_t k) : k_(k) {}
        void on_store(const void*, size_t) override {}
        void on_pwb(const void*) override {}
        void on_fence() override {
            if (++n_ == k_) _exit(42);
        }
        uint64_t seen() const { return n_; }

      private:
        uint64_t k_;
        uint64_t n_ = 0;
    };

    /// Fences issued while executing the episode (dry run, in process).
    uint64_t count_episode_fences(const TxTrace& trace) {
        std::remove(cfg_.path.c_str());
        init_engine();
        uint64_t fences = 0;
        {
            KvFacade<E> kv(cfg_.root_idx);
            for (uint32_t i = 0; i < trace.setup_count; ++i)
                kv.apply(trace.subtxs[i]);
            FenceKiller counter(~uint64_t{0});
            pmem::set_sim_hooks(&counter);
            for (size_t i = trace.setup_count; i < trace.subtxs.size(); ++i) {
                if (!trace.subtxs[i].is_get()) kv.apply(trace.subtxs[i]);
            }
            pmem::set_sim_hooks(nullptr);
            fences = counter.seen();
        }
        E::close();
        return fences;
    }

    /// One fork-crash: child re-executes the trace and dies at episode fence
    /// k (or survives when k is past the end), parent recovers the shared
    /// heap file and runs the oracle.  Returns false + err on violation.
    bool fork_crash_at(const TxTrace& trace, uint64_t k, std::string& err) {
        std::remove(cfg_.path.c_str());
        int fds[2];
        if (pipe(fds) != 0) {
            err = "pipe() failed";
            return false;
        }
        const pid_t pid = fork();
        if (pid < 0) {
            close(fds[0]);
            close(fds[1]);
            err = "fork() failed";
            return false;
        }
        if (pid == 0) {
            // Child: execute; report each committed episode sub-tx index.
            close(fds[0]);
            init_engine();
            KvFacade<E> kv(cfg_.root_idx);
            for (uint32_t i = 0; i < trace.setup_count; ++i)
                kv.apply(trace.subtxs[i]);
            FenceKiller killer(k);
            pmem::set_sim_hooks(&killer);
            for (size_t i = trace.setup_count; i < trace.subtxs.size(); ++i) {
                if (!trace.subtxs[i].is_get()) kv.apply(trace.subtxs[i]);
                const uint64_t committed = i - trace.setup_count + 1;
                ssize_t w = write(fds[1], &committed, sizeof(committed));
                (void)w;
            }
            _exit(7);  // survived the whole episode
        }
        close(fds[1]);
        uint64_t committed = 0, v;
        while (read(fds[0], &v, sizeof(v)) == ssize_t(sizeof(v))) committed = v;
        close(fds[0]);
        int status = 0;
        waitpid(pid, &status, 0);
        const bool survived = WIFEXITED(status) && WEXITSTATUS(status) == 7;
        const bool killed = WIFEXITED(status) && WEXITSTATUS(status) == 42;
        if (!survived && !killed) {
            err = "child exited abnormally (status " + std::to_string(status) +
                  ")";
            return false;
        }

        E::crash_reset_for_tests();
        bool ok = true;
        std::ostringstream os;
        try {
            init_engine();
        } catch (const std::exception& ex) {
            err = std::string("recovery threw: ") + ex.what();
            return false;
        }
        if (RecoveryCheck rc = check_twin_halves<E>(); !rc.ok) {
            ok = false;
            os << rc.detail;
        }
        if (ok) {
            KvFacade<E> kv(cfg_.root_idx, /*create=*/false);
            std::vector<ShardImage> recovered;
            std::string why;
            if (!dump_recovered<E>(kv, recovered, why)) {
                ok = false;
                os << why << "; ";
            } else {
                // Committed sub-txs are durable; the in-flight one may have
                // reached its durability point before the kill.
                const size_t M = trace.episode_count();
                const size_t min_p = survived ? M : committed;
                const size_t max_p =
                    survived ? M : std::min<size_t>(committed + 1, M);
                PrefixCheckResult pr =
                    check_prefix_consistent(trace, recovered, min_p, max_p);
                if (!pr.ok) {
                    ok = false;
                    os << pr.detail << "; ";
                }
            }
        }
        if (ok) {
            if (RecoveryCheck rc = probe_allocator<E>(); !rc.ok) {
                ok = false;
                os << rc.detail;
            }
        }
        E::close();
        if (!ok) err = os.str();
        return ok;
    }

    /// Concurrent readers: random single-key reads plus a read-twice-in-one-
    /// transaction snapshot check, validated against the set of values the
    /// trace can ever legally expose for that key.
    void start_readers(const TxTrace& trace, KvFacade<E>& kv,
                       std::atomic<bool>& stop,
                       std::vector<std::thread>& readers,
                       std::atomic<uint64_t>& checks,
                       std::atomic<uint64_t>& violations, std::mutex& fail_mu,
                       std::vector<std::string>& failures) {
        // Key universe + legal observations, computed once up front.
        auto keys = std::make_shared<std::vector<std::string>>();
        auto legal = std::make_shared<std::vector<KeyObservations>>();
        {
            std::map<std::string, uint32_t> seen;
            for (const SubTx& st : trace.subtxs)
                for (const TraceOp& op : st.ops) seen.emplace(op.key, st.shard);
            for (const auto& [k, sd] : seen) {
                keys->push_back(k);
                legal->push_back(legal_observations(trace, k, sd));
            }
        }
        for (unsigned r = 0; r < cfg_.readers; ++r) {
            readers.emplace_back([&, r, keys, legal] {
                std::mt19937_64 rng(0xC0FFEE ^ (r * 7919));
                while (!stop.load(std::memory_order_relaxed)) {
                    if (keys->empty()) break;
                    const size_t i = rng() % keys->size();
                    const std::string& key = (*keys)[i];
                    const unsigned sd = kv.route(key);
                    bool f1 = false, f2 = false;
                    std::string v1, v2;
                    auto body = [&] {
                        // Unconditional assigns: restartable under the
                        // optimistic read path.
                        f1 = kv.store(sd)->get(key, &v1);
                        f2 = kv.store(sd)->get(key, &v2);
                    };
                    if constexpr (KvFacade<E>::kSharded) {
                        E::readTx(sd, body);
                    } else {
                        E::readTx(body);
                    }
                    checks.fetch_add(1, std::memory_order_relaxed);
                    std::string why;
                    if (f1 != f2 || (f1 && v1 != v2)) {
                        why = "non-atomic snapshot: two reads of \"" + key +
                              "\" in one readTx disagree";
                    } else if (!(*legal)[i].admits(f1, v1)) {
                        why = "torn read: \"" + key +
                              "\" returned a value never written";
                    }
                    if (!why.empty()) {
                        violations.fetch_add(1, std::memory_order_relaxed);
                        std::lock_guard<std::mutex> g(fail_mu);
                        if (failures.size() < 16) failures.push_back(why);
                    }
                }
            });
        }
    }

    FuzzConfig cfg_;
};

}  // namespace romulus::analysis
