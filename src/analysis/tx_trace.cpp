#include "analysis/tx_trace.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>

namespace romulus::analysis {

namespace {

constexpr uint64_t kMagic = 0x315A5546464D4F52ull;  // "ROMFFUZ1" little-endian
constexpr uint32_t kVersion = 1;
constexpr uint8_t kFlagRepro = 1u << 0;
constexpr uint8_t kFlagAccess = 1u << 1;

uint64_t fnv1a(const uint8_t* p, size_t n, uint64_t h = 1469598103934665603ull) {
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(uint8_t(v >> (8 * i)));
}
void put_u64(std::vector<uint8_t>& out, uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(uint8_t(v >> (8 * i)));
}
void put_bytes(std::vector<uint8_t>& out, const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out.insert(out.end(), b, b + n);
}

/// Bounds-checked read cursor: every overrun is a TraceError, never UB.
struct Cursor {
    const uint8_t* p;
    size_t left;

    void need(size_t n) const {
        if (n > left) throw TraceError("trace truncated");
    }
    uint8_t u8() {
        need(1);
        uint8_t v = *p;
        ++p, --left;
        return v;
    }
    uint32_t u32() {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
        p += 4, left -= 4;
        return v;
    }
    uint64_t u64() {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
        p += 8, left -= 8;
        return v;
    }
    std::string str(size_t n) {
        need(n);
        std::string s(reinterpret_cast<const char*>(p), n);
        p += n, left -= n;
        return s;
    }
};

}  // namespace

const char* engine_tag_name(uint8_t tag) {
    switch (tag) {
        case kEngineRomulusNL: return "romulus-nl";
        case kEngineRomulusLog: return "romulus-log";
        case kEngineRomulusLR: return "romulus-lr";
        case kEngineUndoLog: return "undolog";
        case kEngineRedoLog: return "redolog";
        default: return "unknown";
    }
}

// ---------------------------------------------------------------------------
// AccessLog
// ---------------------------------------------------------------------------

AccessLog AccessLog::from_recording(const PersistEventRecorder& rec,
                                    const EngineLayout& layout) {
    AccessLog log;
    log.streams.resize(layout.shards.size() + 1);
    auto& global = log.streams.back();
    for (const PersistEvent& e : rec.events()) {
        switch (e.kind) {
            case PersistEventKind::Store: {
                int sh = layout.shard_of_zone(e.off);
                auto& s = sh >= 0 ? log.streams[size_t(sh)] : global;
                s.push_back({0, e.len, e.off});
                break;
            }
            case PersistEventKind::TxBegin:
                global.push_back({1, 0, 0});
                break;
            case PersistEventKind::TxCommit:
                global.push_back({2, 0, 0});
                break;
            case PersistEventKind::TxAbort:
                global.push_back({3, 0, 0});
                break;
            case PersistEventKind::StateTransition:
                global.push_back({4, e.state, e.off});
                break;
            default:  // Pwb/Fence/RangeLogged: persist schedule, not access
                break;
        }
    }
    return log;
}

bool AccessLog::empty() const { return total_events() == 0; }

size_t AccessLog::total_events() const {
    size_t n = 0;
    for (const auto& s : streams) n += s.size();
    return n;
}

uint64_t AccessLog::digest() const {
    uint64_t h = 1469598103934665603ull;
    for (const auto& s : streams) {
        uint64_t len = s.size();
        h = fnv1a(reinterpret_cast<const uint8_t*>(&len), sizeof(len), h);
        for (const AccessEvent& e : s) {
            h = fnv1a(&e.kind, 1, h);
            h = fnv1a(reinterpret_cast<const uint8_t*>(&e.len), 4, h);
            h = fnv1a(reinterpret_cast<const uint8_t*>(&e.off), 8, h);
        }
    }
    return h;
}

// ---------------------------------------------------------------------------
// TxTrace (de)serialization
// ---------------------------------------------------------------------------

std::vector<uint8_t> TxTrace::serialize() const {
    std::vector<uint8_t> out;
    put_u64(out, kMagic);
    put_u32(out, kVersion);
    put_u8(out, engine_id);
    uint8_t flags = 0;
    if (has_repro) flags |= kFlagRepro;
    if (!access.streams.empty()) flags |= kFlagAccess;
    put_u8(out, flags);
    put_u8(out, 0);
    put_u8(out, 0);
    put_u32(out, shard_count);
    put_u64(out, seed);
    put_u32(out, setup_count);
    put_u32(out, uint32_t(subtxs.size()));
    for (const SubTx& st : subtxs) {
        put_u8(out, st.shard);
        put_u8(out, 0);
        put_u8(out, 0);
        put_u8(out, 0);
        put_u32(out, st.batch_id);
        put_u32(out, uint32_t(st.ops.size()));
        for (const TraceOp& op : st.ops) {
            put_u8(out, uint8_t(op.kind));
            put_u32(out, uint32_t(op.key.size()));
            put_u32(out, uint32_t(op.value.size()));
            put_bytes(out, op.key.data(), op.key.size());
            put_bytes(out, op.value.data(), op.value.size());
        }
    }
    if (flags & kFlagRepro) {
        put_u8(out, repro.mode);
        put_u64(out, repro.explore_seed);
        put_u64(out, repro.max_cuts);
        put_u64(out, repro.window_exhaustive_cap);
        put_u64(out, repro.window_samples);
        put_u64(out, repro.cut_index);
        put_u64(out, repro.fence);
    }
    if (flags & kFlagAccess) {
        put_u32(out, uint32_t(access.streams.size()));
        for (const auto& s : access.streams) {
            put_u32(out, uint32_t(s.size()));
            for (const AccessEvent& e : s) {
                put_u8(out, e.kind);
                put_u32(out, e.len);
                put_u64(out, e.off);
            }
        }
    }
    put_u64(out, fnv1a(out.data(), out.size()));
    return out;
}

TxTrace TxTrace::deserialize(const std::vector<uint8_t>& bytes) {
    if (bytes.size() < 8 + 8)
        throw TraceError("trace truncated: shorter than header + checksum");
    const uint64_t want =
        fnv1a(bytes.data(), bytes.size() - 8);
    Cursor tail{bytes.data() + bytes.size() - 8, 8};
    if (tail.u64() != want) throw TraceError("trace checksum mismatch");

    Cursor c{bytes.data(), bytes.size() - 8};
    if (c.u64() != kMagic) throw TraceError("bad trace magic");
    if (uint32_t v = c.u32(); v != kVersion)
        throw TraceError("unsupported trace version " + std::to_string(v));

    TxTrace t;
    t.engine_id = c.u8();
    const uint8_t flags = c.u8();
    c.u8();
    c.u8();
    t.shard_count = c.u32();
    t.seed = c.u64();
    t.setup_count = c.u32();
    const uint32_t nsub = c.u32();
    if (t.shard_count == 0 || t.shard_count > 256)
        throw TraceError("implausible shard count");
    if (t.setup_count > nsub)
        throw TraceError("setup count exceeds sub-transaction count");
    t.subtxs.reserve(nsub);
    for (uint32_t i = 0; i < nsub; ++i) {
        SubTx st;
        st.shard = c.u8();
        c.u8();
        c.u8();
        c.u8();
        st.batch_id = c.u32();
        const uint32_t nops = c.u32();
        st.ops.reserve(nops);
        for (uint32_t j = 0; j < nops; ++j) {
            TraceOp op;
            const uint8_t k = c.u8();
            if (k > uint8_t(TraceOpKind::kGet))
                throw TraceError("unknown op kind");
            op.kind = TraceOpKind(k);
            const uint32_t kl = c.u32();
            const uint32_t vl = c.u32();
            op.key = c.str(kl);
            op.value = c.str(vl);
            st.ops.push_back(std::move(op));
        }
        t.subtxs.push_back(std::move(st));
    }
    if (flags & kFlagRepro) {
        t.has_repro = true;
        t.repro.mode = c.u8();
        t.repro.explore_seed = c.u64();
        t.repro.max_cuts = c.u64();
        t.repro.window_exhaustive_cap = c.u64();
        t.repro.window_samples = c.u64();
        t.repro.cut_index = c.u64();
        t.repro.fence = c.u64();
    }
    if (flags & kFlagAccess) {
        const uint32_t nstreams = c.u32();
        if (nstreams > 4096) throw TraceError("implausible stream count");
        t.access.streams.resize(nstreams);
        for (uint32_t s = 0; s < nstreams; ++s) {
            const uint32_t nev = c.u32();
            auto& stream = t.access.streams[s];
            stream.reserve(nev);
            for (uint32_t j = 0; j < nev; ++j) {
                AccessEvent e;
                e.kind = c.u8();
                e.len = c.u32();
                e.off = c.u64();
                stream.push_back(e);
            }
        }
    }
    if (c.left != 0) throw TraceError("trailing bytes after trace payload");
    return t;
}

void TxTrace::save(const std::string& path) const {
    const std::vector<uint8_t> bytes = serialize();
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) throw TraceError("cannot open trace file for write: " + path);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
    if (!f) throw TraceError("trace file write failed: " + path);
}

TxTrace TxTrace::load(const std::string& path) {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f) throw TraceError("cannot open trace file: " + path);
    const std::streamsize n = f.tellg();
    f.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(n));
    f.read(reinterpret_cast<char*>(bytes.data()), n);
    if (!f) throw TraceError("trace file read failed: " + path);
    return deserialize(bytes);
}

uint64_t TxTrace::digest() const {
    const std::vector<uint8_t> bytes = serialize();
    return fnv1a(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// Seeded generator
// ---------------------------------------------------------------------------

TxTrace generate_trace(const GenConfig& cfg, uint64_t seed,
                       uint32_t shard_count, uint8_t engine_id,
                       const std::function<unsigned(std::string_view)>& route) {
    TxTrace t;
    t.engine_id = engine_id;
    t.shard_count = shard_count;
    t.seed = seed;

    std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
    const uint32_t ks = cfg.key_space ? cfg.key_space : 1;

    auto key_at = [](uint32_t idx) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "k%05u", idx);
        return std::string(buf);
    };
    auto pick_key = [&] {
        // Skew by min-of-draws: integer-only, so traces are byte-stable.
        uint32_t idx = uint32_t(rng() % ks);
        for (uint32_t d = 1; d < cfg.skew_draws; ++d)
            idx = std::min(idx, uint32_t(rng() % ks));
        return key_at(idx);
    };
    auto pick_value = [&] {
        const size_t len = size_t(rng() % (uint64_t(cfg.value_max) + 1));
        std::string v(len, '\0');
        for (size_t i = 0; i < len; i += 8) {
            const uint64_t r = rng();
            for (size_t j = 0; j < 8 && i + j < len; ++j)
                v[i + j] = char(uint8_t(r >> (8 * j)));
        }
        return v;
    };
    auto push_single = [&](TraceOpKind kind, std::string key, std::string val) {
        SubTx st;
        st.shard = uint8_t(route(key));
        st.ops.push_back({kind, std::move(key), std::move(val)});
        t.subtxs.push_back(std::move(st));
    };

    for (uint32_t i = 0; i < cfg.setup_ops; ++i)
        push_single(TraceOpKind::kPut, pick_key(), pick_value());
    t.setup_count = uint32_t(t.subtxs.size());

    uint32_t next_batch = 0;
    for (uint32_t i = 0; i < cfg.episode_ops; ++i) {
        const uint64_t r = rng() % 100;
        if (r < cfg.put_pct) {
            push_single(TraceOpKind::kPut, pick_key(), pick_value());
        } else if (r < cfg.put_pct + cfg.del_pct) {
            push_single(TraceOpKind::kDel, pick_key(), {});
        } else if (r < cfg.put_pct + cfg.del_pct + cfg.get_pct) {
            push_single(TraceOpKind::kGet, pick_key(), {});
        } else {
            // Cross-shard batch: split per shard, ascending shard order —
            // exactly how ShardedKVStore::write commits it.
            const uint32_t bid = ++next_batch;
            std::vector<std::vector<TraceOp>> per_shard(shard_count);
            for (uint32_t j = 0; j < std::max(cfg.batch_ops, 1u); ++j) {
                const bool is_put = rng() % 4 != 0;
                std::string key = pick_key();
                const unsigned sd = route(key);
                per_shard[sd].push_back(
                    {is_put ? TraceOpKind::kPut : TraceOpKind::kDel,
                     std::move(key), is_put ? pick_value() : std::string{}});
            }
            for (uint32_t sd = 0; sd < shard_count; ++sd) {
                if (per_shard[sd].empty()) continue;
                SubTx st;
                st.shard = uint8_t(sd);
                st.batch_id = bid;
                st.ops = std::move(per_shard[sd]);
                t.subtxs.push_back(std::move(st));
            }
        }
    }
    return t;
}

}  // namespace romulus::analysis
