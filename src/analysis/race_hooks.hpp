// Hook macros for the romrace happens-before detector
// (analysis/race_detector.hpp, docs/race_detector.md).
//
// The sync primitives and the PTM engines are annotated with these macros.
// With -DROMULUS_RACECHECK (the `race` leg of scripts/check.sh) they funnel
// into RaceDetector; otherwise they expand to nothing, so the default build
// carries zero overhead — no call, no branch, no include of the detector.
//
// Annotation contract (what keeps event order sound without holding the
// detector's mutex across the primitive's own atomics):
//   * RELEASE annotations run immediately BEFORE the store that publishes
//     (unlock store, read-indicator decrement, slot store, read_region
//     store).  By the time any other thread can observe the store, the
//     release is fully recorded.
//   * ACQUIRE annotations run immediately AFTER the load/RMW that observes
//     (successful lock exchange, writer-flag check, drain completion,
//     read_region load, slot load).  The matching release is therefore
//     always recorded first.
// Optimistic reads (TL2 stripe validation in RedoLogPTM, the seqlock read
// fast path of the C-RW-WP engines) cannot follow this discipline (nothing
// is ever "held"), so they use ROMULUS_RACE_OPTIMISTIC_READ, which
// re-validates the version/sequence word inside the detector's mutex and
// labels the synthesized acquire/release pair ("redo.validate" /
// "seqlock.validate").
#pragma once

#ifdef ROMULUS_RACECHECK

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace romulus::analysis {
void race_read(const void* addr, std::size_t len);
void race_write(const void* addr, std::size_t len);
void race_acquire(const void* obj, const char* label);
void race_release(const void* obj, const char* label);
void race_thread_acquire(const void* obj, const char* label, int tid);
void race_thread_release(const void* obj, const char* label, int tid);
bool race_optimistic_read(const void* stripe, const void* addr,
                          std::size_t len, std::uint64_t observed,
                          const std::atomic<std::uint64_t>* lock_word,
                          const char* label);
void race_set_tx(const char* kind);
void race_register_region(const void* base, std::size_t size,
                          const char* name, const char* part,
                          const void* state_word);
void race_unregister_region(const void* base);

/// RAII: sets the thread's tx-context label, restores "outside tx" on exit.
struct ScopedTx {
    explicit ScopedTx(const char* kind) { race_set_tx(kind); }
    ~ScopedTx() { race_set_tx(nullptr); }
    ScopedTx(const ScopedTx&) = delete;
    ScopedTx& operator=(const ScopedTx&) = delete;
};

/// RAII: emits a release annotation on scope exit (exception-safe pairing
/// with an acquire taken at lock-acquisition time).
struct ScopedRelease {
    const void* obj;
    const char* label;
    ScopedRelease(const void* o, const char* l) : obj(o), label(l) {}
    ~ScopedRelease() { race_release(obj, label); }
    ScopedRelease(const ScopedRelease&) = delete;
    ScopedRelease& operator=(const ScopedRelease&) = delete;
};
}  // namespace romulus::analysis

#define ROMULUS_RACE_READ(addr, len) ::romulus::analysis::race_read((addr), (len))
#define ROMULUS_RACE_WRITE(addr, len) \
    ::romulus::analysis::race_write((addr), (len))
#define ROMULUS_RACE_ACQUIRE(obj, label) \
    ::romulus::analysis::race_acquire((obj), (label))
#define ROMULUS_RACE_RELEASE(obj, label) \
    ::romulus::analysis::race_release((obj), (label))
#define ROMULUS_RACE_THREAD_ACQUIRE(obj, label, tid) \
    ::romulus::analysis::race_thread_acquire((obj), (label), (tid))
#define ROMULUS_RACE_THREAD_RELEASE(obj, label, tid) \
    ::romulus::analysis::race_thread_release((obj), (label), (tid))
#define ROMULUS_RACE_OPTIMISTIC_READ(stripe, addr, len, observed, lock_word, \
                                     label)                                  \
    ::romulus::analysis::race_optimistic_read((stripe), (addr), (len),       \
                                              (observed), (lock_word), (label))
#define ROMULUS_RACE_TX_BEGIN(kind) ::romulus::analysis::race_set_tx((kind))
#define ROMULUS_RACE_TX_END() ::romulus::analysis::race_set_tx(nullptr)
#define ROMULUS_RACE_SCOPED_TX(kind) \
    ::romulus::analysis::ScopedTx romulus_race_tx_guard_ { (kind) }
#define ROMULUS_RACE_SCOPED_RELEASE(obj, label) \
    ::romulus::analysis::ScopedRelease romulus_race_rel_guard_ { (obj), (label) }
#define ROMULUS_RACE_REGISTER_REGION(base, size, name, part, state) \
    ::romulus::analysis::race_register_region((base), (size), (name), (part), \
                                              (state))
#define ROMULUS_RACE_UNREGISTER_REGION(base) \
    ::romulus::analysis::race_unregister_region((base))

#else  // !ROMULUS_RACECHECK — every hook vanishes entirely.

#define ROMULUS_RACE_READ(addr, len) ((void)0)
#define ROMULUS_RACE_WRITE(addr, len) ((void)0)
#define ROMULUS_RACE_ACQUIRE(obj, label) ((void)0)
#define ROMULUS_RACE_RELEASE(obj, label) ((void)0)
#define ROMULUS_RACE_THREAD_ACQUIRE(obj, label, tid) ((void)0)
#define ROMULUS_RACE_THREAD_RELEASE(obj, label, tid) ((void)0)
#define ROMULUS_RACE_OPTIMISTIC_READ(stripe, addr, len, observed, lock_word, \
                                     label)                                  \
    (true)
#define ROMULUS_RACE_TX_BEGIN(kind) ((void)0)
#define ROMULUS_RACE_TX_END() ((void)0)
#define ROMULUS_RACE_SCOPED_TX(kind) ((void)0)
#define ROMULUS_RACE_SCOPED_RELEASE(obj, label) ((void)0)
#define ROMULUS_RACE_REGISTER_REGION(base, size, name, part, state) ((void)0)
#define ROMULUS_RACE_UNREGISTER_REGION(base) ((void)0)

#endif  // ROMULUS_RACECHECK
