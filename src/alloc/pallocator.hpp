// PAllocator: a sequential persistent memory allocator (§4.4).
//
// Modelled on Doug Lea's allocator [19]: boundary-tagged chunks carved out of
// a wilderness area, with segregated (power-of-two) free-list bins and
// immediate coalescing on free.  The crucial property — the paper's whole
// point about allocators — is that *every* metadata word is wrapped in
// persist<T>, so bin heads, chunk headers, footers and the wilderness mark
// are logged and replicated exactly like user data.  A crash in the middle
// of malloc/free rolls the allocator back together with the transaction;
// there is no separate allocator recovery, no Makalu-style GC, no leaked
// blocks from external inconsistency.
//
// The allocator is sequential by design: in Romulus there is always a single
// writer per instance (the flat-combining combiner), which is what lets a
// stock sequential allocator be used at all (§5.3, last paragraph).  With
// intra-heap sharding each shard owns one PAllocator over its own pool
// slice; the per-shard writer lock preserves exactly this single-writer
// contract, and cross-shard pointers must never be freed here (the engine
// asserts ownership in free_bytes).
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>

namespace romulus {

template <typename PTM>
class PAllocator {
  public:
    template <typename T>
    using p = typename PTM::template p<T>;

    static constexpr size_t kAlign = 16;
    static constexpr size_t kHeaderSize = 16;  // size_flags + footer
    static constexpr size_t kMinChunk = 48;    // header + free links + footer
    static constexpr int kNumBins = 28;        // 32 B .. ~4 GB, log2 bins
    static constexpr uint64_t kInUse = 1;
    static constexpr uint64_t kQuick = 2;  // cached in a quick list
    // Exact-size quick lists for small objects (§6.2: PMDK's allocator
    // needs a single flush per small allocation; this cache gives the same
    // fast path — pop/push one head pointer — ahead of the boundary-tag
    // machinery).  Chunk sizes 48..288 in 16 B steps.
    static constexpr int kQuickBins = 16;
    static constexpr uint64_t kQuickMax =
        kMinChunk + (kQuickBins - 1) * kAlign;

    struct Chunk {
        p<uint64_t> size_flags;  // chunk size (incl. overhead) | kInUse
        // Free chunks keep their bin links in the payload area:
        p<Chunk*> next_free;
        p<Chunk*> prev_free;

        uint64_t size() const { return size_flags.pload() & ~(kInUse | kQuick); }
        bool in_use() const { return size_flags.pload() & kInUse; }
        bool in_quick() const { return size_flags.pload() & kQuick; }
    };

    /// Persistent metadata, embedded in the main region's meta block.
    struct Meta {
        p<Chunk*> bins[kNumBins];
        p<Chunk*> quick[kQuickBins];  ///< exact-size small-object cache
        p<uint64_t> wilderness;       ///< offset of the untouched pool tail
        p<uint64_t> allocated_bytes;  ///< live payload bytes (stats)
        p<uint64_t> alloc_count;      ///< live allocations (stats)
    };

    PAllocator() = default;

    /// First-time formatting: everything empty, whole pool is wilderness.
    /// Must run inside a (formatting) transaction context of PTM.
    void format(Meta* meta, uint8_t* pool, size_t pool_size) {
        attach(meta, pool, pool_size);
        for (int i = 0; i < kNumBins; ++i) meta_->bins[i] = nullptr;
        for (int i = 0; i < kQuickBins; ++i) meta_->quick[i] = nullptr;
        meta_->wilderness = 0;
        meta_->allocated_bytes = 0;
        meta_->alloc_count = 0;
    }

    /// Enable/disable the small-object quick cache (volatile policy knob;
    /// the persistent layout always reserves the quick bins).  Used by the
    /// allocator ablation bench.
    void set_quick_cache(bool on) { quick_enabled_ = on; }
    bool quick_cache_enabled() const { return quick_enabled_; }

    /// Re-attach to already-formatted metadata (after restart/recovery).
    void attach(Meta* meta, uint8_t* pool, size_t pool_size) {
        meta_ = meta;
        pool_ = pool;
        pool_size_ = pool_size;
    }

    /// Allocate `n` payload bytes.  Returns nullptr when the pool is
    /// exhausted (callers turn that into std::bad_alloc).
    void* alloc(size_t n) {
        const uint64_t need = chunk_size_for(n);

        // 0. Exact-size quick-list hit: one pointer pop, no splitting, no
        //    bin surgery — the PMDK-style small-allocation fast path.
        if (quick_enabled_ && need <= kQuickMax) {
            const int qb = quick_index(need);
            Chunk* c = meta_->quick[qb].pload();
            if (c != nullptr) {
                meta_->quick[qb] = c->next_free.pload();
                c->size_flags = need | kInUse;  // clears kQuick
                meta_->allocated_bytes += need - kHeaderSize;
                meta_->alloc_count += 1;
                return payload(c);
            }
        }

        // 1. Exact-ish fit from the bins.
        if (Chunk* c = take_from_bins(need)) {
            split_if_worth(c, need);
            mark_allocated(c);
            return payload(c);
        }

        // 2. Carve from the wilderness.
        uint64_t w = meta_->wilderness.pload();
        if (w + need > pool_size_) return nullptr;
        Chunk* c = chunk_at(w);
        meta_->wilderness = w + need;
        PTM::note_used(pool_ + w + need);  // keep header.used_size monotonic
        c->size_flags = need;  // not yet in use; mark_allocated sets the bit
        write_footer(c, need);
        mark_allocated(c);
        return payload(c);
    }

    /// Free a pointer previously returned by alloc().
    void free(void* ptr) {
        assert(ptr != nullptr);
        assert(static_cast<uint8_t*>(ptr) >= pool_ &&
               static_cast<uint8_t*>(ptr) < pool_ + pool_size_ &&
               "free of a pointer outside this allocator's pool");
        Chunk* c = chunk_of(ptr);
        assert(c->in_use() && "double free or wild pointer");
        uint64_t sz = c->size();
        meta_->allocated_bytes -= payload_size(c);
        meta_->alloc_count -= 1;

        if (quick_enabled_ && sz <= kQuickMax) {
            // Park in the quick list: the chunk keeps its in-use boundary
            // tag (so neighbours do not coalesce into it) plus the kQuick
            // mark, and only the list head is touched.
            const int qb = quick_index(sz);
            c->size_flags = sz | kInUse | kQuick;
            c->next_free = meta_->quick[qb].pload();
            meta_->quick[qb] = c;
            return;
        }

        c->size_flags = sz;  // clear in-use

        c = coalesce_right(c);
        c = coalesce_left(c);
        push_bin(c);
    }

    size_t payload_capacity(const void* ptr) const {
        return chunk_of(ptr)->size() - kHeaderSize;
    }

    uint64_t allocated_bytes() const { return meta_->allocated_bytes.pload(); }
    uint64_t alloc_count() const { return meta_->alloc_count.pload(); }
    uint64_t wilderness_offset() const { return meta_->wilderness.pload(); }
    size_t pool_size() const { return pool_size_; }

    /// Internal consistency check used by tests: walks the heap from chunk 0
    /// to the wilderness mark and cross-checks bin membership.  Returns the
    /// number of chunks walked, or 0 on inconsistency.
    size_t check_consistency() const {
        uint64_t off = 0;
        const uint64_t end = meta_->wilderness.pload();
        size_t chunks = 0;
        uint64_t live = 0, live_cnt = 0, quick_cnt = 0;
        while (off < end) {
            const Chunk* c = chunk_at(off);
            uint64_t sz = c->size();
            if (sz < kMinChunk || off + sz > end) return 0;
            if (footer_of(c) != sz) return 0;
            if (c->in_quick()) {
                quick_cnt++;
            } else if (c->in_use()) {
                live += sz - kHeaderSize;
                live_cnt++;
            } else if (!find_in_bin(const_cast<Chunk*>(c))) {
                return 0;  // free chunk missing from its bin
            }
            off += sz;
            chunks++;
        }
        if (off != end) return 0;
        if (live != meta_->allocated_bytes.pload()) return 0;
        if (live_cnt != meta_->alloc_count.pload()) return 0;
        // Every quick-marked chunk must be reachable from a quick list.
        uint64_t listed = 0;
        for (int qb = 0; qb < kQuickBins; ++qb) {
            for (Chunk* c = meta_->quick[qb].pload(); c != nullptr;
                 c = c->next_free.pload()) {
                if (!c->in_quick() || quick_index(c->size()) != qb) return 0;
                listed++;
            }
        }
        if (listed != quick_cnt) return 0;
        return chunks == 0 ? 1 : chunks;  // 0 is the error code
    }

    /// Defensive structural check of the free-list metadata, safe to run on
    /// an arbitrarily corrupted heap (a recovered crash image, possibly from
    /// a deliberately broken protocol mutation): every pointer is validated
    /// for alignment and bounds BEFORE it is dereferenced and every list
    /// walk is step-capped, so torn or garbage metadata yields `false`
    /// instead of a wild dereference.  check_consistency() above assumes a
    /// structurally sound heap; probe_allocator runs this first so a corrupt
    /// image is reported as a violation rather than crashing the prober.
    bool metadata_sane() const {
        const uint64_t end = meta_->wilderness.pload();
        if (end > pool_size_ || end % kAlign != 0) return false;
        const size_t cap = pool_size_ / kMinChunk + 1;
        const auto base = reinterpret_cast<uintptr_t>(pool_);
        auto valid_chunk = [&](const Chunk* c) {
            const auto a = reinterpret_cast<uintptr_t>(c);
            if (a < base || a - base > end || end - (a - base) < kMinChunk)
                return false;
            if ((a - base) % kAlign != 0) return false;
            const uint64_t sz = c->size();  // in bounds now; safe to read
            return sz >= kMinChunk && sz % kAlign == 0 &&
                   sz <= end - (a - base);
        };
        for (int b = 0; b < kNumBins; ++b) {
            size_t steps = 0;
            const Chunk* prev = nullptr;
            for (const Chunk* c = meta_->bins[b].pload(); c != nullptr;
                 prev = c, c = c->next_free.pload()) {
                if (!valid_chunk(c) || c->in_use() || c->in_quick())
                    return false;
                if (bin_index(c->size()) != b) return false;
                // unlink() writes through prev_free, so the back links must
                // be sane too, not just the forward chain.
                if (c->prev_free.pload() != prev) return false;
                if (++steps > cap) return false;  // cycle
            }
        }
        for (int qb = 0; qb < kQuickBins; ++qb) {
            size_t steps = 0;
            for (const Chunk* c = meta_->quick[qb].pload(); c != nullptr;
                 c = c->next_free.pload()) {
                if (!valid_chunk(c) || !c->in_quick()) return false;
                if (quick_index(c->size()) != qb) return false;
                if (++steps > cap) return false;
            }
        }
        return true;
    }

  private:
    static uint64_t chunk_size_for(size_t n) {
        uint64_t sz = ((n + kHeaderSize + kAlign - 1) / kAlign) * kAlign;
        return sz < kMinChunk ? kMinChunk : sz;
    }

    static int quick_index(uint64_t chunk_size) {
        return static_cast<int>((chunk_size - kMinChunk) / kAlign);
    }

    static int bin_index(uint64_t sz) {
        int idx = std::bit_width(sz) - 6;  // 32..63 -> 0, 64..127 -> 1, ...
        if (idx < 0) idx = 0;
        if (idx >= kNumBins) idx = kNumBins - 1;
        return idx;
    }

    Chunk* chunk_at(uint64_t off) const {
        return reinterpret_cast<Chunk*>(pool_ + off);
    }
    const Chunk* chunk_at_c(uint64_t off) const {
        return reinterpret_cast<const Chunk*>(pool_ + off);
    }
    uint64_t offset_of(const Chunk* c) const {
        return reinterpret_cast<const uint8_t*>(c) - pool_;
    }
    // Payloads start 8 bytes into the chunk (right after size_flags); these
    // two are the only places that know that offset.
    static void* payload(Chunk* c) {
        return reinterpret_cast<uint8_t*>(c) + 8;
    }
    static const Chunk* chunk_of(const void* payload_ptr) {
        return reinterpret_cast<const Chunk*>(
            static_cast<const uint8_t*>(payload_ptr) - 8);
    }
    static Chunk* chunk_of(void* payload_ptr) {
        return const_cast<Chunk*>(
            chunk_of(static_cast<const void*>(payload_ptr)));
    }
    static uint64_t payload_size(const Chunk* c) {
        return c->size() - kHeaderSize;
    }

    /// The footer is a persist<uint64_t> occupying the last 8 bytes of the
    /// chunk; it mirrors the size so the left neighbour can be found.
    p<uint64_t>* footer_slot(const Chunk* c) const {
        return reinterpret_cast<p<uint64_t>*>(
            const_cast<uint8_t*>(reinterpret_cast<const uint8_t*>(c)) +
            c->size() - 8);
    }
    void write_footer(Chunk* c, uint64_t sz) {
        auto* f = reinterpret_cast<p<uint64_t>*>(reinterpret_cast<uint8_t*>(c) +
                                                 sz - 8);
        *f = sz;
    }
    uint64_t footer_of(const Chunk* c) const {
        return footer_slot(c)->pload();
    }

    void mark_allocated(Chunk* c) {
        c->size_flags = c->size() | kInUse;
        meta_->allocated_bytes += payload_size(c);
        meta_->alloc_count += 1;
    }

    void push_bin(Chunk* c) {
        int b = bin_index(c->size());
        Chunk* head = meta_->bins[b].pload();
        c->next_free = head;
        c->prev_free = nullptr;
        if (head != nullptr) head->prev_free = c;
        meta_->bins[b] = c;
    }

    void unlink(Chunk* c) {
        Chunk* prev = c->prev_free.pload();
        Chunk* next = c->next_free.pload();
        if (prev != nullptr) {
            prev->next_free = next;
        } else {
            meta_->bins[bin_index(c->size())] = next;
        }
        if (next != nullptr) next->prev_free = prev;
    }

    /// First-fit within the size-class bin (bounded scan), then first chunk
    /// of any larger bin.
    Chunk* take_from_bins(uint64_t need) {
        int b = bin_index(need);
        Chunk* c = meta_->bins[b].pload();
        for (int scanned = 0; c != nullptr && scanned < 16;
             c = c->next_free.pload(), ++scanned) {
            if (c->size() >= need) {
                unlink(c);
                return c;
            }
        }
        for (int hb = b + 1; hb < kNumBins; ++hb) {
            Chunk* h = meta_->bins[hb].pload();
            if (h != nullptr) {
                unlink(h);
                return h;
            }
        }
        return nullptr;
    }

    void split_if_worth(Chunk* c, uint64_t need) {
        uint64_t sz = c->size();
        if (sz < need + kMinChunk) return;
        c->size_flags = need;
        write_footer(c, need);
        Chunk* rest = chunk_at(offset_of(c) + need);
        rest->size_flags = sz - need;
        write_footer(rest, sz - need);
        push_bin(rest);
    }

    Chunk* coalesce_right(Chunk* c) {
        uint64_t next_off = offset_of(c) + c->size();
        if (next_off >= meta_->wilderness.pload()) return c;
        Chunk* n = chunk_at(next_off);
        if (n->in_use()) return c;
        unlink(n);
        uint64_t merged = c->size() + n->size();
        c->size_flags = merged;
        write_footer(c, merged);
        return c;
    }

    Chunk* coalesce_left(Chunk* c) {
        uint64_t off = offset_of(c);
        if (off == 0) return c;
        // The left neighbour's footer sits in the 8 bytes before our header.
        auto* lf = reinterpret_cast<p<uint64_t>*>(reinterpret_cast<uint8_t*>(c) - 8);
        uint64_t lsz = lf->pload();
        Chunk* l = chunk_at(off - lsz);
        if (l->in_use()) return c;
        unlink(l);
        uint64_t merged = l->size() + c->size();
        l->size_flags = merged;
        write_footer(l, merged);
        return l;
    }

    bool find_in_bin(Chunk* c) const {
        Chunk* it = meta_->bins[bin_index(c->size())].pload();
        while (it != nullptr) {
            if (it == c) return true;
            it = it->next_free.pload();
        }
        return false;
    }

    Meta* meta_ = nullptr;
    uint8_t* pool_ = nullptr;
    size_t pool_size_ = 0;
    bool quick_enabled_ = false;
};

}  // namespace romulus
