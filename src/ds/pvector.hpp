// Persistent dynamic array, templated on the PTM.
//
// Extension structure: contiguous storage with amortised-O(1) durable
// push_back.  Growth allocates a new backing array, copies through the
// interposition layer (so the copy is part of the transaction and replays
// into back), and frees the old one — all failure-atomic.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename T>
class PVector {
    template <typename U>
    using p = typename PTM::template p<U>;

  public:
    /// Must be constructed inside a transaction.
    explicit PVector(uint64_t initial_capacity = 8) {
        cap = initial_capacity;
        len = 0;
        data = alloc_array(initial_capacity);
    }

    /// Must be destroyed inside a transaction.
    ~PVector() { PTM::free_bytes(data.pload()); }

    void push_back(const T& v) {
        PTM::updateTx([&] {
            if (len.pload() == cap.pload()) grow();
            data.pload()[len.pload()] = v;
            len += 1;
        });
    }

    /// Remove and return the last element; throws std::out_of_range when
    /// empty.
    T pop_back() {
        T out{};
        PTM::updateTx([&] {
            const uint64_t n = len.pload();
            if (n == 0) throw std::out_of_range("PVector::pop_back: empty");
            out = data.pload()[n - 1].pload();
            len -= 1;
        });
        return out;
    }

    T get(uint64_t idx) const {
        T out{};
        PTM::readTx([&] {
            if (idx >= len.pload()) throw std::out_of_range("PVector::get");
            out = data.pload()[idx].pload();
        });
        return out;
    }

    void set(uint64_t idx, const T& v) {
        PTM::updateTx([&] {
            if (idx >= len.pload()) throw std::out_of_range("PVector::set");
            data.pload()[idx] = v;
        });
    }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = len.pload(); });
        return n;
    }

    uint64_t capacity() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = cap.pload(); });
        return n;
    }

    template <typename F>
    void for_each(F&& f) const {
        PTM::readTx([&] {
            const uint64_t n = len.pload();
            p<T>* d = data.pload();
            for (uint64_t i = 0; i < n; ++i) f(d[i].pload());
        });
    }

  private:
    static p<T>* alloc_array(uint64_t n) {
        return static_cast<p<T>*>(PTM::alloc_bytes(n * sizeof(p<T>)));
    }

    void grow() {
        const uint64_t old_cap = cap.pload();
        const uint64_t new_cap = old_cap * 2;
        p<T>* old = data.pload();
        p<T>* fresh = alloc_array(new_cap);
        const uint64_t n = len.pload();
        for (uint64_t i = 0; i < n; ++i) fresh[i] = old[i].pload();
        PTM::free_bytes(old);
        data = fresh;
        cap = new_cap;
    }

    p<p<T>*> data;
    p<uint64_t> len;
    p<uint64_t> cap;
};

}  // namespace romulus::ds
