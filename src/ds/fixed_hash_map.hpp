// Persistent fixed-capacity hash map with byte-array values — the
// "statically-dimensioned hash map with 2,048 buckets" built for Fig. 5
// (§6.2), which also sweeps the *value size* (8..1024 bytes), exercising the
// PTMs' bulk-store paths.  No resizing and no shared counter on the update
// path, so disjoint updates really are disjoint (this is what lets the
// abort-based baseline scale again in Fig. 5).
#pragma once

#include <cstdint>
#include <cstring>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename K>
class FixedHashMap {
    template <typename T>
    using p = typename PTM::template p<T>;

  public:
    struct Node {
        p<K> key;
        p<Node*> next;
        p<uint32_t> vsize;
        // value bytes follow the node header (single allocation)
        uint8_t* value_bytes() { return reinterpret_cast<uint8_t*>(this + 1); }
        const uint8_t* value_bytes() const {
            return reinterpret_cast<const uint8_t*>(this + 1);
        }
    };

    /// Must be constructed inside a transaction.
    explicit FixedHashMap(uint64_t num_buckets = 2048) {
        nbuckets = num_buckets;
        auto* b = static_cast<p<Node*>*>(
            PTM::alloc_bytes(num_buckets * sizeof(p<Node*>)));
        for (uint64_t i = 0; i < num_buckets; ++i) b[i] = nullptr;
        buckets = b;
    }

    /// Must be destroyed inside a transaction.
    ~FixedHashMap() {
        const uint64_t nb = nbuckets.pload();
        p<Node*>* b = buckets.pload();
        for (uint64_t i = 0; i < nb; ++i) {
            Node* n = b[i].pload();
            while (n != nullptr) {
                Node* nx = n->next.pload();
                PTM::free_bytes(n);
                n = nx;
            }
        }
        PTM::free_bytes(b);
    }

    /// Insert or overwrite key -> value[0..vsize).
    void put(const K& key_, const void* value, uint32_t vsize) {
        PTM::updateTx([&] {
            p<Node*>& slot =
                buckets.pload()[hash(key_) % nbuckets.pload()];
            for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
                if (n->key.pload() == key_) {
                    if (n->vsize.pload() == vsize) {
                        PTM::store_range(n->value_bytes(), value, vsize);
                        return;
                    }
                    remove_node(slot, n);
                    break;
                }
            }
            Node* n = static_cast<Node*>(PTM::alloc_bytes(sizeof(Node) + vsize));
            n->key = key_;
            n->vsize = vsize;
            PTM::store_range(n->value_bytes(), value, vsize);
            n->next = slot.pload();
            slot = n;
        });
    }

    /// Copy the value into out (caller provides >= capacity bytes); returns
    /// the value size, or -1 if absent.
    int64_t get(const K& key_, void* out, uint32_t capacity) const {
        int64_t got = -1;
        PTM::readTx([&] {
            got = -1;  // restartable: optimistic readTx may re-run f
            const Node* n = find(key_);
            if (n == nullptr) return;
            const uint32_t vs = n->vsize.pload();
            if (out != nullptr && vs <= capacity)
                // romlint: allow(raw-memcpy) read-direction copy out of the heap
                std::memcpy(out, n->value_bytes(), vs);
            got = vs;
        });
        return got;
    }

    bool contains(const K& key_) const {
        bool found = false;
        PTM::readTx([&] { found = find(key_) != nullptr; });
        return found;
    }

    bool remove(const K& key_) {
        bool removed = false;
        PTM::updateTx([&] {
            p<Node*>& slot =
                buckets.pload()[hash(key_) % nbuckets.pload()];
            for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
                if (n->key.pload() == key_) {
                    remove_node(slot, n);
                    removed = true;
                    return;
                }
            }
        });
        return removed;
    }

    uint64_t size() const {  // O(n): no shared counter by design
        uint64_t n = 0;
        PTM::readTx([&] {
            const uint64_t nb = nbuckets.pload();
            p<Node*>* b = buckets.pload();
            for (uint64_t i = 0; i < nb; ++i)
                for (Node* node = b[i].pload(); node != nullptr;
                     node = node->next.pload())
                    ++n;
        });
        return n;
    }

  private:
    static uint64_t hash(const K& k) {
        return static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    }

    const Node* find(const K& key_) const {
        p<Node*>* b = buckets.pload();
        for (Node* n = b[hash(key_) % nbuckets.pload()].pload(); n != nullptr;
             n = n->next.pload()) {
            if (n->key.pload() == key_) return n;
        }
        return nullptr;
    }

    void remove_node(p<Node*>& slot, Node* victim) {
        Node* prev = nullptr;
        for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
            if (n == victim) {
                if (prev == nullptr) {
                    slot = n->next.pload();
                } else {
                    prev->next = n->next.pload();
                }
                PTM::free_bytes(n);
                return;
            }
            prev = n;
        }
    }

    p<p<Node*>*> buckets;
    p<uint64_t> nbuckets;
};

}  // namespace romulus::ds
