// Persistent skip-list set, templated on the PTM.
//
// Extension beyond the paper's three benchmark structures: an ordered set
// with O(log n) expected operations, demonstrating variable-size nodes
// (the tower is co-allocated with the node) on the persistent allocator.
// Tower heights are derived deterministically from the key hash, so no RNG
// state needs to be persisted and recovery never changes the structure's
// shape.
#pragma once

#include <cstdint>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename K>
class SkipListSet {
    template <typename T>
    using p = typename PTM::template p<T>;

  public:
    static constexpr int kMaxLevel = 16;

    struct Node {
        p<K> key;
        p<uint8_t> height;
        // tower of `height` forward pointers follows the node
        p<Node*>* tower() { return reinterpret_cast<p<Node*>*>(this + 1); }
        const p<Node*>* tower() const {
            return reinterpret_cast<const p<Node*>*>(this + 1);
        }
    };

    /// Must be constructed inside a transaction.
    SkipListSet() {
        Node* h = alloc_node(K{}, kMaxLevel);
        for (int i = 0; i < kMaxLevel; ++i) h->tower()[i] = nullptr;
        head = h;
        count = 0;
    }

    /// Must be destroyed inside a transaction.
    ~SkipListSet() {
        Node* n = head.pload();
        while (n != nullptr) {
            Node* nx = n->tower()[0].pload();
            PTM::free_bytes(n);
            n = nx;
        }
    }

    bool add(const K& key_) {
        bool added = false;
        PTM::updateTx([&] {
            Node* preds[kMaxLevel];
            Node* found = find_preds(key_, preds);
            if (found != nullptr) return;
            const int h = height_of(key_);
            Node* n = alloc_node(key_, h);
            for (int i = 0; i < h; ++i) {
                n->tower()[i] = preds[i]->tower()[i].pload();
                preds[i]->tower()[i] = n;
            }
            count += 1;
            added = true;
        });
        return added;
    }

    bool remove(const K& key_) {
        bool removed = false;
        PTM::updateTx([&] {
            Node* preds[kMaxLevel];
            Node* victim = find_preds(key_, preds);
            if (victim == nullptr) return;
            const int h = victim->height.pload();
            for (int i = 0; i < h; ++i) {
                if (preds[i]->tower()[i].pload() == victim)
                    preds[i]->tower()[i] = victim->tower()[i].pload();
            }
            PTM::free_bytes(victim);
            count -= 1;
            removed = true;
        });
        return removed;
    }

    bool contains(const K& key_) const {
        bool found = false;
        PTM::readTx([&] {
            const Node* n = head.pload();
            for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
                for (Node* nx = n->tower()[lvl].pload();
                     nx != nullptr && nx->key.pload() < key_;
                     nx = n->tower()[lvl].pload()) {
                    n = nx;
                }
            }
            const Node* cand = n->tower()[0].pload();
            found = cand != nullptr && cand->key.pload() == key_;
        });
        return found;
    }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = count.pload(); });
        return n;
    }

    template <typename F>
    void for_each(F&& f) const {
        PTM::readTx([&] {
            for (Node* n = head.pload()->tower()[0].pload(); n != nullptr;
                 n = n->tower()[0].pload())
                f(n->key.pload());
        });
    }

    /// Tests: sorted bottom level, every tower link skips forward, count.
    bool check_invariants() const {
        bool ok = true;
        PTM::readTx([&] {
            ok = true;  // restartable: optimistic readTx may re-run f
            uint64_t n = 0;
            Node* prev = nullptr;
            for (Node* cur = head.pload()->tower()[0].pload(); cur != nullptr;
                 cur = cur->tower()[0].pload()) {
                if (prev != nullptr && !(prev->key.pload() < cur->key.pload())) {
                    ok = false;
                    return;
                }
                prev = cur;
                ++n;
            }
            if (n != count.pload()) {
                ok = false;
                return;
            }
            // Each upper-level list must be a subsequence of level 0.
            for (int lvl = 1; lvl < kMaxLevel; ++lvl) {
                K last{};
                bool first = true;
                for (Node* cur = head.pload()->tower()[lvl].pload();
                     cur != nullptr; cur = cur->tower()[lvl].pload()) {
                    if (cur->height.pload() <= lvl) {
                        ok = false;
                        return;
                    }
                    if (!first && !(last < cur->key.pload())) {
                        ok = false;
                        return;
                    }
                    last = cur->key.pload();
                    first = false;
                }
            }
        });
        return ok;
    }

  private:
    static Node* alloc_node(const K& key_, int height_) {
        Node* n = static_cast<Node*>(
            PTM::alloc_bytes(sizeof(Node) + sizeof(p<Node*>) * height_));
        n->key = key_;
        n->height = static_cast<uint8_t>(height_);
        for (int i = 0; i < height_; ++i) n->tower()[i] = nullptr;
        return n;
    }

    /// Deterministic tower height: geometric distribution over the key hash.
    static int height_of(const K& key_) {
        uint64_t h = static_cast<uint64_t>(key_) * 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        int lvl = 1;
        while ((h & 3) == 3 && lvl < kMaxLevel) {  // p = 1/4 per level
            ++lvl;
            h >>= 2;
        }
        return lvl;
    }

    /// Fills preds[0..kMaxLevel) with the rightmost node < key per level;
    /// returns the node with the key, or nullptr.
    Node* find_preds(const K& key_, Node** preds) const {
        Node* n = head.pload();
        for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
            for (Node* nx = n->tower()[lvl].pload();
                 nx != nullptr && nx->key.pload() < key_;
                 nx = n->tower()[lvl].pload()) {
                n = nx;
            }
            preds[lvl] = n;
        }
        Node* cand = n->tower()[0].pload();
        return (cand != nullptr && cand->key.pload() == key_) ? cand : nullptr;
    }

    p<Node*> head;
    p<uint64_t> count;
};

}  // namespace romulus::ds
