// Persistent sorted linked-list set — Algorithm 2 of the paper, generalised
// over the PTM.  The benchmark data structure with the fewest stores per
// update (§6.2: ~10 pwbs per transaction).
#pragma once

#include <cstdint>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename K>
class LinkedListSet {
    template <typename T>
    using p = typename PTM::template p<T>;

  public:
    struct Node {
        p<K> key;   // all node attributes are persisted (Algorithm 2)
        p<Node*> next;
        explicit Node(const K& k) {
            key = k;
            next = nullptr;
        }
    };

    /// Must be constructed inside a transaction (sentinels are allocated).
    LinkedListSet() {
        Node* t = PTM::template tmNew<Node>(K{});
        Node* h = PTM::template tmNew<Node>(K{});
        h->next = t;
        head = h;
        tail = t;
        count = 0;
    }

    /// Must be destroyed inside a transaction.
    ~LinkedListSet() {
        Node* n = head.pload();
        while (n != nullptr) {
            Node* nx = n->next.pload();
            PTM::tmDelete(n);
            n = nx;
        }
    }

    bool add(const K& key_) {
        bool added = false;
        PTM::updateTx([&] {
            Node *prev, *node;
            find(key_, prev, node);
            added = !(node != tail.pload() && key_ == node->key.pload());
            if (!added) return;
            Node* n = PTM::template tmNew<Node>(key_);
            n->next = node;
            prev->next = n;
            count += 1;
        });
        return added;
    }

    bool remove(const K& key_) {
        bool removed = false;
        PTM::updateTx([&] {
            Node *prev, *node;
            find(key_, prev, node);
            removed = (node != tail.pload() && key_ == node->key.pload());
            if (!removed) return;
            prev->next = node->next.pload();
            PTM::tmDelete(node);
            count -= 1;
        });
        return removed;
    }

    bool contains(const K& key_) const {
        bool found = false;
        PTM::readTx([&] {
            Node *prev, *node;
            find(key_, prev, node);
            found = (node != tail_value() && node->key.pload() == key_);
        });
        return found;
    }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = count.pload(); });
        return n;
    }

    /// Read-only traversal: f(key) for each element in sorted order.
    template <typename F>
    void for_each(F&& f) const {
        PTM::readTx([&] {
            Node* t = tail_value();
            for (Node* n = head.pload()->next.pload(); n != t;
                 n = n->next.pload())
                f(n->key.pload());
        });
    }

    /// Structural invariant check (tests): strictly sorted, count matches.
    bool check_invariants() const {
        bool ok = true;
        PTM::readTx([&] {
            ok = true;  // restartable: optimistic readTx may re-run f
            uint64_t n = 0;
            Node* t = tail_value();
            Node* prev = nullptr;
            for (Node* cur = head.pload()->next.pload(); cur != t;
                 cur = cur->next.pload()) {
                if (prev != nullptr &&
                    !(prev->key.pload() < cur->key.pload())) {
                    ok = false;
                    return;
                }
                prev = cur;
                ++n;
            }
            if (n != count.pload()) ok = false;
        });
        return ok;
    }

  private:
    // Paper's find (Algorithm 2): on exit, prev->next == node and node is the
    // first element with node->key >= key (or tail).
    void find(const K& key_, Node*& prev, Node*& node) const {
        Node* t = tail_value();
        for (prev = head.pload(); (node = prev->next.pload()) != t;
             prev = node) {
            if (node->key.pload() >= key_) break;
        }
    }

    // tail is a sentinel *identity*: under RomulusLR a reader on the back
    // region sees the tail pointer already offset by pload(), and node
    // pointers reached by traversal are offset the same way, so comparing
    // the two pload() results is consistent in either region.
    Node* tail_value() const { return tail.pload(); }

    p<Node*> head;
    p<Node*> tail;
    p<uint64_t> count;
};

}  // namespace romulus::ds
