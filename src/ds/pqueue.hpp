// Persistent FIFO queue, templated on the PTM.
//
// Extension structure: the canonical producer/consumer shape for durable
// work queues ("the job survives the crash").  Singly-linked list with a
// dummy head node, as in Michael-Scott, but sequential — concurrency comes
// from the PTM's transactions.
#pragma once

#include <cstdint>
#include <optional>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename T>
class PQueue {
    template <typename U>
    using p = typename PTM::template p<U>;

  public:
    struct Node {
        p<T> value;
        p<Node*> next;
    };

    /// Must be constructed inside a transaction.
    PQueue() {
        Node* dummy = PTM::template tmNew<Node>();
        dummy->next = nullptr;
        head = dummy;
        tail = dummy;
        count = 0;
    }

    /// Must be destroyed inside a transaction.
    ~PQueue() {
        Node* n = head.pload();
        while (n != nullptr) {
            Node* nx = n->next.pload();
            PTM::tmDelete(n);
            n = nx;
        }
    }

    void enqueue(const T& v) {
        PTM::updateTx([&] {
            Node* n = PTM::template tmNew<Node>();
            n->value = v;
            n->next = nullptr;
            tail.pload()->next = n;
            tail = n;
            count += 1;
        });
    }

    /// Dequeue the oldest element; empty optional if the queue is empty.
    std::optional<T> dequeue() {
        std::optional<T> out;
        PTM::updateTx([&] {
            Node* dummy = head.pload();
            Node* first = dummy->next.pload();
            if (first == nullptr) return;
            out = first->value.pload();
            head = first;  // first becomes the new dummy
            if (tail.pload() == first) {
                // single-element case handled naturally: tail stays on first
            }
            PTM::tmDelete(dummy);
            count -= 1;
        });
        return out;
    }

    /// Peek without removing.
    std::optional<T> front() const {
        std::optional<T> out;
        PTM::readTx([&] {
            out.reset();  // restartable: optimistic readTx may re-run f
            Node* first = head.pload()->next.pload();
            if (first != nullptr) out = first->value.pload();
        });
        return out;
    }

    bool empty() const { return size() == 0; }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = count.pload(); });
        return n;
    }

    template <typename F>
    void for_each(F&& f) const {  // front to back
        PTM::readTx([&] {
            for (Node* n = head.pload()->next.pload(); n != nullptr;
                 n = n->next.pload())
                f(n->value.pload());
        });
    }

    bool check_invariants() const {
        bool ok = true;
        PTM::readTx([&] {
            ok = true;  // restartable: optimistic readTx may re-run f
            uint64_t n = 0;
            Node* last = head.pload();
            for (Node* cur = last->next.pload(); cur != nullptr;
                 cur = cur->next.pload()) {
                last = cur;
                ++n;
            }
            if (last != tail.pload() || n != count.pload()) ok = false;
        });
        return ok;
    }

  private:
    p<Node*> head;  ///< dummy node; head->next is the front
    p<Node*> tail;  ///< last node (== head when empty)
    p<uint64_t> count;
};

}  // namespace romulus::ds
