// Persistent red-black tree set (CLRS-style, with a nil sentinel), the
// third §6.2 benchmark structure — the one with the most stores per update
// (§6.2 measures pwb peaks at ~50 and ~130 per transaction, dominated by
// rebalancing and the allocator).
#pragma once

#include <cstdint>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename K>
class RBTree {
    template <typename T>
    using p = typename PTM::template p<T>;

    static constexpr uint8_t kRed = 0;
    static constexpr uint8_t kBlack = 1;

  public:
    struct Node {
        p<K> key;
        p<Node*> left;
        p<Node*> right;
        p<Node*> parent;
        p<uint8_t> color;
    };

    /// Must be constructed inside a transaction.
    RBTree() {
        Node* n = PTM::template tmNew<Node>();
        n->key = K{};
        n->left = n;
        n->right = n;
        n->parent = n;
        n->color = kBlack;
        nil = n;
        root = n;
        count = 0;
    }

    /// Must be destroyed inside a transaction.
    ~RBTree() {
        free_subtree(root.pload(), nil.pload());
        PTM::tmDelete(nil.pload());
    }

    bool add(const K& key_) {
        bool added = false;
        PTM::updateTx([&] {
            Node* NIL = nil.pload();
            Node* y = NIL;
            Node* x = root.pload();
            while (x != NIL) {
                y = x;
                const K xk = x->key.pload();
                if (key_ == xk) return;  // already present
                x = (key_ < xk) ? x->left.pload() : x->right.pload();
            }
            Node* z = PTM::template tmNew<Node>();
            z->key = key_;
            z->left = NIL;
            z->right = NIL;
            z->parent = y;
            z->color = kRed;
            if (y == NIL) {
                root = z;
            } else if (key_ < y->key.pload()) {
                y->left = z;
            } else {
                y->right = z;
            }
            insert_fixup(z);
            count += 1;
            added = true;
        });
        return added;
    }

    bool remove(const K& key_) {
        bool removed = false;
        PTM::updateTx([&] {
            Node* z = find_node(key_);
            if (z == nil.pload()) return;
            delete_node(z);
            count -= 1;
            removed = true;
        });
        return removed;
    }

    bool contains(const K& key_) const {
        bool found = false;
        PTM::readTx([&] { found = find_node(key_) != nil.pload(); });
        return found;
    }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = count.pload(); });
        return n;
    }

    /// In-order traversal: f(key) in ascending order.
    template <typename F>
    void for_each(F&& f) const {
        PTM::readTx([&] { inorder(root.pload(), nil.pload(), f); });
    }

    /// Tests: BST order, red-red violations, black-height balance, count.
    bool check_invariants() const {
        bool ok = true;
        PTM::readTx([&] {
            ok = true;  // restartable: optimistic readTx may re-run f
            Node* NIL = nil.pload();
            Node* r = root.pload();
            if (r != NIL && r->color.pload() != kBlack) {
                ok = false;
                return;
            }
            uint64_t n = 0;
            int bh = check_subtree(r, NIL, n);
            if (bh < 0 || n != count.pload()) ok = false;
        });
        return ok;
    }

  private:
    Node* find_node(const K& key_) const {
        Node* NIL = nil.pload();
        Node* x = root.pload();
        while (x != NIL) {
            const K xk = x->key.pload();
            if (key_ == xk) return x;
            x = (key_ < xk) ? x->left.pload() : x->right.pload();
        }
        return NIL;
    }

    void left_rotate(Node* x) {
        Node* NIL = nil.pload();
        Node* y = x->right.pload();
        x->right = y->left.pload();
        if (y->left.pload() != NIL) y->left.pload()->parent = x;
        y->parent = x->parent.pload();
        Node* xp = x->parent.pload();
        if (xp == NIL) {
            root = y;
        } else if (x == xp->left.pload()) {
            xp->left = y;
        } else {
            xp->right = y;
        }
        y->left = x;
        x->parent = y;
    }

    void right_rotate(Node* x) {
        Node* NIL = nil.pload();
        Node* y = x->left.pload();
        x->left = y->right.pload();
        if (y->right.pload() != NIL) y->right.pload()->parent = x;
        y->parent = x->parent.pload();
        Node* xp = x->parent.pload();
        if (xp == NIL) {
            root = y;
        } else if (x == xp->right.pload()) {
            xp->right = y;
        } else {
            xp->left = y;
        }
        y->right = x;
        x->parent = y;
    }

    void insert_fixup(Node* z) {
        while (z->parent.pload()->color.pload() == kRed) {
            Node* zp = z->parent.pload();
            Node* zpp = zp->parent.pload();
            if (zp == zpp->left.pload()) {
                Node* y = zpp->right.pload();
                if (y->color.pload() == kRed) {
                    zp->color = kBlack;
                    y->color = kBlack;
                    zpp->color = kRed;
                    z = zpp;
                } else {
                    if (z == zp->right.pload()) {
                        z = zp;
                        left_rotate(z);
                        zp = z->parent.pload();
                        zpp = zp->parent.pload();
                    }
                    zp->color = kBlack;
                    zpp->color = kRed;
                    right_rotate(zpp);
                }
            } else {
                Node* y = zpp->left.pload();
                if (y->color.pload() == kRed) {
                    zp->color = kBlack;
                    y->color = kBlack;
                    zpp->color = kRed;
                    z = zpp;
                } else {
                    if (z == zp->left.pload()) {
                        z = zp;
                        right_rotate(z);
                        zp = z->parent.pload();
                        zpp = zp->parent.pload();
                    }
                    zp->color = kBlack;
                    zpp->color = kRed;
                    left_rotate(zpp);
                }
            }
        }
        root.pload()->color = kBlack;
    }

    void transplant(Node* u, Node* v) {
        Node* NIL = nil.pload();
        Node* up = u->parent.pload();
        if (up == NIL) {
            root = v;
        } else if (u == up->left.pload()) {
            up->left = v;
        } else {
            up->right = v;
        }
        v->parent = up;  // CLRS: nil's parent is set deliberately
    }

    Node* minimum(Node* x) const {
        Node* NIL = nil.pload();
        while (x->left.pload() != NIL) x = x->left.pload();
        return x;
    }

    void delete_node(Node* z) {
        Node* NIL = nil.pload();
        Node* y = z;
        uint8_t y_orig = y->color.pload();
        Node* x;
        if (z->left.pload() == NIL) {
            x = z->right.pload();
            transplant(z, x);
        } else if (z->right.pload() == NIL) {
            x = z->left.pload();
            transplant(z, x);
        } else {
            y = minimum(z->right.pload());
            y_orig = y->color.pload();
            x = y->right.pload();
            if (y->parent.pload() == z) {
                x->parent = y;
            } else {
                transplant(y, x);
                y->right = z->right.pload();
                y->right.pload()->parent = y;
            }
            transplant(z, y);
            y->left = z->left.pload();
            y->left.pload()->parent = y;
            y->color = z->color.pload();
        }
        PTM::tmDelete(z);
        if (y_orig == kBlack) delete_fixup(x);
    }

    void delete_fixup(Node* x) {
        while (x != root.pload() && x->color.pload() == kBlack) {
            Node* xp = x->parent.pload();
            if (x == xp->left.pload()) {
                Node* w = xp->right.pload();
                if (w->color.pload() == kRed) {
                    w->color = kBlack;
                    xp->color = kRed;
                    left_rotate(xp);
                    w = xp->right.pload();
                }
                if (w->left.pload()->color.pload() == kBlack &&
                    w->right.pload()->color.pload() == kBlack) {
                    w->color = kRed;
                    x = xp;
                } else {
                    if (w->right.pload()->color.pload() == kBlack) {
                        w->left.pload()->color = kBlack;
                        w->color = kRed;
                        right_rotate(w);
                        w = xp->right.pload();
                    }
                    w->color = xp->color.pload();
                    xp->color = kBlack;
                    w->right.pload()->color = kBlack;
                    left_rotate(xp);
                    x = root.pload();
                }
            } else {
                Node* w = xp->left.pload();
                if (w->color.pload() == kRed) {
                    w->color = kBlack;
                    xp->color = kRed;
                    right_rotate(xp);
                    w = xp->left.pload();
                }
                if (w->right.pload()->color.pload() == kBlack &&
                    w->left.pload()->color.pload() == kBlack) {
                    w->color = kRed;
                    x = xp;
                } else {
                    if (w->left.pload()->color.pload() == kBlack) {
                        w->right.pload()->color = kBlack;
                        w->color = kRed;
                        left_rotate(w);
                        w = xp->left.pload();
                    }
                    w->color = xp->color.pload();
                    xp->color = kBlack;
                    w->left.pload()->color = kBlack;
                    right_rotate(xp);
                    x = root.pload();
                }
            }
        }
        x->color = kBlack;
    }

    template <typename F>
    void inorder(Node* x, Node* NIL, F&& f) const {
        if (x == NIL) return;
        inorder(x->left.pload(), NIL, f);
        f(x->key.pload());
        inorder(x->right.pload(), NIL, f);
    }

    /// Returns black-height or -1 on violation; counts nodes into n.
    int check_subtree(Node* x, Node* NIL, uint64_t& n) const {
        if (x == NIL) return 1;
        ++n;
        Node* l = x->left.pload();
        Node* r = x->right.pload();
        if (l != NIL && !(l->key.pload() < x->key.pload())) return -1;
        if (r != NIL && !(x->key.pload() < r->key.pload())) return -1;
        if (x->color.pload() == kRed &&
            (l->color.pload() == kRed || r->color.pload() == kRed))
            return -1;
        int lb = check_subtree(l, NIL, n);
        int rb = check_subtree(r, NIL, n);
        if (lb < 0 || rb < 0 || lb != rb) return -1;
        return lb + (x->color.pload() == kBlack ? 1 : 0);
    }

    void free_subtree(Node* x, Node* NIL) {
        if (x == NIL) return;
        free_subtree(x->left.pload(), NIL);
        free_subtree(x->right.pload(), NIL);
        PTM::tmDelete(x);
    }

    p<Node*> root;
    p<Node*> nil;
    p<uint64_t> count;
};

}  // namespace romulus::ds
