// Persistent resizable hash map (separate chaining), the §6.2 benchmark
// structure.  Deliberately keeps a shared element counter that every update
// modifies — the paper uses exactly this design point to explain why
// abort-based STMs (Mnemosyne) collapse on it while Romulus, whose
// transactions never abort, is unaffected (Fig. 5 discussion).
#pragma once

#include <cstdint>

#include "core/engine_globals.hpp"

namespace romulus::ds {

template <typename PTM, typename K>
class HashMap {
    template <typename T>
    using p = typename PTM::template p<T>;

  public:
    struct Node {
        p<K> key;
        p<Node*> next;
        explicit Node(const K& k) {
            key = k;
            next = nullptr;
        }
    };

    /// Must be constructed inside a transaction.
    explicit HashMap(uint64_t initial_buckets = 16) {
        nbuckets = initial_buckets;
        count = 0;
        buckets = alloc_buckets(initial_buckets);
    }

    /// Must be destroyed inside a transaction.
    ~HashMap() {
        const uint64_t nb = nbuckets.pload();
        p<Node*>* b = buckets.pload();
        for (uint64_t i = 0; i < nb; ++i) {
            Node* n = b[i].pload();
            while (n != nullptr) {
                Node* nx = n->next.pload();
                PTM::tmDelete(n);
                n = nx;
            }
        }
        PTM::free_bytes(b);
    }

    bool add(const K& key_) {
        bool added = false;
        PTM::updateTx([&] {
            const uint64_t nb = nbuckets.pload();
            p<Node*>& slot = buckets.pload()[hash(key_) % nb];
            for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
                if (n->key.pload() == key_) return;  // already present
            }
            Node* n = PTM::template tmNew<Node>(key_);
            n->next = slot.pload();
            slot = n;
            count += 1;  // the shared counter: every update writes it
            added = true;
            if (count.pload() > 4 * nb) grow(nb * 2);
        });
        return added;
    }

    bool remove(const K& key_) {
        bool removed = false;
        PTM::updateTx([&] {
            const uint64_t nb = nbuckets.pload();
            p<Node*>& slot = buckets.pload()[hash(key_) % nb];
            Node* prev = nullptr;
            for (Node* n = slot.pload(); n != nullptr; n = n->next.pload()) {
                if (n->key.pload() == key_) {
                    if (prev == nullptr) {
                        slot = n->next.pload();
                    } else {
                        prev->next = n->next.pload();
                    }
                    PTM::tmDelete(n);
                    count -= 1;
                    removed = true;
                    return;
                }
                prev = n;
            }
        });
        return removed;
    }

    bool contains(const K& key_) const {
        bool found = false;
        PTM::readTx([&] {
            found = false;  // restartable: optimistic readTx may re-run f
            const uint64_t nb = nbuckets.pload();
            p<Node*>* b = buckets.pload();
            for (Node* n = b[hash(key_) % nb].pload(); n != nullptr;
                 n = n->next.pload()) {
                if (n->key.pload() == key_) {
                    found = true;
                    return;
                }
            }
        });
        return found;
    }

    uint64_t size() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = count.pload(); });
        return n;
    }

    uint64_t bucket_count() const {
        uint64_t n = 0;
        PTM::readTx([&] { n = nbuckets.pload(); });
        return n;
    }

    template <typename F>
    void for_each(F&& f) const {
        PTM::readTx([&] {
            const uint64_t nb = nbuckets.pload();
            p<Node*>* b = buckets.pload();
            for (uint64_t i = 0; i < nb; ++i)
                for (Node* n = b[i].pload(); n != nullptr; n = n->next.pload())
                    f(n->key.pload());
        });
    }

    /// Tests: every element hashed to its bucket, counter consistent.
    bool check_invariants() const {
        bool ok = true;
        PTM::readTx([&] {
            ok = true;  // restartable: optimistic readTx may re-run f
            const uint64_t nb = nbuckets.pload();
            p<Node*>* b = buckets.pload();
            uint64_t n = 0;
            for (uint64_t i = 0; i < nb; ++i) {
                for (Node* node = b[i].pload(); node != nullptr;
                     node = node->next.pload()) {
                    if (hash(node->key.pload()) % nb != i) {
                        ok = false;
                        return;
                    }
                    ++n;
                }
            }
            if (n != count.pload()) ok = false;
        });
        return ok;
    }

  private:
    static uint64_t hash(const K& k) {
        return static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    }

    static p<Node*>* alloc_buckets(uint64_t n) {
        auto* b = static_cast<p<Node*>*>(
            PTM::alloc_bytes(n * sizeof(p<Node*>)));
        for (uint64_t i = 0; i < n; ++i) b[i] = nullptr;
        return b;
    }

    void grow(uint64_t new_nb) {
        const uint64_t nb = nbuckets.pload();
        p<Node*>* old = buckets.pload();
        p<Node*>* fresh = alloc_buckets(new_nb);
        for (uint64_t i = 0; i < nb; ++i) {
            Node* n = old[i].pload();
            while (n != nullptr) {
                Node* nx = n->next.pload();
                p<Node*>& slot = fresh[hash(n->key.pload()) % new_nb];
                n->next = slot.pload();
                slot = n;
                n = nx;
            }
        }
        PTM::free_bytes(old);
        buckets = fresh;
        nbuckets = new_nb;
    }

    p<p<Node*>*> buckets;
    p<uint64_t> nbuckets;
    p<uint64_t> count;
};

}  // namespace romulus::ds
