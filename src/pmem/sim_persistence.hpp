// SimPersistence: a deterministic shadow-cache model of persistent memory,
// used by the crash-injection tests (DESIGN.md §4.4).
//
// Real NVM semantics: a store lands in the (volatile) cache; it reaches the
// persistence domain only once its cache line is written back — either
// explicitly (pwb + fence) or spontaneously (cache eviction).  On a power
// cut, lines still in the cache are lost.  The mmap-on-DRAM emulation used
// by the paper (and by this repo at runtime) cannot exhibit those losses, so
// correctness bugs in flush placement are invisible to it.
//
// This model makes them visible: it maintains a shadow image of the region
// holding only data that *provably* reached persistence under the model:
//   on_store  -> the line becomes dirty (cache-only),
//   on_pwb    -> the line becomes pending write-back,
//   on_fence  -> pending lines are copied into the shadow image,
//   eviction  -> optionally, dirty lines are copied at random fences
//                (spontaneous write-back is always legal).
//
// Two legal flush-content semantics are both supported: the content written
// back can be captured when the pwb executes (AtPwb) or when the fence
// completes (AtFence).  Hardware may do either; algorithms must be correct
// under both.
//
// Non-temporal stores (pmem::persist_copy) appear in the event stream as a
// store immediately followed by a pwb of each streamed line, with NO fence
// for persist_copy's internal sfence: streamed lines therefore stay pending
// here until the engine's own pfence/psync, strictly more conservative than
// the hardware (which would have persisted them at the sfence).  Since an NT
// store's content is final when it executes, AtPwb and AtFence capture
// identical bytes for those lines (docs/checker.md, "Non-temporal stores").
//
// A "crash" replaces the live region's bytes with the shadow image, which is
// exactly the state a recovery procedure would see after a power failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pmem/flush.hpp"

namespace romulus::pmem {

class SimPersistence final : public SimHooks {
  public:
    // Hoisted to namespace scope (flush.hpp) so the persistency checker can
    // share it; aliased here for source compatibility.
    using FlushContent = romulus::pmem::FlushContent;

    struct Options {
        FlushContent content = FlushContent::AtFence;
        double evict_probability = 0.0;  ///< per dirty line, per fence
        uint64_t seed = 1;
        /// Forward every event to this observer after processing it, the
        /// same composition pattern PersistencyChecker::Options uses — e.g.
        /// romver's PersistEventRecorder records the stream while this
        /// crash model consumes it.  Not owned.  Note for recorder users:
        /// the persist-graph model assumes no spontaneous eviction; chain
        /// the recorder only with evict_probability == 0.
        SimHooks* next = nullptr;
    };

    /// Track [base, base+size). The shadow image is initialised from the
    /// current live content (assumed persistent at attach time).
    SimPersistence(uint8_t* base, size_t size, Options opts);
    SimPersistence(uint8_t* base, size_t size)
        : SimPersistence(base, size, Options()) {}

    // SimHooks.  The tx/state/range events are no-ops for the crash model
    // itself but must still be forwarded for Options::next chaining.
    void on_store(const void* addr, size_t len) override;
    void on_pwb(const void* addr) override;
    void on_fence() override;
    void on_tx_begin() override {
        if (opts_.next) opts_.next->on_tx_begin();
    }
    void on_tx_commit() override {
        if (opts_.next) opts_.next->on_tx_commit();
    }
    void on_tx_abort() override {
        if (opts_.next) opts_.next->on_tx_abort();
    }
    void on_state_transition(uint32_t new_state) override {
        if (opts_.next) opts_.next->on_state_transition(new_state);
    }
    void on_range_logged(const void* addr, size_t len) override {
        if (opts_.next) opts_.next->on_range_logged(addr, len);
    }

    /// Number of persistence events (fences) seen so far; crash schedules in
    /// the property tests are expressed in these units.  Atomic because the
    /// crash scheduler polls it from a watcher thread while worker threads
    /// fence (the other counters take mu_ in their accessors).
    uint64_t fence_count() const {
        return fence_count_.load(std::memory_order_acquire);
    }

    /// Overwrite the live region with the shadow image: everything that was
    /// only in the "cache" is lost, exactly as in a power cut.
    void crash_restore();

    /// Re-baseline the shadow image from the live content (e.g. after a
    /// freshly formatted heap that the test treats as fully persisted).
    void checkpoint_all();

    size_t dirty_line_count() const;
    size_t pending_line_count() const;
    const std::vector<uint8_t>& image() const { return image_; }

  private:
    size_t line_of(const void* addr) const {
        return (reinterpret_cast<uintptr_t>(addr) -
                reinterpret_cast<uintptr_t>(base_)) /
               kCacheLineSize;
    }
    bool in_region(const void* addr) const {
        auto u = reinterpret_cast<uintptr_t>(addr);
        auto b = reinterpret_cast<uintptr_t>(base_);
        return u >= b && u < b + size_;
    }
    void persist_line_locked(size_t line, const uint8_t* content);

    uint8_t* base_;
    size_t size_;
    Options opts_;
    std::vector<uint8_t> image_;
    std::unordered_set<size_t> dirty_;  // stored but not written back
    // pending write-backs; value = captured content for AtPwb, empty for
    // AtFence (content read from the live line at fence time)
    std::unordered_map<size_t, std::vector<uint8_t>> pending_;
    std::mt19937_64 rng_;
    std::atomic<uint64_t> fence_count_{0};
    mutable std::mutex mu_;
};

}  // namespace romulus::pmem
