// Per-thread persistence-event statistics.
//
// The paper's evaluation repeatedly reasons about *counts* of persistence
// events (Table 1: pfence+psync per transaction; §6.2: pwbs per transaction
// histograms; §3.1: write amplification).  Every pwb/pfence/psync issued
// through the primitives in flush.hpp increments these counters, and the
// interposition layer additionally accounts NVM bytes written, so benchmarks
// can report the same columns the paper does.
#pragma once

#include <cstdint>

namespace romulus::pmem {

struct Stats {
    uint64_t pwb = 0;         ///< persist write-backs issued
    uint64_t pfence = 0;      ///< persist fences issued
    uint64_t psync = 0;       ///< persist syncs issued
    uint64_t nvm_bytes = 0;   ///< bytes stored to the persistent region
    uint64_t user_bytes = 0;  ///< bytes the *user code* asked to store
    uint64_t tx_aborts = 0;   ///< STM aborts (redo-log baseline only)

    Stats operator-(const Stats& o) const {
        return Stats{pwb - o.pwb, pfence - o.pfence, psync - o.psync,
                     nvm_bytes - o.nvm_bytes, user_bytes - o.user_bytes,
                     tx_aborts - o.tx_aborts};
    }
    Stats& operator+=(const Stats& o) {
        pwb += o.pwb;
        pfence += o.pfence;
        psync += o.psync;
        nvm_bytes += o.nvm_bytes;
        user_bytes += o.user_bytes;
        tx_aborts += o.tx_aborts;
        return *this;
    }
    /// Fences per transaction as reported in Table 1.
    uint64_t fences() const { return pfence + psync; }
    /// Write amplification (§3.1): NVM bytes written per user byte.
    double write_amplification() const {
        return user_bytes == 0 ? 0.0
                               : static_cast<double>(nvm_bytes) /
                                     static_cast<double>(user_bytes);
    }
};

/// This thread's counters.  Counting is always on; the increments are cheap
/// relative to any real flush instruction.
Stats& tl_stats();

/// Reset this thread's counters to zero.
void reset_tl_stats();

}  // namespace romulus::pmem
