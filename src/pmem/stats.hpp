// Per-thread persistence-event statistics.
//
// The paper's evaluation repeatedly reasons about *counts* of persistence
// events (Table 1: pfence+psync per transaction; §6.2: pwbs per transaction
// histograms; §3.1: write amplification).  Every pwb/pfence/psync issued
// through the primitives in flush.hpp increments these counters, and the
// interposition layer additionally accounts NVM bytes written, so benchmarks
// can report the same columns the paper does.
#pragma once

#include <cstdint>

namespace romulus::pmem {

struct Stats {
    uint64_t pwb = 0;         ///< persist write-backs issued
    uint64_t pfence = 0;      ///< persist fences issued
    uint64_t psync = 0;       ///< persist syncs issued
    uint64_t nvm_bytes = 0;   ///< bytes stored to the persistent region
    uint64_t user_bytes = 0;  ///< bytes the *user code* asked to store
    uint64_t tx_aborts = 0;   ///< STM aborts (redo-log baseline only)

    Stats operator-(const Stats& o) const {
        return Stats{pwb - o.pwb, pfence - o.pfence, psync - o.psync,
                     nvm_bytes - o.nvm_bytes, user_bytes - o.user_bytes,
                     tx_aborts - o.tx_aborts};
    }
    Stats& operator+=(const Stats& o) {
        pwb += o.pwb;
        pfence += o.pfence;
        psync += o.psync;
        nvm_bytes += o.nvm_bytes;
        user_bytes += o.user_bytes;
        tx_aborts += o.tx_aborts;
        return *this;
    }
    /// Fences per transaction as reported in Table 1.
    uint64_t fences() const { return pfence + psync; }
    /// Write amplification (§3.1): NVM bytes written per user byte.
    double write_amplification() const {
        return user_bytes == 0 ? 0.0
                               : static_cast<double>(nvm_bytes) /
                                     static_cast<double>(user_bytes);
    }
};

/// This thread's counters.  Counting is always on; the increments are cheap
/// relative to any real flush instruction.
Stats& tl_stats();

/// Reset this thread's counters to zero.
void reset_tl_stats();

/// Commit-pipeline instrumentation (one struct per thread, like Stats).
/// Tracks how the coalesced/streaming commit path actually behaved: how many
/// per-line log entries were merged into how many maximal runs, and how many
/// replicated bytes went through the non-temporal streaming path versus the
/// classic cached-store + per-line-pwb path.  The pwb savings these counters
/// explain show up in Stats::pwb; this struct says *why*.
struct CommitStats {
    uint64_t commits = 0;       ///< commits that consumed a merged-run pass
    uint64_t runs = 0;          ///< coalesced [off,len) runs consumed
    uint64_t lines_logged = 0;  ///< per-line log entries before merging
    uint64_t nt_bytes = 0;      ///< replica bytes via non-temporal stores
    uint64_t cached_bytes = 0;  ///< replica bytes via cached stores + pwb
    /// Write-backs of lines with no prior dirty store — wasted flushes.
    /// Counted offline by romver's static rule pass (GraphAnalysis::
    /// record_in) rather than on the hot path; stays 0 unless an analysis
    /// run deposits its diagnostic here.
    uint64_t redundant_pwbs = 0;
    /// Stripe-locked speculative fast path (DESIGN.md §4.11) outcomes for
    /// update transactions on this thread:
    uint64_t fastpath_commits = 0;  ///< updateTx committed speculatively
    uint64_t fastpath_aborts = 0;   ///< speculations aborted (conflict,
                                    ///< footprint overflow, allocation)
    uint64_t fastpath_fallbacks = 0;  ///< updateTx that ran the C-RW-WP
                                      ///< slow path (after aborting or
                                      ///< because the fast path is off)
    /// Flat-combining batch-size histogram: bucket b counts combined
    /// transactions whose batch held (2^(b-1), 2^b] announced operations
    /// (bucket 0 = singletons, bucket 7 = everything above 64).  Shows how
    /// much fence amortisation the combiner — including its re-scan window
    /// (CommitConfig::combine_rescans) — actually delivered.
    uint64_t combine_hist[8] = {};

    void note_combine_batch(unsigned ops) {
        unsigned b = 0;
        while (b < 7 && (1u << b) < ops) ++b;
        combine_hist[b]++;
    }

    /// Lines whose individual memcpy/pwb dispatch was avoided by merging.
    uint64_t lines_merged() const { return lines_logged - runs; }
    /// Mean run length in cache lines (1.0 = nothing ever coalesced).
    double avg_run_lines() const {
        return runs == 0 ? 0.0
                         : static_cast<double>(lines_logged) /
                               static_cast<double>(runs);
    }
};

/// This thread's commit-path counters (single-writer engines commit on the
/// combiner thread, so per-thread counting composes the same way tl_stats
/// does for pwbs).
CommitStats& tl_commit_stats();
void reset_tl_commit_stats();

}  // namespace romulus::pmem
