#include "pmem/checker.hpp"

#include <algorithm>
#include <sstream>

namespace romulus::pmem {

const char* PersistencyChecker::kind_name(ViolationKind k) {
    switch (k) {
        case ViolationKind::UnloggedStore: return "unlogged-store";
        case ViolationKind::DirtyAtTransition: return "dirty-at-transition";
        case ViolationKind::PendingAtTransition:
            return "pending-at-transition";
        case ViolationKind::StoreAfterPwb: return "store-after-pwb";
        case ViolationKind::DirtyAtCommit: return "dirty-at-commit";
    }
    return "?";
}

PersistencyChecker::PersistencyChecker(Layout layout, Options opts)
    : layout_(layout), opts_(opts) {}

bool PersistencyChecker::line_in(const uint8_t* area, size_t area_size,
                                 size_t line) const {
    if (area == nullptr || area_size == 0) return false;
    const size_t first = line_of(area);
    const size_t last = line_of(area + area_size - 1);
    return line >= first && line <= last;
}

void PersistencyChecker::record(ViolationKind kind, size_t line,
                                std::string detail) {
    ++violation_count_;
    if (violations_.size() < opts_.max_recorded)
        violations_.push_back(
            Violation{kind, line_addr(line), std::move(detail)});
}

void PersistencyChecker::on_store(const void* addr, size_t len) {
    if (len != 0 && in_region(addr)) {
        std::lock_guard lk(mu_);
        const size_t first = line_of(addr);
        const size_t last =
            line_of(static_cast<const uint8_t*>(addr) + len - 1);
        for (size_t l = first; l <= last; ++l) {
            if (pending_.erase(l) != 0) {
                // The pwb may already have captured the line (AtPwb
                // semantics): unless re-flushed before the next fence, the
                // fence persists stale content.  Tracked; judged at fence.
                stale_capture_.insert(l);
            }
            dirty_.insert(l);
            if (tx_active_ && line_in(layout_.main, layout_.main_size, l))
                stored_in_tx_.insert(l);
        }
    }
    if (opts_.next) opts_.next->on_store(addr, len);
}

void PersistencyChecker::on_pwb(const void* addr) {
    if (in_region(addr)) {
        std::lock_guard lk(mu_);
        const size_t l = line_of(addr);
        ++diag_.pwbs;
        if (dirty_.erase(l) == 0 && pending_.count(l) == 0)
            ++diag_.redundant_pwb;  // line was already clean
        pending_.insert(l);
        stale_capture_.erase(l);  // latest content (re-)captured
    }
    if (opts_.next) opts_.next->on_pwb(addr);
}

void PersistencyChecker::on_fence() {
    {
        std::lock_guard lk(mu_);
        ++diag_.fences;
        if (pending_.empty()) ++diag_.empty_fence;
        pending_.clear();
        if (opts_.content == FlushContent::AtPwb) {
            for (size_t l : stale_capture_) {
                record(ViolationKind::StoreAfterPwb, l,
                       "line stored after its pwb and not re-flushed before "
                       "the fence: AtPwb hardware persists the stale capture");
            }
        }
        stale_capture_.clear();
    }
    if (opts_.next) opts_.next->on_fence();
}

void PersistencyChecker::on_tx_begin() {
    {
        std::lock_guard lk(mu_);
        tx_active_ = true;
        stored_in_tx_.clear();
        logged_in_tx_.clear();
        ++diag_.tx_begins;
        tx_fence_mark_ = diag_.fences;
        tx_pwb_mark_ = diag_.pwbs;
    }
    if (opts_.next) opts_.next->on_tx_begin();
}

void PersistencyChecker::finish_tx(bool committed) {
    if (committed) {
        if (opts_.require_log) {
            // Report in address order so failures are deterministic.
            std::vector<size_t> unlogged;
            for (size_t l : stored_in_tx_)
                if (logged_in_tx_.count(l) == 0) unlogged.push_back(l);
            std::sort(unlogged.begin(), unlogged.end());
            for (size_t l : unlogged) {
                record(ViolationKind::UnloggedStore, l,
                       "store to main inside a mutating transaction was "
                       "never covered by a range-log entry");
            }
        }
        std::vector<size_t> dirty(dirty_.begin(), dirty_.end());
        std::sort(dirty.begin(), dirty.end());
        for (size_t l : dirty) {
            record(ViolationKind::DirtyAtCommit, l,
                   "line still dirty (stored, never written back) when the "
                   "transaction commit completed");
        }
        ++diag_.tx_commits;
    } else {
        ++diag_.tx_aborts;
    }
    diag_.fences_in_last_tx = diag_.fences - tx_fence_mark_;
    diag_.pwbs_in_last_tx = diag_.pwbs - tx_pwb_mark_;
    tx_active_ = false;
    stored_in_tx_.clear();
    logged_in_tx_.clear();
}

void PersistencyChecker::on_tx_commit() {
    {
        std::lock_guard lk(mu_);
        finish_tx(/*committed=*/true);
    }
    if (opts_.next) opts_.next->on_tx_commit();
}

void PersistencyChecker::on_tx_abort() {
    {
        std::lock_guard lk(mu_);
        finish_tx(/*committed=*/false);
    }
    if (opts_.next) opts_.next->on_tx_abort();
}

void PersistencyChecker::check_area_clean(const uint8_t* area,
                                          size_t area_size,
                                          const char* area_name,
                                          const char* when,
                                          bool pending_is_violation) {
    if (area == nullptr || area_size == 0) return;
    std::vector<std::pair<size_t, bool>> bad;  // line, was_pending
    for (size_t l : dirty_)
        if (line_in(area, area_size, l)) bad.emplace_back(l, false);
    if (pending_is_violation) {
        for (size_t l : pending_)
            if (line_in(area, area_size, l)) bad.emplace_back(l, true);
    }
    std::sort(bad.begin(), bad.end());
    for (auto [l, was_pending] : bad) {
        if (was_pending) {
            record(ViolationKind::PendingAtTransition, l,
                   std::string(area_name) + " line has a pwb issued but no " +
                       "ordering fence when " + when +
                       " (write-backs may reorder past the state store)");
        } else {
            record(ViolationKind::DirtyAtTransition, l,
                   std::string(area_name) +
                       " line stored but never written back when " + when);
        }
    }
}

void PersistencyChecker::on_state_transition(uint32_t new_state) {
    {
        std::lock_guard lk(mu_);
        // TxState values of core/romulus.hpp: 0 = IDL, 1 = MUT, 2 = CPY.
        if (new_state == 2) {
            // main becomes the advertised consistent copy: every line of it
            // must provably be in the persistence domain.
            check_area_clean(layout_.main, layout_.main_size, "main",
                             "the state advanced to CPY",
                             /*pending_is_violation=*/true);
        } else if (new_state == 0) {
            check_area_clean(layout_.main, layout_.main_size, "main",
                             "the state advanced to IDL",
                             /*pending_is_violation=*/true);
            if (layout_.back != nullptr) {
                check_area_clean(layout_.back, layout_.main_size, "back",
                                 "the state advanced to IDL",
                                 /*pending_is_violation=*/true);
            }
        } else if (new_state == 1) {
            // Entering MUT: the previous transaction (or recovery) must have
            // left main fully flushed.  Pending is legal here: the fence
            // that orders the MUT store runs right after it, draining any
            // out-of-transaction pstore still in flight.
            check_area_clean(layout_.main, layout_.main_size, "main",
                             "the state advanced to MUT",
                             /*pending_is_violation=*/false);
        }
    }
    if (opts_.next) opts_.next->on_state_transition(new_state);
}

void PersistencyChecker::on_range_logged(const void* addr, size_t len) {
    if (len != 0 && in_region(addr)) {
        std::lock_guard lk(mu_);
        if (tx_active_) {
            const size_t first = line_of(addr);
            const size_t last =
                line_of(static_cast<const uint8_t*>(addr) + len - 1);
            for (size_t l = first; l <= last; ++l) logged_in_tx_.insert(l);
        }
    }
    if (opts_.next) opts_.next->on_range_logged(addr, len);
}

uint64_t PersistencyChecker::violation_count() const {
    std::lock_guard lk(mu_);
    return violation_count_;
}

std::vector<PersistencyChecker::Violation> PersistencyChecker::violations()
    const {
    std::lock_guard lk(mu_);
    return violations_;
}

PersistencyChecker::Diagnostics PersistencyChecker::diagnostics() const {
    std::lock_guard lk(mu_);
    return diag_;
}

size_t PersistencyChecker::dirty_line_count() const {
    std::lock_guard lk(mu_);
    return dirty_.size();
}

size_t PersistencyChecker::pending_line_count() const {
    std::lock_guard lk(mu_);
    return pending_.size();
}

void PersistencyChecker::clear() {
    std::lock_guard lk(mu_);
    violation_count_ = 0;
    violations_.clear();
    diag_ = Diagnostics{};
    // Also forget the shadow line state: after a deliberately-buggy episode
    // the region may be left shadow-dirty, and a fresh checking episode must
    // not re-report the old damage at the next transition.
    dirty_.clear();
    pending_.clear();
    stored_in_tx_.clear();
    logged_in_tx_.clear();
    stale_capture_.clear();
    tx_active_ = false;
    tx_fence_mark_ = 0;
    tx_pwb_mark_ = 0;
}

std::string PersistencyChecker::report() const {
    std::lock_guard lk(mu_);
    if (violation_count_ == 0 && diag_.redundant_pwb == 0 &&
        diag_.empty_fence == 0)
        return "";
    std::ostringstream os;
    os << "PersistencyChecker: " << violation_count_ << " hard violation(s)";
    if (violation_count_ > violations_.size())
        os << " (" << violations_.size() << " recorded)";
    os << "\n";
    for (const auto& v : violations_) {
        os << "  [" << kind_name(v.kind) << "] line @0x" << std::hex << v.addr
           << std::dec << ": " << v.detail << "\n";
    }
    os << "  diagnostics: redundant_pwb=" << diag_.redundant_pwb
       << " empty_fence=" << diag_.empty_fence << " fences=" << diag_.fences
       << " pwbs=" << diag_.pwbs << " tx=" << diag_.tx_commits << "+"
       << diag_.tx_aborts << " aborted\n";
    return os.str();
}

}  // namespace romulus::pmem
