// PmemRegion: a file-backed persistent memory region mapped at a fixed
// virtual address.
//
// As in the paper's evaluation (§6.1) the file lives by default in /dev/shm,
// mimicking supercapacitor-backed DRAM NVDIMMs.  The mapping address must be
// stable across process restarts because pointers stored *inside* the region
// are raw virtual addresses (Figure 2: back holds pointers into main).  Each
// PTM instance therefore requests a distinct fixed base address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace romulus::pmem {

class PmemRegion {
  public:
    PmemRegion() = default;
    ~PmemRegion() { unmap(); }

    PmemRegion(const PmemRegion&) = delete;
    PmemRegion& operator=(const PmemRegion&) = delete;

    /// Map `size` bytes of `path` at `base_addr` (creating / extending the
    /// file as needed).  Returns true if the file was newly created (caller
    /// must format it).  Throws std::runtime_error on failure.
    bool map(const std::string& path, size_t size, uintptr_t base_addr);

    /// Unmap (data stays in the file).
    void unmap();

    /// Unmap and delete the backing file.
    void destroy();

    uint8_t* base() const { return base_; }
    size_t size() const { return size_; }
    const std::string& path() const { return path_; }
    bool mapped() const { return base_ != nullptr; }

    bool contains(const void* p) const {
        auto u = reinterpret_cast<uintptr_t>(p);
        auto b = reinterpret_cast<uintptr_t>(base_);
        return u >= b && u < b + size_;
    }

  private:
    uint8_t* base_ = nullptr;
    size_t size_ = 0;
    std::string path_;
};

/// Zone layout of a sharded twin-copy heap:
///
///   [ header | zone 0 | zone 1 | ... | zone S-1 ]
///
/// where zone s = [ main_s | back_s ] — each shard owns a contiguous pair of
/// twin halves of `main_size` bytes.  The classic single-shard Romulus layout
/// (Figure 2: [header|main|back]) is exactly the S=1 case.
struct ShardLayout {
    size_t header_reserved = 0;  ///< bytes before zone 0
    unsigned shards = 1;
    size_t main_size = 0;  ///< per-shard twin-half size (64-byte multiple)

    size_t zone_stride() const { return 2 * main_size; }
    size_t zone_offset(unsigned s) const {
        return header_reserved + size_t(s) * zone_stride();
    }
    size_t main_offset(unsigned s) const { return zone_offset(s); }
    size_t back_offset(unsigned s) const { return zone_offset(s) + main_size; }

    /// Carve `region_size` bytes into `shards` equal twin zones after the
    /// header.  Throws std::invalid_argument when the region is too small to
    /// give every shard a usable pool.
    static ShardLayout compute(size_t region_size, unsigned shards,
                               size_t header_reserved);
};

/// Default directory for persistent heap files ("/dev/shm" unless the
/// ROMULUS_PMEM_DIR environment variable overrides it).
std::string default_pmem_dir();

}  // namespace romulus::pmem
