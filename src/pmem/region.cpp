#include "pmem/region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace romulus::pmem {

ShardLayout ShardLayout::compute(size_t region_size, unsigned shards,
                                 size_t header_reserved) {
    if (shards == 0) throw std::invalid_argument("ShardLayout: zero shards");
    if (region_size <= header_reserved)
        throw std::invalid_argument("ShardLayout: region smaller than header");
    ShardLayout l;
    l.header_reserved = header_reserved;
    l.shards = shards;
    l.main_size = ((region_size - header_reserved) / shards / 2) & ~size_t{63};
    // Every shard needs room for its root table + allocator metadata (~1 KiB)
    // plus a usable pool; 64 KiB is a generous floor that catches accidental
    // tiny-heap/many-shard combinations early with a clear error.
    if (l.main_size < 64 * 1024)
        throw std::invalid_argument(
            "ShardLayout: heap too small for the requested shard count");
    return l;
}

std::string default_pmem_dir() {
    if (const char* d = std::getenv("ROMULUS_PMEM_DIR")) return d;
    return "/dev/shm";
}

bool PmemRegion::map(const std::string& path, size_t size, uintptr_t base_addr) {
    if (mapped()) throw std::runtime_error("PmemRegion: already mapped");

    bool created = ::access(path.c_str(), F_OK) != 0;
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
        throw std::runtime_error("PmemRegion: open(" + path +
                                 ") failed: " + std::strerror(errno));

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw std::runtime_error("PmemRegion: fstat failed");
    }
    if (static_cast<size_t>(st.st_size) != size) {
        // A pre-existing file of a different size is re-formatted: the twin
        // copy layout (header | main | back) depends on the total size.
        if (st.st_size != 0) created = true;
        if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
            ::close(fd);
            throw std::runtime_error("PmemRegion: ftruncate failed: " +
                                     std::string(std::strerror(errno)));
        }
    }

    void* want = reinterpret_cast<void*>(base_addr);
    void* got = ::mmap(want, size, PROT_READ | PROT_WRITE,
                       MAP_SHARED | (want ? MAP_FIXED_NOREPLACE : 0), fd, 0);
    if (got == MAP_FAILED && want != nullptr) {
        // Address taken (e.g. two engines configured with the same base, or
        // ASLR collision): fall back to any address.  Pointers then do not
        // survive a *restart*, but in-process reopen tests unmap first, so
        // they land back at the kernel-chosen address only if the caller
        // passed 0.  We keep going rather than failing hard.
        got = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    }
    ::close(fd);
    if (got == MAP_FAILED)
        throw std::runtime_error("PmemRegion: mmap failed: " +
                                 std::string(std::strerror(errno)));

    base_ = static_cast<uint8_t*>(got);
    size_ = size;
    path_ = path;
    return created;
}

void PmemRegion::unmap() {
    if (base_) {
        ::munmap(base_, size_);
        base_ = nullptr;
        size_ = 0;
    }
}

void PmemRegion::destroy() {
    std::string p = path_;
    unmap();
    if (!p.empty()) ::unlink(p.c_str());
    path_.clear();
}

}  // namespace romulus::pmem
