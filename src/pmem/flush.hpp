// Persistence primitives: pwb / pfence / psync (§4.1 of the paper).
//
// The paper's model uses three instructions:
//   pwb(addr) — initiate write-back of a cache line (non-blocking),
//   pfence()  — order preceding pwbs before subsequent ones,
//   psync()   — block until preceding pwbs are persistent.
//
// On x86 these map to (per the paper's table in §4.1 and Fig. 9):
//   profile CLFLUSH     : pwb=CLFLUSH,    fences=nop (CLFLUSH self-orders)
//   profile CLFLUSHOPT  : pwb=CLFLUSHOPT, fences=SFENCE
//   profile CLWB        : pwb=CLWB,       fences=SFENCE
//   profile STT / PCM   : busy-wait delays emulating STT-RAM / PCM latencies
//                         (140/200/200 ns and 340/500/500 ns, §6.1)
//   profile NOP         : everything is a no-op (DRAM-speed baseline)
//
// The active profile is a process-global selected at runtime so that a single
// benchmark binary can sweep all the fence types of Fig. 9.  The primitives
// also drive the per-thread Stats counters and, when installed, the SimHooks
// used by the crash-injection test model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pmem/stats.hpp"

namespace romulus::pmem {

inline constexpr size_t kCacheLineSize = 64;

enum class Profile : int {
    NOP = 0,     ///< no flushing at all (volatile baseline / unit tests)
    CLFLUSH,     ///< pwb=clflush, fences=nop
    CLFLUSHOPT,  ///< pwb=clflushopt, fences=sfence (falls back to clflush)
    CLWB,        ///< pwb=clwb, fences=sfence (falls back to clflushopt/clflush)
    STT,         ///< injected delays: pwb 140 ns, fences 200 ns
    PCM,         ///< injected delays: pwb 340 ns, fences 500 ns
};

/// True if this CPU executes CLFLUSHOPT / CLWB (CPUID leaf 7).
bool cpu_has_clflushopt();
bool cpu_has_clwb();
/// True if this CPU executes 256-bit AVX stores (persist_copy dispatch).
bool cpu_has_avx();

/// Select the active profile.  Unsupported hardware profiles silently degrade
/// (CLWB -> CLFLUSHOPT -> CLFLUSH) so benches run anywhere; query
/// effective_profile() to learn what actually runs.
void set_profile(Profile p);
Profile profile();
Profile effective_profile();
const char* profile_name(Profile p);

/// When is the written-back content of a cache line captured?  Hardware may
/// legally do either; algorithms must be correct under both (sim model and
/// persistency checker are parameterised on it).
enum class FlushContent {
    AtFence,  ///< written-back content = line content when the fence runs
    AtPwb,    ///< written-back content = line content when the pwb ran
};

/// Hooks for the simulated-persistence crash model (sim_persistence.hpp) and
/// the persistency checker (checker.hpp).  When installed, every interposed
/// store / pwb / fence is reported so the model can maintain a shadow "what
/// would have survived a power cut" image.
///
/// The transaction-lifecycle callbacks default to no-ops so that observers
/// interested only in the memory events (SimPersistence) need not implement
/// them; the PersistencyChecker uses them to know when the flush/log
/// discipline of Algorithm 1 must hold.
class SimHooks {
  public:
    virtual ~SimHooks() = default;
    virtual void on_store(const void* addr, size_t len) = 0;
    virtual void on_pwb(const void* addr) = 0;
    virtual void on_fence() = 0;

    // Transaction lifecycle (engines notify through the helpers below).
    virtual void on_tx_begin() {}
    virtual void on_tx_commit() {}
    virtual void on_tx_abort() {}
    /// Romulus-style twin-copy engines: the per-heap state field was just
    /// stored (IDL/MUT/CPY).  Fired before the pwb of the state itself.
    virtual void on_state_transition(uint32_t /*new_state*/) {}
    /// A store to [addr, addr+len) is covered by the engine's log (range log
    /// entry, undo entry, ...) and will be flushed/replayed by commit.
    virtual void on_range_logged(const void* /*addr*/, size_t /*len*/) {}
};

void set_sim_hooks(SimHooks* hooks);
SimHooks* sim_hooks();

/// Tuning knobs of the coalesced/streaming commit pipeline.  Process-global
/// (like the flush profile) so one bench/test binary can A/B the pre- and
/// post-overhaul commit paths without rebuilding.
struct CommitConfig {
    /// Consume RangeLog::merged_runs() at commit instead of re-walking the
    /// unsorted per-line entries (flush and replication both).
    bool coalesce = true;
    /// Minimum length in bytes for a replication run to take the
    /// non-temporal streaming path of persist_copy(); shorter runs (and
    /// SIZE_MAX) use cached stores + per-line pwb.  NT stores bypass the
    /// cache, so tiny hot runs are better left cacheable.
    size_t nt_threshold = 4 * kCacheLineSize;
    /// Extra flat-combining scans a combiner runs before committing:
    /// operations announced while the previous scan executed join the same
    /// durable transaction (one MUT/CPY fence pair for the whole batch).
    /// 0 restores the single-scan combiner; each re-scan is bounded by the
    /// announce-slot count, so combiner latency stays bounded.
    unsigned combine_rescans = 1;
    /// Bounded batch-wait (cortx-motr be/tx_group style): after the re-scans
    /// run dry, the combiner holds its MUT window open up to this many
    /// microseconds, re-draining whenever stragglers announce, so
    /// overlapping writers join one durable batch instead of each paying a
    /// full MUT/CPY fence pair.  0 (default) closes the window immediately;
    /// the wait is wall-clock-bounded so combiner latency stays bounded.
    unsigned combine_wait_us = 0;
};
CommitConfig& commit_config();

namespace detail {
struct ProfileState {
    Profile requested = Profile::CLFLUSH;
    Profile effective = Profile::CLFLUSH;
    uint64_t pwb_delay_ns = 0;
    uint64_t fence_delay_ns = 0;
};
extern ProfileState g_profile;
extern SimHooks* g_sim_hooks;
extern CommitConfig g_commit_config;

void pwb_line_slow(const void* addr);  // dispatches on g_profile
/// Write back nlines consecutive cache lines starting at the (line-aligned)
/// address: dispatches on g_profile once, then runs the intrinsic loop.
void pwb_lines_slow(const void* addr, size_t nlines);
void fence_slow();
void delay_ns(uint64_t ns);
/// memcpy via non-temporal stores (SSE2 stream baseline, AVX when the CPU
/// has it, scalar tail).  dst must be 16-byte aligned; len a multiple of 16.
void nt_copy(void* dst, const void* src, size_t len);
}  // namespace detail

inline CommitConfig& commit_config() { return detail::g_commit_config; }

/// Write back the cache line containing addr.
inline void pwb(const void* addr) {
    tl_stats().pwb++;
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_pwb(addr);
    detail::pwb_line_slow(addr);
}

/// Write back every cache line of [addr, addr+len).
inline void pwb_range(const void* addr, size_t len) {
    if (len == 0) return;
    auto p = reinterpret_cast<uintptr_t>(addr) & ~(kCacheLineSize - 1);
    auto end = reinterpret_cast<uintptr_t>(addr) + len;
    const size_t nlines = (end - p + kCacheLineSize - 1) / kCacheLineSize;
    if (detail::g_sim_hooks == nullptr) {
        // Hook-free fast path: one counter bump for the whole range, then
        // the flush-instruction loop with the profile dispatched once —
        // no per-line branch + virtual call + increment.
        tl_stats().pwb += nlines;
        detail::pwb_lines_slow(reinterpret_cast<const void*>(p), nlines);
        return;
    }
    for (; p < end; p += kCacheLineSize) pwb(reinterpret_cast<const void*>(p));
}

/// Streaming replication: copy [src, src+len) to dst and schedule it for
/// persistence, equivalent to memcpy + on_store + pwb_range but using
/// non-temporal stores for long runs.  NT stores bypass the cache entirely,
/// so the per-line pwb disappears; the WC buffers are drained by an sfence
/// before returning (required: under the CLFLUSH profile the paper-model
/// pfence is a nop and would not order the streamed data before the
/// subsequent state write-back).  Like pwb_range, *ordering against later
/// pwbs/stores* still comes from the caller's pfence()/psync().
///
/// Crash-model soundness: the sim hooks observe each streamed line as a
/// store immediately followed by a pwb of captured content — exactly the
/// externally visible behaviour of an NT store — so SimPersistence and
/// PersistencyChecker stay sound under both FlushContent modes (the internal
/// sfence is deliberately NOT reported as a fence: the model then treats
/// streamed lines as pending until the engine's own fence, which is strictly
/// more conservative than the hardware).
void persist_copy(void* dst, const void* src, size_t len);

/// Order preceding pwbs before subsequent ones.
inline void pfence() {
    tl_stats().pfence++;
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_fence();
    detail::fence_slow();
}

/// Block until preceding pwbs are persistent.
inline void psync() {
    tl_stats().psync++;
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_fence();
    detail::fence_slow();
}

/// Report an interposed store of len bytes at addr to the stats and the sim
/// model.  Called by the persist<T> wrappers after the raw store.
inline void on_store(const void* addr, size_t len) {
    auto& s = tl_stats();
    s.nvm_bytes += len;
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_store(addr, len);
}

/// Lifecycle notifications: cheap single-branch forwards to the installed
/// hooks.  Engines call these at the transaction boundaries (most go through
/// the counting wrappers in core/engine_globals.hpp).
inline void notify_tx_begin() {
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_tx_begin();
}
inline void notify_tx_commit() {
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_tx_commit();
}
inline void notify_tx_abort() {
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_tx_abort();
}
inline void notify_state_transition(uint32_t st) {
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_state_transition(st);
}
inline void notify_range_logged(const void* addr, size_t len) {
    if (detail::g_sim_hooks) detail::g_sim_hooks->on_range_logged(addr, len);
}

}  // namespace romulus::pmem
