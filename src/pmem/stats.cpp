#include "pmem/stats.hpp"

namespace romulus::pmem {

static thread_local Stats g_tl_stats;

Stats& tl_stats() { return g_tl_stats; }

void reset_tl_stats() { g_tl_stats = Stats{}; }

}  // namespace romulus::pmem
