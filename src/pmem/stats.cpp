#include "pmem/stats.hpp"

namespace romulus::pmem {

static thread_local Stats g_tl_stats;
static thread_local CommitStats g_tl_commit_stats;

Stats& tl_stats() { return g_tl_stats; }

void reset_tl_stats() { g_tl_stats = Stats{}; }

CommitStats& tl_commit_stats() { return g_tl_commit_stats; }

void reset_tl_commit_stats() { g_tl_commit_stats = CommitStats{}; }

}  // namespace romulus::pmem
