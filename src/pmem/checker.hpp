// PersistencyChecker: a shadow-state machine that makes flush/fence/logging
// discipline bugs fail loudly at test time (docs/checker.md).
//
// The mmap-on-DRAM emulation silently forgives every violation of the
// paper's §4 discipline — a store that was never range-logged, a missing pwb
// before the commit state transition, a fence forgotten between the data
// write-backs and the state write-back — because DRAM never loses the cache.
// SimPersistence makes such bugs *reachable* by crash tests; this checker
// makes them *direct*: it tracks every cache line of the registered region
// through
//
//     Clean ──store──> Dirty ──pwb──> PendingWB ──fence──> Clean
//
// and reports a violation the moment the engine's observable event stream is
// inconsistent with the discipline, instead of waiting for a crash schedule
// to hit the window.
//
// Hard violations (each one is a real crash-consistency bug):
//   * UnloggedStore        — with Options::require_log, a store to main
//                            inside a mutating transaction that was never
//                            covered by an on_range_logged notification
//                            (i.e. a store that bypassed the RangeLog and
//                            will not be flushed or replicated at commit).
//   * DirtyAtTransition    — a main (resp. back) line still Dirty when the
//                            heap state advances to CPY (resp. IDL): the
//                            line was stored but never written back, so the
//                            "consistent copy" the state field advertises
//                            may not contain it after a power cut.
//   * PendingAtTransition  — like DirtyAtTransition but the line is still
//                            PendingWB: the pwb was issued but no fence
//                            ordered it before the state store (the missing-
//                            pfence bug; write-backs may reorder).
//   * StoreAfterPwb        — a line was stored after its pwb and never
//                            re-flushed before the fence.  Under
//                            FlushContent::AtPwb hardware the fence persists
//                            the *captured* (stale) content while the engine
//                            believes the line is persistent.  Reported only
//                            under Options{.content = AtPwb}.
//   * DirtyAtCommit        — any region line still Dirty when a transaction
//                            commit completes (baselines without a state
//                            machine get their "nothing volatile survives
//                            commit" check from this).
//
// Soft diagnostics (performance, not correctness — the paper's Table 1
// fence/pwb accounting becomes assertable from these):
//   * redundant_pwb        — pwb of a Clean line (wasted write-back),
//   * empty_fence          — fence with no write-back pending,
//   * per-transaction fence/pwb counts (fences_in_last_tx and friends).
//
// The checker is an observer: it never changes engine behaviour.  It can be
// chained in front of another SimHooks observer (e.g. SimPersistence) via
// Options::next so crash tests and checking compose.
//
// Non-temporal stores (pmem::persist_copy) reach the checker as store+pwb
// per streamed line — the externally visible effect of an NT store — so a
// streamed replica line walks Dirty -> PendingWB like any other and the
// transition checks still demand the engine's own fence before a state
// store.  StoreAfterPwb stays meaningful too: NT content is fixed at
// execution time, i.e. captured-at-pwb by definition (docs/checker.md).
//
// Concurrency: callbacks are serialised by an internal mutex, but the
// *discipline* checks assume transactions are serialised (Romulus is
// single-writer by construction; drive the baselines single-threaded when
// checking).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "pmem/flush.hpp"
#include "pmem/stats.hpp"

namespace romulus::pmem {

class PersistencyChecker final : public SimHooks {
  public:
    enum class LineState : uint8_t { Clean = 0, Dirty = 1, PendingWB = 2 };

    enum class ViolationKind {
        UnloggedStore,
        DirtyAtTransition,
        PendingAtTransition,
        StoreAfterPwb,
        DirtyAtCommit,
    };
    static const char* kind_name(ViolationKind k);

    struct Violation {
        ViolationKind kind;
        uintptr_t addr;     ///< address of the first byte of the line
        std::string detail;
    };

    /// Address-space layout of the checked engine.  `base`/`size` cover the
    /// whole registered region (header + log areas + heap); `main` and
    /// `back` (each `main_size` bytes, back optional) are the areas whose
    /// lines must be clean at the respective state transitions.  Lines
    /// outside main/back (headers, persistent logs) are tracked through the
    /// state machine but exempt from the transition checks: engines
    /// deliberately keep e.g. the state word dirty for one pwb.
    struct Layout {
        const uint8_t* base = nullptr;
        size_t size = 0;
        const uint8_t* main = nullptr;
        size_t main_size = 0;
        const uint8_t* back = nullptr;  ///< nullptr: engine has no twin copy
    };

    struct Options {
        FlushContent content = FlushContent::AtFence;
        /// Require every in-transaction store to main to be covered by an
        /// on_range_logged notification (RomulusLog/LR, undo-log discipline).
        bool require_log = false;
        /// Also forward every event to this observer (e.g. a SimPersistence
        /// crash model), after checking.  Not owned.
        SimHooks* next = nullptr;
        /// Stop recording after this many violations (the count keeps
        /// incrementing; a broken engine would otherwise flood memory).
        size_t max_recorded = 64;
    };

    PersistencyChecker(Layout layout, Options opts);
    explicit PersistencyChecker(Layout layout)
        : PersistencyChecker(layout, Options{}) {}

    /// Convenience: build the Layout from a Romulus-style engine class
    /// (main_base/main_size/back_base/region introspection).
    template <typename Engine>
    static Layout layout_of() {
        Layout l;
        l.base = Engine::region().base();
        l.size = Engine::region().size();
        l.main = Engine::main_base();
        l.main_size = Engine::main_size();
        l.back = Engine::back_base();
        return l;
    }

    /// Like layout_of(), but main/back point at one shard's zone of a
    /// sharded engine: the transition checks then enforce the discipline for
    /// that shard's twin halves.  Valid for *serialised* workloads (the
    /// checker's standing assumption) — when transactions never overlap,
    /// every other shard's lines are clean at each observed transition, so
    /// any shard may be singled out.
    template <typename Engine>
    static Layout layout_of_shard(unsigned shard) {
        Layout l = layout_of<Engine>();
        l.main = Engine::main_base(shard);
        l.back = Engine::back_base(shard);
        return l;
    }

    // SimHooks
    void on_store(const void* addr, size_t len) override;
    void on_pwb(const void* addr) override;
    void on_fence() override;
    void on_tx_begin() override;
    void on_tx_commit() override;
    void on_tx_abort() override;
    void on_state_transition(uint32_t new_state) override;
    void on_range_logged(const void* addr, size_t len) override;

    // --- results -----------------------------------------------------------

    /// Total hard violations observed (including ones beyond max_recorded).
    uint64_t violation_count() const;
    /// The recorded violations, in observation order.
    std::vector<Violation> violations() const;
    bool clean() const { return violation_count() == 0; }
    /// Multi-line human-readable report of all recorded violations and the
    /// soft diagnostic counters ("" when fully clean).
    std::string report() const;
    /// Reset results AND shadow state (all lines become Clean, no active
    /// transaction): starts a fresh checking episode on the same region.
    void clear();

    struct Diagnostics {
        uint64_t redundant_pwb = 0;  ///< pwb of an already-clean line
        uint64_t empty_fence = 0;    ///< fence with no pending write-back
        uint64_t fences = 0;         ///< total fences observed
        uint64_t pwbs = 0;           ///< total pwbs observed (in region)
        uint64_t tx_begins = 0;
        uint64_t tx_commits = 0;
        uint64_t tx_aborts = 0;
        /// Fences / in-region pwbs issued between the last tx begin and
        /// commit (inclusive of commit's own fences) — Table 1 material.
        uint64_t fences_in_last_tx = 0;
        uint64_t pwbs_in_last_tx = 0;

        /// Feed the redundant-flush diagnostic into the commit-path
        /// counters, mirroring romver's GraphAnalysis::record_in — the
        /// live checker and the offline persist-graph pass deposit into
        /// the same CommitStats field.
        void record_in(CommitStats& cs) const {
            cs.redundant_pwbs += redundant_pwb;
        }
    };
    Diagnostics diagnostics() const;

    size_t dirty_line_count() const;
    size_t pending_line_count() const;

  private:
    size_t line_of(const void* addr) const {
        return (reinterpret_cast<uintptr_t>(addr) -
                reinterpret_cast<uintptr_t>(layout_.base)) /
               kCacheLineSize;
    }
    bool in_region(const void* addr) const {
        auto u = reinterpret_cast<uintptr_t>(addr);
        auto b = reinterpret_cast<uintptr_t>(layout_.base);
        return u >= b && u < b + layout_.size;
    }
    bool line_in(const uint8_t* area, size_t area_size, size_t line) const;
    uintptr_t line_addr(size_t line) const {
        return reinterpret_cast<uintptr_t>(layout_.base) +
               line * kCacheLineSize;
    }
    void record(ViolationKind kind, size_t line, std::string detail);
    void check_area_clean(const uint8_t* area, size_t area_size,
                          const char* area_name, const char* when,
                          bool pending_is_violation);
    void finish_tx(bool committed);

    Layout layout_;
    Options opts_;
    // Line state is kept sparsely: a line is Dirty iff in dirty_, PendingWB
    // iff in pending_, Clean otherwise.  The working set of a transaction is
    // tiny compared to the region, so fences and transition checks stay O(set)
    // instead of O(region / 64).
    std::unordered_set<size_t> dirty_;
    std::unordered_set<size_t> pending_;
    std::unordered_set<size_t> stored_in_tx_;  // main lines stored this tx
    std::unordered_set<size_t> logged_in_tx_;  // main lines covered by a log
    // Lines stored *after* their pwb and not re-flushed yet: if a fence
    // arrives while a line is still in here, AtPwb hardware persists stale
    // content (StoreAfterPwb).
    std::unordered_set<size_t> stale_capture_;
    bool tx_active_ = false;
    uint64_t violation_count_ = 0;
    std::vector<Violation> violations_;
    Diagnostics diag_;
    uint64_t tx_fence_mark_ = 0;  // diag_.fences at tx begin
    uint64_t tx_pwb_mark_ = 0;
    mutable std::mutex mu_;
};

}  // namespace romulus::pmem
