#include "pmem/sim_persistence.hpp"

#include <cstring>

namespace romulus::pmem {

SimPersistence::SimPersistence(uint8_t* base, size_t size, Options opts)
    : base_(base), size_(size), opts_(opts), image_(base, base + size),
      rng_(opts.seed) {}

void SimPersistence::on_store(const void* addr, size_t len) {
    if (in_region(addr) && len != 0) {
        std::lock_guard lk(mu_);
        size_t first = line_of(addr);
        size_t last = line_of(static_cast<const uint8_t*>(addr) + len - 1);
        for (size_t l = first; l <= last; ++l) dirty_.insert(l);
    }
    if (opts_.next) opts_.next->on_store(addr, len);
}

void SimPersistence::on_pwb(const void* addr) {
    if (in_region(addr)) {
        std::lock_guard lk(mu_);
        size_t l = line_of(addr);
        dirty_.erase(l);
        if (opts_.content == FlushContent::AtPwb) {
            const uint8_t* src = base_ + l * kCacheLineSize;
            pending_[l].assign(src, src + kCacheLineSize);
        } else {
            pending_.try_emplace(l);  // content resolved at fence time
        }
    }
    if (opts_.next) opts_.next->on_pwb(addr);
}

void SimPersistence::persist_line_locked(size_t line, const uint8_t* content) {
    std::memcpy(image_.data() + line * kCacheLineSize, content, kCacheLineSize);
}

void SimPersistence::on_fence() {
    std::lock_guard lk(mu_);
    fence_count_.fetch_add(1, std::memory_order_release);
    for (auto& [line, snap] : pending_) {
        const uint8_t* src =
            snap.empty() ? base_ + line * kCacheLineSize : snap.data();
        persist_line_locked(line, src);
    }
    pending_.clear();
    if (opts_.evict_probability > 0.0 && !dirty_.empty()) {
        // Spontaneous write-back: any dirty line may persist at any time.
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        for (auto it = dirty_.begin(); it != dirty_.end();) {
            if (dist(rng_) < opts_.evict_probability) {
                persist_line_locked(*it, base_ + *it * kCacheLineSize);
                it = dirty_.erase(it);
            } else {
                ++it;
            }
        }
    }
    if (opts_.next) opts_.next->on_fence();
}

void SimPersistence::crash_restore() {
    std::lock_guard lk(mu_);
    std::memcpy(base_, image_.data(), size_);
    dirty_.clear();
    pending_.clear();
}

void SimPersistence::checkpoint_all() {
    std::lock_guard lk(mu_);
    image_.assign(base_, base_ + size_);
    dirty_.clear();
    pending_.clear();
}

size_t SimPersistence::dirty_line_count() const {
    std::lock_guard lk(mu_);
    return dirty_.size();
}

size_t SimPersistence::pending_line_count() const {
    std::lock_guard lk(mu_);
    return pending_.size();
}

}  // namespace romulus::pmem
