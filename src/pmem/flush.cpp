#include "pmem/flush.hpp"

#include <atomic>
#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <emmintrin.h>  // _mm_clflush, _mm_sfence
#define ROMULUS_X86 1
#endif

namespace romulus::pmem {

namespace detail {
ProfileState g_profile{};
SimHooks* g_sim_hooks = nullptr;
}  // namespace detail

#ifdef ROMULUS_X86
static bool cpuid7_bit(unsigned bit) {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
    return (ebx >> bit) & 1u;
}
bool cpu_has_clflushopt() {
    static const bool v = cpuid7_bit(23);
    return v;
}
bool cpu_has_clwb() {
    static const bool v = cpuid7_bit(24);
    return v;
}

__attribute__((target("clflushopt"))) static void do_clflushopt(const void* p) {
    __builtin_ia32_clflushopt(const_cast<void*>(p));
}
__attribute__((target("clwb"))) static void do_clwb(const void* p) {
    __builtin_ia32_clwb(const_cast<void*>(p));
}
#else
bool cpu_has_clflushopt() { return false; }
bool cpu_has_clwb() { return false; }
#endif

void set_profile(Profile p) {
    auto& st = detail::g_profile;
    st.requested = p;
    st.effective = p;
    st.pwb_delay_ns = 0;
    st.fence_delay_ns = 0;
    switch (p) {
        case Profile::CLWB:
            if (!cpu_has_clwb())
                st.effective = cpu_has_clflushopt() ? Profile::CLFLUSHOPT
                                                    : Profile::CLFLUSH;
            break;
        case Profile::CLFLUSHOPT:
            if (!cpu_has_clflushopt()) st.effective = Profile::CLFLUSH;
            break;
        case Profile::STT:  // §6.1: 140 ns per pwb, 200 ns per fence
            st.pwb_delay_ns = 140;
            st.fence_delay_ns = 200;
            break;
        case Profile::PCM:  // §6.1: 340 ns per pwb, 500 ns per fence
            st.pwb_delay_ns = 340;
            st.fence_delay_ns = 500;
            break;
        default:
            break;
    }
#ifndef ROMULUS_X86
    if (st.effective == Profile::CLFLUSH || st.effective == Profile::CLFLUSHOPT ||
        st.effective == Profile::CLWB)
        st.effective = Profile::NOP;  // non-x86: no flush instructions wired up
#endif
}

Profile profile() { return detail::g_profile.requested; }
Profile effective_profile() { return detail::g_profile.effective; }

const char* profile_name(Profile p) {
    switch (p) {
        case Profile::NOP: return "nop";
        case Profile::CLFLUSH: return "clflush";
        case Profile::CLFLUSHOPT: return "clflushopt+sfence";
        case Profile::CLWB: return "clwb+sfence";
        case Profile::STT: return "STT(140+200ns)";
        case Profile::PCM: return "PCM(340+500ns)";
    }
    return "?";
}

void set_sim_hooks(SimHooks* hooks) { detail::g_sim_hooks = hooks; }
SimHooks* sim_hooks() { return detail::g_sim_hooks; }

namespace detail {

// Busy-wait delay used by the STT/PCM emulation.  Mirrors the paper's
// methodology (§6.1: "delays are measured using rdtsc"): short spins, no
// syscalls, so the injected latency is additive to the instruction stream.
void delay_ns(uint64_t ns) {
    if (ns == 0) return;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < deadline) {
#ifdef ROMULUS_X86
        _mm_pause();
#endif
    }
}

void pwb_line_slow(const void* addr) {
    switch (g_profile.effective) {
        case Profile::NOP:
            break;
#ifdef ROMULUS_X86
        case Profile::CLFLUSH:
            _mm_clflush(addr);
            break;
        case Profile::CLFLUSHOPT:
            do_clflushopt(addr);
            break;
        case Profile::CLWB:
            do_clwb(addr);
            break;
#endif
        case Profile::STT:
        case Profile::PCM:
            delay_ns(g_profile.pwb_delay_ns);
            break;
        default:
            break;
    }
}

void fence_slow() {
    switch (g_profile.effective) {
        case Profile::NOP:
        case Profile::CLFLUSH:  // CLFLUSH self-orders; fences map to nop (§6.1)
            break;
#ifdef ROMULUS_X86
        case Profile::CLFLUSHOPT:
        case Profile::CLWB:
            _mm_sfence();
            break;
#endif
        case Profile::STT:
        case Profile::PCM:
            delay_ns(g_profile.fence_delay_ns);
            break;
        default:
            break;
    }
}

}  // namespace detail
}  // namespace romulus::pmem
