#include "pmem/flush.hpp"

#include <atomic>
#include <chrono>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <emmintrin.h>  // _mm_clflush, _mm_sfence, _mm_stream_si128
#include <immintrin.h>  // _mm256_stream_si256 (AVX, runtime-dispatched)
#define ROMULUS_X86 1
#endif

namespace romulus::pmem {

namespace detail {
ProfileState g_profile{};
SimHooks* g_sim_hooks = nullptr;
CommitConfig g_commit_config{};
}  // namespace detail

#ifdef ROMULUS_X86
static bool cpuid7_bit(unsigned bit) {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
    return (ebx >> bit) & 1u;
}
bool cpu_has_clflushopt() {
    static const bool v = cpuid7_bit(23);
    return v;
}
bool cpu_has_clwb() {
    static const bool v = cpuid7_bit(24);
    return v;
}

bool cpu_has_avx() {
    static const bool v = __builtin_cpu_supports("avx");
    return v;
}

__attribute__((target("clflushopt"))) static void do_clflushopt(const void* p) {
    __builtin_ia32_clflushopt(const_cast<void*>(p));
}
__attribute__((target("clwb"))) static void do_clwb(const void* p) {
    __builtin_ia32_clwb(const_cast<void*>(p));
}
__attribute__((target("clflushopt"))) static void do_clflushopt_lines(
    const uint8_t* p, size_t nlines) {
    for (size_t i = 0; i < nlines; ++i)
        __builtin_ia32_clflushopt(
            const_cast<uint8_t*>(p + i * kCacheLineSize));
}
__attribute__((target("clwb"))) static void do_clwb_lines(const uint8_t* p,
                                                          size_t nlines) {
    for (size_t i = 0; i < nlines; ++i)
        __builtin_ia32_clwb(const_cast<uint8_t*>(p + i * kCacheLineSize));
}
#else
bool cpu_has_clflushopt() { return false; }
bool cpu_has_clwb() { return false; }
bool cpu_has_avx() { return false; }
#endif

void set_profile(Profile p) {
    auto& st = detail::g_profile;
    st.requested = p;
    st.effective = p;
    st.pwb_delay_ns = 0;
    st.fence_delay_ns = 0;
    switch (p) {
        case Profile::CLWB:
            if (!cpu_has_clwb())
                st.effective = cpu_has_clflushopt() ? Profile::CLFLUSHOPT
                                                    : Profile::CLFLUSH;
            break;
        case Profile::CLFLUSHOPT:
            if (!cpu_has_clflushopt()) st.effective = Profile::CLFLUSH;
            break;
        case Profile::STT:  // §6.1: 140 ns per pwb, 200 ns per fence
            st.pwb_delay_ns = 140;
            st.fence_delay_ns = 200;
            break;
        case Profile::PCM:  // §6.1: 340 ns per pwb, 500 ns per fence
            st.pwb_delay_ns = 340;
            st.fence_delay_ns = 500;
            break;
        default:
            break;
    }
#ifndef ROMULUS_X86
    if (st.effective == Profile::CLFLUSH || st.effective == Profile::CLFLUSHOPT ||
        st.effective == Profile::CLWB)
        st.effective = Profile::NOP;  // non-x86: no flush instructions wired up
#endif
}

Profile profile() { return detail::g_profile.requested; }
Profile effective_profile() { return detail::g_profile.effective; }

const char* profile_name(Profile p) {
    switch (p) {
        case Profile::NOP: return "nop";
        case Profile::CLFLUSH: return "clflush";
        case Profile::CLFLUSHOPT: return "clflushopt+sfence";
        case Profile::CLWB: return "clwb+sfence";
        case Profile::STT: return "STT(140+200ns)";
        case Profile::PCM: return "PCM(340+500ns)";
    }
    return "?";
}

void set_sim_hooks(SimHooks* hooks) { detail::g_sim_hooks = hooks; }
SimHooks* sim_hooks() { return detail::g_sim_hooks; }

namespace detail {

// Busy-wait delay used by the STT/PCM emulation.  Mirrors the paper's
// methodology (§6.1: "delays are measured using rdtsc"): short spins, no
// syscalls, so the injected latency is additive to the instruction stream.
void delay_ns(uint64_t ns) {
    if (ns == 0) return;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < deadline) {
#ifdef ROMULUS_X86
        _mm_pause();
#endif
    }
}

void pwb_line_slow(const void* addr) {
    switch (g_profile.effective) {
        case Profile::NOP:
            break;
#ifdef ROMULUS_X86
        case Profile::CLFLUSH:
            _mm_clflush(addr);
            break;
        case Profile::CLFLUSHOPT:
            do_clflushopt(addr);
            break;
        case Profile::CLWB:
            do_clwb(addr);
            break;
#endif
        case Profile::STT:
        case Profile::PCM:
            delay_ns(g_profile.pwb_delay_ns);
            break;
        default:
            break;
    }
}

void pwb_lines_slow(const void* addr, size_t nlines) {
    const uint8_t* p = static_cast<const uint8_t*>(addr);
    switch (g_profile.effective) {
        case Profile::NOP:
            break;
#ifdef ROMULUS_X86
        case Profile::CLFLUSH:
            for (size_t i = 0; i < nlines; ++i)
                _mm_clflush(p + i * kCacheLineSize);
            break;
        case Profile::CLFLUSHOPT:
            do_clflushopt_lines(p, nlines);
            break;
        case Profile::CLWB:
            do_clwb_lines(p, nlines);
            break;
#endif
        case Profile::STT:
        case Profile::PCM:
            delay_ns(g_profile.pwb_delay_ns * nlines);
            break;
        default:
            break;
    }
    (void)p;
}

#ifdef ROMULUS_X86
__attribute__((target("avx"))) static void nt_copy_avx(uint8_t* d,
                                                       const uint8_t* s,
                                                       size_t len) {
    size_t i = 0;
    // d is 16-byte aligned by contract; stream one 128-bit chunk if needed
    // to reach the 32-byte alignment the 256-bit stores want.
    if ((reinterpret_cast<uintptr_t>(d) & 31u) != 0 && i + 16 <= len) {
        _mm_stream_si128(reinterpret_cast<__m128i*>(d),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)));
        i = 16;
    }
    for (; i + 32 <= len; i += 32)
        _mm256_stream_si256(
            reinterpret_cast<__m256i*>(d + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i)));
    for (; i + 16 <= len; i += 16)
        _mm_stream_si128(
            reinterpret_cast<__m128i*>(d + i),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i)));
}

static void nt_copy_sse2(uint8_t* d, const uint8_t* s, size_t len) {
    for (size_t i = 0; i + 16 <= len; i += 16)
        _mm_stream_si128(
            reinterpret_cast<__m128i*>(d + i),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i)));
}

void nt_copy(void* dst, const void* src, size_t len) {
    if (cpu_has_avx()) {
        nt_copy_avx(static_cast<uint8_t*>(dst),
                    static_cast<const uint8_t*>(src), len);
    } else {
        nt_copy_sse2(static_cast<uint8_t*>(dst),
                     static_cast<const uint8_t*>(src), len);
    }
}
#else
void nt_copy(void* dst, const void* src, size_t len) {
    std::memcpy(dst, src, len);  // scalar fallback: persist_copy never
                                 // selects the NT path off x86 anyway
}
#endif

void fence_slow() {
    switch (g_profile.effective) {
        case Profile::NOP:
        case Profile::CLFLUSH:  // CLFLUSH self-orders; fences map to nop (§6.1)
            break;
#ifdef ROMULUS_X86
        case Profile::CLFLUSHOPT:
        case Profile::CLWB:
            _mm_sfence();
            break;
#endif
        case Profile::STT:
        case Profile::PCM:
            delay_ns(g_profile.fence_delay_ns);
            break;
        default:
            break;
    }
}

}  // namespace detail

void persist_copy(void* dst, const void* src, size_t len) {
    if (len == 0) return;
    uint8_t* d = static_cast<uint8_t*>(dst);
    const uint8_t* s = static_cast<const uint8_t*>(src);
    bool use_nt = false;
#ifdef ROMULUS_X86
    // The delay-emulation profiles (STT/PCM) charge NVM cost per pwb; the
    // streaming path would make replication artificially free there, so it
    // is reserved for the real-instruction profiles.
    use_nt = len >= detail::g_commit_config.nt_threshold &&
             (reinterpret_cast<uintptr_t>(d) & 15u) == 0 &&
             detail::g_profile.pwb_delay_ns == 0;
#endif
    if (!use_nt) {
        // Cached path: identical to the classic replication sequence.
        std::memcpy(d, s, len);
        on_store(d, len);
        pwb_range(d, len);
        tl_commit_stats().cached_bytes += len;
        return;
    }
#ifdef ROMULUS_X86
    const size_t body = len & ~size_t{15};
    detail::nt_copy(d, s, body);
    if (body < len) std::memcpy(d + body, s + body, len - body);
    // Drain the write-combining buffers: after this, the streamed bytes are
    // write-back-complete without any per-line pwb.  The caller's pfence()
    // still provides ordering against everything that follows.
    _mm_sfence();
    tl_stats().nvm_bytes += len;
    tl_commit_stats().nt_bytes += body;
    if (detail::g_sim_hooks) {
        // An NT store is externally a store whose line leaves for memory at
        // once: report store + per-line pwb so the shadow models see the
        // streamed content as pending until the engine's next fence.
        detail::g_sim_hooks->on_store(d, len);
        auto p = reinterpret_cast<uintptr_t>(d) & ~(kCacheLineSize - 1);
        const auto body_end = reinterpret_cast<uintptr_t>(d) + body;
        for (; p < body_end; p += kCacheLineSize)
            detail::g_sim_hooks->on_pwb(reinterpret_cast<const void*>(p));
    }
    if (body < len) {
        // Sub-16-byte tail went through a cached store: its line needs a
        // real write-back (counted/observed through the normal pwb path).
        tl_commit_stats().cached_bytes += len - body;
        pwb(d + body);
    }
#endif
}
}  // namespace romulus::pmem
