#include "core/engine_globals.hpp"

#include <cstdlib>

namespace romulus {

size_t default_heap_bytes() {
    if (const char* mb = std::getenv("ROMULUS_HEAP_MB")) {
        long v = std::atol(mb);
        if (v > 0) return static_cast<size_t>(v) * 1024 * 1024;
    }
    return 64ull * 1024 * 1024;
}

}  // namespace romulus
