#include "core/engine_globals.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

namespace romulus {

namespace {
std::atomic<uint64_t> g_tx_begins{0};
std::atomic<uint64_t> g_tx_commits{0};
std::atomic<uint64_t> g_tx_aborts{0};
}  // namespace

TxLifecycleCounters tx_lifecycle_counters() {
    return TxLifecycleCounters{
        g_tx_begins.load(std::memory_order_relaxed),
        g_tx_commits.load(std::memory_order_relaxed),
        g_tx_aborts.load(std::memory_order_relaxed),
    };
}

void reset_tx_lifecycle_counters() {
    g_tx_begins.store(0, std::memory_order_relaxed);
    g_tx_commits.store(0, std::memory_order_relaxed);
    g_tx_aborts.store(0, std::memory_order_relaxed);
}

namespace detail {
void count_tx_begin() { g_tx_begins.fetch_add(1, std::memory_order_relaxed); }
void count_tx_commit() { g_tx_commits.fetch_add(1, std::memory_order_relaxed); }
void count_tx_abort() { g_tx_aborts.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

ReadConfig& read_config() {
    static ReadConfig cfg;
    return cfg;
}

std::string apply_env_tuning() {
    std::ostringstream os;
    auto env_long = [&](const char* name, long lo, auto apply) {
        if (const char* v = std::getenv(name)) {
            long n = std::atol(v);
            if (n >= lo) {
                apply(n);
                os << name << "=" << n << " ";
            }
        }
    };
    env_long("ROMULUS_READ_OPTIMISTIC", 0,
             [](long n) { read_config().optimistic = n != 0; });
    env_long("ROMULUS_READ_MAX_ATTEMPTS", 1, [](long n) {
        read_config().max_attempts = static_cast<unsigned>(n);
    });
    env_long("ROMULUS_COMMIT_COALESCE", 0,
             [](long n) { pmem::commit_config().coalesce = n != 0; });
    env_long("ROMULUS_NT_THRESHOLD", 0, [](long n) {
        pmem::commit_config().nt_threshold = static_cast<size_t>(n);
    });
    env_long("ROMULUS_COMBINE_RESCANS", 0, [](long n) {
        pmem::commit_config().combine_rescans = static_cast<unsigned>(n);
    });
    return os.str();
}

ReadStats& tl_read_stats() {
    thread_local ReadStats stats;
    return stats;
}

size_t default_heap_bytes() {
    if (const char* mb = std::getenv("ROMULUS_HEAP_MB")) {
        long v = std::atol(mb);
        if (v > 0) return static_cast<size_t>(v) * 1024 * 1024;
    }
    return 64ull * 1024 * 1024;
}

unsigned default_shard_count() {
    if (const char* e = std::getenv("ROMULUS_SHARDS")) {
        long v = std::atol(e);
        if (v >= 1) {
            return v > long(kMaxShards) ? kMaxShards
                                        : static_cast<unsigned>(v);
        }
    }
    return 1;
}

}  // namespace romulus
