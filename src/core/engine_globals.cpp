#include "core/engine_globals.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace romulus {

namespace {
std::atomic<uint64_t> g_tx_begins{0};
std::atomic<uint64_t> g_tx_commits{0};
std::atomic<uint64_t> g_tx_aborts{0};
}  // namespace

TxLifecycleCounters tx_lifecycle_counters() {
    return TxLifecycleCounters{
        g_tx_begins.load(std::memory_order_relaxed),
        g_tx_commits.load(std::memory_order_relaxed),
        g_tx_aborts.load(std::memory_order_relaxed),
    };
}

void reset_tx_lifecycle_counters() {
    g_tx_begins.store(0, std::memory_order_relaxed);
    g_tx_commits.store(0, std::memory_order_relaxed);
    g_tx_aborts.store(0, std::memory_order_relaxed);
}

namespace detail {
void count_tx_begin() { g_tx_begins.fetch_add(1, std::memory_order_relaxed); }
void count_tx_commit() { g_tx_commits.fetch_add(1, std::memory_order_relaxed); }
void count_tx_abort() { g_tx_aborts.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

ReadConfig& read_config() {
    static ReadConfig cfg;
    return cfg;
}

UpdateConfig& update_config() {
    static UpdateConfig cfg;
    return cfg;
}

bool parse_env_long(const char* text, long lo, long* out) {
    if (text == nullptr || *text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const long n = std::strtol(text, &end, 10);
    if (end == text || errno == ERANGE) return false;
    while (*end == ' ' || *end == '\t') ++end;  // tolerate trailing blanks
    if (*end != '\0') return false;             // reject "12x", "1.5", ...
    if (n < lo) return false;
    *out = n;
    return true;
}

bool env_to_long(const char* name, long lo, long* out) {
    return parse_env_long(std::getenv(name), lo, out);
}

std::string apply_env_tuning() {
    std::ostringstream os;
    auto env_long = [&](const char* name, long lo, auto apply) {
        long n;
        if (env_to_long(name, lo, &n)) {
            apply(n);
            os << name << "=" << n << " ";
        }
    };
    env_long("ROMULUS_READ_OPTIMISTIC", 0,
             [](long n) { read_config().optimistic = n != 0; });
    env_long("ROMULUS_READ_MAX_ATTEMPTS", 1, [](long n) {
        read_config().max_attempts = static_cast<unsigned>(n);
    });
    env_long("ROMULUS_COMMIT_COALESCE", 0,
             [](long n) { pmem::commit_config().coalesce = n != 0; });
    env_long("ROMULUS_NT_THRESHOLD", 0, [](long n) {
        pmem::commit_config().nt_threshold = static_cast<size_t>(n);
    });
    env_long("ROMULUS_COMBINE_RESCANS", 0, [](long n) {
        pmem::commit_config().combine_rescans = static_cast<unsigned>(n);
    });
    env_long("ROMULUS_COMBINE_WAIT_US", 0, [](long n) {
        pmem::commit_config().combine_wait_us = static_cast<unsigned>(n);
    });
    env_long("ROMULUS_UPDATE_FASTPATH", 0,
             [](long n) { update_config().fastpath = n != 0; });
    env_long("ROMULUS_UPDATE_MAX_LINES", 1, [](long n) {
        update_config().max_fastpath_lines = static_cast<unsigned>(n);
    });
    env_long("ROMULUS_UPDATE_STRIPES", 1, [](long n) {
        update_config().stripes = static_cast<unsigned>(n);
    });
    return os.str();
}

ReadStats& tl_read_stats() {
    thread_local ReadStats stats;
    return stats;
}

size_t default_heap_bytes() {
    long v;
    if (env_to_long("ROMULUS_HEAP_MB", 1, &v))
        return static_cast<size_t>(v) * 1024 * 1024;
    return 64ull * 1024 * 1024;
}

unsigned default_shard_count() {
    long v;
    if (env_to_long("ROMULUS_SHARDS", 1, &v)) {
        return v > long(kMaxShards) ? kMaxShards : static_cast<unsigned>(v);
    }
    return 1;
}

}  // namespace romulus
