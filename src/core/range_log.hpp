// Volatile redo log of modified ranges (§4.7).
//
// Unlike every prior PTM log, this one stores *only addresses and lengths*,
// never data, and lives in volatile memory: the recovery procedure does not
// need it (Algorithm 1 recovers from the twin copy alone), so nothing about
// it is ever flushed.  At commit, the logged cache lines are (a) written
// back on main — one pwb per modified line instead of one per store — and
// (b) copied from main to back instead of copying the whole region.
//
// Deduplication is at cache-line granularity through an epoch-tagged
// open-addressing table, so a transaction that hammers one counter logs (and
// later flushes/copies) a single line.  If a transaction touches more bytes
// than a threshold (or overflows the table) the log degenerates to
// "full copy" mode — the same behaviour as the basic algorithm, which §6.6
// shows is actually *preferable* for huge transactions.
//
// The stripe-locked speculative fast path (DESIGN.md §4.11) never consults
// this log: its sync::SpecBuffer write set already holds the touched lines
// deduplicated and sorted, so the fast-path apply coalesces adjacent lines
// into maximal flush/replication runs itself, mirroring merged_runs() for a
// footprint that is bounded by UpdateConfig::max_fastpath_lines.  Only the
// C-RW-WP slow path — where the write set is unbounded — pays for the
// table.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pmem/flush.hpp"

namespace romulus {

class RangeLog {
  public:
    struct Entry {
        uint64_t off;  ///< byte offset of the cache line within main
        uint32_t len;  ///< always a whole cache line today
    };

    RangeLog() : RangeLog(16) {}
    explicit RangeLog(size_t table_bits)
        : mask_((size_t{1} << table_bits) - 1),
          lines_(size_t{1} << table_bits),
          epochs_(size_t{1} << table_bits, 0) {}

    /// Dedup-table sizing policy for a sharded engine: one log per shard, so
    /// with many shards each table can be smaller — a shard sees only its
    /// slice of the write traffic, and 2^bits slots cost 12 bytes each.
    static size_t suggested_table_bits(unsigned shards) {
        return shards > 1 ? 14 : 16;
    }

    /// Start a transaction.  `full_copy_threshold` is the number of logged
    /// bytes beyond which we give up and fall back to a full region copy.
    void begin_tx(size_t full_copy_threshold) {
        if (++epoch_ == 0) {
            // The 32-bit epoch wrapped back to the slot-vector fill value:
            // every stale slot would look occupied by *this* transaction and
            // dedup would silently drop its lines from the log (i.e. from the
            // commit flush + copy — a real durability bug).  Re-zero the
            // table and restart the epoch sequence.
            std::fill(epochs_.begin(), epochs_.end(), 0u);
            epoch_ = 1;
        }
        entries_.clear();
        logged_bytes_ = 0;
        threshold_ = full_copy_threshold;
        full_copy_ = false;
        runs_valid_ = false;
    }

    /// Test hook: place the epoch counter near (or at) the wrap boundary so
    /// tests can exercise the wrap path without 2^32 transactions.
    void debug_set_epoch(uint32_t e) { epoch_ = e; }
    uint32_t debug_epoch() const { return epoch_; }

    /// Record a store of `len` bytes at main-relative offset `off`.
    void add(size_t off, size_t len) {
        if (full_copy_ || len == 0) return;
        const size_t first = off / pmem::kCacheLineSize;
        const size_t last = (off + len - 1) / pmem::kCacheLineSize;
        for (size_t line = first; line <= last; ++line) add_line(line);
    }

    bool full_copy() const { return full_copy_; }
    const std::vector<Entry>& entries() const { return entries_; }
    size_t logged_bytes() const { return logged_bytes_; }

    /// A maximal coalesced byte range (64-bit length: adjacent lines can
    /// merge into runs far larger than any single Entry).
    struct Run {
        uint64_t off;
        uint64_t len;
    };

    /// Maximal coalesced [off, off+len) runs: the per-line entries sorted by
    /// offset with adjacent (and, defensively, overlapping) lines merged.
    /// Computed once per transaction on first use and cached — commit
    /// consumes it twice (flush of main, replication to back), so a 10 KB
    /// sequential write costs one sort instead of 2×160 entry walks, and the
    /// flush/copy loops run per run instead of per 64 B line.  Meaningless
    /// in full-copy mode (commit must not consult the log then).
    const std::vector<Run>& merged_runs() {
        if (!runs_valid_) {
            runs_.clear();
            runs_.reserve(entries_.size());
            scratch_ = entries_;
            std::sort(
                scratch_.begin(), scratch_.end(),
                [](const Entry& a, const Entry& b) { return a.off < b.off; });
            for (const Entry& e : scratch_) {
                if (!runs_.empty() &&
                    e.off <= runs_.back().off + runs_.back().len) {
                    const uint64_t end = e.off + e.len;
                    const uint64_t back_end =
                        runs_.back().off + runs_.back().len;
                    if (end > back_end) runs_.back().len = end - runs_.back().off;
                } else {
                    runs_.push_back(Run{e.off, e.len});
                }
            }
            runs_valid_ = true;
        }
        return runs_;
    }

  private:
    void add_line(size_t line) {
        size_t h = (line * 0x9E3779B97F4A7C15ull) & mask_;
        for (size_t probe = 0; probe <= kMaxProbe; ++probe) {
            size_t i = (h + probe) & mask_;
            if (epochs_[i] == epoch_) {
                if (lines_[i] == line) return;  // duplicate line
                continue;                       // occupied, keep probing
            }
            epochs_[i] = epoch_;
            lines_[i] = line;
            entries_.push_back(Entry{line * pmem::kCacheLineSize,
                                     static_cast<uint32_t>(pmem::kCacheLineSize)});
            runs_valid_ = false;
            logged_bytes_ += pmem::kCacheLineSize;
            if (logged_bytes_ > threshold_) full_copy_ = true;
            return;
        }
        full_copy_ = true;  // table too crowded: degrade to full copy
    }

    static constexpr size_t kMaxProbe = 32;

    size_t mask_;
    std::vector<size_t> lines_;
    std::vector<uint32_t> epochs_;
    uint32_t epoch_ = 0;
    std::vector<Entry> entries_;
    std::vector<Entry> scratch_;  // sort workspace (capacity reused)
    std::vector<Run> runs_;       // cached merged_runs() result
    size_t logged_bytes_ = 0;
    size_t threshold_ = ~size_t{0};
    bool full_copy_ = false;
    bool runs_valid_ = false;
};

}  // namespace romulus
