// The Romulus persistent transactional memory engine (§4, §5).
//
// One template implements all three published variants; the traits select
// the algorithm exactly as the paper names them (§5.3, last paragraph):
//
//   RomulusNL  — the basic algorithm (Algorithm 1): in-place mutation of
//                main, full main->back copy at commit, one pwb per store,
//                C-RW-WP + flat combining for concurrency.
//   RomulusLog — basic algorithm + the volatile range log (§4.7): commit
//                flushes and replicates only the modified cache lines, so a
//                transaction needs at most 4 persistence fences and one pwb
//                per modified line.  C-RW-WP + flat combining.
//   RomulusLR  — RomulusLog + Left-Right synchronization (§5.3): wait-free
//                read-only transactions that run on the back region through
//                synthetic pointers (Figure 3) while the writer mutates main.
//
// Memory layout (Figure 2, generalised to S intra-heap shards):
//
//   [ header | main_0 | back_0 | main_1 | back_1 | ... ]
//
// Each shard zone is an independent twin-copy Romulus heap: its own state
// word and used_size (one ShardHeader cache line in the header page), its
// own root-object array + allocator metadata at the start of its main half
// (i.e. inside the replicated area, so a crash rolls them back together with
// user data, §4.4), and its own volatile concurrency kit — C-RW-WP lock,
// flat-combining array and range log — so update transactions on different
// shards commit fully in parallel.  S=1 (the default) is exactly the paper's
// single-writer engine; recovery scans every shard's state word and rolls
// each shard forward/back independently.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "alloc/pallocator.hpp"
#include "analysis/race_hooks.hpp"
#ifdef ROMULUS_PERSISTGRAPH
#include "analysis/persist_graph.hpp"  // seeded protocol-mutation hooks
#endif
#include "core/engine_globals.hpp"
#include "core/persist.hpp"
#include "core/range_log.hpp"
#include "pmem/flush.hpp"
#include "pmem/region.hpp"
#include "sync/crwwp.hpp"
#include "sync/flat_combining.hpp"
#include "sync/left_right.hpp"
#include "sync/seqlock.hpp"
#include "sync/spinlock.hpp"
#include "sync/stripe_lock.hpp"
#include "sync/thread_registry.hpp"

namespace romulus {

/// Transaction state machine of Algorithm 1 (per shard).
enum TxState : uint32_t {
    IDL = 0,  ///< no transaction: both copies consistent
    MUT = 1,  ///< mutating main: back is the consistent copy
    CPY = 2,  ///< committed, replicating to back: main is consistent
};

template <typename Traits>
class RomulusEngine {
  public:
    template <typename T>
    using p = persist<T, RomulusEngine>;
    using Alloc = PAllocator<RomulusEngine>;

    static constexpr const char* name() { return Traits::kName; }

    // ---------------------------------------------------------------------
    // Lifecycle
    // ---------------------------------------------------------------------

    /// Map (and if needed format) the persistent heap.  Runs recovery when
    /// attaching to an existing heap (so a heap left in MUT/CPY by a crash
    /// is consistent before the first access).  `shards` picks the zone
    /// count for a *fresh* heap (0: the ROMULUS_SHARDS env default); a valid
    /// existing heap dictates its own stored shard count — adopting the
    /// persisted geometry instead of reformatting on mismatch is what makes
    /// a heap created with S=4 reopen safely from a default-configured
    /// process.
    static void init(size_t heap_bytes = 0, const std::string& file = {},
                     unsigned shards = 0) {
        if (s.initialized) throw std::runtime_error("RomulusEngine: double init");
        const unsigned want = shards != 0 ? shards : default_shard_count();
        if (want < 1 || want > kMaxShards)
            throw std::invalid_argument("RomulusEngine: shard count out of range");
        size_t size = heap_bytes ? heap_bytes : default_heap_bytes();
        size = (size + 4095) & ~size_t{4095};
        std::string path = file.empty()
                               ? pmem::default_pmem_dir() + "/" + Traits::kFileName
                               : file;
        bool created = s.region.map(path, size, Traits::kBaseAddr);
        s.header = reinterpret_cast<PHeader*>(s.region.base());

        bool valid = !created && s.header->magic.load() == magic_value() &&
                     s.header->shard_count >= 1 &&
                     s.header->shard_count <= kMaxShards &&
                     s.header->region_size == size;
        const unsigned S = valid ? s.header->shard_count : want;
        try {
            s.layout = pmem::ShardLayout::compute(size, S, kHeaderReserved);
            if (valid && s.header->main_size != s.layout.main_size) {
                valid = false;  // geometry mismatch: reformat with the request
                if (S != want)
                    s.layout =
                        pmem::ShardLayout::compute(size, want, kHeaderReserved);
            }
        } catch (...) {
            s.region.unmap();  // leave the engine re-initializable
            s.header = nullptr;
            throw;
        }
        s.nshards = s.layout.shards;
        s.main_size = s.layout.main_size;
        build_shards();

        if (valid) {
            recover();
        } else {
            format();
        }
        for (unsigned i = 0; i < s.nshards; ++i) {
            Shard& sh = shard(i);
            sh.alloc.attach(&sh.meta->alloc_meta, pool_base(sh), pool_size(sh));
            sh.used_pwb_pending = false;  // deferred pwbs died with the restart
            ROMULUS_RACE_REGISTER_REGION(sh.main, s.main_size, Traits::kName,
                                         "main", &sh.hdr->state);
            ROMULUS_RACE_REGISTER_REGION(sh.back, s.main_size, Traits::kName,
                                         "back", &sh.hdr->state);
        }
        s.initialized = true;
    }

    /// Unmap the heap (contents persist in the file).
    static void close() {
        teardown_shards();
        s.region.unmap();
        s.initialized = false;
    }

    /// Unmap and delete the heap file (tests).
    static void destroy() {
        teardown_shards();
        s.region.destroy();
        s.initialized = false;
    }

    static bool initialized() { return s.initialized; }

    // ---------------------------------------------------------------------
    // Interposition (called by persist<T>)
    // ---------------------------------------------------------------------

    template <typename T>
    static void pstore(T* addr, const T& val) {
        if constexpr (!Traits::kUseLR) {
            if (tl.fp_active) {
                // Speculative fast path (§4.11): main is untouched until
                // commit — the store lands in the thread-local write set.
                fp_store(addr, &val, sizeof(T));
                return;
            }
        }
        *addr = val;
        ROMULUS_RACE_WRITE(addr, sizeof(T));
        Shard* sh = owning_shard_main(addr);
        if (sh == nullptr) {
            // Stack/volatile persist<T> instances (unit tests) or stores to
            // the non-replicated header: just account + flush when mapped.
            if (s.initialized && s.region.contains(addr)) {
                pmem::on_store(addr, sizeof(T));
                pmem::pwb_range(addr, sizeof(T));
            }
            return;
        }
        pmem::on_store(addr, sizeof(T));
        if constexpr (Traits::kUseLog) {
            if (tl.tx_depth > 0 && sh == &shard(tl.shard)) {
                // pwb deferred: commit flushes each logged line exactly once.
                sh->log.add(main_offset(*sh, addr), sizeof(T));
                pmem::notify_range_logged(addr, sizeof(T));
                return;
            }
        }
        pmem::pwb_range(addr, sizeof(T));
    }

    template <typename T>
    static T pload(const T* addr) {
        if constexpr (!Traits::kUseLR) {
            if (tl.fp_active) {
                // Speculative fast path (§4.11): consult the write set, and
                // validate every uncaptured load against its stripe so a
                // concurrent fast-path committer's mid-apply state is never
                // observed.
                T v;
                fp_load(&v, addr, sizeof(T));
                return v;
            }
        }
        T v = *addr;
        if constexpr (!Traits::kUseLR) {
            if (tl.opt_active) {
                // Seqlock fast path (§4.9): validate after EVERY load,
                // before the value can be used — a torn pointer is rejected
                // here, so the closure can never dereference one.  The
                // acquire fence inside validate() is a compiler/CPU fence
                // only; no persistence fence, pwb or lock traffic.
                Shard& sh = current_shard();
                if (!sh.seq.validate(tl.opt_seq))
                    throw sync::OptimisticAbort{};
                if (!ROMULUS_RACE_OPTIMISTIC_READ(&sh.seq, addr, sizeof(T),
                                                  tl.opt_seq, sh.seq.word(),
                                                  "seqlock.validate"))
                    throw sync::OptimisticAbort{};
                return v;
            }
        }
        // The event carries the address actually dereferenced: for an LR
        // back-region reader the caller's addr already points into back
        // (only the loaded *value* gets shifted below).
        ROMULUS_RACE_READ(addr, sizeof(T));
        if constexpr (Traits::kUseLR && std::is_pointer_v<T>) {
            // Synthetic pointers (§5.3, Figure 3): a reader directed at the
            // back region shifts every main-internal pointer by main_size so
            // the traversal stays inside the same shard's back half.
            if (tl.read_offset != 0 && in_shard_main(current_shard(), v)) {
                v = reinterpret_cast<T>(reinterpret_cast<uintptr_t>(v) +
                                        tl.read_offset);
            }
        }
        return v;
    }

    /// Bulk transactional store (used for byte payloads, e.g. DB values).
    static void store_range(void* dst, const void* src, size_t n) {
        if constexpr (!Traits::kUseLR) {
            if (tl.fp_active) {
                fp_store(dst, src, n);
                return;
            }
        }
        std::memcpy(dst, src, n);
        ROMULUS_RACE_WRITE(dst, n);
        range_written(dst, n);
    }

    static void zero_range(void* dst, size_t n) {
        if constexpr (!Traits::kUseLR) {
            if (tl.fp_active) {
                static constexpr uint8_t kZeros[64] = {};
                uint8_t* p = static_cast<uint8_t*>(dst);
                while (n > 0) {
                    const size_t take = n < sizeof(kZeros) ? n : sizeof(kZeros);
                    fp_store(p, kZeros, take);
                    p += take;
                    n -= take;
                }
                return;
            }
        }
        std::memset(dst, 0, n);
        ROMULUS_RACE_WRITE(dst, n);
        range_written(dst, n);
    }

    /// Growth notification from the allocator: keeps the shard's used_size a
    /// monotonic upper bound of every byte ever mutated in its main half,
    /// which is what bounds the recovery copies (§6.5).  Inside a
    /// transaction the write-back is deferred to commit — an
    /// allocation-heavy transaction grows used_size many times but needs
    /// exactly one pwb of the line, and the commit fence that precedes the
    /// CPY state store orders it before CPY becomes persistent (the required
    /// ordering: CPY must never be durable with a stale used_size, or the
    /// main->back copy would miss committed bytes).
    static void note_used(const void* end) {
        if constexpr (!Traits::kUseLR) {
            // The fast path never allocates from the shard heap (alloc_bytes
            // dooms the speculation and serves scratch memory first), so a
            // used_size growth notification means the speculation escaped
            // its footprint contract: doom it and leave the header alone.
            if (tl.fp_active) {
                fp_doom();
                return;
            }
        }
        Shard& sh = current_shard();
        uint64_t off = static_cast<const uint8_t*>(end) - sh.main;
        if (off > sh.hdr->used_size.load(std::memory_order_relaxed)) {
            sh.hdr->used_size.store(off, std::memory_order_relaxed);
            pmem::on_store(&sh.hdr->used_size, 8);
            if (tl.tx_depth > 0) {
                sh.used_pwb_pending = true;  // flushed once, at commit/abort
            } else {
                pmem::pwb(&sh.hdr->used_size);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Single-writer durable transactions (Algorithm 1) — the paper's
    // single-threaded API (§5.1).  Not thread-safe per shard; concurrent
    // applications use updateTx()/readTx() below.
    // ---------------------------------------------------------------------

    static void begin_transaction() { begin_transaction(0); }

    static void begin_transaction(unsigned shard_id) {
        if (tl.tx_depth++ > 0) {
            assert(shard_id == tl.shard && "cross-shard nested transaction");
            return;  // flat nesting
        }
        assert(shard_id < s.nshards);
        tl.shard = shard_id;
        Shard& sh = shard(shard_id);
        tx_begin_hook();
        ROMULUS_RACE_TX_BEGIN("update-tx");
        if constexpr (Traits::kUseLog) {
            sh.log.begin_tx(full_copy_threshold(sh));
        }
        if constexpr (!Traits::kUseLR) {
            // Open the optimistic-read window (seq -> odd) before the first
            // in-place mutation of main can become visible (§4.9).  The
            // detector-side acquire joins previous readers' validate
            // releases, ordering their reads before this writer's stores.
            sh.seq.write_enter();
            ROMULUS_RACE_ACQUIRE(&sh.seq, "seqlock.write_enter");
        }
        store_state(sh, MUT);
        pmem::pwb(&sh.hdr->state);
        pmem::pfence();
    }

    static void end_transaction() {
        assert(tl.tx_depth > 0);
        if (tl.tx_depth > 1) {  // flat nesting: only the outermost commits
            --tl.tx_depth;
            return;
        }
        Shard& sh = current_shard();
#ifdef ROMULUS_PERSISTGRAPH
        const analysis::ProtocolMutations& pgm =
            analysis::protocol_mutations();
#else
        struct {
            bool elide_commit_fence = false;
            bool reorder_state_persist = false;
        } constexpr pgm{};  // folds every mutation branch away
#endif
        if (pgm.reorder_state_persist) {
            // Seeded protocol bug: persist the CPY state word BEFORE the
            // body write-backs — the state persist is unordered with the
            // data it advertises.  romver's static rules must flag this.
            store_state(sh, CPY);
            pmem::pwb(&sh.hdr->state);
            if constexpr (Traits::kUseLog) flush_logged_main_lines(sh);
            flush_used_size(sh);
            pmem::psync();
        } else {
            if constexpr (Traits::kUseLog) flush_logged_main_lines(sh);
            flush_used_size(sh);
            // Seeded protocol bug: eliding this pfence leaves the body
            // write-backs unordered with the CPY state persist.
            if (!pgm.elide_commit_fence) pmem::pfence();
            store_state(sh, CPY);
            pmem::pwb(&sh.hdr->state);
            pmem::psync();  // ACID durability point for this shard's main
        }
        if constexpr (!Traits::kUseLR) {
            // Close the optimistic-read window (seq -> even) only now, after
            // the psync above: a validated reader must have seen *durable*
            // state.  Closing before copy_main_to_back lets readers overlap
            // the whole back-replication phase — the bulk of writer
            // occupancy — which pessimistic readers wait out (§4.9).
            ROMULUS_RACE_RELEASE(&sh.seq, "seqlock.write_exit");
            sh.seq.write_exit();
        }
        if constexpr (Traits::kUseLR) {
            // Publish: new readers go to main while we refresh back.
            sh.lr.set_read_region(sync::LeftRight::kReadMain);
            sh.lr.toggle_version_and_wait();
        }
        copy_main_to_back(sh);
        pmem::pfence();  // order back writes before the IDL state write-back
        store_state(sh, IDL);
        pmem::pwb(&sh.hdr->state);
        if constexpr (Traits::kUseLR) {
            // Second toggle (§5.3): readers move to the refreshed back so
            // the next update transaction starts with main unobserved.
            sh.lr.set_read_region(sync::LeftRight::kReadBack);
            sh.lr.toggle_version_and_wait();
        }
        tl.tx_depth = 0;
        tx_commit_hook();
        ROMULUS_RACE_TX_END();
    }

    /// Roll back the current transaction instead of committing it: back is
    /// still the previous consistent state, so restoring it over main undoes
    /// every in-place modification (this is exactly what crash recovery does
    /// for a MUT-state shard).  Extension beyond the paper's API.
    static void abort_transaction() {
        assert(tl.tx_depth > 0);
        tl.tx_depth = 0;
        Shard& sh = current_shard();
        copy_back_to_main(sh);
        flush_used_size(sh);  // used_size is monotonic: it survives the abort
        pmem::pfence();
        store_state(sh, IDL);
        pmem::pwb(&sh.hdr->state);
        pmem::psync();
        if constexpr (!Traits::kUseLR) {
            // The window stays odd across copy_back_to_main — the rollback
            // mutates main in place, exactly like the MUT body did.
            ROMULUS_RACE_RELEASE(&sh.seq, "seqlock.write_exit");
            sh.seq.write_exit();
        }
        tx_abort_hook();
        ROMULUS_RACE_TX_END();
    }

    static bool in_transaction() { return tl.tx_depth > 0; }

    // ---------------------------------------------------------------------
    // Concurrent transactions (§5) — per shard.  Writers on different
    // shards hold different locks and commit fully in parallel.
    // ---------------------------------------------------------------------

    /// Durable update transaction with starvation-free progress: announce in
    /// the shard's flat-combining array; the announcer that wins the shard's
    /// writer lock combines every operation announced there into one durable
    /// transaction.
    template <typename F>
    static void updateTx(F&& f) {
        updateTx(tx_context_shard(), std::forward<F>(f));
    }

    template <typename F>
    static void updateTx(unsigned shard_id, F&& f) {
        if (tl.tx_depth > 0) {  // nested: run flat inside the current tx
            assert(shard_id == tl.shard && "cross-shard nested updateTx");
            f();
            return;
        }
        assert(shard_id < s.nshards);
        Shard& sh = shard(shard_id);
        if constexpr (!Traits::kUseLR) {
            // Stripe-locked speculative fast path (§4.11): small disjoint
            // updates commit durably without the shard writer lock.  Any
            // conflict, footprint overflow or allocation falls through to
            // the universal flat-combining slow path below — eligibility is
            // transparent to the caller, but like the optimistic read path
            // the closure may run more than once (docs/API.md).
            if (update_config().fastpath) {
                if (try_fastpath_update(sh, shard_id, f)) return;
                pmem::tl_commit_stats().fastpath_fallbacks++;
            }
        }
        const int t = sync::tid();
        sync::FlatCombiningArray::Op op{std::forward<F>(f)};
        sh.fc.announce(t, &op);
        unsigned spins = 0;
        while (true) {
            if (sh.fc.is_done(t)) return;
            if (try_writer_lock(sh)) {
                try {
                    combine(sh, shard_id);
                } catch (...) {
                    writer_unlock(sh);
                    throw;
                }
                writer_unlock(sh);
                if (sh.fc.is_done(t)) return;
                // Extremely unlikely: lost a re-announce race.  Fall through
                // to the shared backoff instead of hot-looping straight back
                // onto the lock — on retry this thread behaves like any
                // other waiter.
            }
            sync::spin_wait(spins);
        }
    }

    /// Read-only transaction.  C-RW-WP variants block while a writer is
    /// active on the same shard; the Left-Right variant is wait-free (§5.3)
    /// and runs on the shard's back half whenever a writer owns its main.
    template <typename F>
    static void readTx(F&& f) {
        readTx(tx_context_shard(), std::forward<F>(f));
    }

    template <typename F>
    static void readTx(unsigned shard_id, F&& f) {
        // Nested inside an update tx (read main in place) or inside another
        // read tx (keep the outer region choice): run flat.
        if (tl.tx_depth > 0 || tl.read_depth > 0) {
            assert(shard_id == tl.shard && "cross-shard nested readTx");
            f();
            return;
        }
        assert(shard_id < s.nshards);
        Shard& sh = shard(shard_id);
        const int t = sync::tid();
        tl.read_depth = 1;
        tl.shard = shard_id;
        if constexpr (Traits::kUseLR) {
            // RAII so a throwing reader still departs and clears the
            // synthetic-pointer offset.
            struct Guard {
                Shard& sh;
                int t, vi;
                ~Guard() {
                    ROMULUS_RACE_TX_END();
                    tl.read_offset = 0;
                    tl.read_depth = 0;
                    sh.lr.depart(t, vi);
                }
            } guard{sh, t, sh.lr.arrive(t)};
            tl.read_offset =
                (sh.lr.read_region() == sync::LeftRight::kReadBack)
                    ? s.main_size
                    : 0;
            ROMULUS_RACE_TX_BEGIN(tl.read_offset != 0 ? "read-tx(back)"
                                                      : "read-tx(main)");
            f();
        } else {
            // Seqlock fast path (§4.9): run the closure directly on main
            // with no lock traffic, no read-indicator arrival and no fences,
            // validated against the shard's sequence word.  Falls back to
            // the C-RW-WP reader lock after max_attempts, so progress is
            // never worse than the pessimistic path.
            if (read_config().optimistic) {
                bool committed;
                try {
                    committed = try_optimistic_read(sh, f);
                } catch (...) {
                    // Genuine user exception off a valid snapshot: the
                    // attempt already closed its race-tx scope; clear the
                    // depth too, or every later readTx on this thread would
                    // run flat — no lock, no validation.
                    tl.read_depth = 0;
                    throw;
                }
                if (committed) {
                    tl.read_depth = 0;
                    return;
                }
            }
            struct Guard {
                Shard& sh;
                int t;
                bool gated;
                ~Guard() {
                    ROMULUS_RACE_TX_END();
                    tl.read_depth = 0;
                    if (gated) sh.fp_gate.read_unlock(t);
                    sh.rwlock.read_unlock(t);
                }
            } guard{sh, t, false};
            sh.rwlock.read_lock(t);
            if (update_config().fastpath) {
                // Fast-path committers apply under a *shared* rwlock hold
                // (§4.11), so the reader lock alone no longer guarantees a
                // quiescent main: additionally exclude the applier phase.
                // Lock order everywhere: rwlock shared, then fp_gate.
                sh.fp_gate.read_lock(t);
                guard.gated = true;
            }
            ROMULUS_RACE_TX_BEGIN("read-tx");
            f();
        }
    }

    // ---------------------------------------------------------------------
    // Allocation (§4.4) — valid only inside a transaction; always serves
    // from the transaction's shard pool.
    // ---------------------------------------------------------------------

    template <typename T, typename... Args>
    static T* tmNew(Args&&... args) {
        void* ptr = alloc_bytes(sizeof(T));
        if constexpr (sizeof...(Args) == 0) {
            // Value-initializing placement-new (`new (ptr) T()`) zeroes a
            // trivially-constructible T with raw stores the interposition
            // layer never sees, so the zeroing would neither be range-logged
            // for twin propagation nor be recoverable by the log baselines.
            // Zero through zero_range and default-initialize instead (which
            // writes nothing for trivially-constructible T).
            zero_range(ptr, sizeof(T));
            return new (ptr) T;
        } else {
            return new (ptr) T(std::forward<Args>(args)...);
        }
    }

    template <typename T>
    static void tmDelete(T* obj) {
        if (obj == nullptr) return;
        obj->~T();
        free_bytes(obj);
    }

    static void* alloc_bytes(size_t n) {
        assert(tl.tx_depth > 0 && "allocation outside a transaction");
        if constexpr (!Traits::kUseLR) {
            // Allocator metadata mutations are not stripe-guarded: an
            // allocating transaction always re-runs on the slow path (§4.11).
            // The doomed continuation still needs usable memory — possibly
            // beneath a noexcept frame, so no exception — and gets volatile
            // scratch that dies with the speculation.
            if (tl.fp_active) {
                fp_doom();
                return tl_fp().scratch_alloc(n);
            }
        }
        void* ptr = current_shard().alloc.alloc(n);
        if (ptr == nullptr) throw std::bad_alloc();
        return ptr;
    }

    static void free_bytes(void* ptr) {
        assert(tl.tx_depth > 0 && "free outside a transaction");
        if constexpr (!Traits::kUseLR) {
            // tmDelete is routinely reached from noexcept destructors, so
            // the speculation dooms without throwing and the free is simply
            // dropped: the slow-path re-run performs the real one.
            if (tl.fp_active) {
                fp_doom();
                return;
            }
        }
        if (ptr == nullptr) return;
        // Cross-shard frees are an application contract violation: objects
        // live and die in the shard whose transaction allocated them.
        assert(owning_shard_main(ptr) == &current_shard() &&
               "free of an object owned by another shard");
        current_shard().alloc.free(ptr);
    }

    // ---------------------------------------------------------------------
    // Root objects (§4.3: each shard has its own objects array inside its
    // main half)
    // ---------------------------------------------------------------------

    template <typename T>
    static T* get_object(int idx) {
        return get_object<T>(idx, tx_context_shard());
    }

    template <typename T>
    static T* get_object(int idx, unsigned shard_id) {
        assert(idx >= 0 && idx < kMaxRootObjects);
        assert(shard_id < s.nshards);
        Shard& sh = shard(shard_id);
        if constexpr (Traits::kUseLR) {
            // A back-directed reader must read the back copy of the roots
            // array, not main's: the writer mutates main's roots mid-tx, so
            // reading them here could observe a root whose object does not
            // exist in back yet.  back holds the previous commit's snapshot
            // (MainMeta is inside the copied range), and pload()'s value
            // shift then moves the stored main-internal pointer into back.
            if (tl.read_offset != 0 && shard_id == tl.shard) {
                const auto* shifted = reinterpret_cast<const p<void*>*>(
                    reinterpret_cast<const uint8_t*>(&sh.meta->roots[idx]) +
                    tl.read_offset);
                return static_cast<T*>(shifted->pload());
            }
        }
        return static_cast<T*>(sh.meta->roots[idx].pload());
    }

    static void put_object(int idx, void* ptr) { put_object(idx, ptr, tl.shard); }

    static void put_object(int idx, void* ptr, unsigned shard_id) {
        assert(idx >= 0 && idx < kMaxRootObjects);
        assert(tl.tx_depth > 0 && "put_object outside a transaction");
        assert(shard_id == tl.shard && "put_object into another shard's roots");
        shard(shard_id).meta->roots[idx] = ptr;
    }

    // ---------------------------------------------------------------------
    // Introspection (tests, benches)
    // ---------------------------------------------------------------------

    static unsigned shard_count() { return s.nshards; }
    static uint8_t* main_base(unsigned shard_id = 0) {
        return shard(shard_id).main;
    }
    static uint8_t* back_base(unsigned shard_id = 0) {
        return shard(shard_id).back;
    }
    static size_t main_size() { return s.main_size; }  // per shard
    static uint64_t used_bytes(unsigned shard_id = 0) {
        return shard(shard_id).hdr->used_size.load();
    }
    static TxState state(unsigned shard_id = 0) {
        return static_cast<TxState>(shard(shard_id).hdr->state.load());
    }
    static Alloc& allocator(unsigned shard_id = 0) {
        return shard(shard_id).alloc;
    }
    static pmem::PmemRegion& region() { return s.region; }
    /// Exact addresses of the per-shard protocol words (romver layout
    /// introspection: the persist-graph rules key on these offsets).
    static const void* state_addr(unsigned shard_id = 0) {
        return &shard(shard_id).hdr->state;
    }
    static const void* used_size_addr(unsigned shard_id = 0) {
        return &shard(shard_id).hdr->used_size;
    }
    /// Test hook: the shard's optimistic-read sequence word (§4.9), exposed
    /// so fixtures can simulate a writer window without a second thread.
    static sync::SeqLock& seq_for_tests(unsigned shard_id = 0) {
        return shard(shard_id).seq;
    }
    /// Test hook: the shard's fast-path stripe table (§4.11), exposed so
    /// fixtures can plant a held stripe / inspect versions directly.
    static sync::StripeLockTable& stripes_for_tests(unsigned shard_id = 0) {
        return shard(shard_id).stripes;
    }

    /// Flat-combining aggregation stats (§5.3: several announced updates
    /// execute inside one durable transaction, so the *average* number of
    /// persistence fences per mutation drops below 4).  Aggregated over all
    /// shards.
    struct CombineStats {
        uint64_t combines;
        uint64_t combined_ops;
        double avg_batch() const {
            return combines == 0 ? 0.0
                                 : double(combined_ops) / double(combines);
        }
    };
    static CombineStats combine_stats() {
        CombineStats out{0, 0};
        for (unsigned i = 0; i < s.nshards; ++i) {
            out.combines += shard(i).combines.load();
            out.combined_ops += shard(i).combined_ops.load();
        }
        return out;
    }
    static void reset_combine_stats() {
        for (unsigned i = 0; i < s.nshards; ++i) {
            shard(i).combines.store(0);
            shard(i).combined_ops.store(0);
        }
    }

    /// True when `ptr` lies in any shard's main half (the current
    /// transaction's shard is checked first).
    static bool in_main(const void* ptr) {
        return owning_shard_main(ptr) != nullptr;
    }

    /// Test hook: after a *simulated* in-process crash the thread survives,
    /// so its transaction-context thread-locals must be cleared the way a
    /// real restart would clear them.  (close()+init() reconstructs the
    /// shared volatile state; this handles the thread-local part, plus —
    /// when the engine is still mapped — an in-place rebuild of every
    /// shard's synchronisation kit.)
    static void crash_reset_for_tests() {
        tl = TlState{};
        for (unsigned i = 0; i < s.nshards; ++i) {
            Shard& sh = shard(i);
            new (&sh.rwlock) sync::CRWWPLock();
            new (&sh.lr_writer_lock) sync::SpinLock();
            new (&sh.lr) sync::LeftRight();
            new (&sh.seq) sync::SeqLock();  // a crash mid-MUT left it odd
            new (&sh.fp_gate) sync::CRWWPLock();
            sh.stripes.reset_for_tests();  // held stripes died with the crash
            new (&sh.fc) sync::FlatCombiningArray();
        }
    }

    /// Crash-recovery entry point (Algorithm 1, lines 17-27), applied to
    /// every shard independently: each zone is a self-contained twin-copy
    /// heap, so one shard crashed in CPY rolls forward while another crashed
    /// in MUT rolls back.  init() calls this automatically; exposed for
    /// tests and the recovery-cost bench.
    static void recover() {
        bool rolled = false;
        for (unsigned i = 0; i < s.nshards; ++i) {
            Shard& sh = shard(i);
            const uint32_t st = sh.hdr->state.load();
            if (st == MUT) {
                copy_back_to_main(sh);
            } else if (st == CPY) {
                copy_main_to_back(sh);
            } else if (st != IDL) {
                throw std::runtime_error("RomulusEngine: corrupted state field");
            }
            if (st != IDL) {
                pmem::pfence();
                store_state(sh, IDL);
                pmem::pwb(&sh.hdr->state);
                rolled = true;
            }
        }
        if (rolled) pmem::psync();
    }

  private:
    static constexpr size_t kHeaderReserved = 4096;
    static constexpr size_t kShardHeaderOffset = 64;
    static constexpr uint64_t kMagicBase = 0x524F4D554C555302ull;  // "ROMULUS"+layout v2

    static uint64_t magic_value() {
        // Fold the engine name so heaps are not opened by the wrong variant.
        uint64_t h = kMagicBase;
        for (const char* c = Traits::kName; *c; ++c) h = h * 31 + uint64_t(*c);
        return h;
    }

    /// Global header page: geometry only.  Per-shard crash state lives in
    /// the ShardHeader array that follows at kShardHeaderOffset.
    struct PHeader {
        std::atomic<uint64_t> magic;
        uint32_t shard_count;
        uint64_t main_size;  ///< per-shard twin-half size
        uint64_t region_size;
    };
    static_assert(sizeof(PHeader) <= kShardHeaderOffset,
                  "PHeader must fit before the shard-header array");

    /// One cache line per shard so two shards' state words never share a
    /// line (their commit pwbs are concurrent).
    struct alignas(64) ShardHeader {
        std::atomic<uint32_t> state;
        std::atomic<uint64_t> used_size;
    };
    static_assert(kShardHeaderOffset + kMaxShards * sizeof(ShardHeader) <=
                      kHeaderReserved,
                  "shard headers must fit in the reserved header page");

    struct MainMeta {
        p<void*> roots[kMaxRootObjects];
        typename Alloc::Meta alloc_meta;
    };

    /// One shard = one zone's pointers + persistent header slots + its own
    /// volatile concurrency kit.  Constructed only for active shards (the
    /// range log alone owns ~0.2–0.8 MB of dedup table).
    struct Shard {
        explicit Shard(size_t log_bits)
            : log(log_bits), stripes(update_config().stripes) {}

        uint8_t* main = nullptr;
        uint8_t* back = nullptr;
        ShardHeader* hdr = nullptr;
        MainMeta* meta = nullptr;
        Alloc alloc;
        RangeLog log;
        sync::CRWWPLock rwlock;           // C-RW-WP variants
        sync::SpinLock lr_writer_lock;    // LR variant (readers use lr)
        sync::LeftRight lr;
        sync::SeqLock seq;                // optimistic-read window (§4.9)
        sync::StripeLockTable stripes;    // fast-path version locks (§4.11)
        sync::CRWWPLock fp_gate;          // fast-path appliers (writers) vs
                                          // pessimistic readers (§4.11)
        sync::FlatCombiningArray fc;
        std::atomic<uint64_t> combines{0};      // combiner invocations
        std::atomic<uint64_t> combined_ops{0};  // operations they executed
        bool used_pwb_pending = false;  // used_size grew; pwb owed at commit
    };

    // All mutable engine state, grouped so the template's statics stay tidy.
    struct State {
        pmem::PmemRegion region;
        PHeader* header = nullptr;
        pmem::ShardLayout layout;
        unsigned nshards = 0;
        size_t main_size = 0;
        bool initialized = false;
        alignas(Shard) unsigned char shard_mem[kMaxShards][sizeof(Shard)];
    };
    static inline State s{};

    struct TlState {
        int tx_depth = 0;
        int read_depth = 0;
        size_t read_offset = 0;
        unsigned shard = 0;  ///< shard of the open tx / read tx
        bool opt_active = false;  ///< inside a seqlock-validated read attempt
        uint64_t opt_seq = 0;     ///< the attempt's sequence snapshot
        bool fp_active = false;   ///< inside a speculative update attempt
    };
    static inline thread_local TlState tl{};

    static Shard& shard(unsigned i) {
        assert(i < s.nshards);
        return *reinterpret_cast<Shard*>(s.shard_mem[i]);
    }

    static Shard& current_shard() { return shard(tl.shard); }

    /// Default shard for the shard-less API: inside a transaction, the
    /// transaction's shard (so nested calls from data structures stay in
    /// their shard); outside, shard 0 — the classic single-shard behaviour.
    static unsigned tx_context_shard() {
        return (tl.tx_depth > 0 || tl.read_depth > 0) ? tl.shard : 0;
    }

    static ShardHeader* shard_headers() {
        return reinterpret_cast<ShardHeader*>(s.region.base() +
                                              kShardHeaderOffset);
    }

    static void build_shards() {
        const size_t bits = RangeLog::suggested_table_bits(s.nshards);
        for (unsigned i = 0; i < s.nshards; ++i) {
            Shard* sh = new (s.shard_mem[i]) Shard(bits);
            sh->main = s.region.base() + s.layout.main_offset(i);
            sh->back = s.region.base() + s.layout.back_offset(i);
            sh->hdr = shard_headers() + i;
            sh->meta = reinterpret_cast<MainMeta*>(sh->main);
        }
    }

    static void teardown_shards() {
        for (unsigned i = 0; i < s.nshards; ++i) {
            Shard& sh = shard(i);
            ROMULUS_RACE_UNREGISTER_REGION(sh.main);
            ROMULUS_RACE_UNREGISTER_REGION(sh.back);
            sh.~Shard();
        }
        s.nshards = 0;
    }

    static bool in_shard_main(const Shard& sh, const void* ptr) {
        auto u = reinterpret_cast<uintptr_t>(ptr);
        auto b = reinterpret_cast<uintptr_t>(sh.main);
        return u >= b && u < b + s.main_size;
    }

    /// The shard whose main half contains `ptr`, or nullptr.  Fast path:
    /// the current transaction's shard (two compares); otherwise one divide
    /// by the zone stride.
    static Shard* owning_shard_main(const void* ptr) {
        const unsigned n = s.nshards;
        if (n == 0) return nullptr;
        Shard& cur = shard(tl.shard < n ? tl.shard : 0);
        if (in_shard_main(cur, ptr)) return &cur;
        if (n == 1) return nullptr;
        const uint8_t* zones = s.region.base() + kHeaderReserved;
        const uint8_t* u = static_cast<const uint8_t*>(ptr);
        if (u < zones) return nullptr;
        const size_t zi = size_t(u - zones) / s.layout.zone_stride();
        if (zi >= n) return nullptr;
        Shard& sh = shard(static_cast<unsigned>(zi));
        return in_shard_main(sh, ptr) ? &sh : nullptr;
    }

    static uint8_t* pool_base(Shard& sh) {
        size_t meta_end = (sizeof(MainMeta) + 63) & ~size_t{63};
        return sh.main + meta_end;
    }
    static size_t pool_size(Shard& sh) {
        return s.main_size - (pool_base(sh) - sh.main);
    }

    static uint64_t main_offset(const Shard& sh, const void* ptr) {
        return static_cast<const uint8_t*>(ptr) - sh.main;
    }

    static size_t full_copy_threshold(const Shard& sh) {
        // Beyond half the used bytes, per-line copying loses to one memcpy.
        return static_cast<size_t>(sh.hdr->used_size.load() / 2);
    }

    static void store_state(Shard& sh, uint32_t st) {
        sh.hdr->state.store(st, std::memory_order_relaxed);
        pmem::on_store(&sh.hdr->state, sizeof(uint32_t));
        pmem::notify_state_transition(st);
    }

    static void range_written(void* dst, size_t n) {
        Shard* sh = owning_shard_main(dst);
        if (sh == nullptr) return;
        pmem::on_store(dst, n);
        if constexpr (Traits::kUseLog) {
            if (tl.tx_depth > 0 && sh == &shard(tl.shard)) {
                sh->log.add(main_offset(*sh, dst), n);
                pmem::notify_range_logged(dst, n);
                return;
            }
        }
        pmem::pwb_range(dst, n);
    }

    /// Write back the shard's used_size header word if a transaction grew it
    /// (note_used defers the pwb here so it is paid once per transaction).
    static void flush_used_size(Shard& sh) {
        if (!sh.used_pwb_pending) return;
        sh.used_pwb_pending = false;
        pmem::pwb(&sh.hdr->used_size);
    }

    static void flush_logged_main_lines(Shard& sh) {
        if (sh.log.full_copy()) {
            pmem::pwb_range(sh.main, sh.hdr->used_size.load());
            return;
        }
        if (pmem::commit_config().coalesce) {
            // One sorted/coalesced pass, shared with copy_main_to_back():
            // each maximal run costs one ranged flush instead of one
            // dispatched pwb per 64 B entry.
            const auto& runs = sh.log.merged_runs();
            auto& cs = pmem::tl_commit_stats();
            cs.commits++;
            cs.runs += runs.size();
            cs.lines_logged += sh.log.entries().size();
            for (const auto& r : runs) pmem::pwb_range(sh.main + r.off, r.len);
        } else {
            for (const auto& e : sh.log.entries())
                pmem::pwb_range(sh.main + e.off, e.len);
        }
    }

    static void copy_range_to_back(Shard& sh, uint64_t off, size_t len) {
        const uint64_t used = sh.hdr->used_size.load();
        if (off >= used) return;
        if (off + len > used) len = used - off;
        pmem::persist_copy(sh.back + off, sh.main + off, len);
    }

    static void copy_main_to_back(Shard& sh) {
        if constexpr (Traits::kUseLog) {
            if (tl.tx_depth == 0 || sh.log.full_copy()) {
                copy_range_to_back(sh, 0, sh.hdr->used_size.load());
            } else if (pmem::commit_config().coalesce) {
                for (const auto& r : sh.log.merged_runs())
                    copy_range_to_back(sh, r.off, r.len);
            } else {
                for (const auto& e : sh.log.entries())
                    copy_range_to_back(sh, e.off, e.len);
            }
        } else {
            copy_range_to_back(sh, 0, sh.hdr->used_size.load());
        }
    }

    static void copy_back_to_main(Shard& sh) {
        const uint64_t used = sh.hdr->used_size.load();
        pmem::persist_copy(sh.main, sh.back, used);
    }

    static void format() {
        s.header->magic.store(0);
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::pfence();  // invalidate before rewriting the layout

        s.header->shard_count = s.nshards;
        s.header->main_size = s.main_size;
        s.header->region_size = s.region.size();
        pmem::on_store(s.header, sizeof(PHeader));
        pmem::pwb_range(s.header, sizeof(PHeader));

        const size_t meta_end = (sizeof(MainMeta) + 63) & ~size_t{63};
        for (unsigned i = 0; i < s.nshards; ++i) {
            Shard& sh = shard(i);
            tl.shard = i;
            tl.tx_depth = 1;  // interposition active, log in full-copy mode
            if constexpr (Traits::kUseLog) sh.log.begin_tx(0);

            sh.hdr->state.store(IDL);
            sh.hdr->used_size.store(meta_end);
            pmem::on_store(sh.hdr, sizeof(ShardHeader));
            pmem::pwb_range(sh.hdr, sizeof(ShardHeader));

            new (sh.meta) MainMeta;  // persist<> members are raw pods
            for (int r = 0; r < kMaxRootObjects; ++r) sh.meta->roots[r] = nullptr;
            sh.alloc.format(&sh.meta->alloc_meta, pool_base(sh), pool_size(sh));
            sh.used_pwb_pending = false;  // used_size is flushed just below
            pmem::pwb_range(sh.main, meta_end);
            pmem::pwb(&sh.hdr->used_size);
            pmem::pfence();

            copy_range_to_back(sh, 0, meta_end);
            pmem::pfence();
            tl.tx_depth = 0;
        }
        tl.shard = 0;

        s.header->magic.store(magic_value());
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::psync();
    }

    // --- optimistic read path (§4.9) ---------------------------------------

    /// One-or-more seqlock-validated attempts at running `f` directly on
    /// main.  Returns true when an attempt committed (or `f` threw a genuine
    /// user exception off a still-valid snapshot — rethrown).  Returns false
    /// when every attempt was invalidated by a concurrent writer: the caller
    /// falls back to the pessimistic reader lock.  `f` may run multiple
    /// times, so read closures must be restartable (docs/API.md).
    template <typename F>
    static bool try_optimistic_read(Shard& sh, F& f) {
        ReadStats& rs = tl_read_stats();
        unsigned spins = 0;
        for (unsigned left = read_config().max_attempts; left > 0; --left) {
            const uint64_t sq = sh.seq.read_begin();
            if (sq & 1) {  // a writer is inside its window right now
                rs.opt_aborts++;
                sync::spin_wait(spins);
                continue;
            }
            tl.opt_active = true;
            tl.opt_seq = sq;
            ROMULUS_RACE_TX_BEGIN("read-tx(opt)");
            bool valid;
            try {
                f();
                // Final check: interposed loads were validated one by one in
                // pload(); this covers raw byte reads the closure did on its
                // own (payload memcpy, string materialisation).
                valid = sh.seq.validate(sq);
            } catch (const sync::OptimisticAbort&) {
                valid = false;
            } catch (...) {
                tl.opt_active = false;
                ROMULUS_RACE_TX_END();
                if (sh.seq.validate(sq)) {
                    // Genuine user exception off a consistent snapshot.
                    rs.opt_exception_exits++;
                    throw;
                }
                // The snapshot died mid-closure, so the exception may be an
                // artifact of torn raw reads: retry instead of surfacing a
                // phantom.
                rs.opt_aborts++;
                sync::spin_wait(spins);
                continue;
            }
            tl.opt_active = false;
            ROMULUS_RACE_TX_END();
            if (valid) {
                rs.opt_commits++;
                return true;
            }
            rs.opt_aborts++;
            sync::spin_wait(spins);
        }
        rs.fallbacks++;
        return false;
    }

    // --- speculative update fast path (§4.11) ------------------------------
    //
    // Protocol (C-RW-WP variants only; RomulusLR keeps its Left-Right path):
    //   1. try_read_lock the shard's C-RW-WP lock: a *shared* hold for the
    //      whole speculation excludes slow-path combiners (who mutate main
    //      unstriped under the exclusive hold) without ever blocking.
    //   2. Run the closure with every pstore buffered into a thread-local
    //      write set of whole cache lines and every pload validated against
    //      the line's stripe word (locked, or version > the start-time clock
    //      snapshot rv => abort).  Footprint overflow, allocation, frees and
    //      cross-shard access doom the speculation — it keeps executing to
    //      completion in SpecBuffer's sandboxed pass-through mode (aborts
    //      never throw: closures run noexcept destructors) and the closure
    //      is re-run on the slow path afterwards.
    //   3. Commit: try-acquire the write set's stripes in canonical
    //      (sorted) order, validate captured-line versions and the read
    //      set, advance the shard's fast-path clock to wv, then apply
    //      durably under fp_gate: MUT -> per-line store+pwb -> pfence ->
    //      CPY -> psync (durability point) -> seqlock reopen -> replicate
    //      touched runs to back -> pfence -> IDL.  Release stripes at wv.
    //
    // A torn fast-path commit is all-or-nothing through the unchanged
    // twin-state recovery: a crash in MUT rolls the whole write set back
    // from back, a crash in CPY re-replicates main.  Stripe words, the
    // clock and the write set are volatile and die with the crash.

    using FpTx = sync::SpecBuffer;
    static FpTx& tl_fp() {
        static thread_local FpTx fp;
        return fp;
    }

    static void fp_doom() { sync::spec_doom(tl_fp()); }

    /// Buffered store: every touched line is captured, then overwritten in
    /// the buffer only (sync::spec_store).  Anything outside the current
    /// shard's main half is either a volatile test object (plain store) or a
    /// cross-shard / header write the stripes cannot guard — those doom the
    /// speculation and the store is dropped (the slow-path re-run performs
    /// the real one).
    static void fp_store(void* addr, const void* src, size_t n) {
        Shard& sh = current_shard();
        if (!in_shard_main(sh, addr)) {
            if (s.initialized && s.region.contains(addr)) {
                fp_doom();
                return;
            }
            std::memcpy(addr, src, n);
            ROMULUS_RACE_WRITE(addr, n);
            return;
        }
        sync::spec_store(tl_fp(), sh.stripes, sh.main, main_offset(sh, addr),
                         src, n);
    }

    /// Validated load: buffered lines read from the write set; everything
    /// else is read from main and checked against its stripe word
    /// (sync::spec_load).
    static void fp_load(void* dst, const void* src, size_t n) {
        Shard& sh = current_shard();
        if (!in_shard_main(sh, src)) {
            if (s.initialized && s.region.contains(src) &&
                owning_shard_main(src) != nullptr) {
                // Cross-shard read: not stripe-guarded.  Doom and read raw
                // (word-atomic — that shard's applier may be mid-commit).
                fp_doom();
                sync::word_atomic_copy(dst, src, n);
                return;
            }
            std::memcpy(dst, src, n);
            return;
        }
        sync::spec_load(tl_fp(), sh.stripes, sh.main, main_offset(sh, src),
                        dst, n);
    }

    template <typename F>
    static bool try_fastpath_update(Shard& sh, unsigned shard_id, F& f) {
        const int t = sync::tid();
        if (!sh.rwlock.try_read_lock(t)) return false;  // slow writer active
        FpTx& fp = tl_fp();
        const UpdateConfig& cfg = update_config();
        fp.begin(cfg.max_fastpath_lines, cfg.max_read_stripes,
                 sh.stripes.clock_now());
        tl.shard = shard_id;
        tl.tx_depth = 1;  // nested updateTx/readTx/put_object contracts hold
        tl.fp_active = true;
        ROMULUS_RACE_TX_BEGIN("update-tx(fp)");
        bool ok;
        try {
            f();
            ok = !fp.aborted;
        } catch (...) {
            // Genuine user exception (speculation aborts never throw).
            // Nothing was applied, so the transaction is a no-op either way;
            // but only surface the exception off an undoomed, still-valid
            // read set — off a dead snapshot it may be an artifact of an
            // inconsistent view, so retry on the slow path instead of
            // raising a phantom.
            const bool consistent =
                !fp.aborted &&
                sync::spec_reads_valid(fp, sh.stripes, nullptr, 0);
            tl.fp_active = false;
            tl.tx_depth = 0;
            ROMULUS_RACE_TX_END();
            sh.rwlock.read_unlock(t);
            pmem::tl_commit_stats().fastpath_aborts++;
            if (consistent) {
                // The surfaced exception IS an aborted transaction from the
                // caller's (and the persistency checker's) point of view:
                // nothing was applied, but the lifecycle must stay visible.
                tx_begin_hook();
                tx_abort_hook();
                throw;
            }
            return false;
        }
        tl.fp_active = false;  // commit uses explicit primitives, not pstore
        if (ok) ok = fastpath_commit(sh);
        tl.tx_depth = 0;
        ROMULUS_RACE_TX_END();
        sh.rwlock.read_unlock(t);
        auto& cs = pmem::tl_commit_stats();
        if (ok) {
            cs.fastpath_commits++;
        } else {
            cs.fastpath_aborts++;
        }
        return ok;
    }

    static bool fastpath_commit(Shard& sh) {
        FpTx& fp = tl_fp();
        if (fp.nw == 0) {
            // Read-only (or no-op) update closure: every load was validated
            // at version <= rv, so the reads already form a consistent
            // snapshot of the start-time state and there is nothing to
            // persist.
            return true;
        }
        unsigned order[FpTx::kLineCap];
        sync::StripeLockTable::Word pre[FpTx::kLineCap];
        unsigned ns = 0;
        if (!sync::spec_lock_write_set(fp, sh.stripes, order, pre, &ns))
            return false;
        const uint64_t wv = sh.stripes.clock_advance();
        fp_apply(sh);
        for (unsigned j = 0; j < ns; ++j) sh.stripes.release(order[j], wv);
        return true;
    }

    /// Durable apply of the validated write set.  fp_gate.write serializes
    /// concurrent fast-path committers and excludes pessimistic readers, so
    /// the shard's seqlock and twin-state machine keep their single-writer
    /// contract (slow-path writers are already excluded by the shared
    /// rwlock hold) — which is exactly why recovery needs no new cases.
    static void fp_apply(Shard& sh) {
        // The write set arrives sorted by offset (spec_lock_write_set), so
        // back-replication coalesces adjacent lines into maximal runs,
        // RangeLog-style.
        FpTx& fp = tl_fp();
        sh.fp_gate.write_lock();
        tx_begin_hook();
        sh.seq.write_enter();
        ROMULUS_RACE_ACQUIRE(&sh.seq, "seqlock.write_enter");
        store_state(sh, MUT);
        pmem::pwb(&sh.hdr->state);
        pmem::pfence();
        for (unsigned i = 0; i < fp.nw; ++i) {
            const auto& wl = fp.wlines[i];
            uint8_t* dst = sh.main + wl.line_off;
            if constexpr (Traits::kUseLog) {
                // Same discipline as the slow path: the store is covered by
                // a log notification before commit (checker require_log).
                pmem::notify_range_logged(dst, pmem::kCacheLineSize);
            }
            std::memcpy(dst, wl.data, pmem::kCacheLineSize);
            ROMULUS_RACE_WRITE(dst, pmem::kCacheLineSize);
            pmem::on_store(dst, pmem::kCacheLineSize);
            pmem::pwb(dst);
        }
        pmem::pfence();  // order the write set before the CPY state persist
        store_state(sh, CPY);
        pmem::pwb(&sh.hdr->state);
        pmem::psync();  // ACID durability point: all of the write set or none
        // Reopen the optimistic-read window before back replication, like
        // the slow path (§4.9): readers overlap the replication phase.
        ROMULUS_RACE_RELEASE(&sh.seq, "seqlock.write_exit");
        sh.seq.write_exit();
        for (unsigned i = 0; i < fp.nw;) {
            const uint64_t off = fp.wlines[i].line_off;
            uint64_t len = pmem::kCacheLineSize;
            unsigned j = i + 1;
            while (j < fp.nw && fp.wlines[j].line_off == off + len) {
                len += pmem::kCacheLineSize;
                ++j;
            }
            copy_range_to_back(sh, off, len);
            i = j;
        }
        pmem::pfence();  // order back writes before the IDL state write-back
        store_state(sh, IDL);
        pmem::pwb(&sh.hdr->state);
        tx_commit_hook();
        sh.fp_gate.write_unlock();
    }

    // --- combiner ----------------------------------------------------------

    static bool try_writer_lock(Shard& sh) {
        if constexpr (Traits::kUseLR) {
            return sh.lr_writer_lock.try_lock();
        } else {
            return sh.rwlock.try_write_lock();
        }
    }

    static void writer_unlock(Shard& sh) {
        if constexpr (Traits::kUseLR) {
            sh.lr_writer_lock.unlock();
        } else {
            sh.rwlock.write_unlock();
        }
    }

    /// Execute every operation announced on this shard inside one durable
    /// transaction.  Slots are cleared only after end_transaction(), i.e.
    /// after the psync that makes the whole batch durable — an announcer
    /// that returns has a durable, visible operation (§5.2).
    static void combine(Shard& sh, unsigned shard_id) {
        begin_transaction(shard_id);
        int done[sync::kMaxThreads];
        bool taken[sync::kMaxThreads] = {};
        int n = 0;
        try {
            auto drain = [&] {
                int newly = 0;
                sh.fc.for_each_announced(
                    [&](int slot, sync::FlatCombiningArray::Op* op) {
                        if (taken[slot]) return;  // executed in a prior scan
                        taken[slot] = true;
                        (*op)();
                        done[n++] = slot;
                        ++newly;
                    });
                return newly;
            };
            drain();
            // Re-scan window: operations announced while the first batch
            // executed join the same durable transaction instead of paying
            // their own MUT/CPY fence pair — bounded so the combiner's own
            // latency stays bounded under a steady announce stream.
            for (unsigned r = pmem::commit_config().combine_rescans; r > 0;
                 --r) {
                if (drain() == 0) break;
            }
            // Bounded batch-wait (ROADMAP item 1): hold the MUT window open
            // up to combine_wait_us for stragglers — an announcement landing
            // before the deadline joins this durable batch instead of paying
            // its own MUT/CPY fence pair.  Wall-clock bounded, so combiner
            // latency stays bounded; 0 (default) keeps the classic close.
            if (const unsigned wait_us = pmem::commit_config().combine_wait_us;
                wait_us != 0) {
                const auto deadline = std::chrono::steady_clock::now() +
                                      std::chrono::microseconds(wait_us);
                do {
                    if (drain() == 0) std::this_thread::yield();
                } while (std::chrono::steady_clock::now() < deadline);
            }
        } catch (...) {
            // An announced operation threw (e.g. heap exhaustion): roll the
            // whole combined transaction back — back still holds the
            // pre-transaction state — release every announcer whose op was
            // scanned (their effects are undone with the batch), and
            // propagate in the combiner's thread.
            abort_transaction();
            for (int i = 0; i < n; ++i) sh.fc.mark_done(done[i]);
            throw;
        }
        end_transaction();
        for (int i = 0; i < n; ++i) sh.fc.mark_done(done[i]);
        sh.combines.fetch_add(1, std::memory_order_relaxed);
        sh.combined_ops.fetch_add(uint64_t(n), std::memory_order_relaxed);
        if (n > 0) pmem::tl_commit_stats().note_combine_batch(unsigned(n));
    }
};

// ---------------------------------------------------------------------------
// The three published variants (§5.3, last paragraph).
// ---------------------------------------------------------------------------

struct RomulusNLTraits {
    static constexpr const char* kName = "RomulusNL";
    static constexpr const char* kFileName = "romulus_nl.heap";
    static constexpr bool kUseLog = false;
    static constexpr bool kUseLR = false;
    static constexpr uintptr_t kBaseAddr = 0x510000000000ull;
};

struct RomulusLogTraits {
    static constexpr const char* kName = "RomulusLog";
    static constexpr const char* kFileName = "romulus_log.heap";
    static constexpr bool kUseLog = true;
    static constexpr bool kUseLR = false;
    static constexpr uintptr_t kBaseAddr = 0x520000000000ull;
};

struct RomulusLRTraits {
    static constexpr const char* kName = "RomulusLR";
    static constexpr const char* kFileName = "romulus_lr.heap";
    static constexpr bool kUseLog = true;
    static constexpr bool kUseLR = true;
    static constexpr uintptr_t kBaseAddr = 0x530000000000ull;
};

using RomulusNL = RomulusEngine<RomulusNLTraits>;
using RomulusLog = RomulusEngine<RomulusLogTraits>;
using RomulusLR = RomulusEngine<RomulusLRTraits>;

}  // namespace romulus
