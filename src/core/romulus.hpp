// The Romulus persistent transactional memory engine (§4, §5).
//
// One template implements all three published variants; the traits select
// the algorithm exactly as the paper names them (§5.3, last paragraph):
//
//   RomulusNL  — the basic algorithm (Algorithm 1): in-place mutation of
//                main, full main->back copy at commit, one pwb per store,
//                C-RW-WP + flat combining for concurrency.
//   RomulusLog — basic algorithm + the volatile range log (§4.7): commit
//                flushes and replicates only the modified cache lines, so a
//                transaction needs at most 4 persistence fences and one pwb
//                per modified line.  C-RW-WP + flat combining.
//   RomulusLR  — RomulusLog + Left-Right synchronization (§5.3): wait-free
//                read-only transactions that run on the back region through
//                synthetic pointers (Figure 3) while the writer mutates main.
//
// Memory layout (Figure 2):   [ header | main | back ]
// with the root-object array and the allocator metadata living at the start
// of main — i.e. inside the replicated area — so that a crash rolls them
// back together with user data (§4.4).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>

#include "alloc/pallocator.hpp"
#include "analysis/race_hooks.hpp"
#include "core/engine_globals.hpp"
#include "core/persist.hpp"
#include "core/range_log.hpp"
#include "pmem/flush.hpp"
#include "pmem/region.hpp"
#include "sync/crwwp.hpp"
#include "sync/flat_combining.hpp"
#include "sync/left_right.hpp"
#include "sync/spinlock.hpp"
#include "sync/thread_registry.hpp"

namespace romulus {

/// Transaction state machine of Algorithm 1.
enum TxState : uint32_t {
    IDL = 0,  ///< no transaction: both copies consistent
    MUT = 1,  ///< mutating main: back is the consistent copy
    CPY = 2,  ///< committed, replicating to back: main is consistent
};

template <typename Traits>
class RomulusEngine {
  public:
    template <typename T>
    using p = persist<T, RomulusEngine>;
    using Alloc = PAllocator<RomulusEngine>;

    static constexpr const char* name() { return Traits::kName; }

    // ---------------------------------------------------------------------
    // Lifecycle
    // ---------------------------------------------------------------------

    /// Map (and if needed format) the persistent heap.  Runs recovery when
    /// attaching to an existing heap (so a heap left in MUT/CPY by a crash
    /// is consistent before the first access).
    static void init(size_t heap_bytes = 0, const std::string& file = {}) {
        if (s.initialized) throw std::runtime_error("RomulusEngine: double init");
        size_t size = heap_bytes ? heap_bytes : default_heap_bytes();
        size = (size + 4095) & ~size_t{4095};
        std::string path = file.empty()
                               ? pmem::default_pmem_dir() + "/" + Traits::kFileName
                               : file;
        bool created = s.region.map(path, size, Traits::kBaseAddr);

        s.header = reinterpret_cast<PHeader*>(s.region.base());
        s.main = s.region.base() + kHeaderReserved;
        s.main_size = ((size - kHeaderReserved) / 2) & ~size_t{63};
        s.back = s.main + s.main_size;
        s.meta = reinterpret_cast<MainMeta*>(s.main);

        const bool valid = !created &&
                           s.header->magic.load() == magic_value() &&
                           s.header->main_size == s.main_size;
        if (valid) {
            recover();
        } else {
            format();
        }
        s.alloc.attach(&s.meta->alloc_meta, pool_base(), pool_size());
        s.used_pwb_pending = false;  // any deferred pwb died with the restart
        ROMULUS_RACE_REGISTER_REGION(s.main, s.main_size, Traits::kName, "main",
                                     &s.header->state);
        ROMULUS_RACE_REGISTER_REGION(s.back, s.main_size, Traits::kName, "back",
                                     &s.header->state);
        s.initialized = true;
    }

    /// Unmap the heap (contents persist in the file).
    static void close() {
        ROMULUS_RACE_UNREGISTER_REGION(s.main);
        ROMULUS_RACE_UNREGISTER_REGION(s.back);
        s.region.unmap();
        s.initialized = false;
    }

    /// Unmap and delete the heap file (tests).
    static void destroy() {
        ROMULUS_RACE_UNREGISTER_REGION(s.main);
        ROMULUS_RACE_UNREGISTER_REGION(s.back);
        s.region.destroy();
        s.initialized = false;
    }

    static bool initialized() { return s.initialized; }

    // ---------------------------------------------------------------------
    // Interposition (called by persist<T>)
    // ---------------------------------------------------------------------

    template <typename T>
    static void pstore(T* addr, const T& val) {
        *addr = val;
        ROMULUS_RACE_WRITE(addr, sizeof(T));
        if (!in_main(addr)) {
            // Stack/volatile persist<T> instances (unit tests) or stores to
            // the non-replicated header: just account + flush when mapped.
            if (s.initialized && s.region.contains(addr)) {
                pmem::on_store(addr, sizeof(T));
                pmem::pwb_range(addr, sizeof(T));
            }
            return;
        }
        pmem::on_store(addr, sizeof(T));
        if constexpr (Traits::kUseLog) {
            if (tl.tx_depth > 0) {
                // pwb deferred: commit flushes each logged line exactly once.
                s.log.add(main_offset(addr), sizeof(T));
                pmem::notify_range_logged(addr, sizeof(T));
                return;
            }
        }
        pmem::pwb_range(addr, sizeof(T));
    }

    template <typename T>
    static T pload(const T* addr) {
        T v = *addr;
        // The event carries the address actually dereferenced: for an LR
        // back-region reader the caller's addr already points into back
        // (only the loaded *value* gets shifted below).
        ROMULUS_RACE_READ(addr, sizeof(T));
        if constexpr (Traits::kUseLR && std::is_pointer_v<T>) {
            // Synthetic pointers (§5.3, Figure 3): a reader directed at the
            // back region shifts every main-internal pointer by main_size so
            // the traversal stays inside back.
            if (tl.read_offset != 0 && in_main(v)) {
                v = reinterpret_cast<T>(reinterpret_cast<uintptr_t>(v) +
                                        tl.read_offset);
            }
        }
        return v;
    }

    /// Bulk transactional store (used for byte payloads, e.g. DB values).
    static void store_range(void* dst, const void* src, size_t n) {
        std::memcpy(dst, src, n);
        ROMULUS_RACE_WRITE(dst, n);
        range_written(dst, n);
    }

    static void zero_range(void* dst, size_t n) {
        std::memset(dst, 0, n);
        ROMULUS_RACE_WRITE(dst, n);
        range_written(dst, n);
    }

    /// Growth notification from the allocator: keeps header.used_size a
    /// monotonic upper bound of every byte ever mutated in main, which is
    /// what bounds the recovery copies (§6.5).  Inside a transaction the
    /// write-back is deferred to commit — an allocation-heavy transaction
    /// grows used_size many times but needs exactly one pwb of the line,
    /// and the commit fence that precedes the CPY state store orders it
    /// before CPY becomes persistent (the required ordering: CPY must never
    /// be durable with a stale used_size, or the main->back copy would miss
    /// committed bytes).
    static void note_used(const void* end) {
        uint64_t off = static_cast<const uint8_t*>(end) - s.main;
        if (off > s.header->used_size.load(std::memory_order_relaxed)) {
            s.header->used_size.store(off, std::memory_order_relaxed);
            pmem::on_store(&s.header->used_size, 8);
            if (tl.tx_depth > 0) {
                s.used_pwb_pending = true;  // flushed once, at commit/abort
            } else {
                pmem::pwb(&s.header->used_size);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Single-writer durable transactions (Algorithm 1) — the paper's
    // single-threaded API (§5.1).  Not thread-safe; concurrent applications
    // use updateTx()/readTx() below.
    // ---------------------------------------------------------------------

    static void begin_transaction() {
        if (tl.tx_depth++ > 0) return;  // flat nesting
        tx_begin_hook();
        ROMULUS_RACE_TX_BEGIN("update-tx");
        if constexpr (Traits::kUseLog) {
            s.log.begin_tx(full_copy_threshold());
        }
        store_state(MUT);
        pmem::pwb(&s.header->state);
        pmem::pfence();
    }

    static void end_transaction() {
        assert(tl.tx_depth > 0);
        if (tl.tx_depth > 1) {  // flat nesting: only the outermost commits
            --tl.tx_depth;
            return;
        }
        if constexpr (Traits::kUseLog) flush_logged_main_lines();
        flush_used_size();
        pmem::pfence();
        store_state(CPY);
        pmem::pwb(&s.header->state);
        pmem::psync();  // ACID durability point for main
        if constexpr (Traits::kUseLR) {
            // Publish: new readers go to main while we refresh back.
            s.lr.set_read_region(sync::LeftRight::kReadMain);
            s.lr.toggle_version_and_wait();
        }
        copy_main_to_back();
        pmem::pfence();  // order back writes before the IDL state write-back
        store_state(IDL);
        pmem::pwb(&s.header->state);
        if constexpr (Traits::kUseLR) {
            // Second toggle (§5.3): readers move to the refreshed back so
            // the next update transaction starts with main unobserved.
            s.lr.set_read_region(sync::LeftRight::kReadBack);
            s.lr.toggle_version_and_wait();
        }
        tl.tx_depth = 0;
        tx_commit_hook();
        ROMULUS_RACE_TX_END();
    }

    /// Roll back the current transaction instead of committing it: back is
    /// still the previous consistent state, so restoring it over main undoes
    /// every in-place modification (this is exactly what crash recovery does
    /// for a MUT-state heap).  Extension beyond the paper's API.
    static void abort_transaction() {
        assert(tl.tx_depth > 0);
        tl.tx_depth = 0;
        copy_back_to_main();
        flush_used_size();  // used_size is monotonic: it survives the abort
        pmem::pfence();
        store_state(IDL);
        pmem::pwb(&s.header->state);
        pmem::psync();
        tx_abort_hook();
        ROMULUS_RACE_TX_END();
    }

    static bool in_transaction() { return tl.tx_depth > 0; }

    // ---------------------------------------------------------------------
    // Concurrent transactions (§5)
    // ---------------------------------------------------------------------

    /// Durable update transaction with starvation-free progress: announce in
    /// the flat-combining array; the announcer that wins the writer lock
    /// combines every announced operation into one durable transaction.
    template <typename F>
    static void updateTx(F&& f) {
        if (tl.tx_depth > 0) {  // nested: run flat inside the current tx
            f();
            return;
        }
        const int t = sync::tid();
        sync::FlatCombiningArray::Op op{std::forward<F>(f)};
        s.fc.announce(t, &op);
        unsigned spins = 0;
        while (true) {
            if (s.fc.is_done(t)) return;
            if (try_writer_lock()) {
                try {
                    combine();
                } catch (...) {
                    writer_unlock();
                    throw;
                }
                writer_unlock();
                if (s.fc.is_done(t)) return;
                continue;  // extremely unlikely: re-announce race; retry
            }
            sync::spin_wait(spins);
        }
    }

    /// Read-only transaction.  C-RW-WP variants block while a writer is
    /// active; the Left-Right variant is wait-free (§5.3) and runs on the
    /// back region whenever a writer owns main.
    template <typename F>
    static void readTx(F&& f) {
        // Nested inside an update tx (read main in place) or inside another
        // read tx (keep the outer region choice): run flat.
        if (tl.tx_depth > 0 || tl.read_depth > 0) {
            f();
            return;
        }
        const int t = sync::tid();
        tl.read_depth = 1;
        if constexpr (Traits::kUseLR) {
            // RAII so a throwing reader still departs and clears the
            // synthetic-pointer offset.
            struct Guard {
                int t, vi;
                ~Guard() {
                    ROMULUS_RACE_TX_END();
                    tl.read_offset = 0;
                    tl.read_depth = 0;
                    s.lr.depart(t, vi);
                }
            } guard{t, s.lr.arrive(t)};
            tl.read_offset = (s.lr.read_region() == sync::LeftRight::kReadBack)
                                 ? s.main_size
                                 : 0;
            ROMULUS_RACE_TX_BEGIN(tl.read_offset != 0 ? "read-tx(back)"
                                                      : "read-tx(main)");
            f();
        } else {
            struct Guard {
                int t;
                ~Guard() {
                    ROMULUS_RACE_TX_END();
                    tl.read_depth = 0;
                    s.rwlock.read_unlock(t);
                }
            } guard{t};
            s.rwlock.read_lock(t);
            ROMULUS_RACE_TX_BEGIN("read-tx");
            f();
        }
    }

    // ---------------------------------------------------------------------
    // Allocation (§4.4) — valid only inside a transaction.
    // ---------------------------------------------------------------------

    template <typename T, typename... Args>
    static T* tmNew(Args&&... args) {
        void* ptr = alloc_bytes(sizeof(T));
        return new (ptr) T(std::forward<Args>(args)...);
    }

    template <typename T>
    static void tmDelete(T* obj) {
        if (obj == nullptr) return;
        obj->~T();
        free_bytes(obj);
    }

    static void* alloc_bytes(size_t n) {
        assert(tl.tx_depth > 0 && "allocation outside a transaction");
        void* ptr = s.alloc.alloc(n);
        if (ptr == nullptr) throw std::bad_alloc();
        return ptr;
    }

    static void free_bytes(void* ptr) {
        assert(tl.tx_depth > 0 && "free outside a transaction");
        if (ptr != nullptr) s.alloc.free(ptr);
    }

    // ---------------------------------------------------------------------
    // Root objects (§4.3: the objects array lives inside main)
    // ---------------------------------------------------------------------

    template <typename T>
    static T* get_object(int idx) {
        assert(idx >= 0 && idx < kMaxRootObjects);
        if constexpr (Traits::kUseLR) {
            // A back-directed reader must read the back copy of the roots
            // array, not main's: the writer mutates main's roots mid-tx, so
            // reading them here could observe a root whose object does not
            // exist in back yet.  back holds the previous commit's snapshot
            // (MainMeta is inside the copied range), and pload()'s value
            // shift then moves the stored main-internal pointer into back.
            if (tl.read_offset != 0) {
                const auto* shifted = reinterpret_cast<const p<void*>*>(
                    reinterpret_cast<const uint8_t*>(&s.meta->roots[idx]) +
                    tl.read_offset);
                return static_cast<T*>(shifted->pload());
            }
        }
        return static_cast<T*>(s.meta->roots[idx].pload());
    }

    static void put_object(int idx, void* ptr) {
        assert(idx >= 0 && idx < kMaxRootObjects);
        assert(tl.tx_depth > 0 && "put_object outside a transaction");
        s.meta->roots[idx] = ptr;
    }

    // ---------------------------------------------------------------------
    // Introspection (tests, benches)
    // ---------------------------------------------------------------------

    static uint8_t* main_base() { return s.main; }
    static uint8_t* back_base() { return s.back; }
    static size_t main_size() { return s.main_size; }
    static uint64_t used_bytes() { return s.header->used_size.load(); }
    static TxState state() {
        return static_cast<TxState>(s.header->state.load());
    }
    static Alloc& allocator() { return s.alloc; }
    static pmem::PmemRegion& region() { return s.region; }

    /// Flat-combining aggregation stats (§5.3: several announced updates
    /// execute inside one durable transaction, so the *average* number of
    /// persistence fences per mutation drops below 4).
    struct CombineStats {
        uint64_t combines;
        uint64_t combined_ops;
        double avg_batch() const {
            return combines == 0 ? 0.0
                                 : double(combined_ops) / double(combines);
        }
    };
    static CombineStats combine_stats() {
        return {s.combines.load(), s.combined_ops.load()};
    }
    static void reset_combine_stats() {
        s.combines.store(0);
        s.combined_ops.store(0);
    }

    static bool in_main(const void* ptr) {
        auto u = reinterpret_cast<uintptr_t>(ptr);
        auto b = reinterpret_cast<uintptr_t>(s.main);
        return u >= b && u < b + s.main_size;
    }

    /// Test hook: after a *simulated* in-process crash the thread survives,
    /// so its transaction-context thread-locals must be cleared the way a
    /// real restart would clear them.  (close()+init() reconstructs the
    /// shared volatile state; this handles the thread-local part.)
    static void crash_reset_for_tests() {
        tl = TlState{};
        // A real restart reconstructs all volatile synchronisation state;
        // rebuild it in place (no readers/writers are alive at this point).
        new (&s.rwlock) sync::CRWWPLock();
        new (&s.lr_writer_lock) sync::SpinLock();
        new (&s.lr) sync::LeftRight();
        new (&s.fc) sync::FlatCombiningArray();
    }

    /// Crash-recovery entry point (Algorithm 1, lines 17-27).  init() calls
    /// this automatically; exposed for tests and the recovery-cost bench.
    static void recover() {
        const uint32_t st = s.header->state.load();
        if (st == MUT) {
            copy_back_to_main();
        } else if (st == CPY) {
            copy_main_to_back();
        } else if (st != IDL) {
            throw std::runtime_error("RomulusEngine: corrupted state field");
        }
        if (st != IDL) {
            pmem::pfence();
            store_state(IDL);
            pmem::pwb(&s.header->state);
            pmem::psync();
        }
    }

  private:
    static constexpr size_t kHeaderReserved = 4096;
    static constexpr uint64_t kMagicBase = 0x524F4D554C555301ull;  // "ROMULUS"+layout v1

    static uint64_t magic_value() {
        // Fold the engine name so heaps are not opened by the wrong variant.
        uint64_t h = kMagicBase;
        for (const char* c = Traits::kName; *c; ++c) h = h * 31 + uint64_t(*c);
        return h;
    }

    struct alignas(64) PHeader {
        std::atomic<uint64_t> magic;
        std::atomic<uint32_t> state;
        std::atomic<uint64_t> used_size;
        uint64_t main_size;
        uint64_t region_size;
    };

    struct MainMeta {
        p<void*> roots[kMaxRootObjects];
        typename Alloc::Meta alloc_meta;
    };

    // All mutable engine state, grouped so the template's statics stay tidy.
    struct State {
        pmem::PmemRegion region;
        PHeader* header = nullptr;
        uint8_t* main = nullptr;
        uint8_t* back = nullptr;
        size_t main_size = 0;
        MainMeta* meta = nullptr;
        Alloc alloc;
        RangeLog log;
        sync::CRWWPLock rwlock;           // C-RW-WP variants
        sync::SpinLock lr_writer_lock;    // LR variant (readers use s.lr)
        sync::LeftRight lr;
        sync::FlatCombiningArray fc;
        std::atomic<uint64_t> combines{0};      // combiner invocations
        std::atomic<uint64_t> combined_ops{0};  // operations they executed
        bool used_pwb_pending = false;  // used_size grew; pwb owed at commit
        bool initialized = false;
    };
    static inline State s{};

    struct TlState {
        int tx_depth = 0;
        int read_depth = 0;
        size_t read_offset = 0;
    };
    static inline thread_local TlState tl{};

    static uint8_t* pool_base() {
        size_t meta_end = (sizeof(MainMeta) + 63) & ~size_t{63};
        return s.main + meta_end;
    }
    static size_t pool_size() { return s.main_size - (pool_base() - s.main); }

    static uint64_t main_offset(const void* ptr) {
        return static_cast<const uint8_t*>(ptr) - s.main;
    }

    static size_t full_copy_threshold() {
        // Beyond half the used bytes, per-line copying loses to one memcpy.
        return static_cast<size_t>(s.header->used_size.load() / 2);
    }

    static void store_state(uint32_t st) {
        s.header->state.store(st, std::memory_order_relaxed);
        pmem::on_store(&s.header->state, sizeof(uint32_t));
        pmem::notify_state_transition(st);
    }

    static void range_written(void* dst, size_t n) {
        if (!in_main(dst)) return;
        pmem::on_store(dst, n);
        if constexpr (Traits::kUseLog) {
            if (tl.tx_depth > 0) {
                s.log.add(main_offset(dst), n);
                pmem::notify_range_logged(dst, n);
                return;
            }
        }
        pmem::pwb_range(dst, n);
    }

    /// Write back the used_size header word if a transaction grew it
    /// (note_used defers the pwb here so it is paid once per transaction).
    static void flush_used_size() {
        if (!s.used_pwb_pending) return;
        s.used_pwb_pending = false;
        pmem::pwb(&s.header->used_size);
    }

    static void flush_logged_main_lines() {
        if (s.log.full_copy()) {
            pmem::pwb_range(s.main, s.header->used_size.load());
            return;
        }
        if (pmem::commit_config().coalesce) {
            // One sorted/coalesced pass, shared with copy_main_to_back():
            // each maximal run costs one ranged flush instead of one
            // dispatched pwb per 64 B entry.
            const auto& runs = s.log.merged_runs();
            auto& cs = pmem::tl_commit_stats();
            cs.commits++;
            cs.runs += runs.size();
            cs.lines_logged += s.log.entries().size();
            for (const auto& r : runs) pmem::pwb_range(s.main + r.off, r.len);
        } else {
            for (const auto& e : s.log.entries())
                pmem::pwb_range(s.main + e.off, e.len);
        }
    }

    static void copy_range_to_back(uint64_t off, size_t len) {
        const uint64_t used = s.header->used_size.load();
        if (off >= used) return;
        if (off + len > used) len = used - off;
        pmem::persist_copy(s.back + off, s.main + off, len);
    }

    static void copy_main_to_back() {
        if constexpr (Traits::kUseLog) {
            if (tl.tx_depth == 0 || s.log.full_copy()) {
                copy_range_to_back(0, s.header->used_size.load());
            } else if (pmem::commit_config().coalesce) {
                for (const auto& r : s.log.merged_runs())
                    copy_range_to_back(r.off, r.len);
            } else {
                for (const auto& e : s.log.entries())
                    copy_range_to_back(e.off, e.len);
            }
        } else {
            copy_range_to_back(0, s.header->used_size.load());
        }
    }

    static void copy_back_to_main() {
        const uint64_t used = s.header->used_size.load();
        pmem::persist_copy(s.main, s.back, used);
    }

    static void format() {
        tl.tx_depth = 1;  // interposition active, log in full-copy mode
        if constexpr (Traits::kUseLog) s.log.begin_tx(0);

        s.header->magic.store(0);
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::pfence();  // invalidate before rewriting the layout

        s.header->state.store(IDL);
        s.header->main_size = s.main_size;
        s.header->region_size = s.region.size();
        size_t meta_end = (sizeof(MainMeta) + 63) & ~size_t{63};
        s.header->used_size.store(meta_end);
        pmem::on_store(s.header, sizeof(PHeader));
        pmem::pwb_range(s.header, sizeof(PHeader));

        new (s.meta) MainMeta;  // persist<> members are uninitialised raw pods
        for (int i = 0; i < kMaxRootObjects; ++i) s.meta->roots[i] = nullptr;
        s.alloc.format(&s.meta->alloc_meta, pool_base(), pool_size());
        pmem::pwb_range(s.main, meta_end);
        pmem::pfence();

        copy_range_to_back(0, meta_end);
        pmem::pfence();

        s.header->magic.store(magic_value());
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::psync();
        tl.tx_depth = 0;
    }

    // --- combiner ----------------------------------------------------------

    static bool try_writer_lock() {
        if constexpr (Traits::kUseLR) {
            return s.lr_writer_lock.try_lock();
        } else {
            return s.rwlock.try_write_lock();
        }
    }

    static void writer_unlock() {
        if constexpr (Traits::kUseLR) {
            s.lr_writer_lock.unlock();
        } else {
            s.rwlock.write_unlock();
        }
    }

    /// Execute every announced operation inside one durable transaction.
    /// Slots are cleared only after end_transaction(), i.e. after the psync
    /// that makes the whole batch durable — an announcer that returns has a
    /// durable, visible operation (§5.2).
    static void combine() {
        begin_transaction();
        int done[sync::kMaxThreads];
        int n = 0;
        try {
            s.fc.for_each_announced(
                [&](int slot, sync::FlatCombiningArray::Op* op) {
                    (*op)();
                    done[n++] = slot;
                });
        } catch (...) {
            // An announced operation threw (e.g. heap exhaustion): roll the
            // whole combined transaction back — back still holds the
            // pre-transaction state — release every announcer whose op was
            // scanned (their effects are undone with the batch), and
            // propagate in the combiner's thread.
            abort_transaction();
            for (int i = 0; i < n; ++i) s.fc.mark_done(done[i]);
            throw;
        }
        end_transaction();
        for (int i = 0; i < n; ++i) s.fc.mark_done(done[i]);
        s.combines.fetch_add(1, std::memory_order_relaxed);
        s.combined_ops.fetch_add(uint64_t(n), std::memory_order_relaxed);
    }
};

// ---------------------------------------------------------------------------
// The three published variants (§5.3, last paragraph).
// ---------------------------------------------------------------------------

struct RomulusNLTraits {
    static constexpr const char* kName = "RomulusNL";
    static constexpr const char* kFileName = "romulus_nl.heap";
    static constexpr bool kUseLog = false;
    static constexpr bool kUseLR = false;
    static constexpr uintptr_t kBaseAddr = 0x510000000000ull;
};

struct RomulusLogTraits {
    static constexpr const char* kName = "RomulusLog";
    static constexpr const char* kFileName = "romulus_log.heap";
    static constexpr bool kUseLog = true;
    static constexpr bool kUseLR = false;
    static constexpr uintptr_t kBaseAddr = 0x520000000000ull;
};

struct RomulusLRTraits {
    static constexpr const char* kName = "RomulusLR";
    static constexpr const char* kFileName = "romulus_lr.heap";
    static constexpr bool kUseLog = true;
    static constexpr bool kUseLR = true;
    static constexpr uintptr_t kBaseAddr = 0x530000000000ull;
};

using RomulusNL = RomulusEngine<RomulusNLTraits>;
using RomulusLog = RomulusEngine<RomulusLogTraits>;
using RomulusLR = RomulusEngine<RomulusLRTraits>;

}  // namespace romulus
