// Process-wide engine configuration helpers and transaction-lifecycle hooks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "pmem/flush.hpp"

namespace romulus {

/// Default persistent heap size: ROMULUS_HEAP_MB env var (in MiB) or 64 MiB.
size_t default_heap_bytes();

/// Size of every PTM's root-object ("objects array", §4.3) table, per shard.
inline constexpr int kMaxRootObjects = 64;

/// Upper bound on intra-heap shards: one ShardHeader cache line per shard
/// must fit in the engines' reserved 4 KiB header page.
inline constexpr unsigned kMaxShards = 32;

/// Default shard count when init() is called without one: ROMULUS_SHARDS env
/// var clamped to [1, kMaxShards], or 1 (the classic single-writer layout).
unsigned default_shard_count();

/// True when the build carries romver's seeded protocol-mutation hooks
/// (-DROMULUS_PERSISTGRAPH).  The persist-graph capture itself rides the
/// always-on SimHooks plumbing; only the deliberate-bug branches in the
/// engines are compiled in/out by the flag.  Tests and the romver CLI key
/// mutation runs on this.
#ifdef ROMULUS_PERSISTGRAPH
inline constexpr bool kPersistGraphEnabled = true;
#else
inline constexpr bool kPersistGraphEnabled = false;
#endif

/// Runtime knobs for the optimistic (seqlock-validated) read path
/// (DESIGN.md §4.9).  Process-wide, read on every readTx; mutate only from
/// quiescent test/bench setup code.
struct ReadConfig {
    /// Master switch: false forces every readTx onto the pessimistic
    /// C-RW-WP reader-lock path (the pre-§4.9 behaviour) — the A/B control
    /// for bench_fig7_readers and for workloads whose read closures are not
    /// safely re-executable.  NOTE: the true default is a behavioural
    /// contract change — read closures may now run multiple times, so
    /// closures that accumulate into captured state must be made
    /// restartable or opt out here (docs/API.md).
    bool optimistic = true;
    /// Optimistic attempts (including the first) before a readTx gives up
    /// and falls back to the reader lock.  Bounded, so a reader never
    /// starves behind a stream of writers: the fallback inherits C-RW-WP's
    /// starvation freedom.
    unsigned max_attempts = 4;
};
ReadConfig& read_config();

/// Runtime knobs for the stripe-locked speculative update fast path
/// (DESIGN.md §4.11).  Process-wide, read on every updateTx; mutate only
/// from quiescent test/bench setup code.  Eligibility is transparent to
/// callers: a transaction that overflows, conflicts, or allocates silently
/// re-runs on the C-RW-WP slow path with identical semantics.
struct UpdateConfig {
    /// Master switch: false forces every updateTx onto the C-RW-WP
    /// writer-lock / flat-combining slow path (the pre-§4.11 behaviour) —
    /// the A/B control for bench_stripe_updates.
    bool fastpath = true;
    /// Write-footprint cap in cache lines; a speculative transaction whose
    /// write set grows past this aborts to the slow path (large writers
    /// amortize the shard lock fine; the fast path targets small updates).
    unsigned max_fastpath_lines = 8;
    /// Read-set cap in stripe observations; past this the speculation
    /// aborts (validation cost would grow past what the slow path charges).
    unsigned max_read_stripes = 64;
    /// Stripe count per shard (rounded up to a power of two at engine
    /// init).  More stripes = fewer false conflicts, more volatile memory.
    unsigned stripes = 1024;
};
UpdateConfig& update_config();

/// Strict base-10 integer parse for environment knobs: accepts optional
/// whitespace then a complete signed decimal number and nothing else.
/// Returns false (leaving *out untouched) on null/empty input, trailing
/// garbage ("12x"), non-numeric text ("abc" — where atol would silently
/// yield 0), overflow, or a value below `lo`.  This is the one shared
/// parser behind apply_env_tuning / default_heap_bytes /
/// default_shard_count, so every knob rejects malformed values the same
/// way instead of each growing its own atol call.
bool parse_env_long(const char* text, long lo, long* out);

/// parse_env_long over getenv(name).
bool env_to_long(const char* name, long lo, long* out);

/// Seed ReadConfig / UpdateConfig / pmem::CommitConfig from the environment
/// — lets the fuzz/CI legs sweep knob settings without recompiling.
/// Recognized (unset or malformed vars leave the compiled defaults):
///   ROMULUS_READ_OPTIMISTIC=0|1      ReadConfig::optimistic
///   ROMULUS_READ_MAX_ATTEMPTS=<n>    ReadConfig::max_attempts (>= 1)
///   ROMULUS_COMMIT_COALESCE=0|1      CommitConfig::coalesce
///   ROMULUS_NT_THRESHOLD=<bytes>     CommitConfig::nt_threshold
///   ROMULUS_COMBINE_RESCANS=<n>      CommitConfig::combine_rescans
///   ROMULUS_COMBINE_WAIT_US=<us>     CommitConfig::combine_wait_us
///   ROMULUS_UPDATE_FASTPATH=0|1     UpdateConfig::fastpath
///   ROMULUS_UPDATE_MAX_LINES=<n>    UpdateConfig::max_fastpath_lines (>= 1)
///   ROMULUS_UPDATE_STRIPES=<n>      UpdateConfig::stripes (>= 1)
/// Returns a human-readable summary of the overrides applied (empty when
/// none).  Call from tool main()s before any engine init; knobs are
/// process-wide and read on every transaction.
std::string apply_env_tuning();

/// Per-thread outcome counters for the optimistic read path.  Thread-local
/// so the read fast path never touches a shared cache line.
struct ReadStats {
    uint64_t opt_commits = 0;  ///< readTx completed on the fast path
    uint64_t opt_aborts = 0;   ///< attempts invalidated by a writer (retried)
    uint64_t fallbacks = 0;    ///< readTx that took the pessimistic lock
    /// Read closures that exited via a user exception off a still-valid
    /// snapshot (the exception propagates; not counted as a commit).
    uint64_t opt_exception_exits = 0;
};
ReadStats& tl_read_stats();
inline void reset_tl_read_stats() { tl_read_stats() = ReadStats{}; }

/// Process-wide transaction-lifecycle counters, aggregated across all
/// engines.  Cheap (relaxed atomics); mostly useful to sanity-check that the
/// lifecycle instrumentation fires for every engine under test.
struct TxLifecycleCounters {
    uint64_t begins = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
};
TxLifecycleCounters tx_lifecycle_counters();
void reset_tx_lifecycle_counters();

namespace detail {
void count_tx_begin();
void count_tx_commit();
void count_tx_abort();
}  // namespace detail

/// Lifecycle hook points: every engine (the Romulus variants and both log
/// baselines) funnels its transaction boundaries through these so that one
/// installed SimHooks observer (e.g. pmem::PersistencyChecker) sees all of
/// them, and so the process-wide counters stay consistent.
inline void tx_begin_hook() {
    detail::count_tx_begin();
    pmem::notify_tx_begin();
}
inline void tx_commit_hook() {
    detail::count_tx_commit();
    pmem::notify_tx_commit();
}
inline void tx_abort_hook() {
    detail::count_tx_abort();
    pmem::notify_tx_abort();
}

}  // namespace romulus
