// Process-wide engine configuration helpers.
#pragma once

#include <cstddef>

namespace romulus {

/// Default persistent heap size: ROMULUS_HEAP_MB env var (in MiB) or 64 MiB.
size_t default_heap_bytes();

/// Size of every PTM's root-object ("objects array", §4.3) table.
inline constexpr int kMaxRootObjects = 64;

}  // namespace romulus
