// persist<T, PTM>: language-level interposition of accesses to persistent
// data (§3.2, §4.4).
//
// Every attribute of a persistent data structure is declared as
// `PTM::template p<T>` (an alias of persist<T, PTM>).  Mutating accesses are
// routed to PTM::pstore — which logs the range (RomulusLog/LR), performs the
// in-place store and schedules the cache-line write-back — and loads are
// routed to PTM::pload — which applies the Left-Right synthetic-pointer
// offset (RomulusLR, §5.3 / Figure 3) or consults the transaction write set
// (the redo-log baseline always; every engine's stripe-locked speculative
// update fast path, DESIGN.md §4.11, while a speculation is buffering).
//
// This is the same technique PMDK uses (§4.4): it needs no special compiler,
// and porting volatile code mostly means wrapping member types.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace romulus {

template <typename T, typename PTM>
class persist {
    static_assert(std::is_trivially_copyable_v<T>,
                  "persist<T> requires trivially copyable T");

  public:
    persist() = default;  // uninitialised, like a raw T

    persist(const T& v) { pstore(v); }
    persist(const persist& other) { pstore(other.pload()); }

    persist& operator=(const T& v) {
        pstore(v);
        return *this;
    }
    persist& operator=(const persist& other) {
        pstore(other.pload());
        return *this;
    }

    operator T() const { return pload(); }

    T pload() const { return PTM::template pload<T>(&val_); }
    void pstore(const T& v) { PTM::template pstore<T>(&val_, v); }

    /// Address of the raw storage (used by range primitives and tests).
    T* addr() { return &val_; }
    const T* addr() const { return &val_; }

    // --- pointer sugar -----------------------------------------------------
    T operator->() const
        requires std::is_pointer_v<T>
    {
        return pload();
    }
    template <typename U = T>
        requires(std::is_pointer_v<U> &&
                 !std::is_void_v<std::remove_pointer_t<U>>)
    std::remove_pointer_t<U>& operator*() const {
        return *pload();
    }

    // --- arithmetic sugar (integral T) --------------------------------------
    persist& operator+=(const T& v) {
        pstore(static_cast<T>(pload() + v));
        return *this;
    }
    persist& operator-=(const T& v) {
        pstore(static_cast<T>(pload() - v));
        return *this;
    }
    persist& operator++() {
        pstore(static_cast<T>(pload() + 1));
        return *this;
    }
    persist& operator--() {
        pstore(static_cast<T>(pload() - 1));
        return *this;
    }

    bool operator==(const T& v) const { return pload() == v; }
    auto operator<=>(const T& v) const { return pload() <=> v; }

  private:
    T val_;
};

}  // namespace romulus
