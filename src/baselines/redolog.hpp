// RedoLogPTM: a Mnemosyne-style persistent STM, used as the paper's
// "Mnemosyne" comparison point (DESIGN.md §1).
//
// Mnemosyne [31] couples a word-based software transactional memory
// (TinySTM) with a redo log persisted at commit time.  This reproduction
// implements the same architecture from scratch:
//
//   * TL2/TinySTM-style concurrency: a global version clock, a table of
//     versioned stripe locks, speculative reads validated against the
//     transaction's read version, commit-time lock acquisition, and
//     abort-and-retry on conflict.  This is what makes the shared-counter
//     hash map of Fig. 5 collapse: every insert/remove conflicts on the
//     element counter and aborts.
//   * Loads AND stores are interposed (Table 1): a transactional load first
//     searches the write set — the longer the transaction, the more
//     expensive every load becomes, which is the §2 criticism this baseline
//     exists to demonstrate.
//   * Durability: at commit the write set is written to a per-thread redo
//     log in persistent memory (pwb + fence), a commit marker is persisted
//     (second fence), the values are applied in place (pwb each) and the
//     marker is cleared — ~4 fences per transaction, growing under
//     contention, as the paper measured.
//
// Recovery replays any redo log whose commit marker is set: such a
// transaction was durably committed but may not have been fully applied.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "alloc/pallocator.hpp"
#include "analysis/race_hooks.hpp"
#include "baselines/redo_clock.hpp"
#include "core/engine_globals.hpp"
#include "core/persist.hpp"
#include "pmem/flush.hpp"
#include "pmem/region.hpp"
#include "sync/spinlock.hpp"
#include "sync/thread_registry.hpp"

namespace romulus::baselines {

/// Thrown on STM conflict; caught by the retry loop in updateTx/readTx.
struct TxAbort {};

class RedoLogPTM {
  public:
    template <typename T>
    using p = persist<T, RedoLogPTM>;
    using Alloc = PAllocator<RedoLogPTM>;

    static constexpr const char* name() { return "RedoLog(Mnemosyne-like)"; }

    // ---------------------------------------------------------------- setup

    static void init(size_t heap_bytes = 0, const std::string& file = {}) {
        if (s.initialized) throw std::runtime_error("RedoLogPTM: double init");
        size_t size = heap_bytes ? heap_bytes : default_heap_bytes();
        size = (size + 4095) & ~size_t{4095};
        // The fixed per-thread redo logs are large (kMaxThreads * ~64 KiB);
        // without this guard heap_size underflows on a small region and
        // format() scribbles past the mapping.
        const size_t reserved =
            kHeaderReserved + sizeof(ThreadLog) * size_t(sync::kMaxThreads);
        if (size < reserved + (size_t{1} << 20))
            throw std::invalid_argument(
                "RedoLogPTM: heap too small: thread logs + header need " +
                std::to_string(reserved) + " bytes plus >=1 MiB of heap");
        std::string path =
            file.empty() ? pmem::default_pmem_dir() + "/redolog.heap" : file;
        bool created = s.region.map(path, size, kBaseAddr);

        s.header = reinterpret_cast<RHeader*>(s.region.base());
        s.logs = reinterpret_cast<ThreadLog*>(s.region.base() + kHeaderReserved);
        s.heap = s.region.base() + kHeaderReserved +
                 sizeof(ThreadLog) * sync::kMaxThreads;
        s.heap_size = size - (s.heap - s.region.base());
        s.meta = reinterpret_cast<HeapMeta*>(s.heap);
        if (!s.locks) s.locks = std::make_unique<std::atomic<uint64_t>[]>(kNumStripes);
        for (size_t i = 0; i < kNumStripes; ++i)
            s.locks[i].store(0, std::memory_order_relaxed);
        g_redo_clock.store(1, std::memory_order_seq_cst);

        if (!created && s.header->magic.load() == kMagic &&
            s.header->heap_size == s.heap_size) {
            recover();
        } else {
            format();
        }
        s.alloc.attach(&s.meta->alloc_meta, pool_base(), pool_size());
        // Only *transactional* accesses are instrumented for this engine
        // (see the hooks in read_word/tx_commit): with per-stripe happens-
        // before edges, modelling the raw non-tx accesses would produce
        // false positives.  The registration still scopes the shadow cells.
        ROMULUS_RACE_REGISTER_REGION(s.heap, s.heap_size, "RedoLog", "heap",
                                     nullptr);
        s.initialized = true;
    }

    static void close() {
        ROMULUS_RACE_UNREGISTER_REGION(s.heap);
        s.region.unmap();
        s.initialized = false;
    }
    static void destroy() {
        ROMULUS_RACE_UNREGISTER_REGION(s.heap);
        s.region.destroy();
        s.initialized = false;
    }
    static bool initialized() { return s.initialized; }

    // -------------------------------------------------------- interposition

    template <typename T>
    static void pstore(T* addr, const T& val) {
        static_assert(sizeof(T) <= 8, "RedoLogPTM stores are word-based");
        if (!tl.active || !in_heap(addr)) {
            *addr = val;
            if (s.initialized && s.region.contains(addr)) {
                pmem::on_store(addr, sizeof(T));
                pmem::pwb_range(addr, sizeof(T));
            }
            return;
        }
        assert(!tl.read_only && "store inside a read-only transaction");
        const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
        const uintptr_t wa = a & ~uintptr_t{7};
        uint64_t word;
        if constexpr (sizeof(T) == 8) {
            if (wa == a) {
                std::memcpy(&word, &val, 8);
                tl.ws.insert(wa, word);
                return;
            }
        }
        // Sub-word (or unaligned) store: read-modify-write the word.  persist
        // fields are naturally aligned so the value never spans words; the
        // min() makes that bound provable to the compiler.
        word = read_word(wa);
        const size_t off = a - wa;
        std::memcpy(reinterpret_cast<uint8_t*>(&word) + off, &val,
                    std::min(sizeof(T), 8 - off));
        tl.ws.insert(wa, word);
    }

    template <typename T>
    static T pload(const T* addr) {
        static_assert(sizeof(T) <= 8, "RedoLogPTM loads are word-based");
        if (!tl.active || !in_heap(addr)) return *addr;
        const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
        const uintptr_t wa = a & ~uintptr_t{7};
        const uint64_t word = read_word(wa);
        T out;
        std::memcpy(&out, reinterpret_cast<const uint8_t*>(&word) + (a - wa),
                    sizeof(T));
        return out;
    }

    static void store_range(void* dst, const void* src, size_t n) {
        if (!tl.active || !in_heap(dst)) {
            std::memcpy(dst, src, n);
            if (s.initialized && s.region.contains(dst)) {
                pmem::on_store(dst, n);
                pmem::pwb_range(dst, n);
            }
            return;
        }
        // Word-wise transactional copy (every word costs a write-set entry:
        // the 8-words-per-word log amplification of Table 1 in action).
        const auto* sp = static_cast<const uint8_t*>(src);
        auto* dp = static_cast<uint8_t*>(dst);
        size_t i = 0;
        while (i < n) {
            const uintptr_t a = reinterpret_cast<uintptr_t>(dp + i);
            const uintptr_t wa = a & ~uintptr_t{7};
            const size_t off = a - wa;
            const size_t take = std::min<size_t>(8 - off, n - i);
            uint64_t word = (off == 0 && take == 8) ? 0 : read_word(wa);
            std::memcpy(reinterpret_cast<uint8_t*>(&word) + off, sp + i, take);
            tl.ws.insert(wa, word);
            i += take;
        }
    }

    static void zero_range(void* dst, size_t n) {
        std::vector<uint8_t> zeros(n, 0);
        store_range(dst, zeros.data(), n);
    }

    /// Transactional range read, symmetric to store_range.  Redo buffering
    /// means the heap bytes of anything stored earlier in the SAME
    /// transaction are stale until commit applies the write set — so any
    /// byte-range consumer (KVStore key compare, value materialization)
    /// must read through here, not via raw memcpy, to see its own writes.
    static void load_range(void* dst, const void* src, size_t n) {
        if (!tl.active || !in_heap(src)) {
            std::memcpy(dst, src, n);
            return;
        }
        const auto* sp = static_cast<const uint8_t*>(src);
        auto* dp = static_cast<uint8_t*>(dst);
        size_t i = 0;
        while (i < n) {
            const uintptr_t a = reinterpret_cast<uintptr_t>(sp + i);
            const uintptr_t wa = a & ~uintptr_t{7};
            const size_t off = a - wa;
            const size_t take = std::min<size_t>(8 - off, n - i);
            const uint64_t word = read_word(wa);
            std::memcpy(dp + i, reinterpret_cast<const uint8_t*>(&word) + off,
                        take);
            i += take;
        }
    }

    static void note_used(const void* end) {
        uint64_t off = static_cast<const uint8_t*>(end) - s.heap;
        uint64_t cur = s.header->used_size.load(std::memory_order_relaxed);
        while (off > cur &&
               !s.header->used_size.compare_exchange_weak(cur, off)) {
        }
        pmem::pwb(&s.header->used_size);
    }

    // --------------------------------------------------------- transactions

    template <typename F>
    static void updateTx(F&& f) {
        if (tl.active || tl.seq_depth > 0) {
            f();
            return;
        }
        int retries = 0;
        while (true) {
            // Under the force-pessimistic A/B knob every writer routes
            // through the fallback mutex, so a "pessimistic" reader holding
            // it genuinely excludes all writers (readTx below) instead of
            // only the rare fallback ones.  The TL2 speculative commit *is*
            // this engine's stripe-locked update fast path (DESIGN.md
            // §4.11), so the ROMULUS_UPDATE_FASTPATH knob forces the
            // fallback mutex too — giving the same speculative-vs-
            // serialized A/B axis as the other engines — and the shared
            // fastpath_* counters classify each attempt.
            const bool fallback = retries >= kFallbackRetries ||
                                  !read_config().optimistic ||
                                  !update_config().fastpath;
            std::unique_lock<std::mutex> flk;
            if (fallback) {
                flk = std::unique_lock(s.fallback_mutex);
                // A knob-off run is not a "fallback" — the counter
                // classifies attempted speculations only.
                if (update_config().fastpath)
                    pmem::tl_commit_stats().fastpath_fallbacks++;
            }
            tx_begin(/*read_only=*/false);
            try {
                f();
                tx_commit();
                if (!fallback) pmem::tl_commit_stats().fastpath_commits++;
                return;
            } catch (const TxAbort&) {
                tx_rollback();
                if (!fallback) pmem::tl_commit_stats().fastpath_aborts++;
                ++retries;
                backoff(retries);
            } catch (...) {
                // User exception or capacity error: nothing was applied
                // (redo buffering); roll back cleanly and propagate.
                tx_rollback();
                throw;
            }
        }
    }

    template <typename F>
    static void readTx(F&& f) {
        if (tl.active || tl.seq_depth > 0) {
            f();
            return;
        }
        // TL2 reads are optimistic by construction; ReadConfig's
        // force-pessimistic A/B knob serialises them through the fallback
        // mutex instead, which updateTx also always takes when the knob is
        // off — so no writer runs concurrently and the first attempt
        // validates.
        std::unique_lock<std::mutex> pess;
        if (!read_config().optimistic)
            pess = std::unique_lock(s.fallback_mutex);
        int retries = 0;
        while (true) {
            tx_begin(/*read_only=*/true);
            try {
                f();
                tl.active = false;  // read-only: nothing to commit
                ROMULUS_RACE_TX_END();
                return;
            } catch (const TxAbort&) {
                tx_rollback();
                ++retries;
                backoff(retries);
            } catch (...) {
                tx_rollback();
                throw;
            }
        }
    }

    /// Single-threaded API parity: serialises writers through the fallback
    /// mutex so the transaction can never abort (no lambda to re-run).
    static void begin_transaction() {
        if (tl.seq_depth++ > 0) return;
        s.fallback_mutex.lock();
        tx_begin(false);
    }
    static void end_transaction() {
        assert(tl.seq_depth > 0);
        if (tl.seq_depth > 1) {
            --tl.seq_depth;
            return;
        }
        tx_commit();  // cannot conflict: single writer, readers lock-free
        s.fallback_mutex.unlock();
        tl.seq_depth = 0;
    }
    static void abort_transaction() {
        assert(tl.seq_depth > 0);
        tx_rollback();
        s.fallback_mutex.unlock();
        tl.seq_depth = 0;
    }
    static bool in_transaction() { return tl.active; }

    // ----------------------------------------------------------- allocation

    template <typename T, typename... Args>
    static T* tmNew(Args&&... args) {
        void* ptr = alloc_bytes(sizeof(T));
        if constexpr (sizeof...(Args) == 0) {
            // Value-initializing placement-new would zero the object with
            // raw in-place stores that bypass the write set — mutating the
            // live heap before commit, which a discarded (crashed) redo log
            // can never undo.  Zero through zero_range (write-set routed)
            // and default-initialize instead.
            zero_range(ptr, sizeof(T));
            return new (ptr) T;
        } else {
            return new (ptr) T(std::forward<Args>(args)...);
        }
    }
    template <typename T>
    static void tmDelete(T* obj) {
        if (obj == nullptr) return;
        obj->~T();
        free_bytes(obj);
    }
    static void* alloc_bytes(size_t n) {
        assert(tl.active);
        void* ptr = s.alloc.alloc(n);
        if (ptr == nullptr) throw std::bad_alloc();
        return ptr;
    }
    static void free_bytes(void* ptr) {
        assert(tl.active);
        if (ptr != nullptr) s.alloc.free(ptr);
    }

    // ---------------------------------------------------------------- roots

    template <typename T>
    static T* get_object(int idx) {
        return static_cast<T*>(s.meta->roots[idx].pload());
    }
    static void put_object(int idx, void* ptr) {
        assert(tl.active);
        s.meta->roots[idx] = ptr;
    }

    // -------------------------------------------------------- introspection

    static uint64_t used_bytes() { return s.header->used_size.load(); }
    static Alloc& allocator() { return s.alloc; }
    static pmem::PmemRegion& region() { return s.region; }

    // Layout introspection, parallel to the Romulus engines (the persistency
    // checker builds its Layout from these): redo logging applies to one heap
    // in place, so "main" is the heap area and there is no twin copy.
    static uint8_t* main_base() { return s.heap; }
    static size_t main_size() { return s.heap_size; }
    static uint8_t* back_base() { return nullptr; }
    // Persistent per-thread redo-log area (romver attributes persist events
    // to header/log/heap areas through these).
    static uint8_t* log_base() { return reinterpret_cast<uint8_t*>(s.logs); }
    static size_t log_size() {
        return sizeof(ThreadLog) * size_t(sync::kMaxThreads);
    }

    /// Test hook: clear transaction thread-locals after a simulated crash
    /// (stripe locks and the fallback mutex are reconstructed by init()).
    static void crash_reset_for_tests() {
        if (tl.seq_depth > 0) s.fallback_mutex.unlock();
        tl.active = false;
        tl.read_only = false;
        tl.seq_depth = 0;
        tl.owned.clear();
        tl.rs.clear();
    }

    /// Replay any redo log whose commit marker survived a crash.
    static void recover() {
        for (int t = 0; t < sync::kMaxThreads; ++t) {
            ThreadLog& log = s.logs[t];
            const uint64_t marker = log.marker.load();
            if (marker == 0) continue;
            const uint64_t n = log.count.load();
            if (n > kLogCapacity)
                throw std::runtime_error("RedoLogPTM: bad log count");
            for (uint64_t i = 0; i < n; ++i) {
                auto* dst = reinterpret_cast<uint64_t*>(s.heap + log.entries[i].heap_off);
                *dst = log.entries[i].val;
                pmem::on_store(dst, 8);
                pmem::pwb(dst);
            }
            pmem::pfence();
            log.marker.store(0);
            pmem::on_store(&log.marker, 8);
            pmem::pwb(&log.marker);
            pmem::psync();
        }
    }

  private:
    static constexpr uintptr_t kBaseAddr = 0x550000000000ull;
    static constexpr size_t kHeaderReserved = 4096;
    static constexpr size_t kNumStripes = 1 << 20;
    // Entries per thread: 64 KiB of redo log each (Mnemosyne also uses
    // fixed-size persistent logs).  A transaction writing more words than
    // this is rejected — the paper notes the public Mnemosyne has exactly
    // this kind of capacity limitation (footnote 2).
    static constexpr uint64_t kLogCapacity = 4096;
    static constexpr int kFallbackRetries = 16;
    static constexpr uint64_t kMagic = 0x5245444F4C4F4731ull;  // "REDOLOG1"

    struct RedoEntry {
        uint64_t heap_off;
        uint64_t val;
    };

    /// Per-thread persistent redo log (16 B header + entries).
    struct alignas(64) ThreadLog {
        std::atomic<uint64_t> marker;  ///< commit version; 0 = inactive
        std::atomic<uint64_t> count;
        RedoEntry entries[kLogCapacity];
    };

    struct alignas(64) RHeader {
        std::atomic<uint64_t> magic;
        std::atomic<uint64_t> used_size;
        uint64_t heap_size;
    };

    struct HeapMeta {
        p<void*> roots[kMaxRootObjects];
        typename Alloc::Meta alloc_meta;
    };

    // --- write set: word address -> value, with insertion order ------------
    struct WriteSet {
        struct Slot {
            uintptr_t addr = 0;
            uint64_t val = 0;
            uint32_t epoch = 0;
        };
        std::vector<Slot> table = std::vector<Slot>(1 << 12);
        std::vector<uint32_t> order;
        uint32_t epoch = 0;

        void reset() {
            ++epoch;
            order.clear();
            if (epoch == 0) {  // epoch wrap: clear lazily-invalidated slots
                for (auto& s : table) s.epoch = 0;
                epoch = 1;
            }
        }
        bool lookup(uintptr_t a, uint64_t& v) const {
            size_t mask = table.size() - 1;
            size_t i = (a >> 3) * 0x9E3779B97F4A7C15ull & mask;
            while (table[i].epoch == epoch) {
                if (table[i].addr == a) {
                    v = table[i].val;
                    return true;
                }
                i = (i + 1) & mask;
            }
            return false;
        }
        void insert(uintptr_t a, uint64_t v) {
            if (order.size() * 2 > table.size()) grow();
            size_t mask = table.size() - 1;
            size_t i = (a >> 3) * 0x9E3779B97F4A7C15ull & mask;
            while (table[i].epoch == epoch) {
                if (table[i].addr == a) {
                    table[i].val = v;
                    return;
                }
                i = (i + 1) & mask;
            }
            table[i] = Slot{a, v, epoch};
            order.push_back(static_cast<uint32_t>(i));
        }
        void grow() {
            std::vector<Slot> old = std::move(table);
            std::vector<uint32_t> old_order = std::move(order);
            table.assign(old.size() * 2, Slot{});
            order.clear();
            for (uint32_t idx : old_order) insert(old[idx].addr, old[idx].val);
        }
        size_t size() const { return order.size(); }
    };

    struct TlState {
        bool active = false;
        bool read_only = false;
        int seq_depth = 0;
        uint64_t rv = 0;
        WriteSet ws;
        std::vector<std::pair<std::atomic<uint64_t>*, uint64_t>> rs;
        std::vector<std::pair<std::atomic<uint64_t>*, uint64_t>> owned;
    };
    static thread_local TlState tl;

    struct State {
        pmem::PmemRegion region;
        RHeader* header = nullptr;
        ThreadLog* logs = nullptr;
        uint8_t* heap = nullptr;
        size_t heap_size = 0;
        HeapMeta* meta = nullptr;
        Alloc alloc;
        std::unique_ptr<std::atomic<uint64_t>[]> locks;  // version<<1 | locked
        std::mutex fallback_mutex;
        bool initialized = false;
    };
    static State s;

    static bool in_heap(const void* ptr) {
        auto u = reinterpret_cast<uintptr_t>(ptr);
        auto b = reinterpret_cast<uintptr_t>(s.heap);
        return u >= b && u < b + s.heap_size;
    }
    static uint8_t* pool_base() {
        size_t meta_end = (sizeof(HeapMeta) + 63) & ~size_t{63};
        return s.heap + meta_end;
    }
    static size_t pool_size() { return s.heap_size - (pool_base() - s.heap); }

    static std::atomic<uint64_t>& lock_of(uintptr_t word_addr) {
        return s.locks[(word_addr >> 3) & (kNumStripes - 1)];
    }

    [[noreturn]] static void abort_tx() {
        pmem::tl_stats().tx_aborts++;
        throw TxAbort{};
    }

    /// TL2 speculative read of one word, validated against the read version.
    static uint64_t read_word(uintptr_t wa) {
        uint64_t v;
        if (tl.ws.lookup(wa, v)) return v;
        auto& lk = lock_of(wa);
        const uint64_t l1 = lk.load(std::memory_order_seq_cst);
        if (l1 & 1) abort_tx();
        v = *reinterpret_cast<const uint64_t*>(wa);
        const uint64_t l2 = lk.load(std::memory_order_seq_cst);
        if (l1 != l2 || (l1 >> 1) > tl.rv) abort_tx();
        tl.rs.emplace_back(&lk, l1);
        // Optimistic reads can't follow the acquire-after-observe contract
        // (nothing is held), so the detector re-validates the stripe version
        // inside its own mutex; a concurrent lock/version change means the
        // event order would be unsound — abort and retry instead.
        if (!ROMULUS_RACE_OPTIMISTIC_READ(&lk, reinterpret_cast<const void*>(wa),
                                          8, l1, &lk, "redo.validate"))
            abort_tx();
        return v;
    }

    static void tx_begin(bool read_only) {
        tl.active = true;
        tl.read_only = read_only;
        tl.rv = g_redo_clock.load(std::memory_order_seq_cst);
        tl.ws.reset();
        tl.rs.clear();
        tl.owned.clear();
        // Read-only transactions never reach the durability protocol, so the
        // lifecycle observers only hear about update transactions.
        if (!read_only) tx_begin_hook();
        ROMULUS_RACE_TX_BEGIN(read_only ? "read-tx" : "update-tx");
    }

    static void tx_rollback() {
        release_owned();
        tl.active = false;
        if (!tl.read_only) tx_abort_hook();
        ROMULUS_RACE_TX_END();
    }

    static void backoff(int retries) {
        if (retries < 4) {
            for (int i = 0; i < (1 << retries); ++i) sync::cpu_relax();
        } else {
            std::this_thread::yield();
        }
    }

    static void release_owned() {
        for (auto& [lk, orig] : tl.owned)
            lk->store(orig, std::memory_order_seq_cst);
        tl.owned.clear();
    }

    static void tx_commit() {
        if (tl.ws.size() == 0) {  // read-only or empty
            tl.active = false;
            tx_commit_hook();
            ROMULUS_RACE_TX_END();
            return;
        }
        // 1. Acquire every stripe lock covering the write set.
        for (uint32_t idx : tl.ws.order) {
            auto& lk = lock_of(tl.ws.table[idx].addr);
            uint64_t cur = lk.load(std::memory_order_seq_cst);
            if (cur & 1) {
                if (owned_by_me(&lk)) continue;
                release_owned();
                abort_tx();
            }
            if (!lk.compare_exchange_strong(cur, cur | 1,
                                            std::memory_order_seq_cst)) {
                release_owned();
                abort_tx();
            }
            tl.owned.emplace_back(&lk, cur);
            ROMULUS_RACE_ACQUIRE(&lk, "redo.stripe_lock");
        }
        // 2. New commit version.
        const uint64_t wv =
            g_redo_clock.fetch_add(1, std::memory_order_seq_cst) + 1;
        // 3. Validate the read set.
        for (auto& [lk, l1] : tl.rs) {
            const uint64_t cur = lk->load(std::memory_order_seq_cst);
            if (cur != l1 && !(owned_by_me(lk) && (cur & ~1ull) == (l1 & ~1ull))) {
                release_owned();
                abort_tx();
            }
        }
        // 4. Persist the redo log (first fence), then the marker (second).
        ThreadLog& log = s.logs[sync::tid()];
        const size_t n = tl.ws.size();
        if (n > kLogCapacity) {
            release_owned();
            throw std::runtime_error("RedoLogPTM: transaction too large");
        }
        for (size_t i = 0; i < n; ++i) {
            const auto& slot = tl.ws.table[tl.ws.order[i]];
            log.entries[i].heap_off = slot.addr - reinterpret_cast<uintptr_t>(s.heap);
            log.entries[i].val = slot.val;
            pmem::on_store(&log.entries[i], sizeof(RedoEntry));
            pmem::notify_range_logged(reinterpret_cast<void*>(slot.addr), 8);
        }
        log.count.store(n, std::memory_order_relaxed);
        pmem::on_store(&log.count, 8);
        pmem::pwb_range(log.entries, n * sizeof(RedoEntry));
        pmem::pwb(&log.count);
        pmem::pfence();
        log.marker.store(wv, std::memory_order_relaxed);
        pmem::on_store(&log.marker, 8);
        pmem::pwb(&log.marker);
        pmem::pfence();  // commit point: durable from here
        // 5. Apply in place.  The write events fire here — this is where the
        // buffered stores actually touch the heap, under the stripe locks.
        for (size_t i = 0; i < n; ++i) {
            const auto& slot = tl.ws.table[tl.ws.order[i]];
            *reinterpret_cast<uint64_t*>(slot.addr) = slot.val;
            ROMULUS_RACE_WRITE(reinterpret_cast<void*>(slot.addr), 8);
            pmem::on_store(reinterpret_cast<void*>(slot.addr), 8);
            pmem::pwb(reinterpret_cast<void*>(slot.addr));
        }
        pmem::psync();
        log.marker.store(0, std::memory_order_relaxed);
        pmem::on_store(&log.marker, 8);
        pmem::pwb(&log.marker);
        pmem::pfence();
        // 6. Release locks with the new version.
        for (auto& [lk, orig] : tl.owned) {
            (void)orig;
            ROMULUS_RACE_RELEASE(lk, "redo.stripe_lock");
            lk->store(wv << 1, std::memory_order_seq_cst);
        }
        tl.owned.clear();
        tl.active = false;
        tx_commit_hook();
        ROMULUS_RACE_TX_END();
    }

    static bool owned_by_me(std::atomic<uint64_t>* lk) {
        for (auto& [olk, orig] : tl.owned) {
            (void)orig;
            if (olk == lk) return true;
        }
        return false;
    }

    static void format() {
        s.header->magic.store(0);
        pmem::pwb(&s.header->magic);
        pmem::pfence();

        s.header->heap_size = s.heap_size;
        size_t meta_end = (sizeof(HeapMeta) + 63) & ~size_t{63};
        s.header->used_size.store(meta_end);
        pmem::on_store(s.header, sizeof(RHeader));
        pmem::pwb_range(s.header, sizeof(RHeader));

        for (int t = 0; t < sync::kMaxThreads; ++t) {
            s.logs[t].marker.store(0);
            s.logs[t].count.store(0);
            pmem::pwb_range(&s.logs[t], 64);
        }
        pmem::pfence();

        new (s.meta) HeapMeta;
        for (int i = 0; i < kMaxRootObjects; ++i) s.meta->roots[i] = nullptr;
        s.alloc.format(&s.meta->alloc_meta, pool_base(), pool_size());
        pmem::pwb_range(s.heap, meta_end);
        pmem::pfence();

        s.header->magic.store(kMagic);
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::psync();
    }
};

}  // namespace romulus::baselines
