#include "baselines/redo_clock.hpp"

#include "baselines/redolog.hpp"
#include "baselines/undolog.hpp"

namespace romulus::baselines {

std::atomic<uint64_t> g_redo_clock{1};

// Out-of-line definitions of the baselines' static state (GCC rejects
// `static inline` members whose type uses default member initializers
// declared later in the same enclosing class).
RedoLogPTM::State RedoLogPTM::s{};
thread_local RedoLogPTM::TlState RedoLogPTM::tl{};
UndoLogPTM::State UndoLogPTM::s{};
thread_local UndoLogPTM::TlState UndoLogPTM::tl{};

}  // namespace romulus::baselines
